"""Quickstart: release a private quadtree over location data and query it.

This example walks through the minimal end-to-end use of the library:

1. generate a skewed, road-network-like location dataset (a stand-in for the
   paper's TIGER/Line road intersections);
2. build an optimised private quadtree (geometric budget + OLS
   post-processing, the paper's ``quad-opt``) under a total privacy budget
   ``epsilon``;
3. answer a few range queries from the released structure and compare with
   the true counts;
4. show that the release respects the declared privacy budget.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import TIGER_DOMAIN, build_private_quadtree, road_intersections
from repro.queries import QueryShape, generate_workload, median_relative_error


def main() -> None:
    rng = np.random.default_rng(7)

    # --- 1. The private dataset -------------------------------------------
    points = road_intersections(n=120_000, rng=rng)
    print(f"dataset: {points.shape[0]:,} points over {TIGER_DOMAIN.name}")

    # --- 2. Build the released structure ----------------------------------
    epsilon = 0.5
    psd = build_private_quadtree(
        points,
        TIGER_DOMAIN,
        height=8,
        epsilon=epsilon,
        variant="quad-opt",
        rng=rng,
    )
    print(f"released: {psd.name} with {psd.node_count():,} nodes, height {psd.height}")
    print(f"per-level count budgets (leaf→root): "
          f"{[round(e, 4) for e in psd.count_epsilons]}")
    psd.accountant.assert_within_budget()
    print(f"privacy spent along any root-to-leaf path: "
          f"{psd.accountant.path_epsilon:.4f} <= {epsilon}")

    # --- 3. Query the release ---------------------------------------------
    print("\nSingle queries (degrees are roughly 70 miles):")
    for center, extents in [((-122.3, 47.6), (1.0, 1.0)),
                            ((-106.5, 35.1), (5.0, 5.0)),
                            ((-114.0, 40.0), (10.0, 10.0))]:
        query = TIGER_DOMAIN.query_rect(center, extents)
        truth = query.count_points(points, closed_hi=True)
        estimate = psd.range_query(query)
        print(f"  query {extents} at {center}: true={truth:8.0f}  private={estimate:10.1f}")

    # --- 4. Whole-workload accuracy ----------------------------------------
    workload = generate_workload(points, TIGER_DOMAIN, QueryShape((5.0, 5.0)),
                                 n_queries=100, rng=rng)
    estimates = workload.evaluate(psd.range_query)
    err = median_relative_error(estimates, workload.true_answers)
    print(f"\nmedian relative error over 100 (5,5)-degree queries: {100 * err:.2f}%")


if __name__ == "__main__":
    main()
