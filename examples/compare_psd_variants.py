"""Compare PSD variants on the same dataset and workload.

This example reproduces, at reduced scale, the central comparison of the
paper's experimental study: for a fixed privacy budget it builds the optimised
quadtree, the standard / hybrid / cell-based / noisy-mean kd-trees and the
private Hilbert R-tree over the same skewed location dataset, evaluates all of
them on identical query workloads and prints a side-by-side accuracy table.

It also demonstrates the effect of the paper's two optimisations (geometric
budget, OLS post-processing) by including the un-optimised quadtree baseline.

Run with::

    python examples/compare_psd_variants.py
"""

from __future__ import annotations

import numpy as np

from repro import TIGER_DOMAIN, road_intersections
from repro.core import (
    build_private_hilbert_rtree,
    build_private_kdtree,
    build_private_quadtree,
)
from repro.experiments.common import evaluate_tree, format_table
from repro.queries import KD_QUERY_SHAPES, generate_workload

EPSILON = 0.5
N_POINTS = 80_000
N_QUERIES = 60
QUAD_HEIGHT = 8
KD_HEIGHT = 6


def main() -> None:
    rng = np.random.default_rng(11)
    points = road_intersections(n=N_POINTS, rng=rng)
    workloads = {
        shape.label: generate_workload(points, TIGER_DOMAIN, shape, n_queries=N_QUERIES, rng=rng)
        for shape in KD_QUERY_SHAPES
    }

    builders = {
        "quad-baseline": lambda: build_private_quadtree(
            points, TIGER_DOMAIN, QUAD_HEIGHT, EPSILON, variant="quad-baseline", rng=rng),
        "quad-opt": lambda: build_private_quadtree(
            points, TIGER_DOMAIN, QUAD_HEIGHT, EPSILON, variant="quad-opt", rng=rng),
        "kd-standard": lambda: build_private_kdtree(
            points, TIGER_DOMAIN, KD_HEIGHT, EPSILON, variant="kd-standard", prune_threshold=32, rng=rng),
        "kd-hybrid": lambda: build_private_kdtree(
            points, TIGER_DOMAIN, KD_HEIGHT, EPSILON, variant="kd-hybrid", prune_threshold=32, rng=rng),
        "kd-cell": lambda: build_private_kdtree(
            points, TIGER_DOMAIN, KD_HEIGHT, EPSILON, variant="kd-cell", prune_threshold=32, rng=rng),
        "kd-noisymean": lambda: build_private_kdtree(
            points, TIGER_DOMAIN, KD_HEIGHT, EPSILON, variant="kd-noisymean", prune_threshold=32, rng=rng),
        "hilbert-r": lambda: build_private_hilbert_rtree(
            points, TIGER_DOMAIN, 2 * KD_HEIGHT, EPSILON, order=16, prune_threshold=32, rng=rng),
    }

    rows = []
    for name, build in builders.items():
        tree = build()
        errors = evaluate_tree(tree.range_query, workloads)
        row = {"method": name}
        row.update({label: 100.0 * err for label, err in errors.items()})
        rows.append(row)

    columns = ["method"] + [shape.label for shape in KD_QUERY_SHAPES]
    print(format_table(rows, columns,
                       title=f"Median relative error (%) at epsilon={EPSILON}, "
                             f"{N_POINTS:,} points, {N_QUERIES} queries/shape"))
    print("\nExpected shape (paper, Figures 5-6): the optimised quadtree and the hybrid")
    print("kd-tree are the most reliable; kd-noisymean is the weakest private variant;")
    print("kd-cell is competitive on small square queries but degrades on large ones.")


if __name__ == "__main__":
    main()
