"""Releasing a one-dimensional numeric attribute (salaries) privately.

The paper stresses that "any data set where attributes are ordered and have
moderate to high cardinality (e.g., numerical attributes such as salary) can
be considered spatial data".  This example builds a private decomposition of a
*one-dimensional* salary dataset and uses it to answer interval queries
("how many employees earn between 60k and 80k?") and to extract an
approximate histogram and median — the bread-and-butter of private data
publishing over numeric microdata.

It also compares the hierarchical release against the flat-grid strawman from
the paper's introduction (noisy counts over a fine grid) to show why the
hierarchy + post-processing matters for large ranges.

Run with::

    python examples/salary_release.py
"""

from __future__ import annotations

import numpy as np

from repro.core import build_psd
from repro.core.hilbert_rtree import BinaryMedianSplit
from repro.geometry import Domain, Rect
from repro.index import UniformGrid
from repro.privacy import exponential_mechanism_median

SALARY_LO, SALARY_HI = 0.0, 500_000.0
EPSILON = 0.5
N_EMPLOYEES = 200_000


def make_salaries(rng: np.random.Generator) -> np.ndarray:
    """A right-skewed salary distribution (log-normal body plus a thin tail)."""
    body = rng.lognormal(mean=11.0, sigma=0.45, size=int(N_EMPLOYEES * 0.97))
    tail = rng.uniform(200_000, SALARY_HI, size=N_EMPLOYEES - body.size)
    salaries = np.clip(np.concatenate([body, tail]), SALARY_LO, SALARY_HI)
    return salaries.reshape(-1, 1)


def main() -> None:
    rng = np.random.default_rng(23)
    salaries = make_salaries(rng)
    domain = Domain.from_bounds((SALARY_LO,), (SALARY_HI,), name="salaries")

    # A private binary decomposition of the salary axis: data-dependent splits
    # via the exponential mechanism, geometric count budget, OLS post-processing.
    psd = build_psd(
        salaries,
        domain,
        height=10,
        split_rule=BinaryMedianSplit(median_method="em"),
        epsilon=EPSILON,
        count_budget="geometric",
        rng=rng,
        name="salary-tree",
        postprocess=True,
    )
    print(f"released {psd.name}: {psd.node_count():,} nodes, "
          f"path epsilon {psd.accountant.path_epsilon:.3f} <= {EPSILON}")

    # Interval (range-count) queries.
    print("\nInterval queries:")
    for lo, hi in [(60_000, 80_000), (0, 50_000), (100_000, 500_000)]:
        query = Rect((float(lo),), (float(hi),))
        truth = query.count_points(salaries, closed_hi=True)
        estimate = psd.range_query(query)
        print(f"  salaries in [{lo:>7,}, {hi:>7,}): true={truth:8.0f}  private={estimate:10.1f}")

    # An approximate decile histogram from the released leaf counts.
    print("\nApproximate decile histogram (from released leaves):")
    edges = np.linspace(SALARY_LO, SALARY_HI, 11)
    for lo, hi in zip(edges[:-1], edges[1:]):
        estimate = psd.range_query(Rect((float(lo),), (float(hi),)))
        bar = "#" * max(0, int(estimate / N_EMPLOYEES * 200))
        print(f"  [{lo:>9,.0f}, {hi:>9,.0f}): {max(estimate, 0.0):9.0f} {bar}")

    # A separately-budgeted private median via the exponential mechanism.
    median_eps = 0.05
    private_median = exponential_mechanism_median(
        salaries.ravel(), median_eps, SALARY_LO, SALARY_HI, rng=rng
    )
    print(f"\ntrue median salary:    {np.median(salaries):>10,.0f}")
    print(f"private median (eps={median_eps}): {private_median:>10,.0f}")

    # The flat-grid strawman: same budget, 1024 cells, no hierarchy.
    grid = UniformGrid(domain=domain, shape=(1024,)).fit(salaries)
    noisy_grid = grid.noisy_counts(EPSILON, rng=rng)
    wide = Rect((100_000.0,), (500_000.0,))
    print("\nWide-range query [100k, 500k):")
    print(f"  true              : {wide.count_points(salaries, closed_hi=True):10.0f}")
    print(f"  hierarchical PSD  : {psd.range_query(wide):10.1f}")
    print(f"  flat noisy grid   : {noisy_grid.range_count(wide):10.1f}")
    print("(the flat grid sums hundreds of noisy cells, so its error on wide ranges")
    print(" is much larger — the motivation for hierarchical decompositions)")


if __name__ == "__main__":
    main()
