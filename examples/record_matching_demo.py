"""Private record matching: pruning secure-computation work with a PSD.

Reproduces the application of Section 8.3 (after Inan et al. [12]): two
parties hold location-tagged customer records and want to find matches
(records within a small distance of each other) without revealing their data.
Party A releases a differentially private spatial index of its records; the
blocking step discards all pairs whose regions cannot match, and only the
surviving candidate pairs go to the expensive secure multiparty computation.

The metric is the *reduction ratio* — the fraction of pairwise comparisons
avoided — and the demo compares the three private indexes of Figure 7(b)
across privacy budgets, also reporting pairs completeness (the fraction of
true matches that survive blocking) as a sanity check.

Run with::

    python examples/record_matching_demo.py
"""

from __future__ import annotations


from repro.experiments.common import format_table
from repro.experiments.fig7 import run_fig7b


def main() -> None:
    rows = run_fig7b(
        n_per_party=10_000,
        epsilons=(0.05, 0.1, 0.2, 0.3, 0.4, 0.5),
        height=6,
        matching_distance=0.05,
        rng=3,
    )
    print(format_table(
        rows,
        ["method", "epsilon", "reduction_ratio", "pairs_completeness", "surviving_leaves"],
        title="Private record matching (reduction ratio: larger is better)",
    ))
    print("\nExpected shape (paper, Figure 7b): all methods improve as the budget grows,")
    print("and the EM-median kd-tree (kd-standard) achieves the best reduction ratio,")
    print("improving appreciably over the noisy-mean kd-tree of the original approach.")

    # Back-of-the-envelope translation into saved SMC work, as in the paper.
    by_method = {}
    for row in rows:
        by_method.setdefault(row["method"], []).append(row)
    best = {m: max(r["reduction_ratio"] for r in series) for m, series in by_method.items()}
    if "kd-standard" in best and "kd-noisymean" in best:
        ours, theirs = best["kd-standard"], best["kd-noisymean"]
        if theirs < 1.0:
            saved = (ours - theirs) / (1.0 - theirs)
            print(f"\nAt the largest budget, kd-standard removes {100 * saved:.0f}% of the SMC work")
            print("left over by kd-noisymean (the paper quotes 28% for 0.93 -> 0.95).")


if __name__ == "__main__":
    main()
