"""The paper's two headline optimisations, demonstrated in isolation.

Section 4 (geometric budgets) and Section 5 (OLS post-processing) are the
technical core of the paper.  This example makes both effects visible on a
small, fully-inspectable tree:

* it prints the per-level Laplace parameters of the uniform and geometric
  allocations and the worst-case variance bound of each (Figure 2's curves);
* it builds the four quadtree variants of Figure 3 on the same data and the
  same workload and prints their measured errors;
* it verifies, on the released tree, the two defining properties of the OLS
  estimator — consistency (parents equal the sum of their children) and
  variance reduction relative to the raw noisy counts.

Run with::

    python examples/budget_and_postprocessing.py
"""

from __future__ import annotations

import numpy as np

from repro import TIGER_DOMAIN, build_private_quadtree, road_intersections
from repro.analysis import geometric_budget_error, uniform_budget_error
from repro.core import check_consistency, geometric_level_epsilons, uniform_level_epsilons
from repro.experiments.common import evaluate_tree, format_table
from repro.queries import PAPER_QUERY_SHAPES, generate_workload

EPSILON = 0.1
HEIGHT = 8
N_POINTS = 80_000


def main() -> None:
    rng = np.random.default_rng(5)

    # --- Budget allocations and their analytic bounds -----------------------
    print(f"Per-level count budgets for epsilon={EPSILON}, height={HEIGHT} (leaf -> root):")
    print("  uniform  :", [round(e, 4) for e in uniform_level_epsilons(HEIGHT, EPSILON)])
    print("  geometric:", [round(e, 4) for e in geometric_level_epsilons(HEIGHT, EPSILON)])
    print("\nWorst-case Err(Q) bound (Section 4.2):")
    for h in (6, 8, 10):
        print(f"  h={h}: uniform={uniform_budget_error(h, EPSILON):.3e}  "
              f"geometric={geometric_budget_error(h, EPSILON):.3e}  "
              f"ratio={uniform_budget_error(h, EPSILON) / geometric_budget_error(h, EPSILON):.1f}x")

    # --- Measured effect on the four Figure-3 variants ----------------------
    points = road_intersections(n=N_POINTS, rng=rng)
    workloads = {
        shape.label: generate_workload(points, TIGER_DOMAIN, shape, n_queries=50, rng=rng)
        for shape in PAPER_QUERY_SHAPES
    }
    rows = []
    trees = {}
    for variant in ("quad-baseline", "quad-geo", "quad-post", "quad-opt"):
        psd = build_private_quadtree(points, TIGER_DOMAIN, HEIGHT, EPSILON, variant=variant, rng=rng)
        trees[variant] = psd
        errors = evaluate_tree(psd.range_query, workloads)
        row = {"variant": variant}
        row.update({label: 100.0 * err for label, err in errors.items()})
        rows.append(row)
    columns = ["variant"] + [shape.label for shape in PAPER_QUERY_SHAPES]
    print("\n" + format_table(rows, columns,
                              title=f"Median relative error (%) at epsilon={EPSILON} (Figure 3 shape)"))

    # --- Properties of the OLS estimator ------------------------------------
    opt = trees["quad-opt"]
    print(f"\nOLS consistency violation on quad-opt: {check_consistency(opt):.2e} "
          "(parents equal the sum of their children)")
    baseline = trees["quad-baseline"]
    raw_rmse = _root_rmse(baseline)
    post_rmse = _root_rmse(opt)
    print(f"root-count error: raw noisy = {raw_rmse:.1f}, after geometric+OLS = {post_rmse:.1f}")


def _root_rmse(psd) -> float:
    """Absolute error of the released root count against the true total."""
    root = psd.root
    released = root.released_count
    return abs(released - root._true_count)


if __name__ == "__main__":
    main()
