"""Publish → compile → serve: the life-cycle of a PSD as a query service.

A private spatial decomposition is built *once* by the data owner and then
queried *many* times by consumers.  This example walks the full serving
pipeline the :mod:`repro.engine` subsystem enables:

1. **publish** — build a private quadtree over location data and write the
   released JSON (only noisy/post-processed information leaves the owner);
2. **compile** — load the release as a consumer would and compile it into the
   flat structure-of-arrays engine, persisted as ``.npz`` so query servers
   can boot straight into serving form;
3. **serve** — answer a 2 000-query workload three ways and time them:
   the recursive reference walk, the vectorised batch engine, and the batch
   engine fronted by an LRU answer cache replaying a skewed (hot-spot)
   traffic pattern;
4. **zero-copy serving** — persist the same engine in the memory-mapped
   format v2, compare cold attach latency against the ``.npz`` load (the
   answers are bitwise identical), fan a batch across a two-worker
   :class:`~repro.parallel.ShardedQueryServer` whose workers re-map the same
   file, and report mapped-bytes / RSS from the observability registry.

Run with::

    python examples/serve_flat_engine.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import TIGER_DOMAIN, build_private_quadtree, road_intersections
from repro.core import load_psd, save_psd
from repro.engine import CachedEngine, batch_range_query, load_engine, save_engine
from repro.obs import enable_metrics, gauge_set, metrics_payload
from repro.queries import random_query_rects


def _rss_kb() -> int:
    """This process's resident set, in KiB (Linux; -1 elsewhere)."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return -1


def main() -> None:
    rng = np.random.default_rng(3)
    workdir = Path(tempfile.mkdtemp(prefix="psd-serve-"))

    # --- 1. publish --------------------------------------------------------
    points = road_intersections(n=80_000, rng=rng)
    psd = build_private_quadtree(points, TIGER_DOMAIN, height=7, epsilon=0.5,
                                 variant="quad-opt", rng=rng)
    psd.strip_private_fields()
    release_path = workdir / "release.json"
    save_psd(psd, str(release_path))
    print(f"published {psd.name}: {psd.node_count():,} nodes -> {release_path}")

    # --- 2. compile (consumer side: only the release is available) --------
    consumer_psd = load_psd(str(release_path))
    start = time.perf_counter()
    engine = consumer_psd.compile()
    compile_sec = time.perf_counter() - start
    engine_path = workdir / "engine.npz"
    save_engine(engine, engine_path)
    engine = load_engine(engine_path)
    print(f"compiled in {compile_sec * 1e3:.1f} ms, "
          f"{engine.nbytes() / 1024:.0f} KiB of arrays -> {engine_path}")

    # --- 3. serve ----------------------------------------------------------
    queries = random_query_rects(TIGER_DOMAIN, 2_000, rng=rng, min_frac=0.02, max_frac=0.22)

    start = time.perf_counter()
    reference = np.array([consumer_psd.range_query(q) for q in queries])
    recursive_sec = time.perf_counter() - start

    start = time.perf_counter()
    batch = batch_range_query(engine, queries)
    batch_sec = time.perf_counter() - start
    assert np.allclose(batch, reference)

    # Skewed traffic: 90% of requests replay 5% of distinct queries.
    hot = queries[: max(1, len(queries) // 20)]
    traffic = [hot[rng.integers(len(hot))] if rng.random() < 0.9
               else queries[rng.integers(len(queries))] for _ in range(10_000)]
    server = CachedEngine(engine, maxsize=4_096)
    start = time.perf_counter()
    for query in traffic:
        server.range_query(query)
    cached_sec = time.perf_counter() - start

    print(f"\nserving {len(queries):,} distinct queries:")
    print(f"  recursive walk : {len(queries) / recursive_sec:10,.0f} q/s")
    print(f"  flat batch     : {len(queries) / batch_sec:10,.0f} q/s "
          f"({recursive_sec / batch_sec:.1f}x)")
    print(f"\nskewed traffic, {len(traffic):,} requests through the LRU cache:")
    print(f"  cached serving : {len(traffic) / cached_sec:10,.0f} q/s, "
          f"stats {server.stats()}")

    # --- 4. zero-copy serving: the memory-mapped format v2 -----------------
    from repro.parallel import ShardedQueryServer

    registry = enable_metrics()  # the loaders record engine.bytes_mapped
    mapped_path = workdir / "engine.psdm"
    save_engine(engine, mapped_path, format="mmap")

    start = time.perf_counter()
    load_engine(engine_path)
    npz_load_sec = time.perf_counter() - start
    start = time.perf_counter()
    mapped = load_engine(mapped_path)
    attach_sec = time.perf_counter() - start

    sample = queries[:200]
    assert np.array_equal(batch_range_query(engine, sample),
                          batch_range_query(mapped, sample)), "parity broken"

    with ShardedQueryServer(mapped, workers=2, chunk_queries=64) as sharded:
        fanned = sharded.batch_range_query(queries)
        serve_stats = sharded.stats()
    assert np.array_equal(fanned, batch)

    gauge_set("example.rss_kb", _rss_kb())
    gauges = {g["name"]: g["value"] for g in metrics_payload(registry)["gauges"]}
    print(f"\nzero-copy serving (format v2, {mapped_path.name}):")
    print(f"  .npz cold load : {npz_load_sec * 1e3:8.2f} ms (decompress to heap)")
    print(f"  mmap attach    : {attach_sec * 1e3:8.2f} ms "
          f"({npz_load_sec / attach_sec:.0f}x faster, answers bitwise equal)")
    print(f"  sharded serve  : {serve_stats['workers']} workers re-map the file — "
          f"{serve_stats['engine_mapped_bytes']:,} engine bytes mapped, "
          f"{serve_stats['shm_segments']} shm segments")
    print(f"  obs registry   : engine.bytes_mapped={gauges.get('engine.bytes_mapped', 0):,.0f}, "
          f"example.rss_kb={gauges.get('example.rss_kb', -1):,.0f}")


if __name__ == "__main__":
    main()
