"""Publish → compile → serve: the life-cycle of a PSD as a query service.

A private spatial decomposition is built *once* by the data owner and then
queried *many* times by consumers.  This example walks the full serving
pipeline the :mod:`repro.engine` subsystem enables:

1. **publish** — build a private quadtree over location data and write the
   released JSON (only noisy/post-processed information leaves the owner);
2. **compile** — load the release as a consumer would and compile it into the
   flat structure-of-arrays engine, persisted as ``.npz`` so query servers
   can boot straight into serving form;
3. **serve** — answer a 2 000-query workload three ways and time them:
   the recursive reference walk, the vectorised batch engine, and the batch
   engine fronted by an LRU answer cache replaying a skewed (hot-spot)
   traffic pattern;
4. **zero-copy serving** — persist the same engine in the memory-mapped
   format v2, compare cold attach latency against the ``.npz`` load (the
   answers are bitwise identical), fan a batch across a two-worker
   :class:`~repro.parallel.ShardedQueryServer` whose workers re-map the same
   file, and report mapped-bytes / RSS from the observability registry;
5. **fault-tolerant serving** — front the mapped engine with the
   :mod:`repro.serve` HTTP service: a budget-capped analyst is refused with
   429 once its ε is spent, a deterministic kill-worker schedule crashes
   pool workers under live traffic, and the engine is hot-swapped to a
   float32 memory-map mid-stream — zero requests dropped, and reopening the
   write-ahead ledger replays the spend bit-for-bit.

Run with::

    python examples/serve_flat_engine.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import TIGER_DOMAIN, build_private_quadtree, road_intersections
from repro.core import load_psd, save_psd
from repro.engine import CachedEngine, batch_range_query, load_engine, save_engine
from repro.obs import enable_metrics, gauge_set, metrics_payload
from repro.queries import random_query_rects


def _rss_kb() -> int:
    """This process's resident set, in KiB (Linux; -1 elsewhere)."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return -1


def main() -> None:
    rng = np.random.default_rng(3)
    workdir = Path(tempfile.mkdtemp(prefix="psd-serve-"))

    # --- 1. publish --------------------------------------------------------
    points = road_intersections(n=80_000, rng=rng)
    psd = build_private_quadtree(points, TIGER_DOMAIN, height=7, epsilon=0.5,
                                 variant="quad-opt", rng=rng)
    psd.strip_private_fields()
    release_path = workdir / "release.json"
    save_psd(psd, str(release_path))
    print(f"published {psd.name}: {psd.node_count():,} nodes -> {release_path}")

    # --- 2. compile (consumer side: only the release is available) --------
    consumer_psd = load_psd(str(release_path))
    start = time.perf_counter()
    engine = consumer_psd.compile()
    compile_sec = time.perf_counter() - start
    engine_path = workdir / "engine.npz"
    save_engine(engine, engine_path)
    engine = load_engine(engine_path)
    print(f"compiled in {compile_sec * 1e3:.1f} ms, "
          f"{engine.nbytes() / 1024:.0f} KiB of arrays -> {engine_path}")

    # --- 3. serve ----------------------------------------------------------
    queries = random_query_rects(TIGER_DOMAIN, 2_000, rng=rng, min_frac=0.02, max_frac=0.22)

    start = time.perf_counter()
    reference = np.array([consumer_psd.range_query(q) for q in queries])
    recursive_sec = time.perf_counter() - start

    start = time.perf_counter()
    batch = batch_range_query(engine, queries)
    batch_sec = time.perf_counter() - start
    assert np.allclose(batch, reference)

    # Skewed traffic: 90% of requests replay 5% of distinct queries.
    hot = queries[: max(1, len(queries) // 20)]
    traffic = [hot[rng.integers(len(hot))] if rng.random() < 0.9
               else queries[rng.integers(len(queries))] for _ in range(10_000)]
    server = CachedEngine(engine, maxsize=4_096)
    start = time.perf_counter()
    for query in traffic:
        server.range_query(query)
    cached_sec = time.perf_counter() - start

    print(f"\nserving {len(queries):,} distinct queries:")
    print(f"  recursive walk : {len(queries) / recursive_sec:10,.0f} q/s")
    print(f"  flat batch     : {len(queries) / batch_sec:10,.0f} q/s "
          f"({recursive_sec / batch_sec:.1f}x)")
    print(f"\nskewed traffic, {len(traffic):,} requests through the LRU cache:")
    print(f"  cached serving : {len(traffic) / cached_sec:10,.0f} q/s, "
          f"stats {server.stats()}")

    # --- 4. zero-copy serving: the memory-mapped format v2 -----------------
    from repro.parallel import ShardedQueryServer

    registry = enable_metrics()  # the loaders record engine.bytes_mapped
    mapped_path = workdir / "engine.psdm"
    save_engine(engine, mapped_path, format="mmap")

    start = time.perf_counter()
    load_engine(engine_path)
    npz_load_sec = time.perf_counter() - start
    start = time.perf_counter()
    mapped = load_engine(mapped_path)
    attach_sec = time.perf_counter() - start

    sample = queries[:200]
    assert np.array_equal(batch_range_query(engine, sample),
                          batch_range_query(mapped, sample)), "parity broken"

    with ShardedQueryServer(mapped, workers=2, chunk_queries=64) as sharded:
        fanned = sharded.batch_range_query(queries)
        serve_stats = sharded.stats()
    assert np.array_equal(fanned, batch)

    gauge_set("example.rss_kb", _rss_kb())
    gauges = {g["name"]: g["value"] for g in metrics_payload(registry)["gauges"]}
    print(f"\nzero-copy serving (format v2, {mapped_path.name}):")
    print(f"  .npz cold load : {npz_load_sec * 1e3:8.2f} ms (decompress to heap)")
    print(f"  mmap attach    : {attach_sec * 1e3:8.2f} ms "
          f"({npz_load_sec / attach_sec:.0f}x faster, answers bitwise equal)")
    print(f"  sharded serve  : {serve_stats['workers']} workers re-map the file — "
          f"{serve_stats['engine_mapped_bytes']:,} engine bytes mapped, "
          f"{serve_stats['shm_segments']} shm segments")
    print(f"  obs registry   : engine.bytes_mapped={gauges.get('engine.bytes_mapped', 0):,.0f}, "
          f"example.rss_kb={gauges.get('example.rss_kb', -1):,.0f}")

    # --- 5. fault-tolerant serving: budget, faults, and a live hot swap ----
    import http.client
    import json
    import threading

    from repro.serve import BudgetLedger, EngineSupervisor, QueryService, ServiceThread, parse_faults

    float32_path = workdir / "engine_f32.psdm"
    save_engine(engine, float32_path, format="mmap", precision="float32")

    def post(port: int, path: str, body: dict):
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
        try:
            conn.request("POST", path, body=json.dumps(body).encode())
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def get_json(port: int, path: str) -> dict:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
        try:
            conn.request("GET", path)
            return json.loads(conn.getresponse().read())
        finally:
            conn.close()

    # Batches bigger than one chunk, so every request fans across the pool
    # (a batch that fits one chunk is served in-process and would never
    # notice a dead worker).
    rows = [[float(v) for v in list(q.lo) + list(q.hi)] for q in queries[:16]]
    ledger_path = workdir / "budget.jsonl"
    supervisor = EngineSupervisor(mapped, workers=2, chunk_queries=4)
    ledger = BudgetLedger(str(ledger_path), default_cap=0.5)
    # Every 5th admitted request deterministically crashes a pool worker:
    # the supervised pool rebuilds and replays, the caller only sees latency.
    service = QueryService(supervisor, ledger, faults=parse_faults("kill-worker:5"))

    hammer_stop = threading.Event()
    hammer: dict = {"statuses": [], "generations": set()}

    def hammer_loop(port: int) -> None:
        # A well-behaved reader: tiny ε per request, never near the cap.
        while not hammer_stop.is_set():
            status, body = post(port, "/query",
                                {"analyst": "reader", "queries": rows, "epsilon": 1e-6})
            hammer["statuses"].append(status)
            if status == 200:
                hammer["generations"].add(body["generation"])

    try:
        with ServiceThread(service) as thread:
            port = thread.address[1]
            reader = threading.Thread(target=hammer_loop, args=(port,))
            reader.start()

            # A greedy analyst burns through its ε cap and is refused: 429,
            # charge-before-answer, nothing released past the budget.
            refusal = None
            for _ in range(4):
                status, body = post(port, "/query",
                                    {"analyst": "greedy", "queries": rows, "epsilon": 0.2})
                if status == 429:
                    refusal = body
                    break
            assert refusal is not None, "budget cap was never enforced"

            # Wait until a kill drill has fired *and* the reader's traffic has
            # forced the pool to rebuild (the rebuild is lazy: it happens when
            # the next batch hits the broken pool).  Snapshot /stats before
            # the swap — the post-swap generation starts with fresh counters.
            deadline = time.monotonic() + 30.0
            while True:
                stats = get_json(port, "/stats")
                server = stats["supervisor"]["server"]
                if (stats["faults"].get("kill-worker", 0) >= 1
                        and server["pool_rebuilds"] + server["inproc_fallbacks"] >= 1):
                    break
                assert time.monotonic() < deadline, "kill-worker drill never forced a rebuild"
                time.sleep(0.05)

            # Hot swap to the float32 memory-map while the reader hammers on:
            # in-flight queries drain on generation 1, new ones pin generation 2.
            status, swap = post(port, "/admin/swap", {"path": str(float32_path)})
            assert status == 200, swap
            deadline = time.monotonic() + 30.0
            while swap["generation"] not in hammer["generations"]:
                assert time.monotonic() < deadline, "no request landed on the new generation"
                time.sleep(0.05)
            hammer_stop.set()
            reader.join()
    finally:
        hammer_stop.set()
        supervisor.close()
        greedy_hex = ledger.spend_hex("greedy")
        ledger.close()

    replayed = BudgetLedger(str(ledger_path), default_cap=0.5)
    assert replayed.spend_hex("greedy") == greedy_hex, "WAL replay drifted"
    replayed.close()

    dropped = [code for code in hammer["statuses"] if code != 200]
    assert not dropped, f"dropped {len(dropped)} requests during faults/swap"
    print(f"\nfault-tolerant serving ({len(hammer['statuses'])} reader requests, "
          f"cap {ledger.default_cap} eps):")
    print(f"  budget refusal : 'greedy' got 429 after spending "
          f"{0.5 - refusal['remaining']:.1f} eps ({refusal['remaining']:.1f} left of 0.5)")
    print(f"  fault drills   : {stats['faults']} fired -> "
          f"{stats['supervisor']['server']['pool_rebuilds']} pool rebuilds, zero dropped requests")
    print(f"  hot swap       : generation {swap['generation']} serves {float32_path.name} "
          f"(float32); reader saw generations {sorted(hammer['generations'])}")
    print(f"  WAL replay     : reopened ledger reproduces 'greedy' spend bitwise ({greedy_hex})")


if __name__ == "__main__":
    main()
