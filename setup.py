"""Thin setup.py shim.

The project metadata lives in ``pyproject.toml``; this file exists only so the
package installs editable (``pip install -e .``) in offline environments where
the ``wheel`` package is unavailable and pip must fall back to the legacy
``setup.py develop`` path.
"""

from setuptools import setup

setup()
