"""Tests for the budget strategies of Section 4."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import optimal_geometric_epsilons
from repro.core.budget import (
    CustomBudget,
    GeometricBudget,
    LeafOnlyBudget,
    LevelSkippingBudget,
    UniformBudget,
    geometric_level_epsilons,
    resolve_budget,
    uniform_level_epsilons,
)

HEIGHT = 8
EPSILON = 0.5


class TestUniformBudget:
    def test_equal_shares_summing_to_epsilon(self):
        eps = UniformBudget().validate(HEIGHT, EPSILON)
        assert len(eps) == HEIGHT + 1
        assert all(e == pytest.approx(EPSILON / (HEIGHT + 1)) for e in eps)
        assert sum(eps) == pytest.approx(EPSILON)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            uniform_level_epsilons(-1, 1.0)
        with pytest.raises(ValueError):
            uniform_level_epsilons(3, 0.0)


class TestGeometricBudget:
    def test_sums_to_epsilon(self):
        eps = GeometricBudget().validate(HEIGHT, EPSILON)
        assert sum(eps) == pytest.approx(EPSILON)

    def test_increases_towards_leaves(self):
        eps = geometric_level_epsilons(HEIGHT, EPSILON)
        # eps[0] is the leaf level and must be the largest.
        assert all(eps[i] > eps[i + 1] for i in range(HEIGHT))

    def test_ratio_between_adjacent_levels(self):
        eps = geometric_level_epsilons(HEIGHT, EPSILON)
        for i in range(HEIGHT):
            assert eps[i] / eps[i + 1] == pytest.approx(2 ** (1 / 3))

    def test_matches_lemma3_closed_form(self):
        assert np.allclose(geometric_level_epsilons(HEIGHT, EPSILON),
                           optimal_geometric_epsilons(HEIGHT, EPSILON))

    def test_custom_ratio(self):
        eps = GeometricBudget(ratio=2.0).allocate(4, 1.0)
        assert eps[0] / eps[1] == pytest.approx(2.0)
        assert sum(eps) == pytest.approx(1.0)

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            GeometricBudget(ratio=1.0).allocate(4, 1.0)

    def test_height_zero(self):
        assert geometric_level_epsilons(0, 0.3) == (pytest.approx(0.3),)


class TestLeafOnlyBudget:
    def test_all_on_leaves(self):
        eps = LeafOnlyBudget().validate(HEIGHT, EPSILON)
        assert eps[0] == pytest.approx(EPSILON)
        assert all(e == 0.0 for e in eps[1:])


class TestLevelSkippingBudget:
    def test_alternate_levels_get_zero(self):
        eps = LevelSkippingBudget(stride=2).validate(6, 1.0)
        released = [i for i, e in enumerate(eps) if e > 0]
        assert 0 in released
        assert 6 in released
        assert sum(eps) == pytest.approx(1.0)
        assert len(released) < 7

    def test_stride_one_is_every_level(self):
        eps = LevelSkippingBudget(stride=1).validate(4, 1.0)
        assert all(e > 0 for e in eps)

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            LevelSkippingBudget(stride=0).allocate(4, 1.0)


class TestCustomBudget:
    def test_weights_normalised(self):
        eps = CustomBudget(weights=(1.0, 1.0, 2.0)).validate(2, 1.0)
        assert eps == (pytest.approx(0.25), pytest.approx(0.25), pytest.approx(0.5))

    def test_wrong_length_or_negative(self):
        with pytest.raises(ValueError):
            CustomBudget(weights=(1.0, 1.0)).allocate(2, 1.0)
        with pytest.raises(ValueError):
            CustomBudget(weights=(1.0, -1.0, 1.0)).allocate(2, 1.0)
        with pytest.raises(ValueError):
            CustomBudget(weights=(0.0, 0.0, 0.0)).allocate(2, 1.0)


class TestResolveBudget:
    def test_by_name(self):
        assert isinstance(resolve_budget("uniform"), UniformBudget)
        assert isinstance(resolve_budget("geometric"), GeometricBudget)
        assert isinstance(resolve_budget("leaf-only"), LeafOnlyBudget)

    def test_instance_passthrough(self):
        strategy = GeometricBudget(ratio=1.5)
        assert resolve_budget(strategy) is strategy

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            resolve_budget("quadratic")


class TestBudgetProperties:
    @given(st.integers(0, 14), st.floats(0.01, 10.0),
           st.sampled_from(["uniform", "geometric", "leaf-only"]))
    @settings(max_examples=80, deadline=None)
    def test_every_strategy_sums_to_epsilon(self, height, epsilon, name):
        """The composition constraint: per-level budgets always sum to the total."""
        eps = resolve_budget(name).validate(height, epsilon)
        assert len(eps) == height + 1
        assert all(e >= 0 for e in eps)
        assert sum(eps) == pytest.approx(epsilon, rel=1e-9)

    @given(st.integers(1, 14), st.floats(0.01, 10.0))
    @settings(max_examples=50, deadline=None)
    def test_geometric_dominates_uniform_at_leaves(self, height, epsilon):
        """The geometric allocation always gives leaves more budget than uniform does."""
        geo = geometric_level_epsilons(height, epsilon)
        uni = uniform_level_epsilons(height, epsilon)
        assert geo[0] > uni[0]
        assert geo[height] < uni[height]
