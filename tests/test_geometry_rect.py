"""Tests for the Rect primitive: construction, relations, splitting, point membership."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect, bounding_rect, domain_aware_mask


# ----------------------------------------------------------------------
# Construction and validation
# ----------------------------------------------------------------------
class TestConstruction:
    def test_basic_properties(self):
        r = Rect((0.0, 1.0), (2.0, 5.0))
        assert r.dims == 2
        assert r.area == pytest.approx(2.0 * 4.0)
        assert r.center == (1.0, 3.0)
        assert np.allclose(r.widths, [2.0, 4.0])

    def test_rejects_mismatched_dims(self):
        with pytest.raises(ValueError):
            Rect((0.0,), (1.0, 2.0))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Rect((), ())

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Rect((1.0, 0.0), (0.0, 1.0))

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            Rect((0.0, 0.0), (np.inf, 1.0))
        with pytest.raises(ValueError):
            Rect((np.nan, 0.0), (1.0, 1.0))

    def test_degenerate_allowed_and_detected(self):
        r = Rect((0.0, 0.0), (0.0, 1.0))
        assert r.is_degenerate()
        assert r.is_degenerate(axis=0)
        assert not r.is_degenerate(axis=1)
        assert r.area == 0.0

    def test_unit_and_from_arrays(self):
        assert Rect.unit(3).dims == 3
        assert Rect.from_arrays(np.array([0, 0]), np.array([1, 2])) == Rect((0.0, 0.0), (1.0, 2.0))

    def test_hashable_and_equal(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((0, 0), (1, 1))
        assert a == b
        assert hash(a) == hash(b)


# ----------------------------------------------------------------------
# Relations between rectangles
# ----------------------------------------------------------------------
class TestRelations:
    def test_intersects_and_intersection(self):
        a = Rect((0.0, 0.0), (2.0, 2.0))
        b = Rect((1.0, 1.0), (3.0, 3.0))
        assert a.intersects(b) and b.intersects(a)
        inter = a.intersection(b)
        assert inter == Rect((1.0, 1.0), (2.0, 2.0))
        assert a.intersection_area(b) == pytest.approx(1.0)

    def test_disjoint(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((2.0, 2.0), (3.0, 3.0))
        assert not a.intersects(b)
        assert a.intersection(b) is None
        assert a.intersection_area(b) == 0.0

    def test_touching_edges_do_not_intersect(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((1.0, 0.0), (2.0, 1.0))
        assert not a.intersects(b)

    def test_contains_rect(self):
        outer = Rect((0.0, 0.0), (4.0, 4.0))
        inner = Rect((1.0, 1.0), (2.0, 2.0))
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)
        assert outer.contains_rect(outer)

    def test_union_bounds(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((2.0, -1.0), (3.0, 0.5))
        u = a.union_bounds(b)
        assert u == Rect((0.0, -1.0), (3.0, 1.0))

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            Rect((0.0,), (1.0,)).intersects(Rect((0.0, 0.0), (1.0, 1.0)))


# ----------------------------------------------------------------------
# Point membership
# ----------------------------------------------------------------------
class TestPoints:
    def test_half_open_membership(self):
        r = Rect((0.0, 0.0), (1.0, 1.0))
        assert r.contains_point((0.0, 0.0))
        assert not r.contains_point((1.0, 0.5))
        assert r.contains_point((1.0, 0.5), closed_hi=True)

    def test_contains_points_vectorised(self):
        r = Rect((0.0, 0.0), (1.0, 1.0))
        pts = np.array([[0.5, 0.5], [1.5, 0.5], [0.0, 0.999], [1.0, 1.0]])
        mask = r.contains_points(pts)
        assert mask.tolist() == [True, False, True, False]
        mask_closed = r.contains_points(pts, closed_hi=True)
        assert mask_closed.tolist() == [True, False, True, True]

    def test_count_and_filter(self):
        r = Rect((0.0, 0.0), (1.0, 1.0))
        pts = np.array([[0.1, 0.1], [0.9, 0.9], [2.0, 2.0]])
        assert r.count_points(pts) == 2
        assert r.filter_points(pts).shape == (2, 2)

    def test_dim_mismatch_raises(self):
        r = Rect((0.0, 0.0), (1.0, 1.0))
        with pytest.raises(ValueError):
            r.contains_points(np.zeros((3, 3)))

    def test_domain_aware_mask_keeps_boundary_points(self):
        domain = Rect((0.0, 0.0), (1.0, 1.0))
        child = Rect((0.5, 0.5), (1.0, 1.0))
        pts = np.array([[1.0, 1.0], [0.75, 0.75], [0.25, 0.25]])
        mask = domain_aware_mask(child, pts, domain)
        assert mask.tolist() == [True, True, False]

    def test_domain_aware_mask_half_open_interior(self):
        domain = Rect((0.0, 0.0), (1.0, 1.0))
        left = Rect((0.0, 0.0), (0.5, 1.0))
        right = Rect((0.5, 0.0), (1.0, 1.0))
        pts = np.array([[0.5, 0.2]])
        assert domain_aware_mask(left, pts, domain).tolist() == [False]
        assert domain_aware_mask(right, pts, domain).tolist() == [True]


# ----------------------------------------------------------------------
# Splitting
# ----------------------------------------------------------------------
class TestSplitting:
    def test_split_at_partitions(self):
        r = Rect((0.0, 0.0), (4.0, 2.0))
        left, right = r.split_at(0, 1.0)
        assert left == Rect((0.0, 0.0), (1.0, 2.0))
        assert right == Rect((1.0, 0.0), (4.0, 2.0))
        assert left.area + right.area == pytest.approx(r.area)

    def test_split_value_clamped(self):
        r = Rect((0.0, 0.0), (1.0, 1.0))
        left, right = r.split_at(0, 5.0)
        assert left == r
        assert right.is_degenerate(axis=0)

    def test_split_axis_out_of_range(self):
        with pytest.raises(ValueError):
            Rect((0.0,), (1.0,)).split_at(1, 0.5)

    def test_split_midpoint(self):
        r = Rect((0.0, 0.0), (2.0, 2.0))
        lo, hi = r.split_midpoint(1)
        assert lo.hi[1] == pytest.approx(1.0)
        assert hi.lo[1] == pytest.approx(1.0)

    def test_quad_children_partition_area(self):
        r = Rect((0.0, -1.0), (2.0, 3.0))
        children = r.quad_children()
        assert len(children) == 4
        assert sum(c.area for c in children) == pytest.approx(r.area)
        for c in children:
            assert r.contains_rect(c)

    def test_quad_children_in_3d(self):
        r = Rect((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        children = r.quad_children()
        assert len(children) == 8
        assert sum(c.area for c in children) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# bounding_rect
# ----------------------------------------------------------------------
class TestBoundingRect:
    def test_tight_box(self):
        pts = np.array([[0.0, 1.0], [2.0, -1.0], [1.0, 0.5]])
        box = bounding_rect(pts)
        assert box == Rect((0.0, -1.0), (2.0, 1.0))

    def test_padding(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        box = bounding_rect(pts, pad=0.5)
        assert box == Rect((-0.5, -0.5), (1.5, 1.5))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_rect(np.empty((0, 2)))

    def test_1d_input(self):
        box = bounding_rect(np.array([3.0, 1.0, 2.0]))
        assert box == Rect((1.0,), (3.0,))


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


@st.composite
def rects(draw, dims=2):
    lo = [draw(coords) for _ in range(dims)]
    hi = [draw(coords) for _ in range(dims)]
    lo, hi = [min(a, b) for a, b in zip(lo, hi)], [max(a, b) for a, b in zip(lo, hi)]
    return Rect(tuple(lo), tuple(hi))


class TestRectProperties:
    @given(rects(), rects())
    @settings(max_examples=60, deadline=None)
    def test_intersection_symmetric_and_contained(self, a, b):
        assert a.intersects(b) == b.intersects(a)
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_rect(inter)
            assert b.contains_rect(inter)
            assert inter.area <= min(a.area, b.area) + 1e-6

    @given(rects())
    @settings(max_examples=60, deadline=None)
    def test_union_contains_both(self, a):
        b = Rect(tuple(x + 1.0 for x in a.lo), tuple(x + 2.0 for x in a.hi))
        u = a.union_bounds(b)
        assert u.contains_rect(a)
        assert u.contains_rect(b)

    @given(rects(), st.integers(min_value=0, max_value=1), st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_split_preserves_area(self, r, axis, t):
        value = r.lo[axis] + t * (r.hi[axis] - r.lo[axis])
        left, right = r.split_at(axis, value)
        assert left.area + right.area == pytest.approx(r.area, rel=1e-6, abs=1e-6)

    @given(rects())
    @settings(max_examples=60, deadline=None)
    def test_quad_children_disjoint_and_cover(self, r):
        children = r.quad_children()
        assert sum(c.area for c in children) == pytest.approx(r.area, rel=1e-6, abs=1e-6)
        for i in range(len(children)):
            for j in range(i + 1, len(children)):
                assert children[i].intersection_area(children[j]) == pytest.approx(0.0, abs=1e-6)

    @given(st.lists(st.tuples(coords, coords), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_bounding_rect_contains_all_points(self, raw_points):
        pts = np.array(raw_points, dtype=float)
        box = bounding_rect(pts)
        assert bool(np.all(box.contains_points(pts, closed_hi=True)))
