"""Tests for the Hilbert curve: bijection, locality, query decomposition, bounding boxes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import HilbertCurve, Rect


@pytest.fixture(scope="module")
def curve() -> HilbertCurve:
    return HilbertCurve(order=6, domain=Rect((0.0, 0.0), (1.0, 1.0)))


class TestConstruction:
    def test_rejects_non_2d_domain(self):
        with pytest.raises(ValueError):
            HilbertCurve(order=4, domain=Rect((0.0,), (1.0,)))

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            HilbertCurve(order=0, domain=Rect.unit(2))
        with pytest.raises(ValueError):
            HilbertCurve(order=40, domain=Rect.unit(2))

    def test_side_and_max_index(self, curve):
        assert curve.side == 64
        assert curve.max_index == 64 * 64 - 1


class TestEncodeDecode:
    def test_bijection_exhaustive_small_order(self):
        small = HilbertCurve(order=3, domain=Rect.unit(2))
        side = small.side
        gx, gy = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
        gx, gy = gx.ravel(), gy.ravel()
        d = small.encode_cells(gx, gy)
        # Every index appears exactly once.
        assert sorted(d.tolist()) == list(range(side * side))
        rx, ry = small.decode_cells(d)
        assert np.array_equal(rx, gx)
        assert np.array_equal(ry, gy)

    def test_adjacent_indices_are_adjacent_cells(self):
        """The defining locality property: consecutive curve cells share an edge."""
        small = HilbertCurve(order=4, domain=Rect.unit(2))
        d = np.arange(small.max_index + 1)
        gx, gy = small.decode_cells(d)
        steps = np.abs(np.diff(gx)) + np.abs(np.diff(gy))
        assert np.all(steps == 1)

    def test_encode_points_respects_domain(self):
        curve = HilbertCurve(order=5, domain=Rect((-10.0, 20.0), (10.0, 40.0)))
        pts = np.array([[-10.0, 20.0], [9.999, 39.999], [0.0, 30.0]])
        idx = curve.encode(pts)
        assert np.all(idx >= 0)
        assert np.all(idx <= curve.max_index)

    def test_encode_out_of_range_cells_raise(self, curve):
        with pytest.raises(ValueError):
            curve.encode_cells(np.array([curve.side]), np.array([0]))
        with pytest.raises(ValueError):
            curve.decode_cells(np.array([curve.max_index + 1]))

    def test_decode_returns_cell_centres_inside_domain(self, curve):
        idx = np.array([0, 17, curve.max_index])
        centers = curve.decode(idx)
        assert np.all(centers >= 0.0)
        assert np.all(centers <= 1.0)

    @given(st.lists(st.tuples(st.floats(0, 0.999999), st.floats(0, 0.999999)), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_stays_in_cell(self, raw):
        curve = HilbertCurve(order=8, domain=Rect.unit(2))
        pts = np.array(raw)
        idx = curve.encode(pts)
        decoded = curve.decode(idx)
        # The decoded centre must lie within one cell width of the original point.
        cell = 1.0 / curve.side
        assert np.all(np.abs(decoded - pts) <= cell)


class TestRectToRanges:
    def test_full_domain_is_one_interval(self, curve):
        ranges = curve.rect_to_ranges(curve.domain)
        assert ranges == [(0, curve.max_index)]

    def test_disjoint_query_gives_no_ranges(self, curve):
        assert curve.rect_to_ranges(Rect((2.0, 2.0), (3.0, 3.0))) == []

    def test_ranges_are_sorted_and_disjoint(self, curve):
        query = Rect((0.1, 0.2), (0.6, 0.9))
        ranges = curve.rect_to_ranges(query)
        assert ranges
        for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
            assert hi1 < lo2 - 0  # disjoint and sorted (merged intervals are non-adjacent)
            assert lo1 <= hi1 and lo2 <= hi2

    def test_ranges_cover_exactly_the_query_cells(self):
        """Cells inside the query are covered; cells far outside are not."""
        curve = HilbertCurve(order=5, domain=Rect.unit(2))
        query = Rect((0.25, 0.25), (0.5, 0.5))
        ranges = curve.rect_to_ranges(query, max_ranges=10_000)
        covered = set()
        for lo, hi in ranges:
            covered.update(range(lo, hi + 1))
        # every cell whose centre is inside the query must be covered
        side = curve.side
        for gx in range(side):
            for gy in range(side):
                cx, cy = (gx + 0.5) / side, (gy + 0.5) / side
                idx = int(curve.encode_cells(np.array([gx]), np.array([gy]))[0])
                if query.contains_point((cx, cy)):
                    assert idx in covered
        # and the covered area should not be wildly larger than the query
        assert len(covered) <= (side // 4 + 2) ** 2

    def test_max_ranges_caps_interval_count(self):
        curve = HilbertCurve(order=8, domain=Rect.unit(2))
        query = Rect((0.11, 0.13), (0.57, 0.83))
        ranges = curve.rect_to_ranges(query, max_ranges=16)
        assert len(ranges) <= 16 + 4  # merging may reduce, cap may slightly overshoot per branch


class TestRangeBbox:
    def test_full_range_is_domain(self, curve):
        bbox = curve.range_bbox(0, curve.max_index)
        assert bbox == curve.domain

    def test_single_cell_bbox(self, curve):
        gx, gy = curve.decode_cells(np.array([5]))
        bbox = curve.range_bbox(5, 5)
        expected = curve.cell_rect(int(gx[0]), int(gy[0]))
        assert bbox == expected

    def test_bbox_contains_all_cells_in_range(self):
        curve = HilbertCurve(order=4, domain=Rect.unit(2))
        lo, hi = 37, 111
        bbox = curve.range_bbox(lo, hi)
        gx, gy = curve.decode_cells(np.arange(lo, hi + 1))
        centers = curve.decode(np.arange(lo, hi + 1))
        assert bool(np.all(bbox.contains_points(centers, closed_hi=True)))

    def test_empty_interval_raises(self, curve):
        with pytest.raises(ValueError):
            curve.range_bbox(10, 5)

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=40, deadline=None)
    def test_bbox_contains_endpoints(self, a, b):
        curve = HilbertCurve(order=4, domain=Rect.unit(2))
        lo, hi = min(a, b), max(a, b)
        bbox = curve.range_bbox(lo, hi)
        ends = curve.decode(np.array([lo, hi]))
        assert bool(np.all(bbox.contains_points(ends, closed_hi=True)))
