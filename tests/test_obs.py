"""The observability layer: registry semantics, span tracing, parity contracts.

The load-bearing promise (mirrored by ``benchmarks/bench_obs_overhead.py``):
instrumentation is **off by default**, consumes **zero RNG draws**, and turning
it on changes no released bit — the fig3 smoke sweep produces identical rows
and leaves the generator in an identical final state with metrics and tracing
enabled.  Everything else here pins the mechanics that make a multi-process
run report one coherent view: counters merge by sum, gauges by max, histograms
by bucket addition, and workers drain per-task so nothing double counts.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.cli import main
from repro.core.builder import build_psd_releases
from repro.core.splits import QuadSplit
from repro.data.tiger import road_intersections
from repro.engine.cache import QueryCache
from repro.experiments import ExperimentScale, run_fig3
from repro.geometry.domain import TIGER_DOMAIN
from repro.obs import (
    MetricsRegistry,
    Tracer,
    active_registry,
    active_tracer,
    counter_add,
    disable_metrics,
    disable_tracing,
    enable_metrics,
    enable_tracing,
    format_metrics,
    gauge_max,
    gauge_set,
    host_metadata,
    merge_obs_snapshot,
    metrics_enabled,
    metrics_payload,
    obs_snapshot,
    observe,
    trace_span,
    tracing_enabled,
    write_bench_json,
)
from repro.obs.trace import _NULL_SPAN


@pytest.fixture(autouse=True)
def obs_reset():
    """Every test starts and ends with observability fully off (the default)."""
    disable_metrics()
    disable_tracing(flush=False)
    yield
    disable_metrics()
    disable_tracing(flush=False)


@pytest.fixture(scope="module")
def points():
    return road_intersections(n=1_500, rng=np.random.default_rng(0))


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_accumulate_and_split_by_labels(self):
        reg = MetricsRegistry()
        reg.counter_add("queries", 3)
        reg.counter_add("queries", 2)
        reg.counter_add("queries", 5, worker=1)
        assert reg.counter_value("queries") == 5.0
        assert reg.counter_value("queries", worker=1) == 5.0
        assert reg.counter_total("queries") == 10.0
        assert reg.counter_value("absent") == 0.0

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        reg.counter_add("c", 1, a=1, b=2)
        reg.counter_add("c", 1, b=2, a=1)
        assert reg.counter_value("c", b=2, a=1) == 2.0

    def test_gauge_set_last_wins_gauge_max_keeps_peak(self):
        reg = MetricsRegistry()
        reg.gauge_set("spend", 0.5, level=0)
        reg.gauge_set("spend", 0.3, level=0)
        assert reg.gauge_value("spend", level=0) == 0.3
        reg.gauge_max("peak", 4)
        reg.gauge_max("peak", 9)
        reg.gauge_max("peak", 7)
        assert reg.gauge_value("peak") == 9.0
        assert reg.gauge_value("absent") is None

    def test_histogram_buckets_and_stats(self):
        reg = MetricsRegistry()
        for value in (0.5, 1.0, 1.5, 99.0):
            reg.observe("h", value, buckets=(1.0, 2.0))
        state = reg.histogram("h")
        # bucket 0: <= 1.0 (two values: 0.5 and the exact edge), bucket 1:
        # (1.0, 2.0], overflow bucket: everything above the last edge.
        assert state["counts"] == (2, 1, 1)
        assert state["count"] == 4
        assert state["total"] == pytest.approx(102.0)
        assert state["min"] == 0.5 and state["max"] == 99.0
        assert reg.histogram("absent") is None

    def test_histogram_rejects_bad_edges(self):
        from repro.obs import Histogram

        with pytest.raises(ValueError):
            Histogram(edges=())
        with pytest.raises(ValueError):
            Histogram(edges=(1.0, 1.0, 2.0))

    def test_merge_sums_counters_maxes_gauges_adds_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter_add("n", 2)
        b.counter_add("n", 3)
        a.gauge_max("peak", 5)
        b.gauge_max("peak", 8)
        a.observe("h", 0.5, buckets=(1.0,))
        b.observe("h", 2.0, buckets=(1.0,))
        a.merge(b.snapshot())
        assert a.counter_value("n") == 5.0
        assert a.gauge_value("peak") == 8.0
        state = a.histogram("h")
        assert state["counts"] == (1, 1) and state["count"] == 2
        assert state["min"] == 0.5 and state["max"] == 2.0

    def test_merge_rejects_mismatched_histogram_edges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 0.5, buckets=(1.0, 2.0))
        b.observe("h", 0.5, buckets=(1.0, 3.0))
        with pytest.raises(ValueError, match="bucket edges"):
            a.merge(b.snapshot())

    def test_drain_reports_once_then_resets(self):
        reg = MetricsRegistry()
        reg.counter_add("n", 4)
        reg.observe("h", 0.1)
        first = reg.drain()
        assert first["counters"] and first["histograms"]
        assert reg.counter_value("n") == 0.0
        second = reg.drain()
        assert not second["counters"] and not second["histograms"]

    def test_payload_and_text_rendering(self):
        reg = MetricsRegistry()
        reg.counter_add("queries", 7, worker=3)
        reg.gauge_set("spend", 0.5)
        reg.observe("phase_seconds", 0.01, phase="build")
        payload = metrics_payload(reg)
        assert payload["counters"] == [{"name": "queries", "labels": {"worker": "3"}, "value": 7.0}]
        assert payload["gauges"][0]["value"] == 0.5
        assert payload["histograms"][0]["labels"] == {"phase": "build"}
        json.dumps(payload)  # must be JSON-serialisable as-is
        text = format_metrics(reg)
        assert "queries{worker=3}" in text and "phase_seconds{phase=build}" in text
        assert "(no metrics recorded)" in format_metrics(MetricsRegistry())


# ----------------------------------------------------------------------
# Off-by-default module helpers
# ----------------------------------------------------------------------
class TestModuleState:
    def test_helpers_are_noops_until_enabled(self):
        assert not metrics_enabled() and active_registry() is None
        counter_add("n", 5)
        gauge_set("g", 1.0)
        gauge_max("g", 2.0)
        observe("h", 0.1)
        reg = enable_metrics()
        assert reg.counter_value("n") == 0.0  # pre-enable calls went nowhere
        counter_add("n", 5)
        assert reg.counter_value("n") == 5.0
        assert disable_metrics() is reg
        assert not metrics_enabled()

    def test_obs_snapshot_none_when_off(self):
        assert obs_snapshot() is None
        merge_obs_snapshot(None)  # tolerated no-op

    def test_snapshot_merge_round_trip(self):
        worker = enable_metrics()
        worker_tracer = enable_tracing()
        counter_add("n", 2)
        with trace_span("phase"):
            pass
        payload = obs_snapshot()
        assert worker.counter_value("n") == 0.0  # drained
        assert worker_tracer.events() == []
        parent = enable_metrics()
        parent_tracer = enable_tracing()
        merge_obs_snapshot(payload)
        assert parent.counter_value("n") == 2.0
        assert [e["span"] for e in parent_tracer.events()] == ["phase"]


# ----------------------------------------------------------------------
# Spans and tracing
# ----------------------------------------------------------------------
class TestTracing:
    def test_null_span_when_everything_off(self):
        span = trace_span("anything", level=3)
        assert span is _NULL_SPAN
        with span:
            pass  # usable, records nothing anywhere

    def test_span_tree_ids_and_attrs(self):
        tracer = enable_tracing()
        with trace_span("outer", level=1):
            with trace_span("inner"):
                pass
            with trace_span("inner2"):
                pass
        events = tracer.events()
        # children emit before their parent (exit order)
        assert [e["span"] for e in events] == ["inner", "inner2", "outer"]
        by_name = {e["span"]: e for e in events}
        assert by_name["outer"]["parent_id"] is None
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["inner2"]["parent_id"] == by_name["outer"]["span_id"]
        # ids are sequential integers: no RNG involved, ever
        assert by_name["outer"]["span_id"] == 1
        assert {by_name["inner"]["span_id"], by_name["inner2"]["span_id"]} == {2, 3}
        assert by_name["outer"]["attrs"] == {"level": 1}
        assert by_name["outer"]["pid"] == os.getpid()
        assert by_name["outer"]["wall_s"] >= 0.0 and by_name["outer"]["cpu_s"] >= 0.0

    def test_jsonl_flush_on_disable(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        enable_tracing(path=str(path))
        with trace_span("a"):
            with trace_span("b"):
                pass
        assert tracing_enabled()
        tracer = disable_tracing()
        assert not tracing_enabled() and tracer is not None
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert [json.loads(line)["span"] for line in lines] == ["b", "a"]

    def test_metrics_only_spans_feed_phase_histogram(self):
        reg = enable_metrics()
        with trace_span("build.noise"):
            pass
        with trace_span("build.noise"):
            pass
        state = reg.histogram("phase_seconds", phase="build.noise")
        assert state is not None and state["count"] == 2
        assert active_tracer() is None  # no event stream was created

    def test_tracer_absorb_and_drain(self):
        tracer = Tracer()
        tracer.absorb(None)
        tracer.absorb([{"span": "x"}])
        assert tracer.events() == [{"span": "x"}]
        assert tracer.drain_events() == [{"span": "x"}]
        assert tracer.events() == []


# ----------------------------------------------------------------------
# Instrumented components
# ----------------------------------------------------------------------
class TestCacheCounters:
    def test_query_cache_mirrors_to_registry(self):
        reg = enable_metrics()
        cache = QueryCache(maxsize=1)
        key_a, key_b = (0.0, 1.0), (2.0, 3.0)
        assert cache.get(key_a) is None
        cache.put(key_a, (1.0, 2, 3.0))
        assert cache.get(key_a) == (1.0, 2, 3.0)
        cache.put(key_b, (4.0, 5, 6.0))  # evicts key_a
        assert reg.counter_value("cache.misses") == 1.0
        assert reg.counter_value("cache.hits") == 1.0
        assert reg.counter_value("cache.evictions") == 1.0
        # the plain int counters stay authoritative with metrics off too
        assert cache.stats()["hits"] == 1 and cache.stats()["misses"] == 1

    def test_query_cache_counts_without_registry(self):
        cache = QueryCache(maxsize=4)
        cache.get((0.0,))
        assert cache.stats()["misses"] == 1


# ----------------------------------------------------------------------
# The parity contract (acceptance)
# ----------------------------------------------------------------------
SMOKE = dict(n_points=1_500, n_queries=4, repetitions=2, quad_height=3)


def _fig3_rows(instrumented: bool, workers: int = 1):
    gen = np.random.default_rng(7)
    if instrumented:
        enable_metrics()
        enable_tracing()
    try:
        rows = run_fig3(scale=ExperimentScale(**SMOKE), epsilons=(0.5,),
                        rng=gen, workers=workers)
    finally:
        if instrumented:
            # keep registry/tracer installed for callers that inspect them;
            # the autouse fixture tears them down.
            pass
    return rows, gen.bit_generator.state


class TestInstrumentationParity:
    def test_release_bits_and_rng_state_identical(self, points):
        gen_plain = np.random.default_rng(3)
        plain = build_psd_releases(points, TIGER_DOMAIN, 3, QuadSplit(), (0.5, 1.0),
                                   repetitions=2, postprocess=True, rng=gen_plain)
        gen_obs = np.random.default_rng(3)
        enable_metrics()
        tracer = enable_tracing()
        instrumented = build_psd_releases(points, TIGER_DOMAIN, 3, QuadSplit(), (0.5, 1.0),
                                          repetitions=2, postprocess=True, rng=gen_obs)
        assert gen_obs.bit_generator.state == gen_plain.bit_generator.state
        for r in range(plain.n_releases):
            ref, got = plain.release(r).flat_tree, instrumented.release(r).flat_tree
            assert np.array_equal(ref.noisy_count, got.noisy_count, equal_nan=True)
            assert np.array_equal(ref.post_count, got.post_count)
        assert tracer.events(), "instrumented build recorded no spans"

    def test_fig3_smoke_rows_identical_with_obs_on(self):
        rows_plain, state_plain = _fig3_rows(instrumented=False)
        rows_obs, state_obs = _fig3_rows(instrumented=True)
        assert rows_obs == rows_plain
        assert state_obs == state_plain
        reg = active_registry()
        assert reg.counter_total("sweep.cases") == 4.0  # four quadtree variants
        assert reg.histogram("phase_seconds", phase="sweep.build_case") is not None
        assert active_tracer().events()

    def test_fig3_workers2_rows_identical_and_metrics_merge(self):
        rows_plain, state_plain = _fig3_rows(instrumented=False)
        rows_obs, state_obs = _fig3_rows(instrumented=True, workers=2)
        assert rows_obs == rows_plain
        assert state_obs == state_plain  # parent RNG only spawns per-case seeds
        reg = active_registry()
        # every case ran exactly once somewhere in the pool; drained snapshots
        # merged back without double counting
        assert reg.counter_total("sweep.cases") == 4.0
        assert reg.counter_total("sweep.releases") == 4.0 * 2
        workers_seen = {
            labels for (name, labels) in reg.snapshot()["counters"] if name == "sweep.cases"
        }
        assert workers_seen, "per-worker label split missing"
        events = active_tracer().events()
        assert events, "worker trace events were not absorbed by the parent"
        assert {e["span"] for e in events} >= {"sweep.build_case", "sweep.evaluate_case"}


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------
FIG3_ARGS = ["experiment", "fig3", "--n-points", "1500", "--n-queries", "4",
             "--quad-height", "3", "--repetitions", "1", "--epsilons", "1.0"]


class TestObsCLI:
    def test_experiment_json_carries_hostmeta(self, tmp_path, capsys):
        out = tmp_path / "fig3.json"
        assert main(FIG3_ARGS + ["--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert set(payload["host"]) >= {"cpu_count", "platform", "python", "numpy", "commit"}
        assert payload["figures"][0]["figure"] == "fig3"

    def test_experiment_metrics_and_trace_flags(self, tmp_path, capsys):
        plain = tmp_path / "plain.json"
        instrumented = tmp_path / "obs.json"
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        assert main(FIG3_ARGS + ["--json", str(plain)]) == 0
        capsys.readouterr()
        assert main(FIG3_ARGS + ["--json", str(instrumented), "--metrics",
                                 "--trace", str(trace), "--metrics-json", str(metrics)]) == 0
        err = capsys.readouterr().err
        assert "metrics" in err and "trace events" in err
        # the released rows are bitwise identical with instrumentation on
        rows_plain = json.loads(plain.read_text())["figures"]
        rows_obs = json.loads(instrumented.read_text())["figures"]
        assert rows_obs == rows_plain
        events = [json.loads(line) for line in trace.read_text().strip().splitlines()]
        assert events and all("span" in e and "wall_s" in e for e in events)
        metrics_doc = json.loads(metrics.read_text())
        assert "host" in metrics_doc
        names = {c["name"] for c in metrics_doc["metrics"]["counters"]}
        assert "sweep.cases" in names
        # the CLI tears obs down on exit
        assert not metrics_enabled() and not tracing_enabled()

    def test_query_workers_stats_reports_serving(self, tmp_path, capsys):
        release = tmp_path / "release.json"
        assert main(["build", "--synthetic", "500", "--height", "3", "--seed", "1",
                     "--output", str(release)]) == 0
        capsys.readouterr()
        rect = "--rect=-123,46,-121,48"
        assert main(["query", str(release), "--engine", "flat", "--workers", "2",
                     "--chunk-queries", "1", "--stats", rect, rect,
                     "--rect=-122,45,-120,47"]) == 0
        err = capsys.readouterr().err
        assert "cache stats:" in err
        assert "serve stats: 2 workers" in err
        assert "sharded" in err and "shm bytes" in err


# ----------------------------------------------------------------------
# Host metadata
# ----------------------------------------------------------------------
class TestHostmeta:
    def test_host_metadata_fields(self):
        meta = host_metadata()
        assert meta["cpu_count"] >= 1
        assert meta["numpy"] == np.__version__
        json.dumps(meta)

    def test_write_bench_json_stamps_host(self, tmp_path):
        path = tmp_path / "bench.json"
        stamped = write_bench_json(str(path), {"benchmark": "x", "value": 1})
        on_disk = json.loads(path.read_text())
        assert on_disk == stamped
        assert on_disk["value"] == 1 and "host" in on_disk
