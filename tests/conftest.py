"""Shared fixtures for the test suite.

Everything random is seeded so the suite is deterministic.  The fixtures keep
dataset sizes small (a few thousand points) — statistical assertions are made
with generous tolerances and the heavier, paper-scale runs live in
``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import road_intersections, uniform_points
from repro.geometry import Domain, TIGER_DOMAIN


@pytest.fixture(scope="session")
def unit_domain() -> Domain:
    """The 2-D unit square domain."""
    return Domain.unit(2)


@pytest.fixture(scope="session")
def tiger_domain() -> Domain:
    """The paper's TIGER coordinate box."""
    return TIGER_DOMAIN


@pytest.fixture(scope="session")
def small_uniform_points(unit_domain) -> np.ndarray:
    """2 000 uniform points in the unit square."""
    return uniform_points(2_000, unit_domain, rng=np.random.default_rng(101))


@pytest.fixture(scope="session")
def road_points(tiger_domain) -> np.ndarray:
    """8 000 synthetic road-intersection points (the TIGER-like distribution)."""
    return road_intersections(n=8_000, rng=np.random.default_rng(202))


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh seeded generator per test."""
    return np.random.default_rng(12345)
