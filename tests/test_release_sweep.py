"""The release-sweep pipeline: batched builds, matrix OLS, workload algebra.

The pipeline's load-bearing guarantee is the **parity contract**: release
``r`` of ``build_psd_releases`` is bitwise identical — structure, counts,
post-processed counts, final RNG state — to the ``r``-th build of the
sequential ``build_psd`` loop under the same seed, and the shared query
matrix's ``S @ counts`` answers match the per-release flat engine to 1e-9.
This module asserts that contract for every structure family plus the
supporting pieces (matrix OLS, matrix metrics, the sweep driver, the CLI).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.builder import build_psd, build_psd_releases
from repro.core.flatbuild import _batch_topology, build_flat_structure, ols_beta
from repro.core.hilbert_rtree import (
    build_private_hilbert_rtree,
    build_private_hilbert_rtree_releases,
)
from repro.core.kdtree import build_private_kdtree, build_private_kdtree_releases
from repro.core.quadtree import build_private_quadtree_releases
from repro.core.splits import HybridSplit, KDSplit, QuadSplit
from repro.data.tiger import road_intersections
from repro.engine.batch import batch_query, batch_range_query, compile_query_matrix
from repro.experiments import ExperimentScale, make_workloads, run_fig3
from repro.experiments.common import SweepCase, release_workload_errors, run_sweep
from repro.geometry.domain import TIGER_DOMAIN
from repro.privacy.rng import ReplayRng
from repro.queries.metrics import (
    mean_relative_error,
    median_relative_error,
    relative_errors,
)
from repro.queries.workload import KD_QUERY_SHAPES, random_query_rects

EPSILONS = (0.1, 0.5)
REPETITIONS = 2
HEIGHT = 4


@pytest.fixture(scope="module")
def points():
    return road_intersections(n=3_000, rng=np.random.default_rng(0))


def sequential_releases(points, split_rule_factory, seed, **kwargs):
    """The reference loop the batch must match bit for bit."""
    gen = np.random.default_rng(seed)
    psds = [
        build_psd(points, TIGER_DOMAIN, HEIGHT, split_rule_factory(), epsilon=e,
                  rng=gen, **kwargs)
        for e in EPSILONS
        for _ in range(REPETITIONS)
    ]
    return psds, gen


def assert_release_equal(reference, release, label):
    ref, got = reference.flat_tree, release.flat_tree
    assert ref is not None and got is not None
    for name in ("lo", "hi", "level", "parent", "child_start", "child_end",
                 "true_count", "noisy_count"):
        assert np.array_equal(getattr(ref, name), getattr(got, name), equal_nan=True), \
            f"{label}: {name} differs"
    assert (ref.post_count is None) == (got.post_count is None), f"{label}: post presence"
    if ref.post_count is not None:
        assert np.array_equal(ref.post_count, got.post_count), f"{label}: post_count"


class TestReleaseParity:
    """Acceptance: batch == sequential loop, bit for bit, per structure family."""

    @pytest.mark.parametrize("factory,kwargs", [
        (QuadSplit, dict(count_budget="geometric", postprocess=True)),
        (QuadSplit, dict(count_budget="uniform", postprocess=False)),
        (QuadSplit, dict(count_budget="leaf-only", postprocess=False)),
        (lambda: HybridSplit(kd_levels=2, median_method="em"),
         dict(postprocess=True, prune_threshold=16.0)),
        (lambda: KDSplit(median_method="em"), dict(postprocess=True)),
        (lambda: KDSplit(median_method="ss"), dict(postprocess=False)),
        (lambda: KDSplit(median_method="noisymean"), dict(postprocess=True)),
        # sampled EM draws one uniform per point: statically unknown layout,
        # exercises the sequential-fallback path end to end
        (lambda: KDSplit(median_method="ems"), dict(postprocess=True)),
    ])
    def test_bitwise_parity_and_rng_state(self, points, factory, kwargs):
        references, gen_seq = sequential_releases(points, factory, seed=42, **kwargs)
        gen_batch = np.random.default_rng(42)
        batch = build_psd_releases(points, TIGER_DOMAIN, HEIGHT, factory(),
                                   EPSILONS, REPETITIONS, rng=gen_batch, **kwargs)
        assert batch.n_releases == len(references)
        assert gen_batch.bit_generator.state == gen_seq.bit_generator.state
        for r, reference in enumerate(references):
            assert_release_equal(reference, batch.release(r), f"release {r}")

    def test_hilbert_parity(self, points):
        gen_seq = np.random.default_rng(11)
        references = [
            build_private_hilbert_rtree(points, TIGER_DOMAIN, height=2 * HEIGHT,
                                        epsilon=e, order=10, prune_threshold=16.0,
                                        rng=gen_seq)
            for e in EPSILONS
            for _ in range(REPETITIONS)
        ]
        gen_batch = np.random.default_rng(11)
        releases = build_private_hilbert_rtree_releases(
            points, TIGER_DOMAIN, 2 * HEIGHT, EPSILONS, REPETITIONS, order=10,
            prune_threshold=16.0, rng=gen_batch)
        assert gen_batch.bit_generator.state == gen_seq.bit_generator.state
        queries = random_query_rects(TIGER_DOMAIN, 8, rng=np.random.default_rng(3))
        for r, reference in enumerate(references):
            release = releases.release(r)
            assert_release_equal(reference.psd, release.psd, f"hilbert release {r}")
            expected = [reference.range_query(q, backend="flat") for q in queries]
            got = batch_range_query(release.compile(), queries)
            assert np.allclose(got, expected, rtol=0, atol=0)

    def test_kdtree_variant_helper_matches_sequential(self, points):
        gen_seq = np.random.default_rng(5)
        references = [
            build_private_kdtree(points, TIGER_DOMAIN, HEIGHT, epsilon=e,
                                 variant="kd-hybrid", prune_threshold=32.0, rng=gen_seq)
            for e in EPSILONS
            for _ in range(REPETITIONS)
        ]
        gen_batch = np.random.default_rng(5)
        batch = build_private_kdtree_releases(points, TIGER_DOMAIN, HEIGHT, EPSILONS,
                                              REPETITIONS, variant="kd-hybrid",
                                              prune_threshold=32.0, rng=gen_batch)
        assert gen_batch.bit_generator.state == gen_seq.bit_generator.state
        for r, reference in enumerate(references):
            assert_release_equal(reference, batch.release(r), f"kd release {r}")

    def test_kd_pure_noiseless_releases(self, points):
        batch = build_private_kdtree_releases(points, TIGER_DOMAIN, HEIGHT, (0.5,),
                                              repetitions=2, variant="kd-pure", rng=1)
        for r in range(batch.n_releases):
            flat = batch.release(r).flat_tree
            assert np.array_equal(flat.noisy_count, flat.true_count.astype(float))

    def test_cell_variant_falls_back_to_sequential(self, points):
        gen_seq = np.random.default_rng(9)
        references = [
            build_private_kdtree(points, TIGER_DOMAIN, HEIGHT, epsilon=e,
                                 variant="kd-cell", cell_resolution=32, rng=gen_seq)
            for e in EPSILONS
            for _ in range(REPETITIONS)
        ]
        gen_batch = np.random.default_rng(9)
        batch = build_private_kdtree_releases(points, TIGER_DOMAIN, HEIGHT, EPSILONS,
                                              REPETITIONS, variant="kd-cell",
                                              cell_resolution=32, rng=gen_batch)
        assert gen_batch.bit_generator.state == gen_seq.bit_generator.state
        assert not batch.supports_shared_queries()
        for r, reference in enumerate(references):
            assert_release_equal(reference, batch.release(r), f"cell release {r}")

    def test_shared_structure_across_variants(self, points):
        structure = build_flat_structure(points, TIGER_DOMAIN, HEIGHT, QuadSplit(), 0.0)
        with_structure = build_private_quadtree_releases(
            points, TIGER_DOMAIN, HEIGHT, EPSILONS, REPETITIONS,
            variant="quad-opt", rng=3, structure=structure)
        fresh = build_private_quadtree_releases(
            points, TIGER_DOMAIN, HEIGHT, EPSILONS, REPETITIONS,
            variant="quad-opt", rng=3)
        for r in range(fresh.n_releases):
            assert_release_equal(fresh.release(r), with_structure.release(r), f"r{r}")

    def test_structure_rejected_for_data_dependent(self, points):
        structure = build_flat_structure(points, TIGER_DOMAIN, HEIGHT, QuadSplit(), 0.0)
        with pytest.raises(ValueError, match="data-independent"):
            build_psd_releases(points, TIGER_DOMAIN, HEIGHT, KDSplit(), EPSILONS,
                               rng=0, structure=structure)

    def test_input_validation(self, points):
        with pytest.raises(ValueError):
            build_psd_releases(points, TIGER_DOMAIN, HEIGHT, QuadSplit(), (), rng=0)
        with pytest.raises(ValueError):
            build_psd_releases(points, TIGER_DOMAIN, HEIGHT, QuadSplit(), (0.5,),
                               repetitions=0, rng=0)
        with pytest.raises(ValueError):
            build_psd_releases(points, TIGER_DOMAIN, HEIGHT, QuadSplit(), (0.0,), rng=0)


class TestMatrixOls:
    def test_matrix_columns_equal_single_release_runs(self):
        height, fanout, n_releases = 5, 4, 7
        level, parent, *_ = _batch_topology(height, fanout)
        n = level.shape[0]
        rng = np.random.default_rng(0)
        counts = rng.normal(scale=20.0, size=(n, n_releases))
        eps = rng.uniform(0.05, 1.0, size=(height + 1, n_releases))
        batched = ols_beta(level, parent, counts, eps, fanout, height)
        for r in range(n_releases):
            single = ols_beta(level, parent, counts[:, r].copy(), eps[:, r].copy(),
                              fanout, height)
            assert np.array_equal(batched[:, r], single), f"column {r} not bitwise equal"

    def test_matrix_ols_handles_unreleased_levels(self):
        height, fanout = 3, 4
        level, parent, *_ = _batch_topology(height, fanout)
        n = level.shape[0]
        rng = np.random.default_rng(1)
        counts = rng.normal(size=(n, 3))
        eps = rng.uniform(0.1, 1.0, size=(height + 1, 3))
        eps[2, :] = 0.0  # one unreleased level
        counts[level == 2, :] = np.nan
        batched = ols_beta(level, parent, counts, eps, fanout, height)
        assert np.all(np.isfinite(batched))

    def test_zero_leaf_budget_rejected(self):
        height, fanout = 2, 4
        level, parent, *_ = _batch_topology(height, fanout)
        eps = np.ones((height + 1, 2))
        eps[0, 1] = 0.0
        with pytest.raises(ValueError, match="leaf budget"):
            ols_beta(level, parent, np.zeros((level.shape[0], 2)), eps, fanout, height)


class TestQueryMatrix:
    @pytest.fixture(scope="class")
    def batch(self, points):
        return build_private_quadtree_releases(points, TIGER_DOMAIN, HEIGHT,
                                               EPSILONS, REPETITIONS,
                                               variant="quad-opt", rng=7)

    @pytest.fixture(scope="class")
    def queries(self):
        return random_query_rects(TIGER_DOMAIN, 25, rng=np.random.default_rng(2))

    def test_dot_matches_per_release_engines(self, batch, queries):
        engine = batch.query_engine()
        matrix = compile_query_matrix(engine, queries)
        estimates = matrix.dot(batch.released_matrix())
        assert estimates.shape == (len(queries), batch.n_releases)
        for r in range(batch.n_releases):
            reference = batch_range_query(batch.release(r).compile(), queries)
            scale = np.maximum(1.0, np.abs(reference))
            assert np.max(np.abs(estimates[:, r] - reference) / scale) <= 1e-9

    def test_single_vector_dot_and_touched(self, batch, queries):
        engine = batch.query_engine()
        matrix = compile_query_matrix(engine, queries)
        result = batch_query(engine, queries)
        assert np.allclose(matrix.dot(engine.released), result.estimates,
                           rtol=1e-9, atol=1e-9)
        assert np.array_equal(matrix.nodes_touched(), result.nodes_touched)

    def test_no_uniformity_mode(self, batch, queries):
        engine = batch.query_engine()
        matrix = compile_query_matrix(engine, queries)
        expected = batch_query(engine, queries, use_uniformity=False).estimates
        assert np.allclose(matrix.dot(engine.released, use_uniformity=False),
                           expected, rtol=1e-9, atol=1e-9)

    def test_variances(self, batch, queries):
        engine = batch.query_engine()
        matrix = compile_query_matrix(engine, queries)
        expected = batch_query(engine, queries).variances
        got = matrix.variances(engine.level_variance, engine.level)
        assert np.allclose(got, expected, rtol=1e-9, atol=1e-12)

    def test_empty_workload(self, batch):
        engine = batch.query_engine()
        matrix = compile_query_matrix(engine, [])
        assert matrix.n_queries == 0
        assert matrix.dot(engine.released).shape == (0,)

    def test_counts_shape_mismatch_rejected(self, batch, queries):
        matrix = compile_query_matrix(batch.query_engine(), queries)
        with pytest.raises(ValueError, match="nodes"):
            matrix.dot(np.zeros(3))

    def test_per_release_matrices_for_data_dependent_structures(self, points, queries):
        """kd-hybrid and Hilbert geometries differ per release, so each release
        gets its own matrix — S @ released must still equal the engine."""
        kd = build_private_kdtree_releases(points, TIGER_DOMAIN, HEIGHT, EPSILONS,
                                           REPETITIONS, variant="kd-hybrid", rng=13)
        hilbert = build_private_hilbert_rtree_releases(points, TIGER_DOMAIN,
                                                       2 * HEIGHT, EPSILONS,
                                                       REPETITIONS, order=10, rng=13)
        for collection in (kd, hilbert):
            for r in range(collection.n_releases):
                engine = collection.release(r).compile()
                matrix = compile_query_matrix(engine, queries)
                reference = batch_range_query(engine, queries)
                got = matrix.dot(engine.released)
                scale = np.maximum(1.0, np.abs(reference))
                assert np.max(np.abs(got - reference) / scale) <= 1e-9


class TestMatrixMetrics:
    def test_matrix_relative_errors_broadcast(self):
        truths = np.array([10.0, 20.0])
        estimates = np.array([[10.0, 10.0], [20.0, 40.0]])
        errs = relative_errors(estimates, truths)
        assert errs.shape == (2, 2)
        assert np.allclose(errs, [[0.0, 0.5], [1.0, 1.0]])

    def test_scalar_forms_are_views_of_matrix_form(self):
        rng = np.random.default_rng(0)
        truths = rng.uniform(1, 100, size=9)
        estimates = rng.uniform(1, 100, size=(4, 9))
        per_release_median = median_relative_error(estimates, truths)
        per_release_mean = mean_relative_error(estimates, truths)
        assert per_release_median.shape == (4,)
        for r in range(4):
            assert per_release_median[r] == median_relative_error(estimates[r], truths)
            assert per_release_mean[r] == mean_relative_error(estimates[r], truths)

    def test_scalar_form_unchanged(self):
        assert median_relative_error([10.0, 30.0], [10.0, 20.0]) == pytest.approx(0.25)
        assert np.isnan(median_relative_error([], []))

    def test_mismatched_queries_rejected(self):
        with pytest.raises(ValueError):
            relative_errors(np.zeros((2, 3)), np.zeros(4))
        with pytest.raises(ValueError):
            relative_errors(np.zeros(3), np.zeros(4))


class TestSweepDriver:
    def test_release_errors_matrix_path_equals_per_release_path(self, points):
        scale = ExperimentScale.smoke()
        workloads = make_workloads(points, KD_QUERY_SHAPES, scale, rng=1)
        batch = build_private_quadtree_releases(points, TIGER_DOMAIN, HEIGHT,
                                                EPSILONS, REPETITIONS,
                                                variant="quad-opt", rng=3)
        fast = release_workload_errors(batch, workloads)
        slow = release_workload_errors(batch.releases(), workloads)
        assert set(fast) == set(slow)
        for label in fast:
            assert np.allclose(fast[label], slow[label], rtol=1e-9, atol=1e-12)

    def test_run_sweep_groups_repetitions(self, points):
        scale = ExperimentScale.smoke()
        workloads = make_workloads(points, KD_QUERY_SHAPES[:1], scale, rng=1)

        def build(gen):
            return build_private_quadtree_releases(points, TIGER_DOMAIN, HEIGHT,
                                                   (0.5,), 3, variant="quad-opt",
                                                   rng=gen)

        case = SweepCase(label="quad-opt",
                         keys=tuple({"epsilon": 0.5, "variant": "quad-opt"}
                                    for _ in range(3)),
                         build=build)
        rows = run_sweep([case], workloads, rng=0)
        assert len(rows) == 1  # 3 repetitions collapse into one row per shape
        assert rows[0]["variant"] == "quad-opt"
        assert np.isfinite(rows[0]["median_rel_error_pct"])

    def test_run_sweep_key_count_mismatch(self, points):
        scale = ExperimentScale.smoke()
        workloads = make_workloads(points, KD_QUERY_SHAPES[:1], scale, rng=1)
        case = SweepCase(
            label="bad", keys=({"epsilon": 0.5},),
            build=lambda gen: build_private_quadtree_releases(
                points, TIGER_DOMAIN, HEIGHT, (0.5,), 2, rng=gen))
        with pytest.raises(ValueError, match="release keys"):
            run_sweep([case], workloads, rng=0)

    def test_fig3_runner_schema(self, points):
        rows = run_fig3(scale=ExperimentScale.smoke(), epsilons=(0.5,),
                        points=points, rng=2)
        assert {r["variant"] for r in rows} == {"quad-baseline", "quad-geo",
                                                "quad-post", "quad-opt"}
        assert all({"epsilon", "variant", "shape", "median_rel_error_pct"}
                   <= set(r) for r in rows)


class TestReplayRng:
    def test_replays_chunks_in_order(self):
        replay = ReplayRng([np.array([0.1, 0.2]), np.array([0.3])])
        assert np.allclose(replay.random(2), [0.1, 0.2])
        assert not replay.exhausted()
        assert np.allclose(replay.random(1), [0.3])
        assert replay.exhausted()

    def test_size_mismatch_raises(self):
        replay = ReplayRng([np.array([0.1, 0.2])])
        with pytest.raises(RuntimeError, match="draw-layout mismatch"):
            replay.random(3)

    def test_exhaustion_raises(self):
        replay = ReplayRng([])
        with pytest.raises(RuntimeError, match="exhausted"):
            replay.random(1)

    def test_non_uniform_draws_rejected(self):
        replay = ReplayRng([np.array([0.1])])
        with pytest.raises(RuntimeError):
            replay.laplace(0.0, 1.0)
        with pytest.raises(RuntimeError):
            replay.integers(0, 10)


class TestSweepCli:
    def test_figure_number_scale_and_json(self, tmp_path, capsys):
        out = tmp_path / "fig3.json"
        rc = main(["experiment", "--figure", "3", "--scale", "smoke",
                   "--json", str(out), "--seed", "1"])
        assert rc == 0
        assert "quad-opt" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["scale"]["name"] == "smoke"
        assert payload["figures"][0]["figure"] == "fig3"
        assert len(payload["figures"][0]["rows"]) == 16
        assert all(np.isfinite(r["median_rel_error_pct"])
                   for r in payload["figures"][0]["rows"])

    def test_positional_name_still_works(self, capsys):
        rc = main(["experiment", "fig2", "--scale", "smoke"])
        assert rc == 0
        assert "err_uniform" in capsys.readouterr().out

    def test_scale_overrides(self, capsys):
        rc = main(["experiment", "--figure", "2", "--scale", "paper"])
        assert rc == 0

    def test_conflicting_figure_args_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig3", "--figure", "2"])

    def test_missing_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment"])
