"""Tests for the fault-tolerant HTTP serving layer (:mod:`repro.serve`).

Every failure mode in the service's failure matrix is exercised against a
live in-process server: budget exhaustion (429), load shedding (503 +
``Retry-After``), request timeout (503, budget wasted but never over-spent),
WAL write failure (503, fail closed), worker crashes (200 — latency, not
errors) and zero-downtime engine hot swap (zero dropped in-flight queries).
All faults are scheduled deterministically on the request counter; no test
depends on a random draw.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np
import pytest

from repro.core.quadtree import build_private_quadtree
from repro.data import road_intersections
from repro.engine import batch_query, load_engine, save_engine
from repro.geometry import TIGER_DOMAIN
from repro.serve import (
    EngineSupervisor,
    BudgetLedger,
    FaultSpec,
    QueryService,
    ServiceThread,
    parse_fault,
    parse_faults,
)

ROWS = [
    [-123.0, 46.0, -121.0, 48.0],
    [-124.0, 45.0, -110.0, 49.0],
    [-120.0, 33.0, -104.0, 44.0],
    [-118.5, 35.0, -112.25, 41.5],
]


@pytest.fixture(scope="module")
def engine():
    points = road_intersections(n=2_000, rng=0)
    psd = build_private_quadtree(points, TIGER_DOMAIN, height=4, epsilon=0.5,
                                 rng=np.random.default_rng(7))
    return psd.compile()


def _request(port: int, method: str, path: str, body: Optional[dict] = None,
             timeout: float = 60.0) -> Tuple[int, dict, Dict[str, str]]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        data = json.loads(response.read())
        return response.status, data, dict(response.getheaders())
    finally:
        conn.close()


def _service(engine, tmp_path, **kwargs) -> QueryService:
    supervisor = EngineSupervisor(
        engine,
        workers=kwargs.pop("workers", 1),
        chunk_queries=kwargs.pop("chunk_queries", 1024),
        cache_size=kwargs.pop("cache_size", 0),
    )
    ledger = BudgetLedger(tmp_path / "wal.jsonl",
                          default_cap=kwargs.pop("default_cap", 100.0))
    return QueryService(supervisor, ledger, **kwargs)


def _shutdown(service: QueryService) -> None:
    service.supervisor.close()
    service.ledger.close()


# ----------------------------------------------------------------------
# Fault spec parsing
# ----------------------------------------------------------------------
def test_fault_spec_parsing() -> None:
    spec = parse_fault("kill-worker:7")
    assert spec == FaultSpec("kill-worker", 7)
    assert spec.fires_on(7) and spec.fires_on(14) and not spec.fires_on(8)
    slow = parse_fault("slow-chunk:3:0.25")
    assert slow.param == 0.25
    assert parse_fault("slow-chunk:3").param > 0  # default sleep applied
    assert parse_faults("kill-worker:2,oom-worker:5") == [
        FaultSpec("kill-worker", 2), FaultSpec("oom-worker", 5)]
    assert parse_faults(None) == []
    for bad in ("kill-worker", "unknown:3", "kill-worker:0", "kill-worker:x",
                "slow-chunk:2:z", "kill-worker:2:-1"):
        with pytest.raises(ValueError):
            parse_fault(bad)


# ----------------------------------------------------------------------
# The happy path: parity and budget accounting
# ----------------------------------------------------------------------
def test_query_parity_and_budget(engine, tmp_path) -> None:
    service = _service(engine, tmp_path, charge_epsilon=0.01)
    try:
        with ServiceThread(service) as thread:
            port = thread.address[1]
            status, body, _ = _request(port, "POST", "/query",
                                       {"analyst": "alice", "queries": ROWS})
            assert status == 200
            expected = batch_query(engine, np.asarray(ROWS, dtype=np.float64))
            assert body["estimates"] == [float(v) for v in expected.estimates]
            assert body["nodes_touched"] == [int(v) for v in expected.nodes_touched]
            assert body["epsilon_charged"] == pytest.approx(0.01 * len(ROWS))
            assert body["remaining"] == pytest.approx(100.0 - 0.04)
            assert body["generation"] == 1

            status, health, _ = _request(port, "GET", "/healthz")
            assert (status, health["status"]) == (200, "ok")
            status, accounts, _ = _request(port, "GET", "/accounts")
            assert accounts["accounts"]["alice"]["charges"] == 1
            status, stats, _ = _request(port, "GET", "/stats")
            assert stats["service"]["served"] == 1
            assert stats["ledger"]["seq"] == 1
    finally:
        _shutdown(service)


def test_budget_exhaustion_gets_429(engine, tmp_path) -> None:
    service = _service(engine, tmp_path, default_cap=0.1, charge_epsilon=0.03)
    try:
        with ServiceThread(service) as thread:
            port = thread.address[1]
            for _ in range(3):  # 3 x 0.03 fits under 0.1
                status, _, _ = _request(port, "POST", "/query",
                                        {"analyst": "alice", "queries": ROWS[:1]})
                assert status == 200
            status, body, _ = _request(port, "POST", "/query",
                                       {"analyst": "alice", "queries": ROWS[:1]})
            assert status == 429
            assert body["error"] == "budget_exhausted"
            assert body["remaining"] == pytest.approx(0.01)
            # The refusal is free: the durable seq still counts 3 charges.
            assert service.ledger.seq == 3
            # Another analyst still gets service.
            status, _, _ = _request(port, "POST", "/query",
                                    {"analyst": "bob", "queries": ROWS[:1]})
            assert status == 200
    finally:
        _shutdown(service)


# ----------------------------------------------------------------------
# Robust request lifecycle: shed, timeout, WAL failure, bad input
# ----------------------------------------------------------------------
def test_overload_sheds_with_retry_after(engine, tmp_path) -> None:
    service = _service(engine, tmp_path, max_inflight=1,
                       faults=parse_faults("slow-chunk:1:0.4"))
    results: List[Tuple[int, dict, Dict[str, str]]] = []
    try:
        with ServiceThread(service) as thread:
            port = thread.address[1]

            def client() -> None:
                results.append(_request(port, "POST", "/query",
                                        {"analyst": "alice", "queries": ROWS[:1]}))

            clients = [threading.Thread(target=client) for _ in range(4)]
            for worker in clients:
                worker.start()
                time.sleep(0.05)  # admit the first before the rest pile on
            for worker in clients:
                worker.join(timeout=60)
        statuses = sorted(status for status, _, _ in results)
        assert len(statuses) == 4
        assert statuses[0] == 200          # the admitted request completes
        assert 503 in statuses             # the pile-on is shed, not hung
        for status, body, headers in results:
            if status == 503:
                assert body["error"] == "overloaded"
                assert headers.get("Retry-After") == "1"
    finally:
        _shutdown(service)


def test_timeout_wastes_but_never_overspends(engine, tmp_path) -> None:
    service = _service(engine, tmp_path, request_timeout=0.15,
                       charge_epsilon=0.05,
                       faults=parse_faults("slow-chunk:2:1.5"))
    try:
        with ServiceThread(service) as thread:
            port = thread.address[1]
            status, _, _ = _request(port, "POST", "/query",
                                    {"analyst": "alice", "queries": ROWS[:1]})
            assert status == 200
            status, body, _ = _request(port, "POST", "/query",
                                       {"analyst": "alice", "queries": ROWS[:1]})
            assert status == 503
            assert body["error"] == "timeout"
        # Charge-before-answer: the timed-out request's epsilon is charged
        # (wasted) — the durable spend covers both requests, no more.
        assert service.ledger.spend("alice") == pytest.approx(0.1)
        assert service.ledger.seq == 2
    finally:
        _shutdown(service)


def test_wal_io_error_fails_closed_over_http(engine, tmp_path) -> None:
    service = _service(engine, tmp_path, charge_epsilon=0.05,
                       faults=parse_faults("wal-io-error:2"))
    try:
        with ServiceThread(service) as thread:
            port = thread.address[1]
            status, _, _ = _request(port, "POST", "/query",
                                    {"analyst": "alice", "queries": ROWS[:1]})
            assert status == 200
            status, body, _ = _request(port, "POST", "/query",
                                       {"analyst": "alice", "queries": ROWS[:1]})
            assert status == 503
            assert body["error"] == "ledger_unavailable"
            # Fail closed: the failed request spent nothing...
            assert service.ledger.spend("alice") == pytest.approx(0.05)
            # ...and the service recovers on the next request.
            status, _, _ = _request(port, "POST", "/query",
                                    {"analyst": "alice", "queries": ROWS[:1]})
            assert status == 200
            assert service.ledger.spend("alice") == pytest.approx(0.1)
    finally:
        _shutdown(service)


def test_malformed_requests_get_4xx_never_hang(engine, tmp_path) -> None:
    service = _service(engine, tmp_path)
    try:
        with ServiceThread(service) as thread:
            port = thread.address[1]
            cases = [
                ("POST", "/query", {"queries": ROWS}, 400),          # no analyst
                ("POST", "/query", {"analyst": "a"}, 400),           # no queries
                ("POST", "/query", {"analyst": "a", "queries": [[1.0, 2.0]]}, 400),
                ("POST", "/query", {"analyst": "a", "queries": ROWS,
                                    "epsilon": -1}, 400),
                ("POST", "/query", {"analyst": "a", "queries": ROWS,
                                    "epsilon": "lots"}, 400),
                ("GET", "/nowhere", None, 404),
                ("GET", "/query", None, 405),
            ]
            for method, path, body, expected in cases:
                status, payload, _ = _request(port, method, path, body)
                assert status == expected, (path, body, payload)
                assert "error" in payload
            # Raw garbage instead of JSON.
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            conn.request("POST", "/query", body=b"not json {")
            assert conn.getresponse().status == 400
            conn.close()
            # The service is unharmed.
            status, _, _ = _request(port, "POST", "/query",
                                    {"analyst": "a", "queries": ROWS[:1]})
            assert status == 200
    finally:
        _shutdown(service)


# ----------------------------------------------------------------------
# Worker supervision under deterministic faults
# ----------------------------------------------------------------------
def test_worker_kill_fault_costs_latency_not_errors(engine, tmp_path) -> None:
    service = _service(engine, tmp_path, workers=2, chunk_queries=2,
                       faults=parse_faults("kill-worker:3"))
    try:
        with ServiceThread(service) as thread:
            port = thread.address[1]
            expected = batch_query(engine, np.asarray(ROWS, dtype=np.float64))
            for _ in range(7):  # faults fire on requests 3 and 6
                status, body, _ = _request(port, "POST", "/query",
                                           {"analyst": "alice", "queries": ROWS})
                assert status == 200
                assert body["estimates"] == [float(v) for v in expected.estimates]
            status, stats, _ = _request(port, "GET", "/stats")
            assert stats["faults"]["kill-worker"] == 2
            server = stats["supervisor"]["server"]
            assert server["pool_rebuilds"] + server["inproc_fallbacks"] >= 1
            assert stats["service"]["served"] == 7
            assert stats["service"]["errors"] == 0
    finally:
        _shutdown(service)


def test_coincident_kill_and_oom_faults_are_survived(engine, tmp_path) -> None:
    """Both fault kinds firing on the same request must still answer 200.

    Regression: the oom probe used to submit into the pool the kill-worker
    drill had just crashed, and the ``BrokenProcessPool`` escaped as a 500.
    """
    service = _service(engine, tmp_path, workers=2, chunk_queries=2,
                       faults=parse_faults("kill-worker:2,oom-worker:2"))
    try:
        with ServiceThread(service) as thread:
            port = thread.address[1]
            for _ in range(4):  # both faults fire together on requests 2 and 4
                status, body, _ = _request(port, "POST", "/query",
                                           {"analyst": "alice", "queries": ROWS})
                assert status == 200, body
            status, stats, _ = _request(port, "GET", "/stats")
            assert stats["faults"] == {"kill-worker": 2, "oom-worker": 2}
            assert stats["service"]["errors"] == 0
    finally:
        _shutdown(service)


def test_oom_worker_fault_is_survived(engine, tmp_path) -> None:
    service = _service(engine, tmp_path, workers=2, chunk_queries=2,
                       faults=parse_faults("oom-worker:2"))
    try:
        with ServiceThread(service) as thread:
            port = thread.address[1]
            for _ in range(4):
                status, _, _ = _request(port, "POST", "/query",
                                        {"analyst": "alice", "queries": ROWS})
                assert status == 200
            status, stats, _ = _request(port, "GET", "/stats")
            assert stats["faults"]["oom-worker"] == 2
            assert stats["service"]["errors"] == 0
    finally:
        _shutdown(service)


# ----------------------------------------------------------------------
# Zero-downtime hot swap
# ----------------------------------------------------------------------
def test_hot_swap_drops_no_inflight_queries(engine, tmp_path) -> None:
    """Swap engines under a continuous client load; every request answers 200.

    The swapped-in engine is the float32 mmap compilation of the same
    release, so post-swap answers may differ in low-order bits — what must
    not change is the status: no 5xx, no connection error, no hang, and the
    generation visibly advances.
    """
    swapped = tmp_path / "engine32.psdm"
    save_engine(engine, swapped, format="mmap", precision="float32")
    assert load_engine(swapped).storage_precision == "float32"

    service = _service(engine, tmp_path, charge_epsilon=1e-6)
    failures: List[Tuple[int, dict]] = []
    generations: List[int] = []
    stop = threading.Event()
    try:
        with ServiceThread(service) as thread:
            port = thread.address[1]

            def hammer() -> None:
                while not stop.is_set():
                    status, body, _ = _request(port, "POST", "/query",
                                               {"analyst": "alice", "queries": ROWS})
                    if status != 200:
                        failures.append((status, body))
                    else:
                        generations.append(body["generation"])

            clients = [threading.Thread(target=hammer) for _ in range(3)]
            for worker in clients:
                worker.start()
            time.sleep(0.3)
            status, body, _ = _request(port, "POST", "/admin/swap",
                                       {"path": str(swapped)})
            assert (status, body["generation"]) == (200, 2)
            time.sleep(0.3)
            stop.set()
            for worker in clients:
                worker.join(timeout=60)

        assert failures == []
        assert 1 in generations and 2 in generations  # traffic on both sides
        # The retired generation was drained and closed, not leaked.
        stats = service.supervisor.stats()
        assert stats["generation"] == 2
        assert stats["retired_draining"] == 0
    finally:
        _shutdown(service)


def test_swap_of_missing_engine_is_rejected_and_harmless(engine, tmp_path) -> None:
    service = _service(engine, tmp_path)
    try:
        with ServiceThread(service) as thread:
            port = thread.address[1]
            status, body, _ = _request(port, "POST", "/admin/swap",
                                       {"path": str(tmp_path / "missing.psdm")})
            assert status == 400
            status, _, _ = _request(port, "POST", "/query",
                                    {"analyst": "alice", "queries": ROWS[:1]})
            assert status == 200
            assert service.supervisor.generation == 1
    finally:
        _shutdown(service)


# ----------------------------------------------------------------------
# Supervisor internals: backoff schedule and cached serving
# ----------------------------------------------------------------------
def test_supervisor_backoff_is_bounded_exponential(engine) -> None:
    sleeps: List[float] = []
    supervisor = EngineSupervisor(engine, workers=1, backoff_base=0.05,
                                  backoff_max=0.2, sleep=sleeps.append)
    try:
        for attempt in range(1, 5):
            supervisor._backoff(attempt)
        assert sleeps == [0.05, 0.1, 0.2, 0.2]  # doubles, then clamps
        assert supervisor.stats()["backoff_sleeps"] == 4
    finally:
        supervisor.close()


def test_supervisor_cached_serving_matches_direct(engine) -> None:
    rows = np.asarray(ROWS, dtype=np.float64)
    expected = batch_query(engine, rows)
    supervisor = EngineSupervisor(engine, workers=1, cache_size=64)
    try:
        first = supervisor.evaluate(rows)
        second = supervisor.evaluate(rows)  # served from the answer cache
        np.testing.assert_array_equal(first.estimates, expected.estimates)
        np.testing.assert_array_equal(second.estimates, expected.estimates)
        assert supervisor.stats()["cache"]["hits"] >= len(ROWS)
    finally:
        supervisor.close()
