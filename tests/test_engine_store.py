"""Tests for the zero-copy format-v2 engine store (:mod:`repro.engine.store`).

The load-bearing contracts:

* **bitwise parity** — a float64 engine attached via ``np.memmap`` must
  answer every query (estimates, ``n(Q)``, variances) bitwise identically to
  the in-RAM engine it was saved from, across all three PSD families, the
  empty workload and the whole-domain query;
* **precision contract** — float32 storage never moves the query
  decomposition (``n(Q)`` identical; geometry stays float64) and its added
  estimate error stays below the per-leaf Laplace standard deviation;
* **validation** — a missing, truncated or wrongly-versioned file fails
  loudly, naming the offending field;
* **zero-copy serving** — a mapped engine pickles as file references (no
  shared-memory segments), and :class:`ShardedQueryServer` workers re-map
  the same file with bitwise-identical sharded answers.
"""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest

from repro.cli import main
from repro.core import (
    build_private_hilbert_rtree,
    build_private_kdtree,
    build_private_quadtree,
)
from repro.data import uniform_points
from repro.engine import (
    CachedEngine,
    FlatPSD,
    batch_query,
    compile_psd,
    detect_engine_format,
    engine_with_precision,
    load_engine,
    save_engine,
)
from repro.engine.store import load_engine_mmap, save_engine_mmap
from repro.geometry import Domain, Rect
from repro.privacy.mechanisms import laplace_variance
from repro.queries import random_query_rects


# ----------------------------------------------------------------------
# Shared builders (same families as test_engine_flat)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def domain():
    return Domain.unit(2)


@pytest.fixture(scope="module")
def points(domain):
    return uniform_points(3_000, domain, rng=np.random.default_rng(17))


def _build(variant: str, points, domain, seed: int = 0):
    if variant == "quad-opt":
        return build_private_quadtree(points, domain, height=4, epsilon=1.0,
                                      variant="quad-opt", rng=seed)
    if variant == "kd-hybrid":
        return build_private_kdtree(points, domain, height=4, epsilon=1.0,
                                    variant="kd-hybrid", rng=seed)
    if variant == "hilbert-r":
        return build_private_hilbert_rtree(points, domain, height=6, epsilon=1.0,
                                           rng=seed).psd
    raise AssertionError(variant)


VARIANTS = ("quad-opt", "kd-hybrid", "hilbert-r")


def _queries(psd, n=80, seed=47):
    whole = Rect(psd.domain.rect.lo, psd.domain.rect.hi)
    return [whole] + random_query_rects(psd.domain, n, rng=np.random.default_rng(seed),
                                        min_frac=0.005, max_frac=0.5)


def _assert_bitwise(a, b):
    assert np.array_equal(a.estimates, b.estimates)
    assert np.array_equal(a.nodes_touched, b.nodes_touched)
    assert np.array_equal(a.variances, b.variances)


# ----------------------------------------------------------------------
# Bitwise parity: mapped float64 vs in-RAM, all families
# ----------------------------------------------------------------------
class TestMemmapParity:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_float64_mapped_answers_bitwise_equal(self, variant, points, domain, tmp_path):
        psd = _build(variant, points, domain, seed=23)
        engine = compile_psd(psd)
        path = tmp_path / "engine.psdm"
        save_engine(engine, path, format="mmap")
        mapped = load_engine(path)
        assert mapped.mapped_nbytes() > 0
        assert mapped.source_path == str(path)
        assert mapped.storage_precision == "float64"
        queries = _queries(psd)
        _assert_bitwise(batch_query(engine, queries), batch_query(mapped, queries))

    def test_empty_workload(self, points, domain, tmp_path):
        engine = compile_psd(_build("quad-opt", points, domain))
        path = tmp_path / "engine.psdm"
        save_engine(engine, path, format="mmap")
        mapped = load_engine(path)
        result = batch_query(mapped, [])
        assert result.estimates.shape == (0,)
        assert result.nodes_touched.shape == (0,)

    def test_deep_validate_passes_on_mapped_engine(self, points, domain, tmp_path):
        engine = compile_psd(_build("quad-opt", points, domain))
        path = tmp_path / "engine.psdm"
        save_engine(engine, path, format="mmap")
        assert isinstance(load_engine(path, deep_validate=True), FlatPSD)

    def test_mapped_arrays_are_readonly(self, points, domain, tmp_path):
        engine = compile_psd(_build("quad-opt", points, domain))
        path = tmp_path / "engine.psdm"
        save_engine(engine, path, format="mmap")
        mapped = load_engine(path)
        with pytest.raises(ValueError):
            mapped.released[0] = 1.0

    def test_format_detection(self, points, domain, tmp_path):
        engine = compile_psd(_build("quad-opt", points, domain))
        npz, mm, other = tmp_path / "e.npz", tmp_path / "e.psdm", tmp_path / "e.json"
        save_engine(engine, npz)
        save_engine(engine, mm, format="mmap")
        other.write_text("{}")
        assert detect_engine_format(npz) == "npz"
        assert detect_engine_format(mm) == "mmap"
        assert detect_engine_format(other) is None
        assert detect_engine_format(tmp_path / "absent") is None

    def test_unknown_format_rejected(self, points, domain, tmp_path):
        engine = compile_psd(_build("quad-opt", points, domain))
        with pytest.raises(ValueError, match="unknown engine format"):
            save_engine(engine, tmp_path / "e.bin", format="flatbuffer")


# ----------------------------------------------------------------------
# The float32 precision contract
# ----------------------------------------------------------------------
class TestFloat32Precision:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_decomposition_unchanged_and_error_below_noise_floor(
        self, variant, points, domain, tmp_path
    ):
        psd = _build(variant, points, domain, seed=29)
        engine = compile_psd(psd)
        path = tmp_path / "engine32.psdm"
        save_engine(engine, path, format="mmap", precision="float32")
        mapped = load_engine(path)
        assert mapped.storage_precision == "float32"
        assert mapped.child_start.dtype == np.int32
        queries = _queries(psd)
        r64, r32 = batch_query(engine, queries), batch_query(mapped, queries)
        # Geometry stays float64, so the decomposition cannot move.
        assert np.array_equal(r64.nodes_touched, r32.nodes_touched)
        # The per-leaf Laplace sd is the natural noise floor of the release:
        # storage rounding far below it cannot change any conclusion.
        leaf_sd = np.sqrt(laplace_variance(float(np.min(
            engine.count_epsilons[engine.count_epsilons > 0]))))
        assert np.max(np.abs(r64.estimates - r32.estimates)) < leaf_sd

    def test_float32_file_roundtrip_is_bitwise_stable(self, points, domain, tmp_path):
        # Saving the narrowed engine and mapping it back must reproduce the
        # in-RAM float32 cast exactly: rounding happens once, at cast time.
        engine = compile_psd(_build("quad-opt", points, domain))
        narrowed = engine_with_precision(engine, "float32")
        path = tmp_path / "engine32.psdm"
        save_engine(engine, path, format="mmap", precision="float32")
        mapped = load_engine(path)
        queries = _queries(_build("quad-opt", points, domain))
        _assert_bitwise(batch_query(narrowed, queries), batch_query(mapped, queries))

    def test_cast_is_idempotent_and_reversible_in_dtype(self, points, domain):
        engine = compile_psd(_build("quad-opt", points, domain))
        narrowed = engine_with_precision(engine, "float32")
        assert engine_with_precision(narrowed, "float32") is narrowed
        assert engine_with_precision(engine, "float64") is engine
        widened = engine_with_precision(narrowed, "float64")
        assert widened.released.dtype == np.float64
        assert widened.child_start.dtype == np.int64
        # Widening is exact (float32 -> float64 is an embedding).
        assert np.array_equal(widened.released,
                              narrowed.released.astype(np.float64))

    def test_unknown_precision_rejected(self, points, domain):
        engine = compile_psd(_build("quad-opt", points, domain))
        with pytest.raises(ValueError, match="unknown precision"):
            engine_with_precision(engine, "float16")


# ----------------------------------------------------------------------
# Validation of the v2 file format
# ----------------------------------------------------------------------
@pytest.fixture()
def v2_file(points, domain, tmp_path):
    engine = compile_psd(_build("quad-opt", points, domain))
    path = tmp_path / "engine.psdm"
    save_engine_mmap(engine, path)
    return path


class TestV2Validation:
    def test_bad_magic(self, v2_file):
        blob = bytearray(v2_file.read_bytes())
        blob[:8] = b"NOTMAGIC"
        v2_file.write_bytes(bytes(blob))
        with pytest.raises(ValueError, match="bad magic"):
            load_engine_mmap(v2_file)

    def test_truncated_header(self, v2_file):
        v2_file.write_bytes(v2_file.read_bytes()[:12])
        with pytest.raises(ValueError, match="truncated"):
            load_engine_mmap(v2_file)

    def test_truncated_array_region_names_the_field(self, v2_file):
        # Chop the file mid-data: the *last* stored field's region now falls
        # outside the file and the error must say which field.
        blob = v2_file.read_bytes()
        header_len = struct.unpack("<Q", blob[8:16])[0]
        header = json.loads(blob[16:16 + header_len].decode())
        last = max(header["arrays"], key=lambda k: header["arrays"][k]["offset"])
        cut = header["arrays"][last]["offset"] + 1
        v2_file.write_bytes(blob[:cut])
        with pytest.raises(ValueError, match=rf"{last}.*truncated|truncated.*{last}"):
            load_engine_mmap(v2_file)

    def test_missing_field_named(self, v2_file):
        blob = v2_file.read_bytes()
        header_len = struct.unpack("<Q", blob[8:16])[0]
        header = json.loads(blob[16:16 + header_len].decode())
        del header["arrays"]["released"]
        # Re-encode padded to the original length so offsets stay valid.
        packed = json.dumps(header).encode()
        assert len(packed) <= header_len
        packed += b" " * (header_len - len(packed))
        v2_file.write_bytes(blob[:16] + packed + blob[16 + header_len:])
        with pytest.raises(ValueError, match="missing array field 'released'"):
            load_engine_mmap(v2_file)

    def test_format_version_mismatch(self, v2_file):
        blob = v2_file.read_bytes()
        # Same-length byte substitution keeps the header length field valid.
        assert b'"format_version": 2' in blob
        v2_file.write_bytes(blob.replace(b'"format_version": 2',
                                         b'"format_version": 9', 1))
        with pytest.raises(ValueError, match="format version 9"):
            load_engine_mmap(v2_file)

    def test_corrupt_header_json(self, v2_file):
        blob = bytearray(v2_file.read_bytes())
        blob[16] = ord("!")  # breaks the leading '{'
        v2_file.write_bytes(bytes(blob))
        with pytest.raises(ValueError, match="corrupt v2 header"):
            load_engine_mmap(v2_file)

    def test_int32_overflow_guard_message(self, points, domain):
        engine = compile_psd(_build("quad-opt", points, domain))
        big = int(np.iinfo(np.int32).max) + 1
        # Fake the node count without allocating 2^31 rows.
        class _Huge(FlatPSD):
            @property
            def n_nodes(self):  # noqa: D401 - test shim
                return big
        huge = _Huge(**{f: getattr(engine, f) for f in (
            "lo", "hi", "level", "released", "has_count", "is_leaf",
            "child_start", "child_end", "area", "count_epsilons",
            "level_variance", "domain_lo", "domain_hi")},
            height=engine.height, fanout=engine.fanout)
        with pytest.raises(ValueError, match="int32 child offsets"):
            engine_with_precision(huge, "float32")


# ----------------------------------------------------------------------
# Artifact integrity: per-region CRC32 (v2) and the .npz adler32 sidecar
# ----------------------------------------------------------------------
class TestArtifactIntegrity:
    def _corrupt_region(self, path, field):
        blob = bytearray(path.read_bytes())
        header_len = struct.unpack("<Q", blob[8:16])[0]
        header = json.loads(blob[16:16 + header_len].decode())
        offset = header["arrays"][field]["offset"]
        blob[offset + 3] ^= 0xFF
        path.write_bytes(bytes(blob))

    def test_v2_verified_load_roundtrips_bitwise(self, points, domain, tmp_path, v2_file):
        engine = compile_psd(_build("quad-opt", points, domain))
        verified = load_engine(v2_file, verify=True)
        queries = _queries(_build("quad-opt", points, domain))
        _assert_bitwise(batch_query(engine, queries), batch_query(verified, queries))

    def test_v2_corrupted_region_named(self, v2_file):
        from repro.engine import EngineIntegrityError

        self._corrupt_region(v2_file, "released")
        with pytest.raises(EngineIntegrityError, match="'released' is corrupted"):
            load_engine(v2_file, verify=True)
        # unverified attach stays fast and permissive (serving opts in)
        load_engine(v2_file)

    def test_v2_geometry_corruption_named(self, v2_file):
        from repro.engine import EngineIntegrityError

        self._corrupt_region(v2_file, "lo")
        with pytest.raises(EngineIntegrityError, match="'lo' is corrupted"):
            load_engine(v2_file, verify=True)

    def test_v2_missing_crc_stamp_refused(self, v2_file):
        from repro.engine import EngineIntegrityError

        blob = v2_file.read_bytes()
        header_len = struct.unpack("<Q", blob[8:16])[0]
        header = json.loads(blob[16:16 + header_len].decode())
        for entry in header["arrays"].values():
            entry.pop("crc32", None)
        packed = json.dumps(header).encode()
        assert len(packed) <= header_len
        packed += b" " * (header_len - len(packed))
        v2_file.write_bytes(blob[:16] + packed + blob[16 + header_len:])
        load_engine(v2_file)  # pre-integrity files still load unverified
        with pytest.raises(EngineIntegrityError, match="no crc32 stamp"):
            load_engine(v2_file, verify=True)

    def test_npz_sidecar_written_and_verified(self, points, domain, tmp_path):
        engine = compile_psd(_build("quad-opt", points, domain))
        path = tmp_path / "engine.npz"
        save_engine(engine, path, format="npz")
        sidecar = tmp_path / "engine.npz.adler32"
        assert sidecar.exists()
        loaded = load_engine(path, verify=True)
        queries = _queries(_build("quad-opt", points, domain))
        _assert_bitwise(batch_query(engine, queries), batch_query(loaded, queries))

    def test_npz_tampered_checksum_named(self, points, domain, tmp_path):
        from repro.engine import EngineIntegrityError

        engine = compile_psd(_build("quad-opt", points, domain))
        path = tmp_path / "engine.npz"
        save_engine(engine, path, format="npz")
        sidecar = tmp_path / "engine.npz.adler32"
        recorded = json.loads(sidecar.read_text())
        recorded["arrays"]["released"] ^= 1
        sidecar.write_text(json.dumps(recorded))
        with pytest.raises(EngineIntegrityError, match="'released' is corrupted"):
            load_engine(path, verify=True)
        load_engine(path)  # unverified load unaffected

    def test_npz_missing_sidecar_refused(self, points, domain, tmp_path):
        from repro.engine import EngineIntegrityError

        engine = compile_psd(_build("quad-opt", points, domain))
        path = tmp_path / "engine.npz"
        save_engine(engine, path, format="npz")
        (tmp_path / "engine.npz.adler32").unlink()
        with pytest.raises(EngineIntegrityError, match="no integrity sidecar"):
            load_engine(path, verify=True)

    def test_serve_cli_refuses_corrupted_engine(self, v2_file, capsys):
        self._corrupt_region(v2_file, "released")
        with pytest.raises(SystemExit, match="corrupted"):
            main(["serve", str(v2_file), "--ledger", str(v2_file) + ".ledger"])

    def test_query_cli_verify_flag(self, v2_file, capsys):
        rc = main(["query", str(v2_file), "--rect", "0.1,0.1,0.6,0.6", "--verify"])
        assert rc == 0
        self._corrupt_region(v2_file, "released")
        with pytest.raises(SystemExit, match="corrupted"):
            main(["query", str(v2_file), "--rect", "0.1,0.1,0.6,0.6", "--verify"])


# ----------------------------------------------------------------------
# Zero-copy serving: pickling, sharded workers, the answer cache
# ----------------------------------------------------------------------
class TestZeroCopyServing:
    def test_mapped_engine_pickles_without_segments(self, points, domain, tmp_path):
        from repro.parallel.shm import SharedArena, detach_all, dumps_shared, loads_shared

        engine = compile_psd(_build("quad-opt", points, domain))
        path = tmp_path / "engine.psdm"
        save_engine(engine, path, format="mmap")
        mapped = load_engine(path)
        queries = _queries(_build("quad-opt", points, domain))
        try:
            with SharedArena() as arena:
                payload = dumps_shared({"engine": mapped}, arena)
                # Every array rides as a file reference: no segments, and the
                # payload is header-sized, not engine-sized.
                assert arena.n_segments == 0
                assert len(payload) < 4096
                attached = loads_shared(payload)["engine"]
                assert attached.mapped_nbytes() == mapped.mapped_nbytes()
                _assert_bitwise(batch_query(mapped, queries),
                                batch_query(attached, queries))
        finally:
            detach_all()

    def test_sliced_memmap_not_diverted(self, points, domain, tmp_path):
        # A sliced view inherits its parent's .offset unadjusted — shipping it
        # as a file reference would map the wrong bytes, so it must fall back
        # to the ordinary pickle/shm path.
        from repro.parallel.shm import mapped_handle

        engine = compile_psd(_build("quad-opt", points, domain))
        path = tmp_path / "engine.psdm"
        save_engine(engine, path, format="mmap")
        mapped = load_engine(path)
        assert mapped_handle(mapped.released) is not None
        assert mapped_handle(mapped.released[1:]) is None
        assert mapped_handle(np.asarray([1.0, 2.0])) is None

    def test_sharded_server_over_mapped_engine(self, points, domain, tmp_path):
        from repro.parallel import ShardedQueryServer

        engine = compile_psd(_build("quad-opt", points, domain))
        path = tmp_path / "engine.psdm"
        save_engine(engine, path, format="mmap")
        mapped = load_engine(path)
        queries = _queries(_build("quad-opt", points, domain), n=60)
        direct = batch_query(engine, queries)
        with ShardedQueryServer(mapped, workers=2, chunk_queries=16) as server:
            sharded = server.batch_query(queries)
            stats = server.stats()
        _assert_bitwise(direct, sharded)
        assert stats["engine_mapped_bytes"] > 0
        assert stats["shm_segments"] == 0  # the file is the sharing mechanism

    def test_cached_engine_over_mapped_engine(self, points, domain, tmp_path):
        engine = compile_psd(_build("quad-opt", points, domain))
        path = tmp_path / "engine.psdm"
        save_engine(engine, path, format="mmap")
        cached = CachedEngine(load_engine(path))
        queries = _queries(_build("quad-opt", points, domain), n=20)
        first = cached.batch_range_query(queries)
        second = cached.batch_range_query(queries)
        assert np.array_equal(first, second)
        assert cached.stats()["hits"] >= len(queries)
        assert np.array_equal(first, batch_query(engine, queries).estimates)


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCliMmap:
    @pytest.fixture(scope="class")
    def release_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "release.json"
        main(["build", "--synthetic", "4000", "--variant", "quad-opt",
              "--height", "5", "--epsilon", "0.5", "--output", str(path)])
        return path

    def test_compile_mmap_and_query_autodetects(self, release_path, tmp_path, capsys):
        npz = tmp_path / "engine.npz"
        mm = tmp_path / "engine.psdm"
        assert main(["compile", str(release_path), "--output", str(npz)]) == 0
        assert main(["compile", str(release_path), "--format", "mmap",
                     "--output", str(mm)]) == 0
        capsys.readouterr()
        rect = "--rect=-123,46,-121,48"
        assert main(["query", str(npz), rect]) == 0
        npz_out = capsys.readouterr().out
        assert main(["query", str(mm), rect]) == 0
        mm_out = capsys.readouterr().out
        assert npz_out == mm_out  # bitwise-identical answer, format-blind CLI

    def test_compile_float32_precision(self, release_path, tmp_path, capsys):
        mm = tmp_path / "engine32.psdm"
        assert main(["compile", str(release_path), "--format", "mmap",
                     "--precision", "float32", "--output", str(mm)]) == 0
        out = capsys.readouterr().out
        assert "float32" in out
        assert load_engine(mm).storage_precision == "float32"

    def test_query_mmap_with_workers_reports_mapped_bytes(
        self, release_path, tmp_path, capsys
    ):
        mm = tmp_path / "engine.psdm"
        main(["compile", str(release_path), "--format", "mmap", "--output", str(mm)])
        capsys.readouterr()
        rects = [f"--rect=-123,4{i},-121,4{i + 2}" for i in range(4)]
        assert main(["query", str(mm), *rects, "--workers", "2",
                     "--chunk-queries", "2", "--stats"]) == 0
        import re

        err = capsys.readouterr().err
        match = re.search(r"(\d+) engine bytes memory-mapped", err)
        assert match is not None
        assert int(match.group(1)) > 0
