"""Tests for the privacy accountant (sequential composition along paths)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builder import BudgetSplit, build_psd, build_psd_releases
from repro.core.splits import KDSplit, QuadSplit
from repro.data.tiger import road_intersections
from repro.geometry.domain import TIGER_DOMAIN
from repro.privacy import AnalystAccount, PrivacyAccountant, PrivacyCharge
from repro.privacy.accountant import BUDGET_TOLERANCE


class TestPrivacyCharge:
    def test_valid_charge(self):
        c = PrivacyCharge(epsilon=0.1, level=3, kind="median", delta=1e-5)
        assert c.epsilon == 0.1 and c.level == 3 and c.kind == "median"

    def test_rejects_negative_epsilon_or_delta(self):
        with pytest.raises(ValueError):
            PrivacyCharge(epsilon=-0.1, level=0)
        with pytest.raises(ValueError):
            PrivacyCharge(epsilon=0.1, level=0, delta=-1e-9)


class TestPrivacyAccountant:
    def test_requires_positive_budget(self):
        with pytest.raises(ValueError):
            PrivacyAccountant(total_budget=0.0)

    def test_path_epsilon_sums_charges(self):
        acc = PrivacyAccountant(total_budget=1.0)
        acc.charge(0.2, level=2, kind="count")
        acc.charge(0.3, level=1, kind="count")
        acc.charge(0.5, level=0, kind="count")
        assert acc.path_epsilon == pytest.approx(1.0)
        acc.assert_within_budget()

    def test_exceeding_budget_raises(self):
        acc = PrivacyAccountant(total_budget=0.5)
        acc.charge(0.4, level=1)
        acc.charge(0.2, level=0)
        with pytest.raises(ValueError, match="budget exceeded"):
            acc.assert_within_budget()

    def test_small_numerical_overshoot_tolerated(self):
        acc = PrivacyAccountant(total_budget=1.0)
        acc.charge(1.0 + 1e-12, level=0)
        acc.assert_within_budget()

    def test_per_level_and_per_kind_breakdown(self):
        acc = PrivacyAccountant(total_budget=1.0)
        acc.charge(0.1, level=2, kind="median")
        acc.charge(0.2, level=2, kind="count")
        acc.charge(0.3, level=0, kind="count")
        assert acc.per_level == {2: pytest.approx(0.3), 0: pytest.approx(0.3)}
        assert acc.per_kind == {"median": pytest.approx(0.1), "count": pytest.approx(0.5)}

    def test_delta_accumulates(self):
        acc = PrivacyAccountant(total_budget=1.0)
        acc.charge(0.1, level=1, kind="median", delta=1e-4)
        acc.charge(0.1, level=0, kind="median", delta=2e-4)
        assert acc.path_delta == pytest.approx(3e-4)

    def test_remaining(self):
        acc = PrivacyAccountant(total_budget=1.0)
        acc.charge(0.25, level=0)
        assert acc.remaining() == pytest.approx(0.75)

    def test_summary_sorted_root_first(self):
        acc = PrivacyAccountant(total_budget=1.0)
        acc.charge(0.1, level=0, kind="count")
        acc.charge(0.2, level=3, kind="median")
        rows = acc.summary()
        assert rows[0][0] == 3 and rows[-1][0] == 0


# ----------------------------------------------------------------------
# Multi-tenant analyst accounts: charge-or-refuse under contention
# ----------------------------------------------------------------------
class TestAnalystAccount:
    def test_charge_accumulates_and_refuses_at_cap(self):
        account = AnalystAccount("alice", cap=1.0)
        assert account.try_charge(0.4)
        assert account.try_charge(0.6)
        assert not account.try_charge(0.1)  # refusal leaves the account intact
        snap = account.snapshot()
        assert snap["spent"] == pytest.approx(1.0)
        assert snap["charges"] == 2
        assert account.remaining() == pytest.approx(0.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            AnalystAccount("a", cap=0.0)
        with pytest.raises(ValueError):
            AnalystAccount("a", cap=1.0, spent=-0.1)
        account = AnalystAccount("a", cap=1.0)
        with pytest.raises(ValueError):
            account.try_charge(0.0)
        with pytest.raises(ValueError):
            account.try_charge(-0.5)

    def test_resumes_from_prior_spend(self):
        account = AnalystAccount("a", cap=1.0, spent=0.95)
        assert not account.try_charge(0.1)
        assert account.try_charge(0.05)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_concurrent_charges_never_exceed_cap(self, seed):
        """Property: under any thread interleaving, successful charges sum to
        at most the cap (plus numerical tolerance) and exactly match the
        account's recorded spend — the lock-protected charge-or-refuse must
        leave no window between the check and the increment."""
        import threading

        rng = np.random.default_rng(seed)
        cap = 1.0
        account = AnalystAccount("alice", cap=cap)
        n_threads, n_attempts = 8, 40
        # Fixed per-thread charge schedules (drawn up front: the property is
        # about interleaving, not about randomness during the race).
        schedules = [
            [float(e) for e in rng.uniform(0.001, 0.09, size=n_attempts)]
            for _ in range(n_threads)
        ]
        granted: list = [[] for _ in range(n_threads)]
        barrier = threading.Barrier(n_threads)

        def worker(tid):
            barrier.wait()  # maximise contention
            for epsilon in schedules[tid]:
                if account.try_charge(epsilon):
                    granted[tid].append(epsilon)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total_granted = sum(sum(g) for g in granted)
        snap = account.snapshot()
        assert snap["spent"] == pytest.approx(total_granted, abs=1e-12)
        assert snap["spent"] <= cap + BUDGET_TOLERANCE
        assert snap["charges"] == sum(len(g) for g in granted)
        # the cap was actually contended: most of the budget went out the door
        assert snap["spent"] > 0.8 * cap


# ----------------------------------------------------------------------
# The accountant as produced by a full release sweep
# ----------------------------------------------------------------------
HEIGHT = 3
EPSILONS = (0.5, 1.0)
REPETITIONS = 2


@pytest.fixture(scope="module")
def points():
    return road_intersections(n=1_200, rng=np.random.default_rng(0))


class TestAccountantThroughSweep:
    """``build_psd_releases`` must hand every release a faithful ledger.

    The batch pipeline never runs the sequential accountant code path, so its
    reconstructed per-release ledgers (``PSDReleaseBatch._make_accountant``)
    are pinned here: per-kind and per-level breakdowns, path composition, and
    equality with what the equivalent sequential ``build_psd`` records.
    """

    def test_quad_sweep_counts_only(self, points):
        batch = build_psd_releases(points, TIGER_DOMAIN, HEIGHT, QuadSplit(),
                                   EPSILONS, repetitions=REPETITIONS, rng=0)
        release_eps = [e for e in EPSILONS for _ in range(REPETITIONS)]
        assert batch.n_releases == len(release_eps)
        for r, epsilon in enumerate(release_eps):
            acc = batch.release(r).accountant
            # data-independent splits spend nothing on medians
            assert set(acc.per_kind) == {"count"}
            assert acc.per_kind["count"] == pytest.approx(epsilon)
            assert acc.path_epsilon == pytest.approx(epsilon)
            # the geometric strategy funds every level of the tree
            assert set(acc.per_level) == set(range(HEIGHT + 1))
            assert sum(acc.per_level.values()) == pytest.approx(epsilon)
            acc.assert_within_budget()

    def test_quad_release_ledger_matches_sequential_build(self, points):
        batch = build_psd_releases(points, TIGER_DOMAIN, HEIGHT, QuadSplit(),
                                   (0.5,), rng=0)
        sequential = build_psd(points, TIGER_DOMAIN, HEIGHT, QuadSplit(),
                               epsilon=0.5, rng=1)
        got, ref = batch.release(0).accountant, sequential.accountant
        assert got.per_level == pytest.approx(ref.per_level)
        assert got.per_kind == pytest.approx(ref.per_kind)
        assert got.path_epsilon == pytest.approx(ref.path_epsilon)

    def test_kd_sweep_splits_count_and_median_budget(self, points):
        rule = KDSplit(median_method="em")
        batch = build_psd_releases(points, TIGER_DOMAIN, HEIGHT, rule, (1.0,),
                                   repetitions=REPETITIONS,
                                   budget_split=BudgetSplit(count_fraction=0.7), rng=0)
        dd_levels = rule.data_dependent_levels(HEIGHT)
        assert dd_levels, "kd splits must be data dependent"
        median_share = 0.3 / len(dd_levels)
        for r in range(batch.n_releases):
            acc = batch.release(r).accountant
            assert set(acc.per_kind) == {"count", "median"}
            assert acc.per_kind["count"] == pytest.approx(0.7)
            assert acc.per_kind["median"] == pytest.approx(0.3)
            assert acc.path_epsilon == pytest.approx(1.0)
            # the median budget is spread evenly over the splitting levels
            for level in dd_levels:
                assert acc.per_level[level] >= median_share - 1e-12
            acc.assert_within_budget()

    def test_kd_ledger_matches_sequential_build(self, points):
        rule_args = dict(median_method="em")
        split = BudgetSplit(count_fraction=0.7)
        batch = build_psd_releases(points, TIGER_DOMAIN, HEIGHT, KDSplit(**rule_args),
                                   (1.0,), budget_split=split, rng=0)
        sequential = build_psd(points, TIGER_DOMAIN, HEIGHT, KDSplit(**rule_args),
                               epsilon=1.0, budget_split=split, rng=1)
        got, ref = batch.release(0).accountant, sequential.accountant
        assert got.per_level == pytest.approx(ref.per_level)
        assert got.per_kind == pytest.approx(ref.per_kind)
