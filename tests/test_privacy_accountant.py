"""Tests for the privacy accountant (sequential composition along paths)."""

from __future__ import annotations

import pytest

from repro.privacy import PrivacyAccountant, PrivacyCharge


class TestPrivacyCharge:
    def test_valid_charge(self):
        c = PrivacyCharge(epsilon=0.1, level=3, kind="median", delta=1e-5)
        assert c.epsilon == 0.1 and c.level == 3 and c.kind == "median"

    def test_rejects_negative_epsilon_or_delta(self):
        with pytest.raises(ValueError):
            PrivacyCharge(epsilon=-0.1, level=0)
        with pytest.raises(ValueError):
            PrivacyCharge(epsilon=0.1, level=0, delta=-1e-9)


class TestPrivacyAccountant:
    def test_requires_positive_budget(self):
        with pytest.raises(ValueError):
            PrivacyAccountant(total_budget=0.0)

    def test_path_epsilon_sums_charges(self):
        acc = PrivacyAccountant(total_budget=1.0)
        acc.charge(0.2, level=2, kind="count")
        acc.charge(0.3, level=1, kind="count")
        acc.charge(0.5, level=0, kind="count")
        assert acc.path_epsilon == pytest.approx(1.0)
        acc.assert_within_budget()

    def test_exceeding_budget_raises(self):
        acc = PrivacyAccountant(total_budget=0.5)
        acc.charge(0.4, level=1)
        acc.charge(0.2, level=0)
        with pytest.raises(ValueError, match="budget exceeded"):
            acc.assert_within_budget()

    def test_small_numerical_overshoot_tolerated(self):
        acc = PrivacyAccountant(total_budget=1.0)
        acc.charge(1.0 + 1e-12, level=0)
        acc.assert_within_budget()

    def test_per_level_and_per_kind_breakdown(self):
        acc = PrivacyAccountant(total_budget=1.0)
        acc.charge(0.1, level=2, kind="median")
        acc.charge(0.2, level=2, kind="count")
        acc.charge(0.3, level=0, kind="count")
        assert acc.per_level == {2: pytest.approx(0.3), 0: pytest.approx(0.3)}
        assert acc.per_kind == {"median": pytest.approx(0.1), "count": pytest.approx(0.5)}

    def test_delta_accumulates(self):
        acc = PrivacyAccountant(total_budget=1.0)
        acc.charge(0.1, level=1, kind="median", delta=1e-4)
        acc.charge(0.1, level=0, kind="median", delta=2e-4)
        assert acc.path_delta == pytest.approx(3e-4)

    def test_remaining(self):
        acc = PrivacyAccountant(total_budget=1.0)
        acc.charge(0.25, level=0)
        assert acc.remaining() == pytest.approx(0.75)

    def test_summary_sorted_root_first(self):
        acc = PrivacyAccountant(total_budget=1.0)
        acc.charge(0.1, level=0, kind="count")
        acc.charge(0.2, level=3, kind="median")
        rows = acc.summary()
        assert rows[0][0] == 3 and rows[-1][0] == 0
