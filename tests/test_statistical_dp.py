"""Empirical differential-privacy checks on the core mechanisms.

These tests estimate output distributions of the mechanisms on *neighbouring*
datasets (differing in one record) and verify that the observed likelihood
ratios respect the ε-DP inequality ``Pr[A(D1) in S] <= e^eps * Pr[A(D2) in S]``
up to sampling error.  They are not proofs — the analytical guarantees are —
but they catch the classic implementation mistakes (wrong sensitivity, wrong
scale, budget split errors) that silently destroy the guarantee while leaving
accuracy tests green.

All tests use fixed seeds and generous slack over the theoretical bound so
they are deterministic and robust.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.privacy import (
    exponential_mechanism_median,
    geometric_mechanism,
    laplace_mechanism,
)


def empirical_ratio_bound(samples_a: np.ndarray, samples_b: np.ndarray, bins: np.ndarray) -> float:
    """The largest observed probability ratio over histogram bins with enough mass."""
    hist_a, _ = np.histogram(samples_a, bins=bins)
    hist_b, _ = np.histogram(samples_b, bins=bins)
    p_a = hist_a / samples_a.size
    p_b = hist_b / samples_b.size
    # Only compare bins where both sides have enough samples for a stable estimate.
    mask = (hist_a >= 50) & (hist_b >= 50)
    if not np.any(mask):
        return 1.0
    return float(np.max(np.maximum(p_a[mask] / p_b[mask], p_b[mask] / p_a[mask])))


class TestLaplaceMechanismDP:
    @pytest.mark.parametrize("epsilon", [0.25, 1.0])
    def test_count_release_respects_epsilon(self, epsilon):
        rng_a = np.random.default_rng(1000)
        rng_b = np.random.default_rng(2000)
        n = 200_000
        # Neighbouring datasets: counts 50 and 51 (one tuple added).
        samples_a = np.array([laplace_mechanism(50.0, epsilon, rng=rng_a) for _ in range(1)])
        samples_a = 50.0 + rng_a.laplace(scale=1.0 / epsilon, size=n)
        samples_b = 51.0 + rng_b.laplace(scale=1.0 / epsilon, size=n)
        bins = np.linspace(30.0, 70.0, 41)
        ratio = empirical_ratio_bound(samples_a, samples_b, bins)
        # Each bin spans 1 unit; the ratio over a bin is at most e^{eps * (1 + bin width)}.
        assert ratio <= np.exp(epsilon * 2.0) * 1.2

    def test_wrong_sensitivity_would_be_caught(self):
        """Sanity check of the test itself: far too little noise violates the bound."""
        rng = np.random.default_rng(3000)
        epsilon = 0.5
        broken_scale = 0.25 / epsilon  # as if sensitivity were 0.25 instead of 1
        samples_a = 50.0 + rng.laplace(scale=broken_scale, size=200_000)
        samples_b = 51.0 + rng.laplace(scale=broken_scale, size=200_000)
        bins = np.linspace(30.0, 70.0, 41)
        ratio = empirical_ratio_bound(samples_a, samples_b, bins)
        assert ratio > np.exp(epsilon * 2.0) * 1.2


class TestGeometricMechanismDP:
    def test_integer_release_respects_epsilon(self, rng):
        epsilon = 0.8
        n = 150_000
        samples_a = np.array(geometric_mechanism(np.full(n, 20.0), epsilon, rng=np.random.default_rng(7)))
        samples_b = np.array(geometric_mechanism(np.full(n, 21.0), epsilon, rng=np.random.default_rng(8)))
        bins = np.arange(0.5, 40.5, 1.0)
        ratio = empirical_ratio_bound(samples_a, samples_b, bins)
        assert ratio <= np.exp(epsilon) * 1.25


class TestExponentialMechanismMedianDP:
    def test_neighbouring_datasets_have_similar_output_distributions(self):
        """Adding one record changes every rank by at most 1, so the output density
        ratio is bounded by e^{eps} (score sensitivity 1, exponent eps/2 * 2)."""
        epsilon = 1.0
        rng_a = np.random.default_rng(11)
        rng_b = np.random.default_rng(12)
        base = np.sort(np.random.default_rng(13).uniform(0.0, 100.0, size=201))
        neighbour = np.append(base, 97.0)  # one extra record near the top
        n = 40_000
        samples_a = np.array([exponential_mechanism_median(base, epsilon, 0.0, 100.0, rng=rng_a)
                              for _ in range(n)])
        samples_b = np.array([exponential_mechanism_median(neighbour, epsilon, 0.0, 100.0, rng=rng_b)
                              for _ in range(n)])
        bins = np.linspace(0.0, 100.0, 21)
        ratio = empirical_ratio_bound(samples_a, samples_b, bins)
        assert ratio <= np.exp(epsilon) * 1.3

    def test_distant_datasets_do_differ(self):
        """Sanity check of the test: non-neighbouring datasets give very different outputs."""
        epsilon = 1.0
        rng = np.random.default_rng(14)
        low = np.random.default_rng(15).uniform(0.0, 20.0, size=200)
        high = np.random.default_rng(16).uniform(80.0, 100.0, size=200)
        n = 20_000
        samples_a = np.array([exponential_mechanism_median(low, epsilon, 0.0, 100.0, rng=rng)
                              for _ in range(n)])
        samples_b = np.array([exponential_mechanism_median(high, epsilon, 0.0, 100.0, rng=rng)
                              for _ in range(n)])
        assert abs(np.median(samples_a) - np.median(samples_b)) > 30.0
