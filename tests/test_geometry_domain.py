"""Tests for Domain: validation, normalisation, query-rectangle construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Domain, Rect, TIGER_DOMAIN


class TestConstruction:
    def test_from_bounds_and_unit(self):
        d = Domain.from_bounds((0.0, -1.0), (2.0, 1.0), name="box")
        assert d.dims == 2
        assert d.area == pytest.approx(4.0)
        assert d.name == "box"
        assert Domain.unit(3).dims == 3

    def test_tiger_domain_matches_paper(self):
        assert TIGER_DOMAIN.rect.lo == (-124.82, 31.33)
        assert TIGER_DOMAIN.rect.hi == (-103.00, 49.00)


class TestPointHandling:
    def test_contains_closed_boundary(self):
        d = Domain.unit(2)
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [1.0001, 0.5]])
        assert d.contains(pts).tolist() == [True, True, False]

    def test_validate_points_accepts_inside(self):
        d = Domain.unit(2)
        pts = np.array([[0.2, 0.4], [1.0, 0.0]])
        out = d.validate_points(pts)
        assert out.shape == (2, 2)

    def test_validate_points_rejects_outside(self):
        d = Domain.unit(2)
        with pytest.raises(ValueError, match="outside"):
            d.validate_points(np.array([[0.5, 1.5]]))

    def test_validate_points_rejects_wrong_dims(self):
        d = Domain.unit(2)
        with pytest.raises(ValueError, match="dims"):
            d.validate_points(np.zeros((4, 3)))

    def test_validate_reshapes_1d(self):
        d = Domain.unit(1)
        out = d.validate_points(np.array([0.1, 0.9]))
        assert out.shape == (2, 1)

    def test_clip_points(self):
        d = Domain.unit(2)
        clipped = d.clip_points(np.array([[2.0, -1.0]]))
        assert clipped.tolist() == [[1.0, 0.0]]

    def test_normalize_roundtrip(self):
        d = Domain.from_bounds((-10.0, 5.0), (10.0, 25.0))
        pts = np.array([[-10.0, 5.0], [10.0, 25.0], [0.0, 15.0]])
        unit = d.normalize(pts)
        assert np.allclose(unit, [[0, 0], [1, 1], [0.5, 0.5]])
        assert np.allclose(d.denormalize(unit), pts)


class TestQueryRect:
    def test_query_rect_centre_and_extents(self):
        d = Domain.from_bounds((0.0, 0.0), (10.0, 10.0))
        q = d.query_rect((5.0, 5.0), (2.0, 4.0))
        assert q == Rect((4.0, 3.0), (6.0, 7.0))

    def test_query_rect_clipped_to_domain(self):
        d = Domain.unit(2)
        q = d.query_rect((0.0, 0.0), (1.0, 1.0))
        assert q.lo == (0.0, 0.0)
        assert q.hi == (0.5, 0.5)

    def test_query_rect_never_inverted(self):
        d = Domain.unit(2)
        q = d.query_rect((2.0, 2.0), (0.1, 0.1))  # centre outside the domain
        assert all(lo <= hi for lo, hi in zip(q.lo, q.hi))

    def test_fraction_extents(self):
        d = Domain.from_bounds((0.0, 0.0), (20.0, 10.0))
        assert d.fraction_extents((0.5, 0.1)) == (10.0, 1.0)
