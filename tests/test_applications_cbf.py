"""Tests for counting-Bloom-filter multi-party blocking (applications.cbf)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications.cbf import (
    CBFBlockingResult,
    CountingBloomFilter,
    cbf_blocking,
    cbf_candidate_cells,
    grid_cell_keys,
    party_filter,
)
from repro.data import gaussian_cluster_points
from repro.geometry import Domain


@pytest.fixture(scope="module")
def domain():
    return Domain.unit(2)


class TestCountingBloomFilter:
    def test_noiseless_query_never_undercounts(self):
        rng = np.random.default_rng(0)
        keys = rng.choice(10_000, size=200, replace=False)
        counts = rng.integers(1, 50, size=200).astype(float)
        cbf = CountingBloomFilter(n_counters=1024, n_hashes=3, seed=1)
        cbf.add(keys, counts)
        estimates = cbf.query(keys)
        assert np.all(estimates >= counts)  # collisions only ever add

    def test_absent_keys_usually_zero(self):
        cbf = CountingBloomFilter(n_counters=4096, n_hashes=4, seed=2)
        cbf.add(np.arange(20), np.ones(20))
        absent = cbf.query(np.arange(1000, 1100))
        # min over 4 independent positions in a sparse filter: typically 0.
        assert np.count_nonzero(absent) <= 5

    def test_seed_changes_layout_but_not_totals(self):
        keys = np.arange(50)
        counts = np.ones(50)
        one = CountingBloomFilter(n_counters=512, n_hashes=2, seed=3).add(keys, counts)
        two = CountingBloomFilter(n_counters=512, n_hashes=2, seed=4).add(keys, counts)
        assert not np.array_equal(one.counters, two.counters)
        assert one.counters.sum() == two.counters.sum() == 100.0

    def test_laplace_noise_is_deterministic_per_stream(self):
        def build(rng):
            cbf = CountingBloomFilter(n_counters=256, n_hashes=3, seed=5)
            cbf.add(np.arange(10), np.ones(10))
            return cbf.add_laplace_noise(0.5, rng)

        a = build(np.random.default_rng(6))
        b = build(np.random.default_rng(6))
        assert np.array_equal(a.counters, b.counters)

    def test_validation(self):
        cbf = CountingBloomFilter(n_counters=64, n_hashes=2)
        with pytest.raises(ValueError):
            cbf.add(np.arange(3), np.array([1.0, -1.0, 2.0]))
        with pytest.raises(ValueError):
            cbf.add_laplace_noise(0.0)
        with pytest.raises(ValueError):
            CountingBloomFilter(n_counters=0)
        with pytest.raises(ValueError):
            CountingBloomFilter(n_hashes=0)


class TestGridKeys:
    def test_top_edges_closed(self, domain):
        points = np.array([[1.0, 1.0], [0.0, 0.0], [0.999, 0.0]])
        keys = grid_cell_keys(points, domain, (4, 4))
        assert keys.tolist() == [15, 0, 12]

    def test_shape_validation(self, domain):
        with pytest.raises(ValueError):
            grid_cell_keys(np.zeros((3, 2)), domain, (4,))
        with pytest.raises(ValueError):
            grid_cell_keys(np.zeros((3, 3)), domain, (4, 4))


class TestMultiPartyBlocking:
    @pytest.fixture(scope="class")
    def parties(self, domain):
        rng = np.random.default_rng(11)
        base = gaussian_cluster_points(2_000, domain, n_clusters=4, spread=0.03, rng=rng)
        shifted = domain.clip_points(base + rng.normal(scale=0.005, size=base.shape))
        third = domain.clip_points(base + rng.normal(scale=0.005, size=base.shape))
        return [base, shifted, third]

    def test_decision_consumes_only_filters(self, domain, parties):
        # The coordinator-side intersection takes published filters; a party's
        # raw points never cross that boundary.
        filters = [
            party_filter(points, domain, (16, 16), epsilon=None, seed=7)
            for points in parties
        ]
        cells, estimates = cbf_candidate_cells(filters, 256, count_threshold=0.0)
        assert estimates.shape == (3, cells.size)
        # Noiseless: candidate cells must cover every truly shared cell.
        shared = set(grid_cell_keys(parties[0], domain, (16, 16)))
        for points in parties[1:]:
            shared &= set(grid_cell_keys(points, domain, (16, 16)))
        assert shared <= set(cells.tolist())

    def test_blocking_result_shape(self, domain, parties):
        result = cbf_blocking(parties, domain, grid_shape=(16, 16), epsilon=0.5, rng=12)
        assert isinstance(result, CBFBlockingResult)
        assert result.total_pairs == 2_000 ** 3
        assert result.candidate_pairs >= 0
        assert result.reduction_ratio <= 1.0
        assert result.surviving_cells == result.candidate_cells.size
        assert result.estimates.shape == (3, result.surviving_cells)

    def test_deterministic_and_party_order_independent_noise(self, domain, parties):
        first = cbf_blocking(parties, domain, grid_shape=(16, 16), epsilon=0.5, rng=13)
        second = cbf_blocking(parties, domain, grid_shape=(16, 16), epsilon=0.5, rng=13)
        assert first.candidate_pairs == second.candidate_pairs
        assert np.array_equal(first.candidate_cells, second.candidate_cells)

    def test_blocking_reduces_work_on_clustered_data(self, domain, parties):
        result = cbf_blocking(parties[:2], domain, grid_shape=(16, 16), epsilon=1.0,
                              count_threshold=1.0, rng=14)
        assert result.reduction_ratio > 0.5

    def test_requires_two_parties(self, domain, parties):
        with pytest.raises(ValueError):
            cbf_blocking(parties[:1], domain)
