"""Tests for the ragged-batch private medians and the level-batched builds.

Two contracts are under test:

* **batch == sequential, bitwise** — ``method_batch(sorted_values, offsets,
  epsilons, los, his, rng)`` must equal the per-segment scalar calls bit for
  bit *and* leave the generator in the identical state, for every method
  (EM / SS / cell / NM / true and the sampled variants) over ragged level
  shapes including empty, single-point and all-equal segments;
* **layout parity with zero fallback** — the kd / hybrid / Hilbert builders
  run their data-dependent levels through the batched medians (never the
  per-node fallback) and stay bit-for-bit interchangeable with the pointer
  reference, including the Hilbert R-tree's vectorized planar compile.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_psd
from repro.core.hilbert_rtree import build_private_hilbert_rtree
from repro.core.kdtree import build_private_kdtree
from repro.core.splits import HybridSplit, KDSplit
from repro.data import uniform_points
from repro.engine.cache import CachedEngine
from repro.engine.flat import compile_hilbert_rtree, compile_psd
from repro.geometry import Domain, Rect
from repro.geometry.hilbert import HilbertCurve
from repro.privacy.median import (
    MEDIAN_METHODS,
    exponential_mechanism_median_batch,
    smooth_sensitivity_median,
    smooth_sensitivity_median_batch,
    smooth_sensitivity_of_median,
)

DOMAIN = Domain.unit(2)
POINTS = uniform_points(1_500, DOMAIN, rng=np.random.default_rng(7))

ALL_METHODS = ["true", "em", "ss", "cell", "noisymean", "ems", "sss"]


def ragged_batch(seed: int):
    """Ragged segments covering empty, singleton, all-equal and generic shapes."""
    gen = np.random.default_rng(seed)
    segments = [
        np.empty(0),
        np.array([3.25]),
        np.full(9, 5.0),
        np.sort(gen.uniform(0.0, 10.0, 40)),
        np.sort(gen.uniform(2.0, 8.0, 137)),
        np.empty(0),
        np.sort(gen.uniform(4.9, 5.1, 11)),
    ]
    los = np.array([0.0, 0.0, 5.0, 0.0, 1.0, 2.0, 4.5])
    his = np.array([10.0, 10.0, 5.0, 10.0, 9.0, 2.0, 5.5])
    eps = np.array([0.5, 1.0, 0.2, 0.7, 0.05, 2.0, 0.9])
    values = np.concatenate(segments)
    offsets = np.concatenate(([0], np.cumsum([len(s) for s in segments])))
    return segments, values, offsets, eps, los, his


class TestBatchBitwiseParity:
    @pytest.mark.parametrize("method_name", ALL_METHODS)
    @pytest.mark.parametrize("data_seed", [0, 42])
    @pytest.mark.parametrize("rng_seed", [7, 1234])
    def test_batch_equals_sequential(self, method_name, data_seed, rng_seed):
        method = MEDIAN_METHODS[method_name]
        segments, values, offsets, eps, los, his = ragged_batch(data_seed)
        g_batch = np.random.default_rng(rng_seed)
        g_seq = np.random.default_rng(rng_seed)
        batch = method.batch(values, offsets, eps, los, his, rng=g_batch)
        sequential = np.array([
            method(segments[i], eps[i], los[i], his[i], rng=g_seq)
            for i in range(len(segments))
        ])
        assert np.array_equal(batch, sequential)
        # The batch must also consume the stream exactly like the loop did.
        assert g_batch.bit_generator.state == g_seq.bit_generator.state

    @pytest.mark.parametrize("kwargs", [
        {"delta": 1e-3}, {"max_k": 4}, {"delta": 1e-2, "max_k": 2},
    ])
    def test_ss_kwargs_forwarded(self, kwargs):
        segments, values, offsets, eps, los, his = ragged_batch(3)
        g1, g2 = np.random.default_rng(5), np.random.default_rng(5)
        batch = smooth_sensitivity_median_batch(values, offsets, eps, los, his,
                                                rng=g1, **kwargs)
        sequential = np.array([
            smooth_sensitivity_median(segments[i], eps[i], los[i], his[i], rng=g2, **kwargs)
            for i in range(len(segments))
        ])
        assert np.array_equal(batch, sequential)

    def test_cell_n_cells_forwarded(self):
        method = MEDIAN_METHODS["cell"]
        segments, values, offsets, eps, los, his = ragged_batch(9)
        g1, g2 = np.random.default_rng(2), np.random.default_rng(2)
        batch = method.batch(values, offsets, eps, los, his, rng=g1, n_cells=64)
        sequential = np.array([
            method(segments[i], eps[i], los[i], his[i], rng=g2, n_cells=64)
            for i in range(len(segments))
        ])
        assert np.array_equal(batch, sequential)
        assert g1.bit_generator.state == g2.bit_generator.state

    def test_scalar_epsilon_broadcasts(self):
        _, values, offsets, _, los, his = ragged_batch(1)
        a = exponential_mechanism_median_batch(values, offsets, 0.5, los, his,
                                               rng=np.random.default_rng(0))
        b = exponential_mechanism_median_batch(values, offsets, np.full(7, 0.5), los, his,
                                               rng=np.random.default_rng(0))
        assert np.array_equal(a, b)

    def test_smooth_sensitivity_of_median_matches_kernel(self, rng):
        values = np.sort(rng.uniform(0.0, 100.0, 301))
        sigma = smooth_sensitivity_of_median(values, 0.4, 1e-4, 0.0, 100.0)
        batchless = smooth_sensitivity_median_batch(
            values, np.array([0, values.size]), 0.4, 0.0, 100.0,
            uniforms=np.array([[0.5]]))  # Lap(0.5 -> 0): pure median + 0 * sigma
        assert 0 < sigma <= 100.0
        assert 0.0 <= batchless[0] <= 100.0

    def test_rejects_bad_offsets_and_unsorted_values(self):
        with pytest.raises(ValueError, match="offsets"):
            exponential_mechanism_median_batch(np.array([1.0, 2.0]), np.array([0, 1]),
                                               1.0, 0.0, 10.0)
        with pytest.raises(ValueError, match="sorted"):
            exponential_mechanism_median_batch(np.array([2.0, 1.0]), np.array([0, 2]),
                                               1.0, 0.0, 10.0)
        with pytest.raises(ValueError, match="epsilon"):
            exponential_mechanism_median_batch(np.array([1.0, 2.0]), np.array([0, 2]),
                                               0.0, 0.0, 10.0)

    def test_rejects_values_outside_domain(self):
        with pytest.raises(ValueError, match="domain"):
            exponential_mechanism_median_batch(np.array([5.0]), np.array([0, 1]),
                                               1.0, 0.0, 1.0)


def build_pair(rule, height, seed, **kwargs):
    pointer = build_psd(POINTS, DOMAIN, height, rule, epsilon=1.0, rng=seed,
                        layout="pointer", **kwargs)
    flat = build_psd(POINTS, DOMAIN, height, rule, epsilon=1.0, rng=seed,
                     layout="flat", **kwargs)
    return pointer, flat


def assert_engines_equal(a, b, names=("lo", "hi", "level", "released", "has_count",
                                      "is_leaf", "child_start", "child_end", "area")):
    for name in names:
        assert np.array_equal(getattr(a, name), getattr(b, name)), name


@pytest.fixture()
def no_per_node_fallback(monkeypatch):
    """Make any per-node split fallback a hard failure."""
    import repro.core.flatbuild as flatbuild

    def forbidden(*args, **kwargs):
        raise AssertionError("per-node split fallback must not run for this rule")

    monkeypatch.setattr(flatbuild, "_split_level_per_node", forbidden)


class TestLevelBatchedBuilds:
    @pytest.mark.parametrize("method", ["em", "true"])
    @pytest.mark.parametrize("height", [1, 3])
    @pytest.mark.parametrize("seed", [2, 23])
    def test_kd_layout_parity_zero_fallback(self, no_per_node_fallback, method, height, seed):
        pointer, flat = build_pair(KDSplit(median_method=method), height, seed,
                                   postprocess=True)
        assert flat.is_flat_native
        assert_engines_equal(compile_psd(pointer), compile_psd(flat))

    @pytest.mark.slow
    @pytest.mark.parametrize("method", ["ss", "cell", "noisymean", "ems", "sss"])
    @pytest.mark.parametrize("height", [1, 2, 3])
    @pytest.mark.parametrize("seed", [2, 23, 151])
    def test_kd_layout_parity_all_methods(self, method, height, seed):
        pointer, flat = build_pair(KDSplit(median_method=method), height, seed,
                                   postprocess=True)
        assert_engines_equal(compile_psd(pointer), compile_psd(flat))

    def test_hybrid_zero_fallback(self, no_per_node_fallback):
        pointer, flat = build_pair(HybridSplit(kd_levels=2, median_method="em"), 4, 5,
                                   postprocess=True)
        assert_engines_equal(compile_psd(pointer), compile_psd(flat))

    def test_kd_pure_variant_zero_fallback(self, no_per_node_fallback):
        pointer = build_private_kdtree(POINTS, DOMAIN, 3, 1.0, variant="kd-pure",
                                       rng=31, layout="pointer")
        flat = build_private_kdtree(POINTS, DOMAIN, 3, 1.0, variant="kd-pure",
                                    rng=31, layout="flat")
        assert flat.is_flat_native
        assert_engines_equal(compile_psd(pointer), compile_psd(flat))

    def test_median_method_override(self):
        psd = build_private_kdtree(POINTS, DOMAIN, 2, 1.0, variant="kd-standard",
                                   median_method="noisymean", rng=1)
        assert psd.name == "kd-standard"

    @pytest.mark.parametrize("seed", [3, 17])
    @pytest.mark.parametrize("height", [1, 6])
    def test_hilbert_layout_parity_zero_fallback(self, no_per_node_fallback, seed, height):
        kwargs = dict(height=height, epsilon=1.0, order=10, postprocess=True)
        pointer = build_private_hilbert_rtree(POINTS, DOMAIN, rng=seed,
                                              layout="pointer", **kwargs)
        flat = build_private_hilbert_rtree(POINTS, DOMAIN, rng=seed,
                                           layout="flat", **kwargs)
        assert flat.psd.is_flat_native
        assert_engines_equal(compile_psd(pointer.psd), compile_psd(flat.psd))

    @pytest.mark.slow
    @pytest.mark.parametrize("method", ["ss", "noisymean", "true", "ems"])
    def test_hilbert_all_methods_parity(self, method):
        kwargs = dict(height=5, epsilon=1.0, order=8, median_method=method,
                      postprocess=True)
        pointer = build_private_hilbert_rtree(POINTS, DOMAIN, rng=13,
                                              layout="pointer", **kwargs)
        flat = build_private_hilbert_rtree(POINTS, DOMAIN, rng=13,
                                           layout="flat", **kwargs)
        assert_engines_equal(compile_psd(pointer.psd), compile_psd(flat.psd))

    def test_boundary_points_still_exact(self):
        """Points exactly on the domain's top face keep both layouts identical
        (the reference routes a split landing on them to both children)."""
        gen = np.random.default_rng(0)
        pts = np.concatenate([uniform_points(500, DOMAIN, rng=gen),
                              np.array([[1.0, 1.0], [1.0, 0.4], [0.3, 1.0]])])
        pointer = build_psd(pts, DOMAIN, 3, KDSplit(median_method="em"),
                            epsilon=1.0, rng=5, layout="pointer")
        flat = build_psd(pts, DOMAIN, 3, KDSplit(median_method="em"),
                         epsilon=1.0, rng=5, layout="flat")
        assert_engines_equal(compile_psd(pointer), compile_psd(flat))

    def test_sampled_near_boundary_falls_back_correctly(self):
        """Sampled methods bail to the per-node path when points hug the top
        face — the builds must still match bitwise."""
        gen = np.random.default_rng(1)
        pts = np.concatenate([uniform_points(400, DOMAIN, rng=gen),
                              np.array([[1.0 - 1e-9, 0.5]])])
        pointer = build_psd(pts, DOMAIN, 2, KDSplit(median_method="ems"),
                            epsilon=1.0, rng=9, layout="pointer")
        flat = build_psd(pts, DOMAIN, 2, KDSplit(median_method="ems"),
                         epsilon=1.0, rng=9, layout="flat")
        assert_engines_equal(compile_psd(pointer), compile_psd(flat))


class TestHilbertPlanarCompile:
    def test_flat_compile_matches_pointer_walk(self):
        kwargs = dict(height=6, epsilon=1.0, order=10, postprocess=True)
        pointer = build_private_hilbert_rtree(POINTS, DOMAIN, rng=3,
                                              layout="pointer", **kwargs)
        flat = build_private_hilbert_rtree(POINTS, DOMAIN, rng=3,
                                           layout="flat", **kwargs)
        a = compile_hilbert_rtree(pointer)
        b = compile_hilbert_rtree(flat)
        assert flat.psd.is_flat_native  # the compile never materialised nodes
        assert_engines_equal(a, b)
        b.validate()

    def test_planar_queries_match_recursive(self):
        tree = build_private_hilbert_rtree(POINTS, DOMAIN, height=6, epsilon=1.0,
                                           order=10, rng=4, postprocess=True)
        engine = tree.compile()
        gen = np.random.default_rng(8)
        for _ in range(20):
            lo = gen.uniform(0.0, 0.6, 2)
            q = Rect(tuple(lo), tuple(lo + gen.uniform(0.05, 0.4, 2)))
            assert engine.range_query(q) == pytest.approx(
                tree.range_query(q), rel=1e-9, abs=1e-9)

    def test_node_bboxes_flat_equals_pointer(self):
        kwargs = dict(height=5, epsilon=1.0, order=8, rng=6)
        flat = build_private_hilbert_rtree(POINTS, DOMAIN, layout="flat", **kwargs)
        boxes_flat = flat.node_bboxes()
        assert flat.psd.is_flat_native
        pointer = build_private_hilbert_rtree(POINTS, DOMAIN, layout="pointer", **kwargs)
        boxes_pointer = pointer.node_bboxes()
        assert len(boxes_flat) == len(boxes_pointer)
        for (level_a, rect_a), (level_b, rect_b) in zip(boxes_flat, boxes_pointer):
            assert level_a == level_b
            assert rect_a.lo == rect_b.lo and rect_a.hi == rect_b.hi

    def test_range_bboxes_matches_scalar(self):
        curve = HilbertCurve(order=7, domain=Rect((0.0, 0.0), (4.0, 2.0)))
        gen = np.random.default_rng(11)
        lo = gen.integers(0, curve.max_index, 50)
        hi = np.minimum(lo + gen.integers(0, 5000, 50), curve.max_index)
        blo, bhi = curve.range_bboxes(lo, hi)
        for i in range(lo.size):
            rect = curve.range_bbox(int(lo[i]), int(hi[i]))
            assert tuple(blo[i]) == rect.lo
            assert tuple(bhi[i]) == rect.hi

    def test_range_bboxes_full_and_single(self):
        curve = HilbertCurve(order=5, domain=Rect((0.0, 0.0), (1.0, 1.0)))
        blo, bhi = curve.range_bboxes([0, 17], [curve.max_index, 17])
        rect_full = curve.range_bbox(0, curve.max_index)
        rect_one = curve.range_bbox(17, 17)
        assert tuple(blo[0]) == rect_full.lo and tuple(bhi[0]) == rect_full.hi
        assert tuple(blo[1]) == rect_one.lo and tuple(bhi[1]) == rect_one.hi


class TestCacheCounters:
    def test_hits_misses_properties(self):
        psd = build_psd(POINTS, DOMAIN, 3, KDSplit(), epsilon=1.0, rng=0)
        cached = CachedEngine(psd.compile())
        q = Rect((0.1, 0.1), (0.6, 0.6))
        assert (cached.hits, cached.misses) == (0, 0)
        cached.range_query(q)
        assert (cached.hits, cached.misses) == (0, 1)
        cached.range_query(q)
        cached.query_variance(q)
        assert (cached.hits, cached.misses) == (2, 1)

    def test_cli_query_stats(self, tmp_path, capsys):
        from repro.cli import main

        release = tmp_path / "release.json"
        assert main(["build", "--synthetic", "500", "--height", "3",
                     "--output", str(release)]) == 0
        capsys.readouterr()
        rect = "--rect=-123,46,-121,48"
        assert main(["query", str(release), "--engine", "flat", "--stats",
                     rect, rect]) == 0
        captured = capsys.readouterr()
        assert "cache stats:" in captured.err
        assert "misses" in captured.err
