"""Tests for the split rules and the generic PSD builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builder import BudgetSplit, build_psd, populate_noisy_counts
from repro.core.splits import CellKDSplit, HybridSplit, KDSplit, QuadSplit, grid_median_along_axis
from repro.data import uniform_points
from repro.geometry import Domain, Rect
from repro.index import UniformGrid


@pytest.fixture(scope="module")
def domain():
    return Domain.unit(2)


@pytest.fixture(scope="module")
def points(domain):
    return uniform_points(3_000, domain, rng=np.random.default_rng(5))


def children_partition_points(children, total_points):
    counted = sum(pts.shape[0] for _, pts in children)
    assert counted == total_points


# ----------------------------------------------------------------------
# Split rules
# ----------------------------------------------------------------------
class TestQuadSplit:
    def test_four_equal_children(self, domain, points):
        rule = QuadSplit()
        children = rule.split(domain.rect, points, level=3, height=3, domain=domain, epsilon_median=0.0)
        assert len(children) == 4
        areas = [rect.area for rect, _ in children]
        assert all(a == pytest.approx(0.25) for a in areas)
        children_partition_points(children, points.shape[0])

    def test_not_data_dependent(self):
        rule = QuadSplit()
        assert not rule.is_data_dependent(3, 5)
        assert rule.data_dependent_levels(5) == []


class TestKDSplit:
    def test_fanout_four_and_partition(self, domain, points, rng):
        rule = KDSplit(median_method="true")
        children = rule.split(domain.rect, points, level=2, height=4, domain=domain,
                              epsilon_median=0.0, rng=rng)
        assert len(children) == 4
        children_partition_points(children, points.shape[0])

    def test_true_median_balances_counts(self, domain, points, rng):
        rule = KDSplit(median_method="true")
        children = rule.split(domain.rect, points, level=2, height=4, domain=domain,
                              epsilon_median=0.0, rng=rng)
        counts = [pts.shape[0] for _, pts in children]
        assert max(counts) - min(counts) <= points.shape[0] * 0.05 + 4

    def test_private_median_split_stays_inside_rect(self, domain, points, rng):
        rule = KDSplit(median_method="em")
        children = rule.split(domain.rect, points, level=2, height=4, domain=domain,
                              epsilon_median=0.5, rng=rng)
        for rect, _ in children:
            assert domain.rect.contains_rect(rect)

    def test_zero_budget_falls_back_to_midpoint(self, domain, points, rng):
        rule = KDSplit(median_method="em")
        children = rule.split(domain.rect, points, level=2, height=4, domain=domain,
                              epsilon_median=0.0, rng=rng)
        # With the midpoint fallback the children are the four equal quadrants.
        areas = sorted(rect.area for rect, _ in children)
        assert areas == pytest.approx([0.25, 0.25, 0.25, 0.25])

    def test_is_data_dependent_everywhere(self):
        assert KDSplit().data_dependent_levels(4) == [1, 2, 3, 4]


class TestHybridSplit:
    def test_switch_level(self):
        rule = HybridSplit(kd_levels=2)
        assert rule.is_data_dependent(5, 5)
        assert rule.is_data_dependent(4, 5)
        assert not rule.is_data_dependent(3, 5)
        assert rule.data_dependent_levels(5) == [4, 5]

    def test_quad_below_switch(self, domain, points, rng):
        rule = HybridSplit(kd_levels=1, median_method="true")
        children = rule.split(domain.rect, points, level=2, height=5, domain=domain,
                              epsilon_median=0.0, rng=rng)
        areas = sorted(rect.area for rect, _ in children)
        assert areas == pytest.approx([0.25, 0.25, 0.25, 0.25])

    def test_negative_levels_rejected(self):
        with pytest.raises(ValueError):
            HybridSplit(kd_levels=-1)


class TestCellKDSplit:
    @pytest.fixture(scope="class")
    def noisy_grid(self, domain, points):
        grid = UniformGrid(domain=domain, shape=(32, 32)).fit(points)
        return grid.noisy_counts(50.0, rng=np.random.default_rng(0))

    def test_requires_grid(self):
        with pytest.raises(ValueError):
            CellKDSplit(noisy_grid=None)

    def test_fanout_and_partition(self, domain, points, noisy_grid, rng):
        rule = CellKDSplit(noisy_grid=noisy_grid)
        children = rule.split(domain.rect, points, level=2, height=4, domain=domain,
                              epsilon_median=0.0, rng=rng)
        assert len(children) == 4
        children_partition_points(children, points.shape[0])

    def test_grid_median_close_to_true_median(self, domain, points, noisy_grid):
        est = grid_median_along_axis(noisy_grid, domain.rect, axis=0)
        assert est == pytest.approx(np.median(points[:, 0]), abs=0.1)

    def test_grid_median_on_disjoint_rect(self, noisy_grid):
        outside = Rect((5.0, 5.0), (6.0, 6.0))
        assert grid_median_along_axis(noisy_grid, outside, axis=0) == pytest.approx(5.5)

    def test_grid_median_invalid_axis(self, domain, noisy_grid):
        with pytest.raises(ValueError):
            grid_median_along_axis(noisy_grid, domain.rect, axis=3)

    def test_not_data_dependent(self, noisy_grid):
        assert CellKDSplit(noisy_grid=noisy_grid).data_dependent_levels(5) == []


# ----------------------------------------------------------------------
# BudgetSplit and builder
# ----------------------------------------------------------------------
class TestBudgetSplit:
    def test_default_70_30(self):
        count, median = BudgetSplit().partition(1.0, data_dependent=True)
        assert count == pytest.approx(0.7)
        assert median == pytest.approx(0.3)

    def test_data_independent_gets_everything(self):
        count, median = BudgetSplit(count_fraction=0.5).partition(1.0, data_dependent=False)
        assert count == pytest.approx(1.0)
        assert median == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BudgetSplit(count_fraction=0.0)
        with pytest.raises(ValueError):
            BudgetSplit().partition(0.0, data_dependent=True)


class TestBuilder:
    def test_complete_tree_structure(self, domain, points):
        psd = build_psd(points, domain, 3, QuadSplit(), epsilon=1.0, rng=1)
        assert psd.is_complete()
        assert psd.node_count() == sum(4**i for i in range(4))
        assert psd.height == 3 and psd.fanout == 4

    def test_true_counts_partition_data(self, domain, points):
        psd = build_psd(points, domain, 3, QuadSplit(), epsilon=1.0, rng=1)
        assert psd.root._true_count == points.shape[0]
        for node in psd.nodes():
            if not node.is_leaf:
                assert node._true_count == sum(c._true_count for c in node.children)

    def test_accountant_charges_sum_to_epsilon(self, domain, points):
        psd = build_psd(points, domain, 3, KDSplit(median_method="em"), epsilon=0.8,
                        count_budget="geometric", rng=2)
        acc = psd.accountant
        assert acc.path_epsilon == pytest.approx(0.8)
        assert acc.per_kind["count"] == pytest.approx(0.56)
        assert acc.per_kind["median"] == pytest.approx(0.24)
        acc.assert_within_budget()

    def test_noiseless_counts_for_baselines(self, domain, points):
        psd = build_psd(points, domain, 2, KDSplit(median_method="true"), epsilon=1.0,
                        budget_split=BudgetSplit(count_fraction=1.0), noiseless_counts=True, rng=3)
        for node in psd.nodes():
            assert node.noisy_count == node._true_count

    def test_zero_budget_levels_release_nothing(self, domain, points):
        psd = build_psd(points, domain, 2, QuadSplit(), epsilon=1.0, count_budget="leaf-only", rng=4)
        assert np.isnan(psd.root.noisy_count)
        for leaf in psd.leaves():
            assert np.isfinite(leaf.noisy_count)

    def test_postprocess_and_prune_flags(self, domain, points):
        # 3 000 points over 16 level-1 nodes gives ~190 per node; a threshold of
        # 250 therefore cuts every level-1 subtree while keeping level 2.
        psd = build_psd(points, domain, 3, QuadSplit(), epsilon=1.0, rng=5,
                        postprocess=True, prune_threshold=250.0)
        assert all(n.post_count is not None for n in psd.nodes())
        assert psd.node_count() < sum(4**i for i in range(4))

    def test_invalid_parameters(self, domain, points):
        with pytest.raises(ValueError):
            build_psd(points, domain, -1, QuadSplit(), epsilon=1.0)
        with pytest.raises(ValueError):
            build_psd(points, domain, 2, QuadSplit(), epsilon=0.0)

    def test_populate_noisy_counts_redraws(self, domain, points):
        psd = build_psd(points, domain, 2, QuadSplit(), epsilon=1.0, rng=6)
        first = psd.root.noisy_count
        populate_noisy_counts(psd, rng=np.random.default_rng(123))
        assert psd.root.noisy_count != first

    def test_points_outside_domain_rejected(self, domain):
        bad = np.array([[0.5, 1.5]])
        with pytest.raises(ValueError):
            build_psd(bad, domain, 2, QuadSplit(), epsilon=1.0)

    def test_height_zero_single_node(self, domain, points):
        psd = build_psd(points, domain, 0, QuadSplit(), epsilon=1.0, rng=7)
        assert psd.node_count() == 1
        assert psd.root.is_leaf

    def test_empty_dataset(self, domain):
        psd = build_psd(np.empty((0, 2)), domain, 2, QuadSplit(), epsilon=1.0, rng=8)
        assert psd.root._true_count == 0
        assert psd.is_complete()

    def test_noise_statistics_match_level_epsilon(self, domain, points):
        """Leaf-level noise should have the variance implied by the leaf epsilon."""
        psd = build_psd(points, domain, 4, QuadSplit(), epsilon=1.0, count_budget="geometric",
                        rng=np.random.default_rng(9))
        leaves = psd.leaves()
        residuals = np.array([leaf.noisy_count - leaf._true_count for leaf in leaves])
        eps_leaf = psd.count_epsilons[0]
        expected_var = 2.0 / eps_leaf**2
        assert np.var(residuals) == pytest.approx(expected_var, rel=0.4)
