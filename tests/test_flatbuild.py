"""Tests for the flat-native build pipeline (structure-of-arrays construction).

The contract under test: ``build_psd(layout="flat")`` and
``build_psd(layout="pointer")`` are **bit-for-bit interchangeable** for the
same seeded generator — identical structure, released counts, OLS estimates,
pruning decisions, query answers via the recursive backend, and accountant
charges — while the flat pipeline never materialises pointer nodes.  Plus the
regression for the stale-engine bug in ``populate_noisy_counts`` and the OLS
property suite (vectorized == recursive == brute force).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_psd, populate_noisy_counts
from repro.core.budget import LevelSkippingBudget
from repro.core.flatbuild import FlatTree, flatten_tree, ols_beta
from repro.core.hilbert_rtree import BinaryMedianSplit, build_private_hilbert_rtree
from repro.core.kdtree import build_private_kdtree
from repro.core.postprocess import apply_ols, check_consistency, ols_estimate_tree
from repro.core.splits import HybridSplit, KDSplit, QuadSplit
from repro.data import uniform_points
from repro.engine.flat import COMPILED_ENGINE_KEY, compile_psd
from repro.geometry import Domain, Rect

DOMAIN = Domain.unit(2)
POINTS = uniform_points(1_500, DOMAIN, rng=np.random.default_rng(7))

#: (label, split-rule factory, sensible max height) for the parity sweeps.
RULES = [
    ("quad", lambda: QuadSplit(), 4),
    ("kd-em", lambda: KDSplit(median_method="em"), 3),
    ("kd-hybrid", lambda: HybridSplit(kd_levels=2, median_method="em"), 4),
]

BUDGETS = ["uniform", "geometric", LevelSkippingBudget(stride=2)]


def build_pair(rule, height, budget, seed=11, **kwargs):
    """The same build under both layouts from identically seeded generators."""
    pointer = build_psd(POINTS, DOMAIN, height, rule, epsilon=1.0, count_budget=budget,
                        rng=seed, layout="pointer", **kwargs)
    flat = build_psd(POINTS, DOMAIN, height, rule, epsilon=1.0, count_budget=budget,
                     rng=seed, layout="flat", **kwargs)
    return pointer, flat


def bfs_nodes(psd):
    order = [psd.root]
    i = 0
    while i < len(order):
        order.extend(order[i].children)
        i += 1
    return order


def assert_same_tree(pointer_psd, flat_psd):
    """Bitwise structural and count equality, checked on the raw flat arrays."""
    tree = flat_psd.flat_tree
    assert tree is not None, "flat build must stay flat-native until nodes are requested"
    order = bfs_nodes(pointer_psd)
    assert len(order) == tree.n_nodes
    assert np.array_equal(np.array([n.rect.lo for n in order]), tree.lo)
    assert np.array_equal(np.array([n.rect.hi for n in order]), tree.hi)
    assert np.array_equal(np.array([n.level for n in order]), tree.level)
    assert np.array_equal(np.array([n._true_count for n in order]), tree.true_count)
    assert np.array_equal(np.array([n.noisy_count for n in order]),
                          tree.noisy_count, equal_nan=True)
    posts = [n.post_count for n in order]
    if tree.post_count is None:
        assert all(p is None for p in posts)
    else:
        assert np.array_equal(np.array(posts, dtype=float), tree.post_count)
    leaf_flags = np.array([n.is_leaf for n in order])
    assert np.array_equal(leaf_flags, tree.is_leaf)


class TestLayoutParity:
    @pytest.mark.parametrize("label,make_rule,height", RULES)
    @pytest.mark.parametrize("budget", BUDGETS, ids=["uniform", "geometric", "level-skip"])
    def test_structure_counts_and_ols_bitwise(self, label, make_rule, height, budget):
        pointer_psd, flat_psd = build_pair(make_rule(), height, budget, postprocess=True)
        assert_same_tree(pointer_psd, flat_psd)

    @pytest.mark.parametrize("height", [0, 1, 3])
    def test_heights_including_degenerate(self, height):
        pointer_psd, flat_psd = build_pair(QuadSplit(), height, "geometric", postprocess=False)
        assert_same_tree(pointer_psd, flat_psd)

    @pytest.mark.parametrize("label,make_rule,height", RULES)
    def test_query_answers_match(self, label, make_rule, height):
        pointer_psd, flat_psd = build_pair(make_rule(), height, "geometric", postprocess=True)
        rng = np.random.default_rng(5)
        for _ in range(25):
            lo = rng.uniform(0.0, 0.6, 2)
            q = Rect(tuple(lo), tuple(lo + rng.uniform(0.05, 0.4, 2)))
            reference = pointer_psd.range_query(q)
            # Recursive backend over the lazily materialised view: bitwise.
            assert flat_psd.range_query(q) == reference
            # Compiled engine: n(Q) exact, estimate/Err within the engine's
            # established float-summation tolerance.
            assert flat_psd.nodes_touched(q, backend="flat") == pointer_psd.nodes_touched(q)
            assert flat_psd.range_query(q, backend="flat") == pytest.approx(reference, rel=1e-9, abs=1e-9)
            assert flat_psd.query_variance(q, backend="flat") == pytest.approx(
                pointer_psd.query_variance(q), rel=1e-9, abs=1e-12)

    @pytest.mark.parametrize("label,make_rule,height", RULES)
    def test_pruning_matches(self, label, make_rule, height):
        pointer_psd, flat_psd = build_pair(make_rule(), height, "geometric",
                                           postprocess=True, prune_threshold=40.0)
        assert flat_psd.is_flat_native
        assert flat_psd.node_count() == pointer_psd.node_count()
        assert flat_psd.leaf_count() == len(pointer_psd.leaves())
        assert_same_tree(pointer_psd, flat_psd)

    def test_prune_removed_counts_equal(self):
        from repro.core.pruning import prune_low_count_subtrees

        pointer_psd, flat_psd = build_pair(QuadSplit(), 4, "geometric", postprocess=True)
        removed_pointer = prune_low_count_subtrees(pointer_psd, 30.0)
        removed_flat = prune_low_count_subtrees(flat_psd, 30.0)
        assert removed_pointer == removed_flat > 0
        assert pointer_psd.node_count() == flat_psd.node_count()
        assert_same_tree(pointer_psd, flat_psd)

    def test_accountant_charges_match(self):
        pointer_psd, flat_psd = build_pair(KDSplit(), 3, "geometric")
        a, b = pointer_psd.accountant, flat_psd.accountant
        assert a.path_epsilon == b.path_epsilon
        assert a.per_kind == b.per_kind

    def test_hilbert_rtree_parity(self):
        kwargs = dict(height=6, epsilon=1.0, order=10, postprocess=True)
        pointer_tree = build_private_hilbert_rtree(POINTS, DOMAIN, rng=3, layout="pointer", **kwargs)
        flat_tree = build_private_hilbert_rtree(POINTS, DOMAIN, rng=3, layout="flat", **kwargs)
        assert flat_tree.psd.is_flat_native
        assert_same_tree(pointer_tree.psd, flat_tree.psd)
        q = Rect((0.2, 0.1), (0.7, 0.8))
        assert flat_tree.range_query(q) == pointer_tree.range_query(q)

    def test_cell_kdtree_parity(self):
        kwargs = dict(height=3, epsilon=1.0, variant="kd-cell", cell_resolution=32)
        pointer_psd = build_private_kdtree(POINTS, DOMAIN, rng=9, layout="pointer", **kwargs)
        flat_psd = build_private_kdtree(POINTS, DOMAIN, rng=9, layout="flat", **kwargs)
        assert_same_tree(pointer_psd, flat_psd)

    def test_noiseless_counts_parity(self):
        pointer_psd, flat_psd = build_pair(KDSplit(median_method="true"), 3, "geometric",
                                           noiseless_counts=True)
        assert_same_tree(pointer_psd, flat_psd)
        tree = flat_psd.flat_tree
        assert np.array_equal(tree.noisy_count, tree.true_count.astype(float))

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError, match="layout"):
            build_psd(POINTS, DOMAIN, 2, QuadSplit(), epsilon=1.0, layout="linked-list")


class TestFlatNativeFacade:
    def test_build_stays_flat_through_whole_pipeline(self):
        psd = build_psd(POINTS, DOMAIN, 4, QuadSplit(), epsilon=1.0,
                        postprocess=True, prune_threshold=20.0)
        assert psd.is_flat_native
        # Batch serving straight from the arrays keeps it flat too.
        engine = psd.compile()
        assert engine.validate() is engine
        assert psd.is_flat_native

    def test_materialisation_demotes_once(self):
        psd = build_psd(POINTS, DOMAIN, 3, QuadSplit(), epsilon=1.0)
        root = psd.root
        assert not psd.is_flat_native
        assert psd.flat_tree is None
        assert psd.root is root  # stable identity after demotion

    def test_mutating_materialised_view_is_visible_to_transforms(self):
        psd = build_psd(POINTS, DOMAIN, 2, QuadSplit(), epsilon=1.0)
        psd.root.children[0].children = []
        with pytest.raises(ValueError, match="complete"):
            apply_ols(psd)

    def test_strip_private_fields_stays_flat(self):
        psd = build_psd(POINTS, DOMAIN, 3, QuadSplit(), epsilon=1.0)
        psd.strip_private_fields()
        assert psd.is_flat_native
        assert not psd.flat_tree.true_count.any()
        assert all(n._true_count == 0 for n in psd.nodes())

    def test_compiled_engines_identical_across_layouts(self):
        pointer_psd, flat_psd = build_pair(QuadSplit(), 3, "geometric", postprocess=True)
        a = compile_psd(pointer_psd)
        b = compile_psd(flat_psd)
        for name in ("lo", "hi", "level", "released", "has_count", "is_leaf",
                     "child_start", "child_end", "area", "count_epsilons", "level_variance"):
            assert np.array_equal(getattr(a, name), getattr(b, name)), name
        b.validate()

    def test_requires_exactly_one_backing(self):
        from repro.core.tree import PrivateSpatialDecomposition

        with pytest.raises(ValueError, match="exactly one"):
            PrivateSpatialDecomposition(domain=DOMAIN, height=0, count_epsilons=(1.0,))


class TestStaleEngineRegression:
    """``populate_noisy_counts`` re-randomizes the released counts, so any
    memoised flat engine must be dropped — previously it kept serving the old
    counts."""

    def test_flat_backend_sees_fresh_counts(self):
        psd = build_psd(POINTS, DOMAIN, 3, QuadSplit(), epsilon=1.0, rng=0)
        q = Rect((0.1, 0.1), (0.9, 0.9))
        before = psd.range_query(q, backend="flat")
        assert COMPILED_ENGINE_KEY in psd.metadata
        populate_noisy_counts(psd, rng=12345)
        assert COMPILED_ENGINE_KEY not in psd.metadata
        after = psd.range_query(q, backend="flat")
        assert after != before
        # and the re-compiled engine agrees with the recursive reference
        assert after == pytest.approx(psd.range_query(q), rel=1e-9, abs=1e-9)

    def test_pointer_backed_trees_also_invalidate(self):
        psd = build_psd(POINTS, DOMAIN, 3, QuadSplit(), epsilon=1.0, rng=0, layout="pointer")
        q = Rect((0.2, 0.2), (0.8, 0.8))
        psd.range_query(q, backend="flat")
        assert COMPILED_ENGINE_KEY in psd.metadata
        populate_noisy_counts(psd, rng=999)
        assert COMPILED_ENGINE_KEY not in psd.metadata
        assert psd.range_query(q, backend="flat") == pytest.approx(
            psd.range_query(q), rel=1e-9, abs=1e-9)


def brute_force_ols(psd):
    """Direct weighted-least-squares solve (the slow definitional reference)."""
    nodes = list(psd.nodes())
    leaves = [n for n in nodes if n.is_leaf]
    leaf_index = {id(n): i for i, n in enumerate(leaves)}
    H = np.zeros((len(nodes), len(leaves)))
    weights = np.zeros(len(nodes))
    y = np.zeros(len(nodes))
    for row, node in enumerate(nodes):
        weights[row] = psd.count_epsilons[node.level]
        y[row] = node.noisy_count if np.isfinite(node.noisy_count) else 0.0
        for descendant in node.iter_subtree():
            if descendant.is_leaf:
                H[row, leaf_index[id(descendant)]] = 1.0
    A = np.diag(weights) @ H
    b = np.diag(weights) @ y
    leaf_beta, *_ = np.linalg.lstsq(A, b, rcond=None)
    return {id(n): float(H[r] @ leaf_beta) for r, n in enumerate(nodes)}


HILBERT_DOMAIN = Domain.from_bounds((0.0,), (1.0,), name="hilbert-index")

OLS_VARIANTS = [
    ("quad", lambda h, seed, budget: build_psd(
        POINTS, DOMAIN, h, QuadSplit(), epsilon=1.0,
        count_budget=budget, rng=seed, layout="pointer")),
    ("kd", lambda h, seed, budget: build_psd(
        POINTS, DOMAIN, h, KDSplit(median_method="em"), epsilon=1.0,
        count_budget=budget, rng=seed, layout="pointer")),
    ("hilbert", lambda h, seed, budget: build_psd(
        POINTS[:, :1], HILBERT_DOMAIN, h, BinaryMedianSplit(median_method="em"),
        epsilon=1.0, count_budget=budget, rng=seed, layout="pointer")),
]


class TestOLSProperty:
    """Vectorized OLS == recursive OLS == brute-force WLS, heights 0-6."""

    @pytest.mark.parametrize("label,build", OLS_VARIANTS)
    @pytest.mark.parametrize("budget", BUDGETS, ids=["uniform", "geometric", "level-skip"])
    @pytest.mark.parametrize("height", [0, 1, 2, 3, 6])
    def test_vectorized_equals_recursive(self, label, build, budget, height):
        if label != "hilbert" and height == 6:
            height = 4  # keep the fanout-4 reference builds quick; 6 covered below
        psd = build(height, 21, budget)
        # vectorized, non-mutating
        vectorized = ols_estimate_tree(psd)
        assert all(n.post_count is None for n in psd.nodes())
        # recursive reference, in place
        apply_ols(psd)
        for node in psd.nodes():
            assert vectorized[id(node)] == node.post_count  # bitwise
        assert check_consistency(psd) < 1e-6

    @pytest.mark.parametrize("label,build", OLS_VARIANTS)
    @pytest.mark.parametrize("height", [1, 2, 3])
    def test_matches_brute_force(self, label, build, height):
        psd = build(height, 31, "geometric")
        expected = brute_force_ols(psd)
        estimates = ols_estimate_tree(psd)
        worst = max(abs(estimates[id(n)] - expected[id(n)]) for n in psd.nodes())
        assert worst < 1e-6

    def test_flat_quad_height6_consistency(self):
        psd = build_psd(POINTS, DOMAIN, 6, QuadSplit(), epsilon=1.0,
                        count_budget="geometric", rng=4, postprocess=True)
        assert psd.is_flat_native
        tree = psd.flat_tree
        # consistency directly on the arrays: parent post == sum of children
        internal = ~tree.is_leaf
        sums = np.add.reduceat(tree.post_count, tree.child_start[internal])
        assert np.max(np.abs(tree.post_count[internal] - sums)) < 1e-6
        assert check_consistency(psd) < 1e-6  # and via the materialised view

    def test_level_skipping_budget_flat_vs_pointer(self):
        budget = LevelSkippingBudget(stride=2)
        pointer_psd, flat_psd = build_pair(QuadSplit(), 4, budget, postprocess=True)
        assert_same_tree(pointer_psd, flat_psd)

    def test_ols_beta_rejects_zero_leaf_budget(self):
        psd = build_psd(POINTS, DOMAIN, 2, QuadSplit(), epsilon=1.0, layout="pointer")
        _, arrays = flatten_tree(psd)
        with pytest.raises(ValueError, match="leaf budget"):
            ols_beta(arrays.level, arrays.parent, arrays.noisy_count,
                     (0.0, 0.5, 0.5), psd.fanout, psd.height)

    def test_ols_estimate_tree_requires_complete(self):
        psd = build_psd(POINTS, DOMAIN, 2, QuadSplit(), epsilon=1.0, prune_threshold=1e9)
        with pytest.raises(ValueError, match="complete"):
            ols_estimate_tree(psd)


class TestFlatTreeInternals:
    def test_level_slices_cover_array(self):
        psd = build_psd(POINTS, DOMAIN, 3, QuadSplit(), epsilon=1.0)
        tree = psd.flat_tree
        total = 0
        for level in range(tree.height, -1, -1):
            sl = tree.level_slice(level)
            assert sl.start == total
            total = sl.stop
            assert np.all(tree.level[sl] == level)
        assert total == tree.n_nodes

    def test_flatten_round_trips_through_materialise(self):
        psd = build_psd(POINTS, DOMAIN, 3, KDSplit(), epsilon=1.0, rng=2, postprocess=True)
        tree_before = psd.flat_tree
        snapshot = {
            "lo": tree_before.lo.copy(), "noisy": tree_before.noisy_count.copy(),
            "post": tree_before.post_count.copy(), "true": tree_before.true_count.copy(),
        }
        psd.root  # demote to pointers
        _, tree_after = flatten_tree(psd)
        assert np.array_equal(tree_after.lo, snapshot["lo"])
        assert np.array_equal(tree_after.noisy_count, snapshot["noisy"])
        assert np.array_equal(tree_after.post_count, snapshot["post"])
        assert np.array_equal(tree_after.true_count, snapshot["true"])
        assert isinstance(tree_after, FlatTree)
