"""Tests for the OLS post-processing (Section 5): correctness, consistency, optimality."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import apply_ols, build_psd, check_consistency, ols_estimate_tree
from repro.core.builder import populate_noisy_counts
from repro.core.splits import QuadSplit
from repro.data import uniform_points
from repro.geometry import Domain


def build_quad_psd(n_points=400, height=3, epsilon=1.0, budget="geometric", seed=0, postprocess=False):
    domain = Domain.unit(2)
    points = uniform_points(n_points, domain, rng=np.random.default_rng(seed))
    return build_psd(points, domain, height, QuadSplit(), epsilon=epsilon,
                     count_budget=budget, rng=seed + 1, postprocess=postprocess)


def brute_force_ols(psd):
    """Solve the weighted least-squares problem directly (reference implementation)."""
    nodes = list(psd.nodes())
    leaves = [n for n in nodes if n.is_leaf]
    leaf_index = {id(n): i for i, n in enumerate(leaves)}
    H = np.zeros((len(nodes), len(leaves)))
    weights = np.zeros(len(nodes))
    y = np.zeros(len(nodes))
    for row, node in enumerate(nodes):
        eps = psd.count_epsilons[node.level]
        weights[row] = eps
        y[row] = node.noisy_count if np.isfinite(node.noisy_count) else 0.0
        for descendant in node.iter_subtree():
            if descendant.is_leaf:
                H[row, leaf_index[id(descendant)]] = 1.0
    A = np.diag(weights) @ H
    b = np.diag(weights) @ y
    leaf_beta, *_ = np.linalg.lstsq(A, b, rcond=None)
    return {id(n): float(H[r] @ leaf_beta) for r, n in enumerate(nodes)}


class TestAgainstBruteForce:
    @pytest.mark.parametrize("budget", ["uniform", "geometric", "leaf-only"])
    def test_matches_weighted_least_squares(self, budget):
        psd = build_quad_psd(height=3, budget=budget, seed=3)
        expected = brute_force_ols(psd)
        apply_ols(psd)
        for node in psd.nodes():
            assert node.post_count == pytest.approx(expected[id(node)], abs=1e-6)

    def test_matches_on_binary_tree(self):
        from repro.core.hilbert_rtree import BinaryMedianSplit

        domain = Domain.from_bounds((0.0,), (1.0,))
        points = np.random.default_rng(0).random((300, 1))
        psd = build_psd(points, domain, 4, BinaryMedianSplit(median_method="true"),
                        epsilon=1.0, count_budget="geometric", rng=1)
        expected = brute_force_ols(psd)
        apply_ols(psd)
        for node in psd.nodes():
            assert node.post_count == pytest.approx(expected[id(node)], abs=1e-6)

    @given(st.integers(1, 4), st.sampled_from(["uniform", "geometric"]), st.integers(0, 100))
    @settings(max_examples=12, deadline=None)
    def test_property_small_random_trees(self, height, budget, seed):
        psd = build_quad_psd(n_points=120, height=height, budget=budget, seed=seed)
        expected = brute_force_ols(psd)
        apply_ols(psd)
        worst = max(abs(node.post_count - expected[id(node)]) for node in psd.nodes())
        assert worst < 1e-6


class TestEstimatorProperties:
    def test_consistency(self):
        psd = build_quad_psd(height=4, seed=7)
        apply_ols(psd)
        assert check_consistency(psd) < 1e-6

    def test_post_counts_populated_for_every_node(self):
        psd = build_quad_psd(height=3)
        apply_ols(psd)
        assert all(node.post_count is not None for node in psd.nodes())

    def test_postprocessing_is_pure_released_data_transformation(self):
        """The OLS never looks at the true counts: zeroing them changes nothing."""
        psd_a = build_quad_psd(height=3, seed=11)
        psd_b = build_quad_psd(height=3, seed=11)
        for node in psd_b.nodes():
            node._true_count = 0
        apply_ols(psd_a)
        apply_ols(psd_b)
        for a, b in zip(psd_a.nodes(), psd_b.nodes()):
            assert a.post_count == pytest.approx(b.post_count)

    def test_variance_reduction_on_root(self):
        """Averaged over many noise draws, the OLS root count beats the raw noisy root count."""
        domain = Domain.unit(2)
        points = uniform_points(500, domain, rng=np.random.default_rng(2))
        psd = build_psd(points, domain, 3, QuadSplit(), epsilon=0.4, count_budget="uniform", rng=5)
        true_root = psd.root._true_count
        raw_errors, post_errors = [], []
        rng = np.random.default_rng(99)
        for _ in range(80):
            populate_noisy_counts(psd, rng=rng)
            raw_errors.append((psd.root.noisy_count - true_root) ** 2)
            apply_ols(psd)
            post_errors.append((psd.root.post_count - true_root) ** 2)
        assert np.mean(post_errors) < np.mean(raw_errors)

    def test_unbiasedness_of_root_estimate(self):
        domain = Domain.unit(2)
        points = uniform_points(300, domain, rng=np.random.default_rng(4))
        psd = build_psd(points, domain, 2, QuadSplit(), epsilon=1.0, count_budget="geometric", rng=6)
        true_root = psd.root._true_count
        rng = np.random.default_rng(77)
        estimates = []
        for _ in range(300):
            populate_noisy_counts(psd, rng=rng)
            apply_ols(psd)
            estimates.append(psd.root.post_count)
        assert np.mean(estimates) == pytest.approx(true_root, abs=0.15 * true_root ** 0.5 + 3)

    def test_leaf_only_budget_internal_nodes_become_leaf_sums(self):
        psd = build_quad_psd(height=2, budget="leaf-only", seed=13)
        apply_ols(psd)
        for node in psd.nodes():
            if not node.is_leaf:
                child_sum = sum(c.post_count for c in node.children)
                assert node.post_count == pytest.approx(child_sum, abs=1e-9)
        # With no internal information, the leaf estimates equal the leaf noisy counts.
        for leaf in psd.leaves():
            assert leaf.post_count == pytest.approx(leaf.noisy_count, abs=1e-9)

    def test_ols_estimate_tree_does_not_mutate(self):
        psd = build_quad_psd(height=2)
        before = [n.post_count for n in psd.nodes()]
        estimates = ols_estimate_tree(psd)
        after = [n.post_count for n in psd.nodes()]
        assert before == after
        assert len(estimates) == psd.node_count()


class TestValidation:
    def test_requires_complete_tree(self):
        psd = build_quad_psd(height=2)
        psd.root.children[0].children = []  # truncate one subtree
        with pytest.raises(ValueError, match="complete"):
            apply_ols(psd)

    def test_requires_positive_leaf_budget(self):
        from repro.core.budget import CustomBudget

        domain = Domain.unit(2)
        points = uniform_points(100, domain, rng=np.random.default_rng(1))
        psd = build_psd(points, domain, 2, QuadSplit(), epsilon=1.0,
                        count_budget=CustomBudget(weights=(0.0, 1.0, 1.0)), rng=2)
        with pytest.raises(ValueError, match="leaf budget"):
            apply_ols(psd)

    def test_check_consistency_requires_postprocessing(self):
        psd = build_quad_psd(height=2)
        with pytest.raises(ValueError):
            check_consistency(psd)
