"""Tests for the crash-safe budget ledger (:mod:`repro.serve.ledger`).

The contract under test is the one that makes the serving layer safe to
crash: a charge is durable before it is granted (charge-before-answer), a
failed WAL write spends nothing (fail closed), and a replayed ledger's
per-analyst spend is **bitwise identical** to the pre-crash total — including
after a hard ``SIGKILL`` mid-stream and after a torn final record.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.privacy.accountant import BUDGET_TOLERANCE
from repro.serve import BudgetExceeded, BudgetLedger, LedgerError

#: Charges with awkward binary expansions: exactly the values where a
#: decimal round-trip would drift and only the hex path stays bitwise.
EPSILONS = [0.1, 0.07, 0.013, 0.2 / 3.0, 0.0101, 0.04, 0.1 / 7.0]


def test_charge_accumulates_and_refuses(tmp_path: Path) -> None:
    ledger = BudgetLedger(tmp_path / "wal.jsonl", default_cap=0.3)
    remaining = ledger.charge("alice", 0.1)
    assert remaining == pytest.approx(0.2)
    ledger.charge("alice", 0.1)
    ledger.charge("alice", 0.1)
    with pytest.raises(BudgetExceeded) as excinfo:
        ledger.charge("alice", 0.1)
    assert excinfo.value.analyst == "alice"
    assert excinfo.value.requested == pytest.approx(0.1)
    assert excinfo.value.remaining <= BUDGET_TOLERANCE
    # The refusal wrote nothing: seq counts only the three grants.
    assert ledger.seq == 3
    assert not ledger.try_charge("alice", 0.1)
    # Other analysts are unaffected (independent accounts).
    assert ledger.try_charge("bob", 0.1)
    ledger.close()


def test_charge_rejects_bad_inputs(tmp_path: Path) -> None:
    with pytest.raises(ValueError):
        BudgetLedger(tmp_path / "wal.jsonl", default_cap=0.0)
    ledger = BudgetLedger(tmp_path / "wal.jsonl")
    for epsilon in (0.0, -0.5):
        with pytest.raises(ValueError):
            ledger.charge("alice", epsilon)
    with pytest.raises(ValueError):
        ledger.set_cap("alice", 0.0)
    ledger.close()


def test_replay_is_bitwise_identical(tmp_path: Path) -> None:
    wal = tmp_path / "wal.jsonl"
    ledger = BudgetLedger(wal, default_cap=10.0)
    for i, epsilon in enumerate(EPSILONS):
        ledger.charge("alice" if i % 2 == 0 else "bob", epsilon, request_id=i + 1)
    before = {name: ledger.spend_hex(name) for name in ("alice", "bob")}
    before_accounts = ledger.accounts()
    seq = ledger.seq
    ledger.close()

    replayed = BudgetLedger(wal, default_cap=10.0)
    assert replayed.replayed_records == len(EPSILONS)
    assert replayed.seq == seq
    for name in ("alice", "bob"):
        assert replayed.spend_hex(name) == before[name]
    assert replayed.accounts() == before_accounts
    # The replayed ledger keeps serving: the next charge continues the seq.
    replayed.charge("alice", 0.01)
    assert replayed.seq == seq + 1
    replayed.close()


def test_torn_tail_is_truncated_and_survivable(tmp_path: Path) -> None:
    wal = tmp_path / "wal.jsonl"
    ledger = BudgetLedger(wal, default_cap=1.0)
    ledger.charge("alice", 0.1)
    ledger.charge("alice", 0.2)
    spend = ledger.spend_hex("alice")
    ledger.close()

    intact = wal.read_bytes()
    # A crash mid-append leaves a prefix of the next record with no newline.
    wal.write_bytes(intact + b'{"kind": "charge", "seq": 3, "analys')
    replayed = BudgetLedger(wal, default_cap=1.0)
    assert replayed.replayed_records == 2
    assert replayed.spend_hex("alice") == spend
    # The torn bytes are gone from disk, and the next append lands cleanly.
    assert wal.read_bytes() == intact
    replayed.charge("alice", 0.3)
    replayed.close()
    third = BudgetLedger(wal, default_cap=1.0)
    assert third.replayed_records == 3
    third.close()


def test_mid_file_corruption_raises(tmp_path: Path) -> None:
    wal = tmp_path / "wal.jsonl"
    ledger = BudgetLedger(wal, default_cap=1.0)
    ledger.charge("alice", 0.1)
    ledger.charge("alice", 0.1)
    ledger.close()
    lines = wal.read_bytes().splitlines(keepends=True)
    wal.write_bytes(lines[0] + b"NOT JSON AT ALL\n" + lines[1])
    with pytest.raises(LedgerError, match="corrupt record"):
        BudgetLedger(wal, default_cap=1.0)


def test_sequence_gap_raises(tmp_path: Path) -> None:
    wal = tmp_path / "wal.jsonl"
    ledger = BudgetLedger(wal, default_cap=1.0)
    ledger.charge("alice", 0.1)
    ledger.charge("alice", 0.1)
    ledger.charge("alice", 0.1)
    ledger.close()
    lines = wal.read_bytes().splitlines(keepends=True)
    wal.write_bytes(lines[0] + lines[2])  # drop the middle record
    with pytest.raises(LedgerError, match="sequence gap"):
        BudgetLedger(wal, default_cap=1.0)


def test_set_cap_is_durable(tmp_path: Path) -> None:
    wal = tmp_path / "wal.jsonl"
    ledger = BudgetLedger(wal, default_cap=0.1)
    ledger.set_cap("alice", 2.5)
    ledger.charge("alice", 1.0)  # would exceed the default cap
    ledger.close()
    replayed = BudgetLedger(wal, default_cap=0.1)
    assert replayed.remaining("alice") == pytest.approx(1.5)
    assert replayed.accounts()["alice"]["cap"] == 2.5
    replayed.close()


def test_wal_io_error_fails_closed(tmp_path: Path) -> None:
    wal = tmp_path / "wal.jsonl"
    fail = {"on": False}

    def hook(record):
        if fail["on"]:
            raise OSError("injected wal-io-error")

    ledger = BudgetLedger(wal, default_cap=1.0, io_hook=hook)
    ledger.charge("alice", 0.25)
    size = wal.stat().st_size
    spend = ledger.spend_hex("alice")

    fail["on"] = True
    with pytest.raises(OSError):
        ledger.charge("alice", 0.25)
    # Fail closed: nothing durable, nothing spent, seq unmoved.
    assert wal.stat().st_size == size
    assert ledger.spend_hex("alice") == spend
    assert ledger.seq == 1

    fail["on"] = False  # the disk recovers; service resumes where it was
    ledger.charge("alice", 0.25)
    assert ledger.seq == 2
    ledger.close()
    replayed = BudgetLedger(wal, default_cap=1.0)
    assert replayed.replayed_records == 2
    replayed.close()


def test_wal_is_human_auditable_json_lines(tmp_path: Path) -> None:
    wal = tmp_path / "wal.jsonl"
    ledger = BudgetLedger(wal, default_cap=1.0)
    ledger.set_cap("alice", 0.5)
    ledger.charge("alice", 0.125, request_id=41)
    ledger.close()
    records = [json.loads(line) for line in wal.read_text().splitlines()]
    assert [record["kind"] for record in records] == ["cap", "charge"]
    assert records[0]["cap"] == 0.5
    assert records[1] == {
        "analyst": "alice", "epsilon": 0.125, "epsilon_hex": (0.125).hex(),
        "kind": "charge", "request": 41, "seq": 2,
    }


_SIGKILL_CHILD = """
import os, signal, sys
sys.path.insert(0, {src!r})
from repro.serve import BudgetLedger
ledger = BudgetLedger(sys.argv[1], default_cap=100.0)
for i in range(25):
    ledger.charge("alice", 0.1 / 7.0)
    ledger.charge("bob", 0.2 / 3.0)
    # Report the durable spend after every round; the parent trusts only
    # the last line that made it out before the kill.
    print(ledger.spend_hex("alice"), ledger.spend_hex("bob"), flush=True)
    if i == 17:
        os.kill(os.getpid(), signal.SIGKILL)
"""


def test_sigkill_mid_stream_replays_exact_spend(tmp_path: Path) -> None:
    """Hard-kill a charging process; the WAL replay matches its last report.

    This is the crash-safety acceptance test: no atexit hooks, no flush-on
    -close grace — ``SIGKILL`` at an arbitrary point in the charge stream,
    then a fresh process replays the WAL and lands on exactly the spend the
    victim had durably granted (bitwise, via ``float.hex``).
    """
    src = str(Path(__file__).resolve().parent.parent / "src")
    wal = tmp_path / "wal.jsonl"
    proc = subprocess.run(
        [sys.executable, "-c", _SIGKILL_CHILD.format(src=src), str(wal)],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL
    reports = proc.stdout.strip().splitlines()
    assert reports, "child died before any durable charge"
    last_alice, last_bob = reports[-1].split()

    replayed = BudgetLedger(wal, default_cap=100.0)
    # The kill can land between a charge's fsync and its stdout report; the
    # WAL may therefore be *ahead* of the last report (wasted budget), never
    # behind it (lost spend) — rebuild the reported state by record count.
    assert replayed.replayed_records >= 2 * len(reports)
    check = BudgetLedger(tmp_path / "check.jsonl", default_cap=100.0)
    for record in [
        json.loads(line) for line in wal.read_text().splitlines()
    ][: 2 * len(reports)]:
        check.charge(record["analyst"], float.fromhex(record["epsilon_hex"]))
    assert check.spend_hex("alice") == last_alice
    assert check.spend_hex("bob") == last_bob
    replayed.close()
    check.close()


def test_context_manager_and_unknown_analyst(tmp_path: Path) -> None:
    with BudgetLedger(tmp_path / "wal.jsonl", default_cap=0.75) as ledger:
        assert ledger.spend("nobody") == 0.0
        assert ledger.remaining("nobody") == 0.75
        assert ledger.accounts() == {}
