"""End-to-end and statistical integration tests.

These exercise the whole pipeline the way a user of the library would —
dataset → private release → query answering — and check the statistical and
privacy-accounting properties the paper promises:

* private answers are unbiased and concentrate around the truth;
* the two optimisations (geometric budget, OLS) reduce measured error;
* every released structure's privacy spend matches the declared budget;
* the kd-true / kd-pure ordering of Figure 5 holds (count noise is cheap,
  median noise is what hurts);
* the released tree is usable after stripping all private fields.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    build_private_hilbert_rtree,
    build_private_kdtree,
    build_private_quadtree,
)
from repro.data import road_intersections
from repro.experiments.common import evaluate_tree
from repro.geometry import TIGER_DOMAIN
from repro.queries import QueryShape, generate_workload, median_relative_error


@pytest.fixture(scope="module")
def points():
    return road_intersections(n=25_000, rng=np.random.default_rng(71))


@pytest.fixture(scope="module")
def workload(points):
    return generate_workload(points, TIGER_DOMAIN, QueryShape((8.0, 8.0)), n_queries=25, rng=72)


class TestAccuracyEndToEnd:
    def test_quad_opt_answers_large_queries_well(self, points, workload):
        psd = build_private_quadtree(points, TIGER_DOMAIN, height=7, epsilon=1.0,
                                     variant="quad-opt", rng=1)
        estimates = workload.evaluate(psd.range_query)
        err = median_relative_error(estimates, workload.true_answers)
        assert err < 0.10  # single-digit percent error, as in the paper

    def test_optimisations_reduce_error(self, points, workload):
        baseline = build_private_quadtree(points, TIGER_DOMAIN, height=7, epsilon=0.2,
                                          variant="quad-baseline", rng=2)
        optimised = build_private_quadtree(points, TIGER_DOMAIN, height=7, epsilon=0.2,
                                           variant="quad-opt", rng=2)
        err_base = median_relative_error(workload.evaluate(baseline.range_query), workload.true_answers)
        err_opt = median_relative_error(workload.evaluate(optimised.range_query), workload.true_answers)
        assert err_opt < err_base

    def test_kd_true_beats_kd_standard(self, points, workload):
        """Figure 5's message: count noise is cheap, median noise is what hurts."""
        true_medians = build_private_kdtree(points, TIGER_DOMAIN, height=5, epsilon=0.3,
                                            variant="kd-true", prune_threshold=32, rng=3)
        private_medians = build_private_kdtree(points, TIGER_DOMAIN, height=5, epsilon=0.3,
                                               variant="kd-noisymean", prune_threshold=32, rng=3)
        err_true = median_relative_error(workload.evaluate(true_medians.range_query), workload.true_answers)
        err_noisymean = median_relative_error(workload.evaluate(private_medians.range_query),
                                              workload.true_answers)
        assert err_true < err_noisymean

    def test_all_major_structures_answer_sanely(self, points, workload):
        builders = {
            "quad": lambda: build_private_quadtree(points, TIGER_DOMAIN, 6, 1.0, rng=4),
            "kd-hybrid": lambda: build_private_kdtree(points, TIGER_DOMAIN, 5, 1.0,
                                                      variant="kd-hybrid", prune_threshold=32, rng=5),
            "kd-cell": lambda: build_private_kdtree(points, TIGER_DOMAIN, 5, 1.0,
                                                    variant="kd-cell", rng=6),
            "hilbert": lambda: build_private_hilbert_rtree(points, TIGER_DOMAIN, 10, 1.0,
                                                           order=12, rng=7),
        }
        for name, build in builders.items():
            tree = build()
            errors = evaluate_tree(tree.range_query, {"(8, 8)": workload})
            assert errors["(8, 8)"] < 0.5, name

    def test_unbiasedness_of_private_answer(self, points):
        query = TIGER_DOMAIN.query_rect((-120.0, 47.0), (6.0, 6.0))
        truth = query.count_points(points, closed_hi=True)
        answers = []
        for seed in range(40):
            psd = build_private_quadtree(points, TIGER_DOMAIN, height=5, epsilon=0.5,
                                         variant="quad-geo", rng=seed)
            answers.append(psd.range_query(query))
        assert np.mean(answers) == pytest.approx(truth, rel=0.05)

    def test_more_budget_means_less_error(self, points, workload):
        errs = {}
        for eps in (0.05, 1.0):
            psd = build_private_quadtree(points, TIGER_DOMAIN, height=6, epsilon=eps,
                                         variant="quad-opt", rng=11)
            errs[eps] = median_relative_error(workload.evaluate(psd.range_query), workload.true_answers)
        assert errs[1.0] < errs[0.05]


class TestPrivacyAccountingEndToEnd:
    @pytest.mark.parametrize("builder, kwargs", [
        ("quad", {"variant": "quad-opt"}),
        ("kd", {"variant": "kd-standard", "prune_threshold": 32}),
        ("kd", {"variant": "kd-hybrid"}),
        ("kd", {"variant": "kd-cell"}),
        ("kd", {"variant": "kd-noisymean"}),
    ])
    def test_declared_budget_is_spent_exactly(self, points, builder, kwargs):
        epsilon = 0.7
        if builder == "quad":
            psd = build_private_quadtree(points, TIGER_DOMAIN, 5, epsilon, rng=12, **kwargs)
        else:
            psd = build_private_kdtree(points, TIGER_DOMAIN, 4, epsilon, rng=13, **kwargs)
        assert psd.accountant.path_epsilon == pytest.approx(epsilon)
        psd.accountant.assert_within_budget()

    def test_released_tree_usable_after_stripping_private_fields(self, points, workload):
        psd = build_private_quadtree(points, TIGER_DOMAIN, height=6, epsilon=1.0, rng=14)
        before = workload.evaluate(psd.range_query)
        psd.strip_private_fields()
        after = workload.evaluate(psd.range_query)
        assert np.allclose(before, after)

    def test_structure_of_data_dependent_tree_is_noisy(self, points):
        """Two kd-standard builds with different seeds produce different split values."""
        a = build_private_kdtree(points, TIGER_DOMAIN, 3, 0.5, variant="kd-standard", rng=15)
        b = build_private_kdtree(points, TIGER_DOMAIN, 3, 0.5, variant="kd-standard", rng=16)
        rects_a = sorted((n.rect.lo, n.rect.hi) for n in a.leaves())
        rects_b = sorted((n.rect.lo, n.rect.hi) for n in b.leaves())
        assert rects_a != rects_b
