"""Tests for query workloads, accuracy metrics, and the dataset generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    MEDIAN_STUDY_DOMAIN,
    RoadNetworkConfig,
    gaussian_cluster_points,
    median_study_dataset,
    mixture_1d,
    road_intersections,
    skewed_points,
    uniform_1d,
    uniform_points,
)
from repro.geometry import Domain, TIGER_DOMAIN
from repro.queries import (
    KD_QUERY_SHAPES,
    PAPER_QUERY_SHAPES,
    QueryShape,
    generate_workload,
    mean_relative_error,
    median_relative_error,
    rank_error,
    relative_error,
    relative_errors,
    workload_error_summary,
    workloads_for_shapes,
)


# ----------------------------------------------------------------------
# Query shapes and workloads
# ----------------------------------------------------------------------
class TestQueryShape:
    def test_label_generated(self):
        assert QueryShape((5.0, 5.0)).label == "(5, 5)"
        assert QueryShape((15.0, 0.2)).label == "(15, 0.2)"

    def test_square_helper(self):
        assert QueryShape.square(3.0).extents == (3.0, 3.0)

    def test_rejects_non_positive_extents(self):
        with pytest.raises(ValueError):
            QueryShape((0.0, 1.0))

    def test_paper_shape_lists(self):
        assert len(PAPER_QUERY_SHAPES) == 4
        assert len(KD_QUERY_SHAPES) == 3
        assert PAPER_QUERY_SHAPES[-1].extents == (15.0, 0.2)


class TestGenerateWorkload:
    def test_all_queries_nonzero_and_inside_domain(self, road_points, tiger_domain, rng):
        workload = generate_workload(road_points, tiger_domain, QueryShape((5.0, 5.0)),
                                     n_queries=40, rng=rng)
        assert len(workload) == 40
        assert np.all(workload.true_answers > 0)
        for query in workload.queries:
            assert tiger_domain.rect.contains_rect(query)

    def test_true_answers_match_brute_force(self, road_points, tiger_domain, rng):
        workload = generate_workload(road_points, tiger_domain, QueryShape((10.0, 10.0)),
                                     n_queries=10, rng=rng)
        for query, answer in workload:
            assert answer == query.count_points(road_points, closed_hi=True)

    def test_query_extents_respected(self, road_points, tiger_domain, rng):
        shape = QueryShape((2.0, 0.5))
        workload = generate_workload(road_points, tiger_domain, shape, n_queries=15, rng=rng)
        for query in workload.queries:
            widths = query.widths
            assert widths[0] <= 2.0 + 1e-9
            assert widths[1] <= 0.5 + 1e-9

    def test_gives_up_gracefully_on_empty_data(self, tiger_domain, rng):
        workload = generate_workload(np.empty((0, 2)), tiger_domain, QueryShape((1.0, 1.0)),
                                     n_queries=5, rng=rng, max_attempts_factor=3)
        assert len(workload) == 0

    def test_allow_zero_answers(self, tiger_domain, rng):
        workload = generate_workload(np.empty((0, 2)), tiger_domain, QueryShape((1.0, 1.0)),
                                     n_queries=5, rng=rng, require_nonzero=False)
        assert len(workload) == 5
        assert np.all(workload.true_answers == 0)

    def test_shape_dimension_mismatch(self, road_points, tiger_domain):
        with pytest.raises(ValueError):
            generate_workload(road_points, tiger_domain, QueryShape((1.0, 1.0, 1.0)), n_queries=3)

    def test_evaluate_applies_function(self, road_points, tiger_domain, rng):
        workload = generate_workload(road_points, tiger_domain, QueryShape((5.0, 5.0)),
                                     n_queries=5, rng=rng)
        answers = workload.evaluate(lambda q: 7.0)
        assert np.all(answers == 7.0)

    def test_workloads_for_shapes(self, road_points, tiger_domain, rng):
        workloads = workloads_for_shapes(road_points, tiger_domain, KD_QUERY_SHAPES,
                                         n_queries=5, rng=rng)
        assert len(workloads) == 3

    def test_reproducible_with_seed(self, road_points, tiger_domain):
        w1 = generate_workload(road_points, tiger_domain, QueryShape((5.0, 5.0)), n_queries=8, rng=9)
        w2 = generate_workload(road_points, tiger_domain, QueryShape((5.0, 5.0)), n_queries=8, rng=9)
        assert [q.lo for q in w1.queries] == [q.lo for q in w2.queries]


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_relative_error_basic(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)
        assert relative_error(90.0, 100.0) == pytest.approx(0.1)
        assert relative_error(0.0, 0.0) == pytest.approx(0.0)

    def test_relative_errors_vector(self):
        errs = relative_errors([10.0, 20.0], [10.0, 10.0])
        assert np.allclose(errs, [0.0, 1.0])
        with pytest.raises(ValueError):
            relative_errors([1.0], [1.0, 2.0])

    def test_median_and_mean_relative_error(self):
        est = [10.0, 20.0, 30.0]
        tru = [10.0, 10.0, 10.0]
        assert median_relative_error(est, tru) == pytest.approx(1.0)
        assert mean_relative_error(est, tru) == pytest.approx(1.0)

    def test_empty_workload_is_nan(self):
        assert np.isnan(median_relative_error([], []))

    def test_workload_error_summary(self):
        summary = workload_error_summary([11.0, 9.0], [10.0, 10.0])
        assert summary["n"] == 2
        assert summary["median"] == pytest.approx(0.1)

    def test_rank_error_perfect_median(self):
        values = np.arange(100, dtype=float)
        assert rank_error(values, 49.5, 0.0, 100.0) == pytest.approx(0.0, abs=0.01)

    def test_rank_error_outside_data_range_is_one(self):
        values = np.linspace(10, 20, 50)
        assert rank_error(values, 5.0, 0.0, 100.0) == 1.0
        assert rank_error(values, 95.0, 0.0, 100.0) == 1.0

    def test_rank_error_outside_domain_is_one(self):
        values = np.linspace(10, 20, 50)
        assert rank_error(values, -5.0, 0.0, 100.0) == 1.0

    def test_rank_error_extreme_in_range(self):
        values = np.linspace(0, 100, 101)
        assert rank_error(values, 0.0, 0.0, 100.0) == pytest.approx(0.5, abs=0.02)

    @given(st.lists(st.floats(0, 1000, allow_nan=False), min_size=2, max_size=100),
           st.floats(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_rank_error_always_in_unit_interval(self, values, estimate):
        err = rank_error(np.array(values), estimate, 0.0, 1000.0)
        assert 0.0 <= err <= 1.0


# ----------------------------------------------------------------------
# Dataset generators
# ----------------------------------------------------------------------
class TestSyntheticData:
    def test_uniform_points_in_domain(self, unit_domain, rng):
        pts = uniform_points(500, unit_domain, rng=rng)
        assert pts.shape == (500, 2)
        assert bool(np.all(unit_domain.contains(pts)))

    def test_gaussian_clusters_in_domain(self, unit_domain, rng):
        pts = gaussian_cluster_points(800, unit_domain, n_clusters=3, rng=rng)
        assert bool(np.all(unit_domain.contains(pts)))

    def test_gaussian_clusters_weight_validation(self, unit_domain, rng):
        with pytest.raises(ValueError):
            gaussian_cluster_points(10, unit_domain, n_clusters=2, weights=[1.0], rng=rng)

    def test_skewed_points_concentrate_near_origin(self, unit_domain, rng):
        pts = skewed_points(5_000, unit_domain, exponent=4.0, rng=rng)
        assert np.median(pts[:, 0]) < 0.2

    def test_uniform_1d_range(self, rng):
        values = uniform_1d(1_000, lo=5.0, hi=6.0, rng=rng)
        assert values.min() >= 5.0 and values.max() <= 6.0

    def test_mixture_1d_clipped(self, rng):
        values = mixture_1d(1_000, lo=0.0, hi=1.0, modes=4, rng=rng)
        assert values.min() >= 0.0 and values.max() <= 1.0

    def test_median_study_dataset_matches_paper_domain(self, rng):
        values = median_study_dataset(n=1_000, rng=rng)
        lo, hi = MEDIAN_STUDY_DOMAIN
        assert lo == 0.0 and hi == float(2**26)
        assert values.min() >= lo and values.max() <= hi

    def test_negative_counts_rejected(self, unit_domain):
        with pytest.raises(ValueError):
            uniform_points(-1, unit_domain)
        with pytest.raises(ValueError):
            uniform_1d(-5)


class TestRoadIntersections:
    def test_in_tiger_domain_and_shape(self, rng):
        pts = road_intersections(n=5_000, rng=rng)
        assert pts.shape == (5_000, 2)
        assert bool(np.all(TIGER_DOMAIN.contains(pts)))

    def test_zero_points(self):
        assert road_intersections(n=0).shape == (0, 2)

    def test_reproducible(self):
        a = road_intersections(n=1_000, rng=7)
        b = road_intersections(n=1_000, rng=7)
        assert np.array_equal(a, b)

    def test_skewness(self, rng):
        """The generator must be much more concentrated than uniform data (the
        property that makes the TIGER data interesting for PSDs)."""
        pts = road_intersections(n=40_000, rng=rng)
        unit = TIGER_DOMAIN.normalize(pts)
        hist, _, _ = np.histogram2d(unit[:, 0], unit[:, 1], bins=32, range=[[0, 1], [0, 1]])
        top_share = np.sort(hist.ravel())[::-1][:10].sum() / hist.sum()
        assert top_share > 0.25  # the densest 1% of cells hold over a quarter of the mass
        assert (hist == 0).mean() > 0.08  # and a sizeable fraction of cells are empty

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RoadNetworkConfig(city_fraction=0.5, corridor_fraction=0.5, background_fraction=0.5)
        with pytest.raises(ValueError):
            RoadNetworkConfig(n_cities=0)

    def test_rejects_non_2d_domain(self):
        with pytest.raises(ValueError):
            road_intersections(n=10, domain=Domain.unit(3))
