"""Tests for the PSD variant constructors: quadtrees, kd-trees, Hilbert R-trees."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    KDTREE_VARIANTS,
    QUADTREE_VARIANTS,
    build_private_hilbert_rtree,
    build_private_kdtree,
    build_private_quadtree,
)
from repro.core.quadtree import QuadtreeConfig
from repro.data import gaussian_cluster_points
from repro.geometry import Domain, Rect

EPSILON = 1.0
HEIGHT = 4


@pytest.fixture(scope="module")
def domain():
    return Domain.unit(2)


@pytest.fixture(scope="module")
def clustered_points(domain):
    return gaussian_cluster_points(4_000, domain, n_clusters=4, spread=0.05,
                                   rng=np.random.default_rng(31))


def total_epsilon(psd):
    return psd.accountant.path_epsilon


# ----------------------------------------------------------------------
# Quadtree variants
# ----------------------------------------------------------------------
class TestQuadtreeVariants:
    def test_registry_has_figure3_variants(self):
        assert set(QUADTREE_VARIANTS) == {"quad-baseline", "quad-geo", "quad-post", "quad-opt"}

    @pytest.mark.parametrize("variant", sorted(QUADTREE_VARIANTS))
    def test_each_variant_builds_and_respects_budget(self, domain, clustered_points, variant):
        psd = build_private_quadtree(clustered_points, domain, HEIGHT, EPSILON, variant=variant, rng=1)
        assert psd.name == variant
        assert psd.is_complete()
        assert total_epsilon(psd) == pytest.approx(EPSILON)
        psd.accountant.assert_within_budget()

    def test_postprocess_flag_respected(self, domain, clustered_points):
        baseline = build_private_quadtree(clustered_points, domain, HEIGHT, EPSILON,
                                          variant="quad-baseline", rng=2)
        optimised = build_private_quadtree(clustered_points, domain, HEIGHT, EPSILON,
                                           variant="quad-opt", rng=2)
        assert all(n.post_count is None for n in baseline.nodes())
        assert all(n.post_count is not None for n in optimised.nodes())

    def test_budget_strategies_differ(self, domain, clustered_points):
        geo = build_private_quadtree(clustered_points, domain, HEIGHT, EPSILON, variant="quad-geo", rng=3)
        uni = build_private_quadtree(clustered_points, domain, HEIGHT, EPSILON, variant="quad-baseline", rng=3)
        assert geo.count_epsilons[0] > uni.count_epsilons[0]
        assert sum(geo.count_epsilons) == pytest.approx(sum(uni.count_epsilons))

    def test_unknown_variant_raises(self, domain, clustered_points):
        with pytest.raises(KeyError):
            build_private_quadtree(clustered_points, domain, HEIGHT, EPSILON, variant="quad-magic")

    def test_explicit_config(self, domain, clustered_points):
        config = QuadtreeConfig("custom", count_budget="uniform", postprocess=True)
        psd = build_private_quadtree(clustered_points, domain, HEIGHT, EPSILON, variant=config, rng=4)
        assert psd.name == "custom"

    def test_structure_is_data_independent(self, domain, clustered_points, rng):
        """Two quadtrees over different datasets have identical node rectangles."""
        other_points = gaussian_cluster_points(4_000, domain, n_clusters=2, spread=0.2, rng=rng)
        a = build_private_quadtree(clustered_points, domain, 3, EPSILON, rng=5)
        b = build_private_quadtree(other_points, domain, 3, EPSILON, rng=6)
        rects_a = [n.rect for n in a.nodes()]
        rects_b = [n.rect for n in b.nodes()]
        assert rects_a == rects_b

    def test_query_accuracy_reasonable(self, domain, clustered_points):
        psd = build_private_quadtree(clustered_points, domain, 5, 2.0, variant="quad-opt", rng=7)
        query = Rect((0.2, 0.2), (0.9, 0.9))
        truth = query.count_points(clustered_points, closed_hi=True)
        assert psd.range_query(query) == pytest.approx(truth, rel=0.2, abs=30)


# ----------------------------------------------------------------------
# kd-tree variants
# ----------------------------------------------------------------------
class TestKDTreeVariants:
    def test_registry_has_figure5_variants(self):
        assert set(KDTREE_VARIANTS) == {
            "kd-pure", "kd-true", "kd-standard", "kd-hybrid", "kd-cell", "kd-noisymean",
        }

    @pytest.mark.parametrize("variant", sorted(KDTREE_VARIANTS))
    def test_each_variant_builds_complete_fanout4_tree(self, domain, clustered_points, variant):
        psd = build_private_kdtree(clustered_points, domain, HEIGHT, EPSILON, variant=variant, rng=8)
        assert psd.fanout == 4
        assert psd.is_complete()
        assert psd.name == variant

    def test_private_variants_respect_budget(self, domain, clustered_points):
        for variant in ("kd-standard", "kd-hybrid", "kd-cell", "kd-noisymean"):
            psd = build_private_kdtree(clustered_points, domain, HEIGHT, EPSILON, variant=variant, rng=9)
            assert total_epsilon(psd) == pytest.approx(EPSILON), variant
            psd.accountant.assert_within_budget()

    def test_kd_pure_is_noiseless(self, domain, clustered_points):
        psd = build_private_kdtree(clustered_points, domain, HEIGHT, EPSILON, variant="kd-pure", rng=10)
        for node in psd.nodes():
            assert node.noisy_count == node._true_count

    def test_kd_true_uses_exact_medians_but_noisy_counts(self, domain, clustered_points):
        psd = build_private_kdtree(clustered_points, domain, 2, EPSILON, variant="kd-true", rng=11)
        # Exact medians balance the children of the root almost perfectly.
        counts = [c._true_count for c in psd.root.children]
        assert max(counts) - min(counts) <= clustered_points.shape[0] * 0.02 + 4
        residuals = [n.noisy_count - n._true_count for n in psd.nodes()]
        assert any(abs(r) > 1e-9 for r in residuals)

    def test_kd_standard_median_budget_split(self, domain, clustered_points):
        psd = build_private_kdtree(clustered_points, domain, HEIGHT, EPSILON, variant="kd-standard", rng=12)
        kinds = psd.accountant.per_kind
        assert kinds["count"] == pytest.approx(0.7 * EPSILON)
        assert kinds["median"] == pytest.approx(0.3 * EPSILON)

    def test_kd_cell_charges_structure_budget(self, domain, clustered_points):
        psd = build_private_kdtree(clustered_points, domain, HEIGHT, EPSILON, variant="kd-cell",
                                   cell_resolution=64, rng=13)
        kinds = psd.accountant.per_kind
        assert kinds["structure"] == pytest.approx(0.3 * EPSILON)
        assert kinds["count"] == pytest.approx(0.7 * EPSILON)

    def test_hybrid_switch_level_controls_data_dependence(self, domain, clustered_points):
        psd = build_private_kdtree(clustered_points, domain, HEIGHT, EPSILON, variant="kd-hybrid",
                                   switch_level=1, rng=14)
        # Only the root level is data dependent: its grandchildren (from the
        # quad stage of the flattened split) have equal areas below the switch.
        level_below = [n for n in psd.nodes() if n.level == HEIGHT - 2]
        areas = {round(n.rect.area, 12) for n in level_below if n.rect.area > 0}
        # Quad splits of equal parents produce only a handful of distinct areas.
        assert len(areas) <= len(level_below)

    def test_prune_threshold_applied(self, domain, clustered_points):
        full = build_private_kdtree(clustered_points, domain, HEIGHT, EPSILON, variant="kd-standard",
                                    prune_threshold=None, rng=15)
        pruned = build_private_kdtree(clustered_points, domain, HEIGHT, EPSILON, variant="kd-standard",
                                      prune_threshold=200.0, rng=15)
        assert pruned.node_count() < full.node_count()

    def test_unknown_variant_raises(self, domain, clustered_points):
        with pytest.raises(KeyError):
            build_private_kdtree(clustered_points, domain, HEIGHT, EPSILON, variant="kd-unknown")

    def test_cell_budget_fraction_validation(self, domain, clustered_points):
        with pytest.raises(ValueError):
            build_private_kdtree(clustered_points, domain, HEIGHT, EPSILON, variant="kd-cell",
                                 cell_budget_fraction=1.5)

    def test_query_accuracy_reasonable(self, domain, clustered_points):
        psd = build_private_kdtree(clustered_points, domain, HEIGHT, 2.0, variant="kd-hybrid", rng=16)
        query = Rect((0.1, 0.1), (0.8, 0.8))
        truth = query.count_points(clustered_points, closed_hi=True)
        assert psd.range_query(query) == pytest.approx(truth, rel=0.25, abs=40)


# ----------------------------------------------------------------------
# Hilbert R-tree
# ----------------------------------------------------------------------
class TestPrivateHilbertRTree:
    @pytest.fixture(scope="class")
    def tree(self, domain, clustered_points):
        return build_private_hilbert_rtree(clustered_points, domain, height=8, epsilon=EPSILON,
                                           order=8, rng=17)

    def test_binary_structure_over_hilbert_domain(self, tree):
        assert tree.psd.fanout == 2
        assert tree.psd.is_complete()
        assert tree.psd.domain.dims == 1

    def test_budget_respected(self, tree):
        assert tree.psd.accountant.path_epsilon == pytest.approx(EPSILON)

    def test_bboxes_inside_domain(self, tree, domain):
        for level, bbox in tree.node_bboxes():
            assert domain.rect.contains_rect(bbox)

    def test_query_accuracy_reasonable(self, tree, clustered_points, domain):
        query = Rect((0.1, 0.1), (0.9, 0.9))
        truth = query.count_points(clustered_points, closed_hi=True)
        assert tree.range_query(query) == pytest.approx(truth, rel=0.25, abs=60)

    def test_full_domain_query(self, tree, clustered_points, domain):
        assert tree.range_query(domain.rect) == pytest.approx(clustered_points.shape[0], rel=0.1)

    def test_interval_query_path_agrees_roughly(self, tree, clustered_points):
        query = Rect((0.2, 0.3), (0.7, 0.8))
        bbox_answer = tree.range_query(query)
        interval_answer = tree.range_query_intervals(query, max_ranges=4096)
        truth = query.count_points(clustered_points, closed_hi=True)
        assert abs(bbox_answer - truth) < 0.5 * truth + 80
        assert abs(interval_answer - truth) < 0.5 * truth + 80

    def test_postprocess_and_prune_chain(self, domain, clustered_points):
        tree = build_private_hilbert_rtree(clustered_points, domain, height=6, epsilon=EPSILON,
                                           order=8, postprocess=False, rng=18)
        assert all(n.post_count is None for n in tree.psd.nodes())
        tree.postprocess().prune(50.0)
        assert any(n.post_count is not None for n in tree.psd.nodes())

    def test_rejects_non_2d_domain(self, clustered_points):
        with pytest.raises(ValueError):
            build_private_hilbert_rtree(clustered_points[:, :1], Domain.unit(1), height=4, epsilon=1.0)
