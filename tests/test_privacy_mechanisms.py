"""Tests for the basic DP mechanisms: Laplace, geometric, exponential."""

from __future__ import annotations

import numpy as np
import pytest

from repro.privacy import (
    LaplaceCountMechanism,
    exponential_mechanism,
    geometric_mechanism,
    laplace_mechanism,
    laplace_noise,
    laplace_variance,
)


class TestLaplaceNoise:
    def test_zero_scale_is_exact(self):
        assert laplace_noise(0.0) == 0.0
        assert np.all(laplace_noise(0.0, size=5) == 0.0)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            laplace_noise(-1.0)

    def test_statistics(self, rng):
        draws = laplace_noise(2.0, size=200_000, rng=rng)
        assert np.mean(draws) == pytest.approx(0.0, abs=0.05)
        assert np.var(draws) == pytest.approx(2 * 2.0**2, rel=0.05)

    def test_reproducible_with_seed(self):
        a = laplace_noise(1.0, size=10, rng=42)
        b = laplace_noise(1.0, size=10, rng=42)
        assert np.array_equal(a, b)


class TestLaplaceMechanism:
    def test_scalar_and_array(self, rng):
        out = laplace_mechanism(10.0, epsilon=1.0, rng=rng)
        assert isinstance(out, float)
        arr = laplace_mechanism(np.arange(5, dtype=float), epsilon=1.0, rng=rng)
        assert arr.shape == (5,)

    def test_rejects_bad_epsilon(self):
        for eps in (0.0, -1.0, np.inf, np.nan):
            with pytest.raises(ValueError):
                laplace_mechanism(1.0, epsilon=eps)

    def test_rejects_negative_sensitivity(self):
        with pytest.raises(ValueError):
            laplace_mechanism(1.0, epsilon=1.0, sensitivity=-1.0)

    def test_unbiased(self, rng):
        draws = np.array([laplace_mechanism(100.0, epsilon=0.5, rng=rng) for _ in range(5_000)])
        assert np.mean(draws) == pytest.approx(100.0, abs=1.0)

    def test_variance_matches_formula(self, rng):
        eps, sens = 0.4, 2.0
        draws = laplace_mechanism(np.zeros(100_000), epsilon=eps, sensitivity=sens, rng=rng)
        assert np.var(draws) == pytest.approx(laplace_variance(eps, sens), rel=0.05)

    def test_variance_formula(self):
        # Var(Lap(1/eps)) = 2 / eps^2 for sensitivity-1 counts (Equation 1).
        assert laplace_variance(0.5) == pytest.approx(2.0 / 0.25)
        assert laplace_variance(1.0, sensitivity=3.0) == pytest.approx(2.0 * 9.0)

    def test_smaller_epsilon_means_more_noise(self, rng):
        tight = laplace_mechanism(np.zeros(50_000), epsilon=2.0, rng=rng)
        loose = laplace_mechanism(np.zeros(50_000), epsilon=0.1, rng=rng)
        assert np.std(loose) > 5 * np.std(tight)


class TestGeometricMechanism:
    def test_integer_valued_output(self, rng):
        out = geometric_mechanism(np.full(1000, 7.0), epsilon=0.8, rng=rng)
        assert np.allclose(out, np.round(out))

    def test_unbiased(self, rng):
        draws = geometric_mechanism(np.full(100_000, 50.0), epsilon=0.5, rng=rng)
        assert np.mean(draws) == pytest.approx(50.0, abs=0.5)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            geometric_mechanism(1.0, epsilon=0.0)
        with pytest.raises(ValueError):
            geometric_mechanism(1.0, epsilon=1.0, sensitivity=0.0)

    def test_scalar_output(self, rng):
        assert isinstance(geometric_mechanism(5.0, epsilon=1.0, rng=rng), float)


class TestExponentialMechanism:
    def test_prefers_high_scores(self, rng):
        candidates = ["a", "b", "c"]
        scores = [0.0, 0.0, 10.0]
        picks = [exponential_mechanism(candidates, scores, epsilon=2.0, rng=rng) for _ in range(300)]
        assert picks.count("c") > 250

    def test_uniform_when_scores_equal(self, rng):
        candidates = list(range(4))
        picks = [exponential_mechanism(candidates, [1.0] * 4, epsilon=1.0, rng=rng) for _ in range(2_000)]
        counts = np.bincount(picks, minlength=4)
        assert np.all(counts > 350)

    def test_rejects_mismatched_inputs(self):
        with pytest.raises(ValueError):
            exponential_mechanism(["a"], [1.0, 2.0], epsilon=1.0)
        with pytest.raises(ValueError):
            exponential_mechanism([], [], epsilon=1.0)

    def test_rejects_bad_epsilon_and_sensitivity(self):
        with pytest.raises(ValueError):
            exponential_mechanism(["a"], [1.0], epsilon=0.0)
        with pytest.raises(ValueError):
            exponential_mechanism(["a"], [1.0], epsilon=1.0, sensitivity=0.0)

    def test_numerically_stable_with_large_scores(self, rng):
        out = exponential_mechanism([0, 1], [1e6, 1e6 + 1], epsilon=1.0, rng=rng)
        assert out in (0, 1)


class TestLaplaceCountMechanism:
    def test_scale_and_variance(self):
        mech = LaplaceCountMechanism(epsilon=0.5)
        assert mech.scale == pytest.approx(2.0)
        assert mech.variance == pytest.approx(8.0)

    def test_release(self, rng):
        mech = LaplaceCountMechanism(epsilon=1.0)
        out = mech.release(np.array([1.0, 2.0, 3.0]), rng=rng)
        assert out.shape == (3,)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            LaplaceCountMechanism(epsilon=-0.1)
