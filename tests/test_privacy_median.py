"""Tests for the private-median mechanisms of Section 6.1."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy import (
    MEDIAN_METHODS,
    cell_median,
    exponential_mechanism_median,
    make_sampled_median,
    median_from_noisy_cells,
    noisy_mean_median,
    resolve_median_method,
    smooth_sensitivity_median,
    smooth_sensitivity_of_median,
    true_median,
)

LO, HI = 0.0, 1000.0


@pytest.fixture()
def uniform_values(rng):
    return rng.uniform(LO, HI, size=4_000)


class TestTrueMedian:
    def test_matches_numpy(self, uniform_values):
        assert true_median(uniform_values, 1.0, LO, HI) == pytest.approx(np.median(uniform_values))

    def test_empty_returns_domain_midpoint(self):
        assert true_median(np.array([]), 1.0, LO, HI) == pytest.approx((LO + HI) / 2)

    def test_rejects_values_outside_domain(self):
        with pytest.raises(ValueError):
            true_median(np.array([2000.0]), 1.0, LO, HI)


class TestExponentialMechanismMedian:
    def test_output_in_domain(self, uniform_values, rng):
        for _ in range(20):
            out = exponential_mechanism_median(uniform_values, 0.1, LO, HI, rng=rng)
            assert LO <= out <= HI

    def test_accurate_with_large_budget(self, uniform_values, rng):
        true = np.median(uniform_values)
        outs = [exponential_mechanism_median(uniform_values, 5.0, LO, HI, rng=rng) for _ in range(30)]
        # With a large budget the rank error should be tiny.
        ranks = [np.searchsorted(np.sort(uniform_values), o) for o in outs]
        assert np.median(np.abs(np.array(ranks) - len(uniform_values) / 2)) < len(uniform_values) * 0.02
        assert np.median(np.abs(np.array(outs) - true)) < (HI - LO) * 0.05

    def test_nearly_uniform_with_tiny_budget(self, rng):
        # eps -> 0 makes every rank almost equally likely, so outputs spread widely.
        values = rng.uniform(LO, HI, size=500)
        outs = np.array([exponential_mechanism_median(values, 1e-6, LO, HI, rng=rng) for _ in range(300)])
        assert outs.std() > (HI - LO) * 0.15

    def test_empty_input_uniform_over_domain(self, rng):
        outs = np.array([exponential_mechanism_median(np.array([]), 1.0, LO, HI, rng=rng) for _ in range(200)])
        assert LO <= outs.min() and outs.max() <= HI
        assert outs.std() > (HI - LO) * 0.2

    def test_single_value(self, rng):
        out = exponential_mechanism_median(np.array([400.0]), 1.0, LO, HI, rng=rng)
        assert LO <= out <= HI

    def test_degenerate_domain(self, rng):
        out = exponential_mechanism_median(np.array([5.0, 5.0]), 1.0, 5.0, 5.0, rng=rng)
        assert out == 5.0

    def test_rejects_bad_epsilon(self, uniform_values):
        with pytest.raises(ValueError):
            exponential_mechanism_median(uniform_values, 0.0, LO, HI)

    def test_concentration_lemma6(self, rng):
        """Lemma 6(ii): for non-skewed data, the EM output lands in [x_{n/5}, x_{4n/5}] w.p. >= 1/6."""
        values = np.sort(rng.uniform(LO, HI, size=2_000))
        lo_q, hi_q = values[len(values) // 5], values[4 * len(values) // 5]
        hits = sum(
            lo_q <= exponential_mechanism_median(values, 0.05, LO, HI, rng=rng) <= hi_q
            for _ in range(200)
        )
        assert hits / 200 >= 1 / 6


class TestSmoothSensitivity:
    def test_sigma_positive_and_bounded_by_domain(self, uniform_values):
        sigma = smooth_sensitivity_of_median(uniform_values, 0.1, 1e-4, LO, HI)
        assert 0 < sigma <= HI - LO

    def test_sigma_at_least_local_sensitivity(self, rng):
        values = np.sort(rng.uniform(LO, HI, size=501))
        m = (values.size - 1) // 2
        local = max(values[m + 1] - values[m], values[m] - values[m - 1])
        sigma = smooth_sensitivity_of_median(values, 0.5, 1e-4, LO, HI)
        assert sigma >= local - 1e-9

    def test_sigma_smoothness_under_deletion(self, rng):
        """sigma_s is xi-smooth: deleting one element changes it by at most e^xi."""
        eps, delta = 0.5, 1e-4
        xi = eps / (4 * (1 + np.log(2 / delta)))
        values = np.sort(rng.uniform(LO, HI, size=400))
        sigma_full = smooth_sensitivity_of_median(values, eps, delta, LO, HI)
        for drop in (0, 200, 399):
            neighbour = np.delete(values, drop)
            sigma_neighbour = smooth_sensitivity_of_median(neighbour, eps, delta, LO, HI)
            assert sigma_full <= np.exp(xi) * sigma_neighbour + 1e-9
            assert sigma_neighbour <= np.exp(xi) * sigma_full + 1e-9

    def test_capped_scan_is_upper_bound(self, uniform_values):
        exact = smooth_sensitivity_of_median(uniform_values, 0.1, 1e-4, LO, HI)
        capped = smooth_sensitivity_of_median(uniform_values, 0.1, 1e-4, LO, HI, max_k=5)
        assert capped >= exact - 1e-12

    def test_empty_returns_domain_width(self):
        assert smooth_sensitivity_of_median(np.array([]), 0.1, 1e-4, LO, HI) == HI - LO

    def test_median_output_in_domain(self, uniform_values, rng):
        out = smooth_sensitivity_median(uniform_values, 0.5, LO, HI, rng=rng)
        assert LO <= out <= HI

    def test_median_accurate_with_large_budget(self, uniform_values, rng):
        outs = [smooth_sensitivity_median(uniform_values, 5.0, LO, HI, rng=rng) for _ in range(20)]
        assert np.median(np.abs(np.array(outs) - np.median(uniform_values))) < (HI - LO) * 0.1

    def test_rejects_bad_parameters(self, uniform_values):
        with pytest.raises(ValueError):
            smooth_sensitivity_median(uniform_values, 0.0, LO, HI)
        with pytest.raises(ValueError):
            smooth_sensitivity_of_median(uniform_values, 0.5, 2.0, LO, HI)


class TestCellMedian:
    def test_output_in_domain(self, uniform_values, rng):
        out = cell_median(uniform_values, 0.5, LO, HI, rng=rng, n_cells=128)
        assert LO <= out <= HI

    def test_accurate_with_large_budget(self, uniform_values, rng):
        outs = [cell_median(uniform_values, 10.0, LO, HI, rng=rng, n_cells=256) for _ in range(10)]
        assert np.median(np.abs(np.array(outs) - np.median(uniform_values))) < (HI - LO) * 0.05

    def test_rejects_bad_parameters(self, uniform_values):
        with pytest.raises(ValueError):
            cell_median(uniform_values, 0.0, LO, HI)
        with pytest.raises(ValueError):
            cell_median(uniform_values, 1.0, LO, HI, n_cells=0)

    def test_median_from_noisy_cells_interpolation(self):
        # 4 equal cells with mass only in the third cell: the median sits inside it.
        counts = np.array([0.0, 0.0, 10.0, 0.0])
        edges = np.linspace(0.0, 4.0, 5)
        assert 2.0 <= median_from_noisy_cells(counts, edges) <= 3.0

    def test_median_from_noisy_cells_negative_counts_clipped(self):
        counts = np.array([-5.0, 1.0, -2.0, 1.0])
        edges = np.linspace(0.0, 4.0, 5)
        out = median_from_noisy_cells(counts, edges)
        assert 1.0 <= out <= 4.0

    def test_median_from_noisy_cells_all_zero(self):
        counts = np.zeros(4)
        edges = np.linspace(0.0, 4.0, 5)
        assert median_from_noisy_cells(counts, edges) == pytest.approx(2.0)

    def test_mismatched_edges_raise(self):
        with pytest.raises(ValueError):
            median_from_noisy_cells(np.zeros(4), np.linspace(0, 1, 4))


class TestNoisyMeanMedian:
    def test_output_in_domain(self, uniform_values, rng):
        out = noisy_mean_median(uniform_values, 0.5, LO, HI, rng=rng)
        assert LO <= out <= HI

    def test_close_to_mean_for_large_data(self, uniform_values, rng):
        outs = [noisy_mean_median(uniform_values, 2.0, LO, HI, rng=rng) for _ in range(20)]
        assert np.median(outs) == pytest.approx(np.mean(uniform_values), rel=0.05)

    def test_poor_for_skewed_data(self, rng):
        """The mean is a bad median surrogate on skewed data — the paper's point."""
        skewed = np.concatenate([rng.uniform(0, 10, 900), rng.uniform(900, 1000, 100)])
        outs = [noisy_mean_median(skewed, 2.0, LO, HI, rng=rng) for _ in range(20)]
        true = np.median(skewed)
        assert np.median(outs) > true + 50  # pulled far towards the heavy tail

    def test_rejects_bad_epsilon(self, uniform_values):
        with pytest.raises(ValueError):
            noisy_mean_median(uniform_values, -1.0, LO, HI)


class TestSampledVariants:
    def test_registry_contains_paper_methods(self):
        for name in ("true", "em", "ss", "cell", "noisymean", "ems", "sss"):
            assert name in MEDIAN_METHODS

    def test_resolve_by_name_and_callable(self):
        assert resolve_median_method("EM") is MEDIAN_METHODS["em"]
        assert resolve_median_method(true_median) is true_median
        with pytest.raises(KeyError):
            resolve_median_method("nope")

    def test_sampled_wrapper_validates_rate(self):
        with pytest.raises(ValueError):
            make_sampled_median(true_median, sampling_rate=0.0)

    def test_sampled_em_output_in_domain(self, uniform_values, rng):
        sampled = make_sampled_median(exponential_mechanism_median, sampling_rate=0.05)
        out = sampled(uniform_values, 0.1, LO, HI, rng=rng)
        assert LO <= out <= HI

    def test_sampled_em_reasonable_accuracy(self, rng):
        values = rng.uniform(LO, HI, size=50_000)
        sampled = make_sampled_median(exponential_mechanism_median, sampling_rate=0.01)
        outs = [sampled(values, 0.5, LO, HI, rng=rng) for _ in range(10)]
        assert np.median(np.abs(np.array(outs) - np.median(values))) < (HI - LO) * 0.1


@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=0, max_size=200),
       st.sampled_from(["em", "cell", "noisymean", "true"]))
@settings(max_examples=50, deadline=None)
def test_all_methods_stay_in_domain(values, method_name):
    """Property: every median method returns a value inside [lo, hi]."""
    method = MEDIAN_METHODS[method_name]
    out = method(np.array(values), 0.5, 0.0, 100.0, rng=np.random.default_rng(0))
    assert 0.0 <= out <= 100.0
