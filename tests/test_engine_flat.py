"""Tests for the compiled flat-array query engine (:mod:`repro.engine`).

The load-bearing property: on randomized trees and query workloads, the flat
engine must agree with the recursive reference in :mod:`repro.core.query` —
estimates within float-summation tolerance, ``n(Q)`` *exactly*, variances
within tolerance — for all three PSD families, before and after
post-processing and pruning.  The rest covers the serving conveniences:
the LRU answer cache, ``.npz`` round-trips, the ``backend=`` dispatch and the
CLI batch mode.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core import (
    build_private_hilbert_rtree,
    build_private_kdtree,
    build_private_quadtree,
    nodes_touched,
    query_variance,
    range_query,
    save_psd,
)
from repro.core.query import QUERY_BACKENDS
from repro.data import uniform_points
from repro.engine import (
    CachedEngine,
    FlatPSD,
    QueryCache,
    batch_query,
    batch_range_query,
    canonical_rect_key,
    compile_hilbert_rtree,
    compile_psd,
    compiled_engine,
    load_engine,
    save_engine,
)
from repro.engine.flat import COMPILED_ENGINE_KEY
from repro.geometry import Domain, Rect
from repro.queries import random_query_rects


# ----------------------------------------------------------------------
# Shared builders
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def domain():
    return Domain.unit(2)


@pytest.fixture(scope="module")
def points(domain):
    return uniform_points(3_000, domain, rng=np.random.default_rng(17))


def _build(variant: str, points, domain, seed: int = 0):
    """One released PSD per family (the Hilbert entry is the 1-D index tree)."""
    if variant == "quad-opt":
        return build_private_quadtree(points, domain, height=4, epsilon=1.0,
                                      variant="quad-opt", rng=seed)
    if variant == "kd-hybrid":
        return build_private_kdtree(points, domain, height=4, epsilon=1.0,
                                    variant="kd-hybrid", rng=seed)
    if variant == "hilbert-r":
        return build_private_hilbert_rtree(points, domain, height=6, epsilon=1.0, rng=seed).psd
    raise AssertionError(variant)


VARIANTS = ("quad-opt", "kd-hybrid", "hilbert-r")


def _random_queries(psd, rng, n=120):
    """Random rects over the PSD's own domain (1-D for the Hilbert index tree),
    plus the always-tricky whole-domain query (all-full path)."""
    whole = Rect(psd.domain.rect.lo, psd.domain.rect.hi)
    return [whole] + random_query_rects(psd.domain, n, rng=rng,
                                        min_frac=0.005, max_frac=0.5)


# ----------------------------------------------------------------------
# Parity with the recursive reference
# ----------------------------------------------------------------------
class TestFlatRecursiveParity:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_randomized_parity_all_quantities(self, variant, points, domain):
        psd = _build(variant, points, domain, seed=3)
        engine = compile_psd(psd).validate()
        queries = _random_queries(psd, np.random.default_rng(29))
        result = batch_query(engine, queries)
        for i, query in enumerate(queries):
            assert result.estimates[i] == pytest.approx(range_query(psd, query), rel=1e-9, abs=1e-9)
            assert int(result.nodes_touched[i]) == nodes_touched(psd, query)
            assert result.variances[i] == pytest.approx(query_variance(psd, query), rel=1e-9, abs=1e-12)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_parity_without_uniformity(self, variant, points, domain):
        psd = _build(variant, points, domain, seed=5)
        engine = compile_psd(psd)
        queries = _random_queries(psd, np.random.default_rng(31), n=60)
        estimates = batch_range_query(engine, queries, use_uniformity=False)
        for i, query in enumerate(queries):
            expected = range_query(psd, query, use_uniformity=False)
            assert estimates[i] == pytest.approx(expected, rel=1e-9, abs=1e-9)

    def test_parity_survives_postprocess_and_prune(self, points, domain):
        psd = build_private_quadtree(points, domain, height=4, epsilon=1.0,
                                     variant="quad-baseline", rng=7)
        queries = _random_queries(psd, np.random.default_rng(37), n=40)
        for mutate in (lambda: psd.postprocess(), lambda: psd.prune(10.0)):
            # Warm the memoised engine, then mutate: the stale engine must be
            # dropped and the fresh compile must match the mutated tree.
            _ = psd.range_query(queries[0], backend="flat")
            mutate()
            for query in queries:
                flat = psd.range_query(query, backend="flat")
                assert flat == pytest.approx(psd.range_query(query), rel=1e-9, abs=1e-9)
                assert psd.nodes_touched(query, backend="flat") == psd.nodes_touched(query)

    def test_hilbert_planar_parity(self, points, domain):
        tree = build_private_hilbert_rtree(points, domain, height=6, epsilon=1.0, rng=13)
        engine = compile_hilbert_rtree(tree).validate()
        rng = np.random.default_rng(41)
        queries = []
        for _ in range(60):
            lo = rng.random(2) * 0.7
            hi = lo + 0.02 + rng.random(2) * 0.3
            queries.append(Rect(tuple(lo), tuple(np.minimum(hi, 1.0))))
        estimates = batch_range_query(engine, queries)
        for i, query in enumerate(queries):
            assert estimates[i] == pytest.approx(tree.range_query(query), rel=1e-9, abs=1e-9)
            assert tree.range_query(query, backend="flat") == pytest.approx(
                tree.range_query(query), rel=1e-9, abs=1e-9
            )

    def test_planar_engine_invalidated_by_direct_psd_mutation(self, points, domain):
        from repro.core import apply_ols

        tree = build_private_hilbert_rtree(points, domain, height=6, epsilon=1.0,
                                           postprocess=False, rng=53)
        query = Rect((0.2, 0.2), (0.7, 0.8))
        _ = tree.range_query(query, backend="flat")  # warm the planar engine
        apply_ols(tree.psd)  # mutate the 1-D tree *without* the wrapper method
        assert tree.range_query(query, backend="flat") == pytest.approx(
            tree.range_query(query), rel=1e-9, abs=1e-9
        )

    def test_empty_batch_and_disjoint_query(self, points, domain):
        psd = _build("quad-opt", points, domain)
        engine = compile_psd(psd)
        empty = batch_query(engine, [])
        assert len(empty) == 0
        outside = Rect((2.0, 2.0), (3.0, 3.0))
        result = batch_query(engine, [outside])
        assert result.estimates[0] == 0.0
        assert result.nodes_touched[0] == 0
        assert result.variances[0] == 0.0

    def test_query_input_forms_are_equivalent(self, points, domain):
        psd = _build("quad-opt", points, domain)
        engine = compile_psd(psd)
        rects = [Rect((0.1, 0.2), (0.6, 0.9)), Rect((0.3, 0.0), (0.8, 0.5))]
        as_rows = [(0.1, 0.2, 0.6, 0.9), (0.3, 0.0, 0.8, 0.5)]
        as_array = np.asarray(as_rows, dtype=float)
        expected = batch_range_query(engine, rects)
        assert np.array_equal(batch_range_query(engine, as_rows), expected)
        assert np.array_equal(batch_range_query(engine, as_array), expected)

    def test_dimension_mismatch_rejected(self, points, domain):
        engine = compile_psd(_build("quad-opt", points, domain))
        with pytest.raises(ValueError, match="dims"):
            batch_range_query(engine, [Rect((0.0,), (1.0,))])
        with pytest.raises(ValueError, match="columns"):
            batch_range_query(engine, np.zeros((2, 3)))

    def test_inverted_coordinate_rows_rejected(self, points, domain):
        # Rect enforces lo <= hi at construction; raw rows must be checked too
        # or two negative extents multiply into a positive leaf overlap.
        engine = compile_psd(_build("quad-opt", points, domain))
        with pytest.raises(ValueError, match="lo <= hi"):
            batch_range_query(engine, np.asarray([[0.4, 0.4, 0.3, 0.3]]))
        with pytest.raises(ValueError, match="lo <= hi"):
            batch_range_query(engine, [(0.4, 0.4, 0.3, 0.3)])
        with pytest.raises(ValueError, match="finite"):
            batch_range_query(engine, np.asarray([[np.nan, 0.0, 1.0, 1.0]]))


# ----------------------------------------------------------------------
# Backend dispatch and memoisation
# ----------------------------------------------------------------------
class TestBackendDispatch:
    def test_unknown_backend_raises(self, points, domain):
        psd = _build("quad-opt", points, domain)
        query = Rect((0.1, 0.1), (0.5, 0.5))
        with pytest.raises(ValueError, match="backend"):
            range_query(psd, query, backend="gpu")
        assert QUERY_BACKENDS == ("recursive", "flat")

    def test_compiled_engine_is_memoised(self, points, domain):
        psd = _build("kd-hybrid", points, domain)
        first = compiled_engine(psd)
        assert compiled_engine(psd) is first
        assert psd.metadata[COMPILED_ENGINE_KEY] is first
        assert psd.compile() is first
        psd.prune(5.0)
        assert COMPILED_ENGINE_KEY not in psd.metadata
        assert compiled_engine(psd) is not first

    def test_compiled_engine_not_serialised(self, points, domain, tmp_path):
        psd = _build("quad-opt", points, domain)
        _ = psd.range_query(Rect((0.0, 0.0), (0.4, 0.4)), backend="flat")
        path = tmp_path / "release.json"
        save_psd(psd, str(path))  # must not choke on the cached FlatPSD
        assert COMPILED_ENGINE_KEY not in path.read_text()

    def test_compiled_arrays_are_readonly(self, points, domain):
        engine = compile_psd(_build("quad-opt", points, domain))
        with pytest.raises(ValueError):
            engine.released[0] = 1e9


# ----------------------------------------------------------------------
# LRU answer cache
# ----------------------------------------------------------------------
class TestQueryCache:
    def test_hit_miss_accounting(self, points, domain):
        cached = CachedEngine(compile_psd(_build("quad-opt", points, domain)), maxsize=64)
        query = Rect((0.2, 0.2), (0.7, 0.7))
        first = cached.range_query(query)
        second = cached.range_query(query)
        assert first == second
        stats = cached.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["size"] == 1
        # All three quantities ride the same entry: no further misses.
        cached.nodes_touched(query)
        cached.query_variance(query)
        assert cached.stats()["misses"] == 1

    def test_cached_answers_match_engine(self, points, domain):
        engine = compile_psd(_build("kd-hybrid", points, domain))
        cached = CachedEngine(engine, maxsize=256)
        queries = _random_queries_2d(np.random.default_rng(43), 40)
        direct = batch_query(engine, queries)
        via_cache = cached.batch_query(queries)
        assert np.array_equal(via_cache.estimates, direct.estimates)
        assert np.array_equal(via_cache.nodes_touched, direct.nodes_touched)
        # Second pass: everything is a hit, same answers.
        again = cached.batch_query(queries)
        assert np.array_equal(again.estimates, direct.estimates)
        assert cached.stats()["hits"] >= len(queries)

    def test_batch_with_duplicates_evaluates_once(self, points, domain):
        cached = CachedEngine(compile_psd(_build("quad-opt", points, domain)))
        query = Rect((0.1, 0.1), (0.9, 0.8))
        result = cached.batch_query([query, query, query])
        assert result.estimates[0] == result.estimates[1] == result.estimates[2]
        stats = cached.stats()
        assert stats["size"] == 1
        assert stats["misses"] == 1  # coalesced duplicates are not extra misses

    def test_lru_eviction(self, points, domain):
        cached = CachedEngine(compile_psd(_build("quad-opt", points, domain)), maxsize=2)
        rects = [Rect((0.1 * i, 0.0), (0.1 * i + 0.2, 0.5)) for i in range(1, 5)]
        for rect in rects:
            cached.range_query(rect)
        stats = cached.stats()
        assert stats["size"] == 2 and stats["evictions"] == 2

    def test_canonical_key_absorbs_float_noise(self):
        key_a = canonical_rect_key((0.1, 0.2), (0.30000000000000004, 0.4))
        key_b = canonical_rect_key((0.1, 0.2), (0.3, 0.4))
        assert key_a == key_b
        assert canonical_rect_key((0.1,), (0.31,)) != canonical_rect_key((0.1,), (0.3,))

    def test_queries_differing_by_formatting_share_an_entry(self, points, domain):
        cached = CachedEngine(compile_psd(_build("quad-opt", points, domain)))
        cached.range_query(Rect((0.1, 0.2), (0.3, 0.4)))
        cached.range_query(Rect((0.1, 0.2), (0.1 + 0.1 + 0.1, 0.4)))  # 0.30000000000000004
        assert cached.stats() ["size"] == 1 and cached.stats()["hits"] == 1

    def test_cache_rejects_bad_maxsize(self):
        with pytest.raises(ValueError):
            QueryCache(maxsize=0)


def _random_queries_2d(rng, n):
    return random_query_rects(Domain.unit(2), n, rng=rng, min_frac=0.05, max_frac=0.4)


# ----------------------------------------------------------------------
# .npz round-trip
# ----------------------------------------------------------------------
class TestEngineIO:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_roundtrip_identical_answers(self, variant, points, domain, tmp_path):
        psd = _build(variant, points, domain, seed=19)
        engine = compile_psd(psd)
        path = tmp_path / "engine.npz"
        save_engine(engine, path)
        loaded = load_engine(path)
        assert isinstance(loaded, FlatPSD)
        assert loaded.n_nodes == engine.n_nodes
        assert loaded.height == engine.height and loaded.fanout == engine.fanout
        assert loaded.name == engine.name and loaded.domain_name == engine.domain_name
        queries = _random_queries(psd, np.random.default_rng(47), n=30)
        before, after = batch_query(engine, queries), batch_query(loaded, queries)
        # Same arrays in, bitwise-same answers out.
        assert np.array_equal(before.estimates, after.estimates)
        assert np.array_equal(before.nodes_touched, after.nodes_touched)
        assert np.array_equal(before.variances, after.variances)

    def test_save_honours_exact_path_without_suffix(self, points, domain, tmp_path):
        engine = compile_psd(_build("quad-opt", points, domain))
        path = tmp_path / "engine.dat"  # no .npz suffix
        save_engine(engine, path)
        assert path.exists()  # np.savez would have written engine.dat.npz
        assert load_engine(path).n_nodes == engine.n_nodes

    def test_load_rejects_non_engine_npz(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, data=np.arange(4))
        with pytest.raises(ValueError, match="meta"):
            load_engine(path)

    def test_load_reports_truncated_file(self, points, domain, tmp_path):
        # A partially-copied artifact must fail with a message that says
        # "truncated", not a bare zipfile traceback.
        engine = compile_psd(_build("quad-opt", points, domain))
        path = tmp_path / "engine.npz"
        save_engine(engine, path)
        blob = path.read_bytes()
        truncated = tmp_path / "truncated.npz"
        truncated.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ValueError, match="truncated"):
            load_engine(truncated)

    def test_load_reports_missing_array_field_by_name(self, points, domain, tmp_path):
        engine = compile_psd(_build("quad-opt", points, domain))
        path = tmp_path / "engine.npz"
        save_engine(engine, path)
        with np.load(path, allow_pickle=False) as payload:
            arrays = dict(payload)
        del arrays["released"]
        bad = tmp_path / "missing.npz"
        np.savez(bad, **arrays)
        with pytest.raises(ValueError, match=r"missing arrays.*released"):
            load_engine(bad)

    def test_load_rejects_mismatched_format_version(self, points, domain, tmp_path):
        engine = compile_psd(_build("quad-opt", points, domain))
        path = tmp_path / "engine.npz"
        save_engine(engine, path)
        with np.load(path, allow_pickle=False) as payload:
            arrays = dict(payload)
        meta = dict(json.loads(str(arrays.pop("meta"))))
        meta["format_version"] = 99
        bad = tmp_path / "future.npz"
        np.savez(bad, meta=np.array(json.dumps(meta)), **arrays)
        with pytest.raises(ValueError, match="format version"):
            load_engine(bad)

    def test_load_rejects_corrupted_structure(self, points, domain, tmp_path):
        engine = compile_psd(_build("quad-opt", points, domain))
        path = tmp_path / "engine.npz"
        save_engine(engine, path)
        with np.load(path, allow_pickle=False) as payload:
            arrays = dict(payload)
        arrays["child_end"] = arrays["child_end"].copy()
        arrays["child_end"][0] = 10 ** 9  # range beyond the node table
        bad = tmp_path / "bad.npz"
        np.savez(bad, **arrays)
        with pytest.raises(ValueError):
            load_engine(bad)

    def test_load_rejects_nonfinite_bounds_and_counts(self, points, domain, tmp_path):
        # NaN makes lo > hi vacuously false and the intersect test silently
        # skip the subtree; finiteness must be enforced explicitly.
        engine = compile_psd(_build("quad-opt", points, domain))
        path = tmp_path / "engine.npz"
        save_engine(engine, path)
        with np.load(path, allow_pickle=False) as payload:
            arrays = dict(payload)
        for field, match in (("lo", "finite"), ("released", "finite")):
            corrupted = {k: v.copy() for k, v in arrays.items()}
            corrupted[field][1] = np.nan
            bad = tmp_path / f"nan_{field}.npz"
            np.savez(bad, **corrupted)
            with pytest.raises(ValueError, match=match):
                load_engine(bad)

    def test_load_rejects_aliased_child_ranges(self, points, domain, tmp_path):
        # An internal node whose child range aliases a sibling's subtree
        # passes all per-node checks; the partition check must catch it.
        engine = compile_psd(_build("quad-opt", points, domain))
        path = tmp_path / "engine.npz"
        save_engine(engine, path)
        with np.load(path, allow_pickle=False) as payload:
            arrays = dict(payload)
        starts, ends = arrays["child_start"].copy(), arrays["child_end"].copy()
        starts[2], ends[2] = starts[1], ends[1]  # node 2 now claims node 1's children
        arrays["child_start"], arrays["child_end"] = starts, ends
        bad = tmp_path / "aliased.npz"
        np.savez(bad, **arrays)
        with pytest.raises(ValueError, match="partition"):
            load_engine(bad)

    def test_load_rejects_out_of_range_levels(self, points, domain, tmp_path):
        # A declared height below the true depth would make leaf levels
        # negative and silently wrap into level_variance; it must fail loudly.
        engine = compile_psd(_build("quad-opt", points, domain))
        path = tmp_path / "engine.npz"
        save_engine(engine, path)
        with np.load(path, allow_pickle=False) as payload:
            arrays = dict(payload)
        meta = dict(json.loads(str(arrays.pop("meta"))))
        meta["height"] -= 1
        arrays["level"] = arrays["level"] - 1
        arrays["count_epsilons"] = arrays["count_epsilons"][:-1]
        bad = tmp_path / "bad_levels.npz"
        np.savez(bad, meta=np.array(json.dumps(meta)), **arrays)
        with pytest.raises(ValueError, match="level"):
            load_engine(bad)


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCliEngine:
    @pytest.fixture()
    def release_path(self, points, domain, tmp_path):
        psd = _build("quad-opt", points, domain, seed=23)
        psd.strip_private_fields()
        path = tmp_path / "release.json"
        save_psd(psd, str(path))
        return path

    def test_query_engine_flat_matches_recursive(self, release_path, capsys):
        spec = "0.1,0.1,0.6,0.7"
        assert main(["query", str(release_path), "--rect", spec]) == 0
        recursive_out = capsys.readouterr().out
        assert main(["query", str(release_path), "--rect", spec, "--engine", "flat"]) == 0
        assert capsys.readouterr().out == recursive_out

    def test_queries_file_batch_mode(self, release_path, tmp_path, capsys):
        workload = tmp_path / "queries.txt"
        workload.write_text("# workload\n0.1,0.1,0.6,0.7\n\n0.2,0.3,0.9,0.9\n")
        assert main(["query", str(release_path), "--queries-file", str(workload),
                     "--engine", "flat"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("0.1,0.1,0.6,0.7\t")

    def test_compile_appends_npz_suffix(self, release_path, tmp_path, capsys):
        bare = tmp_path / "engine_noext"
        assert main(["compile", str(release_path), "--output", str(bare)]) == 0
        out = capsys.readouterr().out
        assert str(bare) + ".npz" in out  # reported path is the real file
        assert (tmp_path / "engine_noext.npz").exists()
        assert main(["query", f"{bare}.npz", "--rect", "0.1,0.1,0.6,0.7"]) == 0

    def test_compile_then_serve_npz(self, release_path, tmp_path, capsys):
        npz = tmp_path / "engine.npz"
        assert main(["compile", str(release_path), "--output", str(npz)]) == 0
        capsys.readouterr()
        spec = "0.1,0.1,0.6,0.7"
        assert main(["query", str(npz), "--rect", spec]) == 0
        npz_out = capsys.readouterr().out
        assert main(["query", str(release_path), "--rect", spec]) == 0
        assert capsys.readouterr().out == npz_out

    def test_query_without_rects_fails(self, release_path):
        with pytest.raises(SystemExit):
            main(["query", str(release_path)])
