"""Tests for the analytical error bounds and budget analytics (Section 4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    best_geometric_ratio,
    compare_strategies,
    empirical_error_for_strategy,
    geometric_budget_error,
    kdtree_level_bound,
    kdtree_touched_bound,
    optimal_geometric_epsilons,
    quadtree_level_bound,
    quadtree_touched_bound,
    query_error_bound,
    uniform_budget_error,
    worst_case_error_curves,
    worst_case_error_for_strategy,
)
from repro.core import build_psd
from repro.core.budget import geometric_level_epsilons
from repro.core.splits import QuadSplit
from repro.data import uniform_points
from repro.geometry import Domain, Rect


class TestLemma2Bounds:
    def test_quadtree_level_bound_formula(self):
        # 8 * 2^{h-i}, capped at the number of nodes 4^{h-i}.
        assert quadtree_level_bound(5, 5) == 1          # root level: single node
        assert quadtree_level_bound(5, 4) == 4          # capped by node count
        assert quadtree_level_bound(5, 0) == 8 * 2**5

    def test_kdtree_level_bound_formula(self):
        assert kdtree_level_bound(6, 6) == 1
        assert kdtree_level_bound(6, 0) == min(8 * 2 ** ((6 + 1) // 2), 2**6)

    def test_touched_bounds(self):
        assert quadtree_touched_bound(10) == 8 * (2**11 - 1)
        assert kdtree_touched_bound(10) == 8 * (2 ** ((11) // 2 + 1) - 1)

    def test_kdtree_bound_smaller_than_quadtree(self):
        for h in range(1, 12):
            assert kdtree_touched_bound(h) <= quadtree_touched_bound(h)

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            quadtree_level_bound(3, 4)
        with pytest.raises(ValueError):
            kdtree_level_bound(3, -1)
        with pytest.raises(ValueError):
            quadtree_touched_bound(-1)


class TestEquation1:
    def test_query_error_bound(self):
        eps = (0.5, 0.25)
        counts = {0: 4, 1: 1}
        expected = 2 * 4 / 0.25 + 2 * 1 / 0.0625
        assert query_error_bound(counts, eps) == pytest.approx(expected)

    def test_zero_budget_level_touched_raises(self):
        with pytest.raises(ValueError):
            query_error_bound({1: 3}, (1.0, 0.0))

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError):
            query_error_bound({5: 1}, (1.0, 1.0))


class TestFigure2Curves:
    def test_closed_forms(self):
        h, eps = 8, 1.0
        assert uniform_budget_error(h, eps) == pytest.approx(16 * (h + 1) ** 2 * (2 ** (h + 1) - 1))
        ratio = (2 ** ((h + 1) / 3) - 1) / (2 ** (1 / 3) - 1)
        assert geometric_budget_error(h, eps) == pytest.approx(16 * ratio**3)

    def test_geometric_grows_like_2_to_h(self):
        # Lemma 3: Err_geom = 16 ((2^{(h+1)/3}-1)/(2^{1/3}-1))^3 <= 16 * 2^{h+1} / (2^{1/3}-1)^3,
        # i.e. it grows like 2^h, whereas the uniform bound grows like (h+1)^2 2^h.
        for h in range(1, 13):
            assert geometric_budget_error(h, 1.0) <= 16 * 2 ** (h + 1) / (2 ** (1 / 3) - 1) ** 3
            assert geometric_budget_error(h, 1.0) <= uniform_budget_error(h, 1.0)

    def test_curves_shape(self):
        curves = worst_case_error_curves(range(5, 11))
        assert np.all(np.diff(curves["uniform"]) > 0)
        assert np.all(np.diff(curves["geometric"]) > 0)
        assert np.all(curves["uniform"] > curves["geometric"])

    def test_epsilon_scaling(self):
        assert uniform_budget_error(6, 0.5) == pytest.approx(4 * uniform_budget_error(6, 1.0))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            uniform_budget_error(-1)
        with pytest.raises(ValueError):
            geometric_budget_error(3, 0.0)


class TestLemma3Optimality:
    def test_optimal_epsilons_sum_to_budget(self):
        eps = optimal_geometric_epsilons(7, 0.8)
        assert sum(eps) == pytest.approx(0.8)

    def test_matches_budget_module(self):
        assert np.allclose(optimal_geometric_epsilons(9, 1.3), geometric_level_epsilons(9, 1.3))

    @given(st.integers(1, 10), st.floats(0.05, 2.0))
    @settings(max_examples=40, deadline=None)
    def test_geometric_minimises_worst_case_bound(self, height, epsilon):
        """Lemma 3: no tested allocation beats the geometric one on the worst-case bound."""
        geo = worst_case_error_for_strategy("geometric", height, epsilon)
        uni = worst_case_error_for_strategy("uniform", height, epsilon)
        assert geo <= uni + 1e-9

    def test_grid_search_lands_near_cube_root_of_two(self):
        # The grid search optimises the bound with capped per-level counts, which
        # shifts the optimum slightly above Lemma 3's 2^{1/3}; it converges as h grows.
        assert best_geometric_ratio(8, 1.0)["ratio"] == pytest.approx(2 ** (1 / 3), abs=0.12)
        assert best_geometric_ratio(12, 1.0)["ratio"] == pytest.approx(2 ** (1 / 3), abs=0.06)


class TestStrategyComparisons:
    def test_compare_strategies_rows(self):
        rows = compare_strategies(6, 0.5)
        names = {r.strategy for r in rows}
        assert names == {"uniform", "geometric", "leaf-only"}
        by_name = {r.strategy: r.worst_case_error for r in rows}
        assert by_name["geometric"] < by_name["uniform"]

    def test_leaf_only_is_much_worse(self):
        """Pricing the leaf-only strategy: queries must be assembled from many leaves."""
        rows = {r.strategy: r.worst_case_error for r in compare_strategies(8, 0.5)}
        assert rows["leaf-only"] > rows["geometric"]

    def test_leaf_budget_required(self):
        from repro.core.budget import CustomBudget

        with pytest.raises(ValueError):
            worst_case_error_for_strategy(CustomBudget(weights=(0.0, 1.0, 1.0)), 2, 1.0)

    def test_empirical_error_for_strategy(self):
        domain = Domain.unit(2)
        points = uniform_points(1_000, domain, rng=np.random.default_rng(3))
        psd = build_psd(points, domain, 3, QuadSplit(), epsilon=1.0, rng=4)
        queries = [Rect((0.1, 0.1), (0.6, 0.7)), Rect((0.0, 0.0), (0.5, 0.5))]
        geo = empirical_error_for_strategy(psd, queries, "geometric", 1.0)
        uni = empirical_error_for_strategy(psd, queries, "uniform", 1.0)
        assert geo > 0 and uni > 0
        assert geo < uni  # geometric helps on real query decompositions too

    def test_empirical_error_empty_workload_nan(self):
        domain = Domain.unit(2)
        points = uniform_points(200, domain, rng=np.random.default_rng(5))
        psd = build_psd(points, domain, 2, QuadSplit(), epsilon=1.0, rng=6)
        assert np.isnan(empirical_error_for_strategy(psd, [], "uniform", 1.0))
