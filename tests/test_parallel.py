"""Tests for the multicore execution layer.

Covers the four contracts of :mod:`repro.parallel`:

* the shared-memory pickler round-trips object graphs with large arrays as
  attached read-only views (exported once per object, not per reference);
* ``run_sweep(..., workers=N)`` is bitwise identical to ``workers=1`` for
  every N — including for cases that cannot be pickled and fall back to the
  parent process;
* chunked ``batch_query`` matches the unchunked evaluator on all three
  outputs for any chunk size (property test over random sizes plus the 1 /
  Q / Q+1 and empty-workload edges), and the sharded server preserves it
  end to end;
* the LRU answer cache stays consistent under concurrent access.
"""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

from repro.core.flatbuild import build_flat_structure
from repro.core.quadtree import build_private_quadtree
from repro.core.splits import QuadSplit
from repro.data import road_intersections
from repro.engine.batch import batch_query, compile_query_matrix, queries_to_arrays
from repro.engine.cache import CachedEngine
from repro.experiments import ExperimentScale, make_workloads, run_fig3
from repro.experiments.common import (
    SweepCase,
    _structure_fingerprint,
    run_sweep,
)
from repro.experiments.fig3 import quadtree_sweep_case
from repro.geometry import Rect, TIGER_DOMAIN
from repro.parallel import ShardedQueryServer, SharedArena, dumps_shared, loads_shared
from repro.parallel.shm import SharedArrayHandle, detach_all
from repro.parallel.sweep import engine_from_structure
from repro.privacy.rng import spawn_generators
from repro.queries import KD_QUERY_SHAPES

SCALE = ExperimentScale.smoke()


@pytest.fixture(scope="module")
def points():
    return road_intersections(n=4_000, rng=0)


@pytest.fixture(scope="module")
def engine(points):
    psd = build_private_quadtree(points, TIGER_DOMAIN, height=5, epsilon=0.5,
                                 rng=np.random.default_rng(7))
    return psd.compile()


@pytest.fixture(scope="module")
def workload(points):
    workloads = make_workloads(points, KD_QUERY_SHAPES[:1], SCALE, rng=1)
    return next(iter(workloads.values()))


# ----------------------------------------------------------------------
# Shared-memory plumbing
# ----------------------------------------------------------------------
class TestSharedArena:
    def test_roundtrip_and_identity_dedupe(self):
        big = np.arange(32_768, dtype=np.float64)  # 256 KiB, above threshold
        small = np.arange(8, dtype=np.float64)
        payload = {"a": big, "b": big, "small": small, "n": 3}
        try:
            with SharedArena() as arena:
                blob = dumps_shared(payload, arena)
                assert arena.n_segments == 1  # big exported once despite two refs
                restored = loads_shared(blob)
                assert np.array_equal(restored["a"], big)
                assert np.array_equal(restored["small"], small)
                assert restored["n"] == 3
                # both references resolve to one shared view, which is frozen
                assert restored["a"] is restored["b"]
                assert not restored["a"].flags.writeable
                # small arrays ride the pickle stream as ordinary copies
                assert restored["small"].flags.writeable
        finally:
            detach_all()

    def test_attach_after_unlink_fails(self):
        arena = SharedArena()
        handle = arena.export(np.zeros(1))
        arena.close()
        detach_all()
        with pytest.raises(Exception):
            loads_shared(dumps_shared_handle(handle))

    def test_non_array_persistent_id_rejected(self):
        import io

        from repro.parallel.shm import _AttachingUnpickler

        class FakePickler(pickle.Pickler):
            def persistent_id(self, obj):
                return "bogus" if obj is marker else None

        marker = object()
        buffer = io.BytesIO()
        FakePickler(buffer).dump([marker])
        with pytest.raises(pickle.UnpicklingError):
            _AttachingUnpickler(io.BytesIO(buffer.getvalue())).load()


def dumps_shared_handle(handle: SharedArrayHandle) -> bytes:
    """A minimal payload whose only content is one persistent handle."""
    import io

    from repro.parallel.shm import _SharingPickler

    class HandleOnly(_SharingPickler):
        def persistent_id(self, obj):
            return obj if isinstance(obj, SharedArrayHandle) else None

    buffer = io.BytesIO()
    HandleOnly(buffer, SharedArena()).dump(handle)
    return buffer.getvalue()


_INTERRUPTED_ARENA_SCRIPT = """\
import json
import numpy as np
from repro.parallel.shm import SharedArena, dumps_shared

arena = SharedArena()
dumps_shared({"a": np.arange(100_000, dtype=np.float64)}, arena)
print(json.dumps([seg.name for seg in arena._segments]), flush=True)
raise KeyboardInterrupt  # Ctrl-C mid-sweep: the atexit guard must unlink
"""


class TestArenaLeakGuard:
    def test_interrupted_process_leaks_no_segments(self, tmp_path):
        """A process dying with a live arena must leave /dev/shm clean —
        unlinked by the atexit sweep itself, not mopped up (with warnings)
        by the multiprocessing resource tracker."""
        import os
        import subprocess
        import sys
        from multiprocessing import shared_memory

        script = tmp_path / "interrupted.py"
        script.write_text(_INTERRUPTED_ARENA_SCRIPT)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")) if p
        )
        result = subprocess.run([sys.executable, str(script)], env=env,
                                capture_output=True, text=True, timeout=120)
        assert result.returncode != 0  # the interrupt escaped
        names = __import__("json").loads(result.stdout)
        assert names, "the arena exported no segment"
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        assert "leaked shared_memory" not in result.stderr

    def test_forked_child_close_never_unlinks_parent_segments(self):
        """A pool worker inherits the parent's arena object; its exit-time
        close must drop local references only, never the shared names."""
        from multiprocessing import shared_memory

        arena = SharedArena()
        handle = arena.export(np.arange(9_000, dtype=np.float64))
        arena._owner_pid += 1  # simulate running inside a forked child
        arena.close()
        # the segment survives the child's close...
        segment = shared_memory.SharedMemory(name=handle.shm_name)
        segment.close()
        segment.unlink()  # ...and is cleaned up here on the parent's behalf


# ----------------------------------------------------------------------
# Process-parallel sweeps
# ----------------------------------------------------------------------
class TestParallelSweep:
    def test_workers_bitwise_parity(self, points):
        """workers=N == workers=1, for several N, on the fig3 grid."""
        rows_1 = run_fig3(scale=SCALE, epsilons=(0.5, 1.0), points=points, rng=2,
                          workers=1)
        for n in (2, 3):
            rows_n = run_fig3(scale=SCALE, epsilons=(0.5, 1.0), points=points, rng=2,
                              workers=n)
            assert rows_n == rows_1  # exact float equality, row for row

    def test_workers_parity_fig5_kdtree(self, points):
        """Data-dependent kd builds (level sorts over the shared read-only
        points view) must also be bitwise reproducible across worker counts."""
        from repro.experiments import run_fig5

        rows_1 = run_fig5(scale=SCALE, epsilons=(1.0,),
                          variants=("kd-pure", "kd-hybrid"), points=points, rng=4,
                          workers=1)
        rows_2 = run_fig5(scale=SCALE, epsilons=(1.0,),
                          variants=("kd-pure", "kd-hybrid"), points=points, rng=4,
                          workers=2)
        assert rows_2 == rows_1

    def test_workers_parity_fig6_mixed_methods(self, points):
        """The fig6 grid mixes kd and Hilbert family builds in one pool."""
        from repro.experiments import run_fig6

        kwargs = dict(scale=SCALE, heights=(3,), methods=("kd-hybrid", "hilbert-r"),
                      points=points, rng=5)
        assert run_fig6(workers=2, **kwargs) == run_fig6(workers=1, **kwargs)

    def test_default_equals_workers_one(self, points):
        rows_default = run_fig3(scale=SCALE, epsilons=(0.5,), points=points, rng=3)
        rows_1 = run_fig3(scale=SCALE, epsilons=(0.5,), points=points, rng=3, workers=1)
        assert rows_default == rows_1

    def test_unpicklable_case_falls_back_to_parent(self, points):
        """A closure-built case cannot ship to workers; rows must not change."""
        workloads = make_workloads(points, KD_QUERY_SHAPES[:1], SCALE, rng=1)
        structure = build_flat_structure(points, TIGER_DOMAIN, 4, QuadSplit(), 0.0)
        picklable = quadtree_sweep_case(points, TIGER_DOMAIN, 4, (0.5,), 2,
                                        "quad-opt", structure)

        def closure_build(gen):  # local function: not picklable
            return picklable.build(gen)

        closure_case = SweepCase(label="closure", keys=picklable.keys,
                                 build=closure_build)
        cases = [picklable, closure_case]
        rows_1 = run_sweep(cases, workloads, rng=0, workers=1)
        rows_2 = run_sweep(cases, workloads, rng=0, workers=2)
        assert rows_2 == rows_1

    def test_spawned_streams_are_per_case(self):
        """Case i's generator depends only on (rng, i) — not on other cases."""
        first = spawn_generators(np.random.default_rng(9), 3)
        second = spawn_generators(np.random.default_rng(9), 3)
        for a, b in zip(first, second):
            assert a.bit_generator.state == b.bit_generator.state
        draws = {g.random() for g in first}
        assert len(draws) == 3  # distinct streams

    def test_engine_from_structure_fingerprint_matches_release_engine(self, points):
        """The parent's precompile probe must alias the real release engine's
        matrix-cache key, or the shared CSR buffers would never be hit."""
        from repro.core.quadtree import build_private_quadtree_releases

        structure = build_flat_structure(points, TIGER_DOMAIN, 4, QuadSplit(), 0.0)
        probe = engine_from_structure(structure, TIGER_DOMAIN)
        batch = build_private_quadtree_releases(
            points, TIGER_DOMAIN, height=4, epsilons=(0.5,), repetitions=1,
            variant="quad-opt", rng=0, structure=structure)
        assert _structure_fingerprint(probe) == _structure_fingerprint(batch.query_engine())


# ----------------------------------------------------------------------
# Chunked evaluation
# ----------------------------------------------------------------------
class TestChunkedBatchQuery:
    def test_chunk_size_property(self, engine, workload):
        """Parity with the unchunked pass for random chunk sizes and the
        1 / Q / Q+1 edges, on all three outputs."""
        queries = workload.queries
        q = len(queries)
        reference = batch_query(engine, queries)
        rng = np.random.default_rng(123)
        sizes = {1, q, q + 1, *(int(s) for s in rng.integers(2, q + 5, size=6))}
        for chunk in sorted(sizes):
            result = batch_query(engine, queries, chunk_queries=chunk)
            assert np.array_equal(result.estimates, reference.estimates), chunk
            assert np.array_equal(result.nodes_touched, reference.nodes_touched), chunk
            assert np.array_equal(result.variances, reference.variances), chunk

    def test_empty_workload(self, engine):
        result = batch_query(engine, [], chunk_queries=5)
        assert len(result) == 0
        assert result.estimates.shape == (0,)
        assert result.nodes_touched.shape == (0,)
        assert result.variances.shape == (0,)

    def test_invalid_chunk_size(self, engine, workload):
        with pytest.raises(ValueError, match="chunk_queries"):
            batch_query(engine, workload.queries, chunk_queries=0)

    def test_use_uniformity_false_chunked(self, engine, workload):
        reference = batch_query(engine, workload.queries, use_uniformity=False)
        result = batch_query(engine, workload.queries, use_uniformity=False,
                             chunk_queries=7)
        assert np.array_equal(result.estimates, reference.estimates)


class TestShardedResilience:
    """A dead pool must cost latency, never errors — and never leak shm."""

    def test_worker_kill_is_survived_with_parity(self, engine, workload):
        reference = batch_query(engine, workload.queries)
        with ShardedQueryServer(engine, workers=2, chunk_queries=7) as server:
            first = server.batch_query(workload.queries)  # starts the pool
            assert np.array_equal(first.estimates, reference.estimates)
            server.kill_worker()
            # A worker that died may be noticed mid-batch or between batches;
            # either way parity must hold and a rebuild must show up (re-kill
            # a few times in case a fast surviving worker drained the batch
            # before the pool noticed the corpse).
            for _ in range(5):
                result = server.batch_query(workload.queries)
                assert np.array_equal(result.estimates, reference.estimates)
                assert np.array_equal(result.nodes_touched, reference.nodes_touched)
                assert np.array_equal(result.variances, reference.variances)
                stats = server.stats()
                if stats["pool_rebuilds"] + stats["inproc_fallbacks"] >= 1:
                    break
                server.kill_worker()
            stats = server.stats()
            assert stats["pool_rebuilds"] + stats["inproc_fallbacks"] >= 1
            # the server is fully usable again after the crash
            again = server.batch_query(workload.queries)
            assert np.array_equal(again.estimates, reference.estimates)

    def test_matrix_dot_survives_worker_kill(self, engine, workload):
        matrix = compile_query_matrix(engine, workload.queries)
        direct = matrix.dot(engine.released)
        with ShardedQueryServer(engine, workers=2, chunk_queries=7) as server:
            key = server.share_matrix(matrix)
            server.batch_query(workload.queries)  # starts the pool
            server.kill_worker()
            sharded = server.matrix_dot(key, engine.released)
            assert np.allclose(sharded, direct, rtol=1e-9, atol=1e-12)

    def test_close_is_idempotent_and_safe_after_crash(self, engine, workload):
        server = ShardedQueryServer(engine, workers=2, chunk_queries=7)
        server.batch_query(workload.queries)
        server.kill_worker()
        server.close()
        server.close()  # second close is a no-op, not an error
        # a closed server still answers (in-process, pool restarted on demand)
        result = server.batch_query(workload.queries[:3])
        assert len(result) == 3
        server.close()

    def test_worker_task_exception_falls_back_in_process(self, engine, workload,
                                                         monkeypatch):
        """A task raising in the worker (injected OOM) re-evaluates in the
        parent: the pool survives and the answers stay bitwise identical."""
        import repro.parallel.serve as serve_mod

        reference = batch_query(engine, workload.queries)
        # Patch before the pool forks so workers inherit the failing task.
        monkeypatch.setattr(serve_mod, "_serve_chunk", _oom_chunk)
        with ShardedQueryServer(engine, workers=2, chunk_queries=7) as server:
            result = server.batch_query(workload.queries)
            assert np.array_equal(result.estimates, reference.estimates)
            assert server.stats()["inproc_fallbacks"] >= 1
            assert server._pool is not None  # the pool was never torn down

    def test_pool_init_failure_unlinks_segments_and_degrades(self, engine, workload,
                                                             monkeypatch):
        """If the pool cannot start, the exported segments must be unlinked
        (no /dev/shm leak) and the batch served in-process."""
        import repro.parallel.serve as serve_mod

        def broken_executor(*args, **kwargs):
            raise RuntimeError("fork failed (injected)")

        shm_before = _shm_entries()
        reference = batch_query(engine, workload.queries)
        monkeypatch.setattr(serve_mod, "ProcessPoolExecutor", broken_executor)
        with ShardedQueryServer(engine, workers=2, chunk_queries=7) as server:
            result = server.batch_query(workload.queries)
            assert np.array_equal(result.estimates, reference.estimates)
            assert server._arena.n_segments == 0
            assert server.stats()["inproc_fallbacks"] >= 1
        assert _shm_entries() == shm_before

    def test_export_failure_unlinks_segment(self, monkeypatch):
        """SharedArena.export must not leak a segment when the copy into it
        raises."""
        from repro.parallel.shm import SharedArena as Arena

        shm_before = _shm_entries()
        real_ndarray = np.ndarray

        def exploding_ndarray(*args, **kwargs):
            raise MemoryError("copy failed (injected)")

        arena = Arena()
        monkeypatch.setattr(np, "ndarray", exploding_ndarray)
        try:
            with pytest.raises(MemoryError):
                arena.export(real_ndarray.__new__(real_ndarray, (4,), dtype=np.float64))
        finally:
            monkeypatch.undo()
        assert arena.n_segments == 0
        assert _shm_entries() == shm_before
        arena.close()


def _oom_chunk(rows, use_uniformity):  # must be module-level: pickled by name
    raise MemoryError("worker out of memory (injected)")


def _shm_entries() -> set:
    """The current /dev/shm segment names (empty off-Linux)."""
    import os

    try:
        return set(os.listdir("/dev/shm"))
    except OSError:
        return set()


class TestShardedQueryServer:
    def test_parity_and_matrix_dot(self, engine, workload):
        reference = batch_query(engine, workload.queries)
        matrix = compile_query_matrix(engine, workload.queries)
        with ShardedQueryServer(engine, workers=2, chunk_queries=7) as server:
            result = server.batch_query(workload.queries)
            assert np.array_equal(result.estimates, reference.estimates)
            assert np.array_equal(result.nodes_touched, reference.nodes_touched)
            assert np.array_equal(result.variances, reference.variances)
            key = server.share_matrix(matrix)
            sharded = server.matrix_dot(key, engine.released)
            direct = matrix.dot(engine.released)
            assert np.allclose(sharded, direct, rtol=1e-9, atol=1e-12)

    def test_single_worker_runs_in_process(self, engine, workload):
        with ShardedQueryServer(engine, workers=1, chunk_queries=16) as server:
            assert server._pool is None
            reference = batch_query(engine, workload.queries)
            assert np.array_equal(server.batch_query(workload.queries).estimates,
                                  reference.estimates)

    def test_cache_in_front_of_shards(self, engine, workload):
        with ShardedQueryServer(engine, workers=2, chunk_queries=8) as server:
            cached = CachedEngine(engine, evaluator=server.batch_query)
            first = cached.batch_range_query(workload.queries)
            second = cached.batch_range_query(workload.queries)
            assert np.array_equal(first, second)
            assert cached.hits == len(workload.queries)


# ----------------------------------------------------------------------
# Cache thread safety
# ----------------------------------------------------------------------
class TestCacheConcurrency:
    def test_concurrent_batches_stay_consistent(self, engine, workload):
        queries = list(workload.queries)
        reference = {
            i: v for i, v in enumerate(batch_query(engine, queries).estimates)
        }
        cached = CachedEngine(engine, maxsize=16)  # small: force evictions
        errors: list = []
        rng = np.random.default_rng(5)
        orders = [rng.permutation(len(queries)) for _ in range(8)]

        def worker(order):
            try:
                for _ in range(5):
                    picked = [queries[i] for i in order]
                    answers = cached.batch_range_query(picked)
                    for i, answer in zip(order, answers):
                        if answer != reference[i]:
                            raise AssertionError(f"query {i}: {answer} != {reference[i]}")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(order,)) for order in orders]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cached.stats()
        assert stats["size"] <= stats["maxsize"]
        # every lookup was either a hit or a miss, and the counters moved
        assert stats["hits"] + stats["misses"] >= len(queries)


# ----------------------------------------------------------------------
# queries_to_arrays fast path
# ----------------------------------------------------------------------
class TestQueriesToArrays:
    def test_rect_fast_path_matches_row_specs(self):
        rects = [Rect((0.0, 1.0), (2.0, 3.0)), Rect((-1.0, -2.0), (0.5, 0.25))]
        rows = [(*r.lo, *r.hi) for r in rects]
        lo_a, hi_a = queries_to_arrays(rects, 2)
        lo_b, hi_b = queries_to_arrays(rows, 2)
        assert np.array_equal(lo_a, lo_b)
        assert np.array_equal(hi_a, hi_b)

    def test_rect_dims_mismatch(self):
        with pytest.raises(ValueError, match="dims"):
            queries_to_arrays([Rect((0.0,), (1.0,))], 2)

    def test_mixed_input_still_supported(self):
        mixed = [Rect((0.0, 0.0), (1.0, 1.0)), (0.0, 0.0, 2.0, 2.0)]
        lo, hi = queries_to_arrays(mixed, 2)
        assert lo.shape == (2, 2)
        assert hi[1][0] == 2.0
