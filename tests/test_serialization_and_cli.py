"""Tests for PSD serialisation, the workload-aware budget, and the CLI."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core import (
    WorkloadAwareBudget,
    build_psd,
    build_private_quadtree,
    load_psd,
    measure_level_usage,
    psd_from_dict,
    psd_to_dict,
    save_psd,
    workload_aware_quadtree_budget,
)
from repro.core.splits import QuadSplit
from repro.data import uniform_points
from repro.geometry import Domain, Rect


@pytest.fixture(scope="module")
def domain():
    return Domain.unit(2)


@pytest.fixture(scope="module")
def released_psd(domain):
    points = uniform_points(2_000, domain, rng=np.random.default_rng(61))
    psd = build_private_quadtree(points, domain, height=3, epsilon=1.0, variant="quad-opt", rng=62)
    return psd


# ----------------------------------------------------------------------
# Serialisation
# ----------------------------------------------------------------------
class TestSerialization:
    def test_roundtrip_preserves_queries(self, released_psd):
        payload = psd_to_dict(released_psd)
        restored = psd_from_dict(payload)
        for query in (Rect((0.1, 0.1), (0.6, 0.7)), Rect((0.0, 0.0), (1.0, 1.0))):
            assert restored.range_query(query) == pytest.approx(released_psd.range_query(query))

    def test_roundtrip_preserves_structure(self, released_psd):
        restored = psd_from_dict(psd_to_dict(released_psd))
        assert restored.height == released_psd.height
        assert restored.fanout == released_psd.fanout
        assert restored.node_count() == released_psd.node_count()
        assert restored.count_epsilons == released_psd.count_epsilons

    def test_payload_is_json_compatible_and_excludes_private_fields(self, released_psd):
        payload = psd_to_dict(released_psd)
        text = json.dumps(payload)
        assert "_true_count" not in text
        assert "true_count" not in text

    def test_save_and_load_path(self, released_psd, tmp_path):
        path = tmp_path / "release.json"
        save_psd(released_psd, str(path))
        restored = load_psd(str(path))
        assert restored.node_count() == released_psd.node_count()

    def test_save_and_load_file_object(self, released_psd):
        buffer = io.StringIO()
        save_psd(released_psd, buffer)
        buffer.seek(0)
        restored = load_psd(buffer)
        assert restored.name == released_psd.name

    def test_rejects_wrong_version(self, released_psd):
        payload = psd_to_dict(released_psd)
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            psd_from_dict(payload)

    def test_rejects_child_outside_parent(self, released_psd):
        payload = psd_to_dict(released_psd)
        payload["root"]["children"][0]["lo"] = [5.0, 5.0]
        payload["root"]["children"][0]["hi"] = [6.0, 6.0]
        with pytest.raises(ValueError, match="contained"):
            psd_from_dict(payload)

    def test_rejects_bad_level(self, released_psd):
        payload = psd_to_dict(released_psd)
        payload["root"]["children"][0]["level"] = 7
        with pytest.raises(ValueError, match="level"):
            psd_from_dict(payload)

    def test_rejects_root_domain_mismatch(self, released_psd):
        payload = psd_to_dict(released_psd)
        payload["domain"]["hi"] = [2.0, 2.0]
        with pytest.raises(ValueError, match="domain"):
            psd_from_dict(payload)

    def test_pruned_tree_roundtrips(self, domain):
        points = uniform_points(2_000, domain, rng=np.random.default_rng(63))
        psd = build_private_quadtree(points, domain, height=3, epsilon=1.0, variant="quad-opt",
                                     prune_threshold=300.0, rng=64)
        restored = psd_from_dict(psd_to_dict(psd))
        assert restored.node_count() == psd.node_count()


# ----------------------------------------------------------------------
# Workload-aware budgets
# ----------------------------------------------------------------------
class TestWorkloadAwareBudget:
    def test_measure_level_usage(self, domain):
        skeleton = build_psd(np.empty((0, 2)), domain, 3, QuadSplit(), epsilon=1.0,
                             noiseless_counts=True, rng=0)
        usage = measure_level_usage(skeleton, [Rect((0.0, 0.0), (0.5, 0.5))])
        # The aligned quadrant query touches exactly one level-2 node.
        assert usage[2] == pytest.approx(1.0)
        assert usage[0] == pytest.approx(0.0)

    def test_empty_workload_raises(self, domain):
        skeleton = build_psd(np.empty((0, 2)), domain, 2, QuadSplit(), epsilon=1.0,
                             noiseless_counts=True, rng=0)
        with pytest.raises(ValueError):
            measure_level_usage(skeleton, [])

    def test_allocation_sums_and_favours_used_levels(self):
        strategy = WorkloadAwareBudget(level_usage=((0, 64.0), (1, 8.0), (2, 1.0), (3, 0.0)))
        eps = strategy.validate(3, 1.0)
        assert sum(eps) == pytest.approx(1.0)
        assert eps[0] > eps[1] > eps[2]
        assert eps[3] > 0  # floor share keeps unused levels released

    def test_uniform_usage_reduces_to_uniform(self):
        strategy = WorkloadAwareBudget(level_usage=((0, 5.0), (1, 5.0), (2, 5.0)), floor_fraction=0.0)
        eps = strategy.validate(2, 0.9)
        assert all(e == pytest.approx(0.3) for e in eps)

    def test_lemma2_usage_reduces_to_geometric(self):
        """With the worst-case n_i = 8*2^{h-i}, the allocation matches Lemma 3's ratios."""
        height = 5
        usage = {i: 8.0 * 2 ** (height - i) for i in range(height + 1)}
        strategy = WorkloadAwareBudget(level_usage=tuple(usage.items()), floor_fraction=0.0)
        eps = strategy.validate(height, 1.0)
        for i in range(height):
            assert eps[i] / eps[i + 1] == pytest.approx(2 ** (1 / 3), rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadAwareBudget(level_usage=((0, -1.0),))
        with pytest.raises(ValueError):
            WorkloadAwareBudget(floor_fraction=1.5)

    def test_from_workload_and_quadtree_helper(self, domain):
        queries = [Rect((0.0, 0.0), (0.5, 0.5)), Rect((0.1, 0.1), (0.9, 0.9))]
        strategy = workload_aware_quadtree_budget(domain, height=3, queries=queries)
        eps = strategy.validate(3, 1.0)
        assert sum(eps) == pytest.approx(1.0)
        assert all(e > 0 for e in eps)

    def test_workload_aware_budget_reduces_workload_variance(self, domain):
        """On the measured workload, the tailored allocation beats the uniform one."""
        from repro.analysis import empirical_error_for_strategy

        points = uniform_points(2_000, domain, rng=np.random.default_rng(65))
        queries = [Rect((0.0, 0.0), (0.5, 0.5)), Rect((0.25, 0.25), (0.75, 0.75)),
                   Rect((0.0, 0.5), (0.5, 1.0))]
        strategy = workload_aware_quadtree_budget(domain, height=4, queries=queries, floor_fraction=0.02)
        psd = build_psd(points, domain, 4, QuadSplit(), epsilon=1.0, count_budget=strategy, rng=66)
        tailored = empirical_error_for_strategy(psd, queries, strategy, 1.0)
        uniform = empirical_error_for_strategy(psd, queries, "uniform", 1.0)
        assert tailored < uniform

    def test_integrates_with_builder_and_ols(self, domain):
        points = uniform_points(1_000, domain, rng=np.random.default_rng(67))
        strategy = WorkloadAwareBudget(level_usage=((0, 10.0), (1, 4.0), (2, 1.0)))
        psd = build_psd(points, domain, 2, QuadSplit(), epsilon=0.8, count_budget=strategy,
                        postprocess=True, rng=68)
        assert psd.accountant.path_epsilon == pytest.approx(0.8)
        assert all(n.post_count is not None for n in psd.nodes())


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCLI:
    def test_build_and_query_roundtrip(self, tmp_path, capsys):
        release = tmp_path / "release.json"
        rc = main([
            "build", "--synthetic", "3000", "--variant", "quad-opt", "--epsilon", "1.0",
            "--height", "4", "--seed", "3", "--output", str(release),
        ])
        assert rc == 0
        assert release.exists()
        rc = main(["query", str(release), "--rect=-123,45,-120,48"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "-123,45,-120,48" in out

    def test_build_from_csv_with_auto_domain(self, tmp_path):
        csv_path = tmp_path / "points.csv"
        rng = np.random.default_rng(5)
        pts = rng.random((500, 2))
        csv_path.write_text("\n".join(f"{x},{y}" for x, y in pts))
        release = tmp_path / "out.json"
        rc = main(["build", "--input", str(csv_path), "--domain", "auto", "--variant", "kd-hybrid",
                   "--height", "3", "--epsilon", "1.0", "--output", str(release)])
        assert rc == 0
        psd = load_psd(str(release))
        assert psd.height == 3

    def test_build_requires_input_or_synthetic(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["build", "--output", str(tmp_path / "x.json")])

    def test_unknown_variant_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["build", "--synthetic", "100", "--variant", "rtree*", "--output", str(tmp_path / "x.json")])

    def test_query_rejects_malformed_rect(self, tmp_path):
        release = tmp_path / "release.json"
        main(["build", "--synthetic", "500", "--height", "2", "--output", str(release)])
        with pytest.raises(SystemExit):
            main(["query", str(release), "--rect", "1,2,3"])

    def test_experiment_subcommand(self, capsys):
        rc = main(["experiment", "fig2"])
        assert rc == 0
        assert "err_uniform" in capsys.readouterr().out

    def test_experiment_fig3_small(self, capsys):
        rc = main(["experiment", "fig3", "--n-points", "2000", "--n-queries", "5",
                   "--quad-height", "4", "--epsilons", "1.0"])
        assert rc == 0
        assert "quad-opt" in capsys.readouterr().out

    def test_parser_structure(self):
        parser = build_parser()
        args = parser.parse_args(["build", "--synthetic", "10", "--output", "x.json"])
        assert args.command == "build"
        with pytest.raises(SystemExit):
            parser.parse_args(["experiment", "fig99"])
