"""Tests for sampling-based privacy amplification (Theorem 7)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy import (
    amplified_epsilon,
    bernoulli_sample,
    required_base_epsilon,
    sampled_mechanism,
    tight_base_epsilon,
)


class TestBernoulliSample:
    def test_rate_bounds(self, rng):
        data = np.arange(100).reshape(-1, 1)
        assert bernoulli_sample(data, 0.0, rng=rng).shape[0] == 0
        assert bernoulli_sample(data, 1.0, rng=rng).shape[0] == 100

    def test_expected_size(self, rng):
        data = np.arange(200_000).reshape(-1, 1)
        sample = bernoulli_sample(data, 0.01, rng=rng)
        assert 1_500 <= sample.shape[0] <= 2_500

    def test_rows_come_from_data(self, rng):
        data = rng.random((500, 2))
        sample = bernoulli_sample(data, 0.2, rng=rng)
        as_set = {tuple(row) for row in data}
        assert all(tuple(row) in as_set for row in sample)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            bernoulli_sample(np.zeros((3, 1)), 1.5)


class TestAmplificationArithmetic:
    def test_theorem7_formula(self):
        # 2 * p * e^eps
        assert amplified_epsilon(0.9, 0.01) == pytest.approx(2 * 0.01 * math.exp(0.9))

    def test_paper_example(self):
        """Sampling at ~1% with Laplace parameter 0.9 achieves ~0.05-DP (2pe^eps ~ 0.049)."""
        assert amplified_epsilon(0.9, 0.01) < 0.1

    def test_required_base_epsilon_inverts(self):
        eps_prime = required_base_epsilon(0.1, 0.01)
        assert amplified_epsilon(eps_prime, 0.01) <= 0.1 + 1e-9

    def test_required_base_epsilon_small_target_falls_back(self):
        # When the inversion would give a value below the target, the target is used.
        assert required_base_epsilon(0.001, 0.5) == pytest.approx(0.001)

    def test_required_base_epsilon_capped(self):
        assert required_base_epsilon(100.0, 1e-6, cap=5.0) == pytest.approx(5.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            amplified_epsilon(0.0, 0.01)
        with pytest.raises(ValueError):
            amplified_epsilon(1.0, 0.0)
        with pytest.raises(ValueError):
            required_base_epsilon(0.0, 0.01)

    def test_tight_base_epsilon_paper_regime(self):
        """At a 0.01 target with 1% sampling the per-run budget grows ~70x (the
        paper quotes 'about 50 times larger')."""
        eps_prime = tight_base_epsilon(0.01, 0.01)
        assert 0.3 <= eps_prime <= 1.5
        # Closing the loop with the tight amplification formula recovers the target.
        assert math.log(1 + 0.01 * (math.exp(eps_prime) - 1)) == pytest.approx(0.01, rel=1e-6)

    def test_tight_base_epsilon_at_least_target_and_capped(self):
        assert tight_base_epsilon(2.0, 1.0) == pytest.approx(2.0)
        assert tight_base_epsilon(3.0, 1e-6, cap=5.0) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            tight_base_epsilon(0.0, 0.01)
        with pytest.raises(ValueError):
            tight_base_epsilon(0.1, 0.0)

    @given(st.floats(0.01, 2.0), st.floats(0.001, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_inversion_never_violates_target(self, target, rate):
        eps_prime = required_base_epsilon(target, rate)
        # Either the inversion holds, or we fell back to eps' = target which is
        # at least as private as running on the full data at the target budget.
        assert eps_prime == pytest.approx(target) or amplified_epsilon(eps_prime, rate) <= target + 1e-9


class TestSampledMechanism:
    def test_wraps_and_reports_guarantee(self, rng):
        def noisy_count(data, epsilon, rng=None):
            return float(len(data)) + np.random.default_rng(0).laplace(scale=1.0 / epsilon)

        wrapped = sampled_mechanism(noisy_count, rate=0.5)
        result, guarantee = wrapped(np.arange(1000).reshape(-1, 1), 0.5, rng=rng)
        assert 300 < result < 700  # roughly half the data
        assert guarantee <= 0.5 + 1e-9 or guarantee == pytest.approx(amplified_epsilon(0.5, 0.5))

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            sampled_mechanism(lambda d, e: 0.0, rate=0.0)
