"""Tests for the private record-matching application (Section 8.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications import (
    BlockingResult,
    blocking_from_psd,
    build_blocking_tree,
    record_matching_experiment,
)
from repro.data import gaussian_cluster_points
from repro.geometry import Domain


@pytest.fixture(scope="module")
def domain():
    return Domain.unit(2)


@pytest.fixture(scope="module")
def parties(domain):
    rng = np.random.default_rng(41)
    holders = gaussian_cluster_points(3_000, domain, n_clusters=5, spread=0.04, rng=rng)
    # Half of party B are near-duplicates of party A records (true matches).
    near = holders[rng.integers(0, holders.shape[0], 1_500)] + rng.normal(scale=0.002, size=(1_500, 2))
    fresh = gaussian_cluster_points(1_500, domain, n_clusters=5, spread=0.04, rng=rng)
    seekers = domain.clip_points(np.concatenate([near, fresh]))
    return holders, seekers


class TestBuildBlockingTree:
    @pytest.mark.parametrize("method", ["quad-baseline", "kd-noisymean", "kd-standard"])
    def test_leaf_only_budget_and_no_postprocessing(self, domain, parties, method):
        holders, _ = parties
        psd = build_blocking_tree(holders, domain, height=4, epsilon=0.3, method=method, rng=1)
        assert psd.count_epsilons[0] == pytest.approx(
            0.3 if method == "quad-baseline" else 0.3 * 0.7
        )
        assert all(e == 0.0 for e in psd.count_epsilons[1:])
        assert all(n.post_count is None for n in psd.nodes())
        psd.accountant.assert_within_budget()

    def test_unknown_method(self, domain, parties):
        with pytest.raises(KeyError):
            build_blocking_tree(parties[0], domain, 4, 0.3, method="rtree")


class TestBlockingFromPsd:
    def test_result_fields_valid(self, domain, parties):
        holders, seekers = parties
        psd = build_blocking_tree(holders, domain, height=4, epsilon=0.5, method="kd-standard", rng=2)
        result = blocking_from_psd(psd, holders, seekers, matching_distance=0.01)
        assert isinstance(result, BlockingResult)
        assert 0.0 <= result.reduction_ratio <= 1.0
        assert 0.0 <= result.pairs_completeness <= 1.0
        assert result.total_pairs == holders.shape[0] * seekers.shape[0]
        assert 0 <= result.candidate_pairs
        assert result.surviving_leaves <= len(psd.leaves())

    def test_blocking_actually_reduces_work(self, domain, parties):
        holders, seekers = parties
        psd = build_blocking_tree(holders, domain, height=4, epsilon=0.5, method="kd-standard", rng=3)
        result = blocking_from_psd(psd, holders, seekers, matching_distance=0.01)
        assert result.reduction_ratio > 0.3
        assert result.pairs_completeness > 0.7

    def test_empty_parties(self, domain, parties):
        holders, _ = parties
        psd = build_blocking_tree(holders, domain, height=3, epsilon=0.5, method="kd-standard", rng=4)
        result = blocking_from_psd(psd, holders, np.empty((0, 2)), matching_distance=0.01)
        assert result.total_pairs == 0
        assert result.reduction_ratio == 1.0

    def test_rejects_bad_shapes(self, domain, parties):
        holders, seekers = parties
        psd = build_blocking_tree(holders, domain, height=3, epsilon=0.5, method="kd-standard", rng=5)
        with pytest.raises(ValueError):
            blocking_from_psd(psd, holders.ravel(), seekers, matching_distance=0.01)

    def test_larger_budget_improves_reduction(self, domain, parties):
        holders, seekers = parties
        results = {}
        for eps in (0.05, 1.0):
            psd = build_blocking_tree(holders, domain, height=5, epsilon=eps, method="kd-standard", rng=6)
            results[eps] = blocking_from_psd(psd, holders, seekers, matching_distance=0.01)
        assert results[1.0].reduction_ratio >= results[0.05].reduction_ratio - 0.02


class TestExperimentSweep:
    def test_sweep_structure(self, domain, parties):
        holders, seekers = parties
        out = record_matching_experiment(holders, seekers, domain, epsilons=(0.1, 0.3),
                                         height=4, matching_distance=0.01,
                                         methods=("kd-standard", "kd-noisymean"), rng=7)
        assert set(out) == {"kd-standard", "kd-noisymean"}
        for series in out.values():
            assert [e for e, _ in series] == [0.1, 0.3]
            for _, result in series:
                assert isinstance(result, BlockingResult)

    def test_kd_standard_beats_noisymean_on_average(self, domain, parties):
        holders, seekers = parties
        out = record_matching_experiment(holders, seekers, domain, epsilons=(0.1, 0.3, 0.5),
                                         height=4, matching_distance=0.01,
                                         methods=("kd-standard", "kd-noisymean"), rng=8)
        mean_rr = {m: np.mean([r.reduction_ratio for _, r in series]) for m, series in out.items()}
        assert mean_rr["kd-standard"] > mean_rr["kd-noisymean"] - 0.05
