"""Tests for the private record-matching application (Section 8.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications import (
    BlockingResult,
    MatchingOutcome,
    blocking_from_engine,
    blocking_from_psd,
    blocking_reference,
    build_blocking_tree,
    record_matching_experiment,
)
from repro.data import gaussian_cluster_points
from repro.geometry import Domain


@pytest.fixture(scope="module")
def domain():
    return Domain.unit(2)


@pytest.fixture(scope="module")
def parties(domain):
    rng = np.random.default_rng(41)
    holders = gaussian_cluster_points(3_000, domain, n_clusters=5, spread=0.04, rng=rng)
    # Half of party B are near-duplicates of party A records (true matches).
    near = holders[rng.integers(0, holders.shape[0], 1_500)] + rng.normal(scale=0.002, size=(1_500, 2))
    fresh = gaussian_cluster_points(1_500, domain, n_clusters=5, spread=0.04, rng=rng)
    seekers = domain.clip_points(np.concatenate([near, fresh]))
    return holders, seekers


class TestBuildBlockingTree:
    @pytest.mark.parametrize("method", ["quad-baseline", "kd-noisymean", "kd-standard"])
    def test_leaf_only_budget_and_no_postprocessing(self, domain, parties, method):
        holders, _ = parties
        psd = build_blocking_tree(holders, domain, height=4, epsilon=0.3, method=method, rng=1)
        assert psd.count_epsilons[0] == pytest.approx(
            0.3 if method == "quad-baseline" else 0.3 * 0.7
        )
        assert all(e == 0.0 for e in psd.count_epsilons[1:])
        assert all(n.post_count is None for n in psd.nodes())
        psd.accountant.assert_within_budget()

    def test_unknown_method(self, domain, parties):
        with pytest.raises(KeyError):
            build_blocking_tree(parties[0], domain, 4, 0.3, method="rtree")


class TestBlockingFromPsd:
    def test_result_fields_valid(self, domain, parties):
        holders, seekers = parties
        psd = build_blocking_tree(holders, domain, height=4, epsilon=0.5, method="kd-standard", rng=2)
        result = blocking_from_psd(psd, holders, seekers, matching_distance=0.01)
        assert isinstance(result, BlockingResult)
        assert 0.0 <= result.reduction_ratio <= 1.0
        assert 0.0 <= result.pairs_completeness <= 1.0
        assert result.total_pairs == holders.shape[0] * seekers.shape[0]
        assert 0 <= result.candidate_pairs
        assert result.surviving_leaves <= len(psd.leaves())

    def test_blocking_actually_reduces_work(self, domain, parties):
        holders, seekers = parties
        psd = build_blocking_tree(holders, domain, height=4, epsilon=0.5, method="kd-standard", rng=3)
        result = blocking_from_psd(psd, holders, seekers, matching_distance=0.01)
        assert result.reduction_ratio > 0.3
        assert result.pairs_completeness > 0.7

    def test_empty_parties(self, domain, parties):
        holders, _ = parties
        psd = build_blocking_tree(holders, domain, height=3, epsilon=0.5, method="kd-standard", rng=4)
        result = blocking_from_psd(psd, holders, np.empty((0, 2)), matching_distance=0.01)
        assert result.total_pairs == 0
        assert result.reduction_ratio == 1.0

    def test_rejects_bad_shapes(self, domain, parties):
        holders, seekers = parties
        psd = build_blocking_tree(holders, domain, height=3, epsilon=0.5, method="kd-standard", rng=5)
        with pytest.raises(ValueError):
            blocking_from_psd(psd, holders.ravel(), seekers, matching_distance=0.01)

    def test_larger_budget_improves_reduction(self, domain, parties):
        holders, seekers = parties
        results = {}
        for eps in (0.05, 1.0):
            psd = build_blocking_tree(holders, domain, height=5, epsilon=eps, method="kd-standard", rng=6)
            results[eps] = blocking_from_psd(psd, holders, seekers, matching_distance=0.01)
        assert results[1.0].reduction_ratio >= results[0.05].reduction_ratio - 0.02


class TestFastScorerParity:
    """The vectorised engine path must reproduce the seed-era loop bitwise."""

    @pytest.mark.parametrize("method,epsilon,threshold,distance", [
        ("quad-baseline", 0.1, 0.0, 0.05),
        ("kd-noisymean", 0.3, 0.0, 0.02),
        ("kd-standard", 0.5, 0.0, 0.01),
        ("kd-standard", 0.05, 2.0, 0.1),
        ("quad-baseline", 0.5, -5.0, 0.0),
    ])
    def test_engine_matches_reference(self, domain, parties, method, epsilon, threshold, distance):
        holders, seekers = parties
        psd = build_blocking_tree(holders, domain, height=4, epsilon=epsilon, method=method, rng=9)
        engine = psd.compile()
        fast = blocking_from_engine(engine, holders, seekers, distance, count_threshold=threshold)
        ref = blocking_reference(psd, holders, seekers, distance, count_threshold=threshold)
        assert fast == ref  # exact, field for field

    def test_workers_bitwise_parity(self, domain, parties):
        holders, seekers = parties
        psd = build_blocking_tree(holders, domain, height=4, epsilon=0.5, rng=10)
        engine = psd.compile()
        one = blocking_from_engine(engine, holders, seekers, 0.01, workers=1)
        # Small chunks force many tasks; results must not depend on either.
        many = blocking_from_engine(engine, holders, seekers, 0.01, workers=2, seeker_chunk=257)
        assert one == many

    def test_empty_seekers_through_engine(self, domain, parties):
        holders, _ = parties
        psd = build_blocking_tree(holders, domain, height=3, epsilon=0.5, rng=11)
        result = blocking_from_engine(psd.compile(), holders, np.empty((0, 2)), 0.01)
        assert result == BlockingResult(1.0, 0, 0, 1.0, 0)


class TestExperimentSweep:
    def test_sweep_structure(self, domain, parties):
        holders, seekers = parties
        out = record_matching_experiment(holders, seekers, domain, epsilons=(0.1, 0.3),
                                         height=4, matching_distance=0.01,
                                         methods=("kd-standard", "kd-noisymean"), rng=7)
        assert [(row.method, row.epsilon) for row in out] == [
            ("kd-standard", 0.1), ("kd-noisymean", 0.1),
            ("kd-standard", 0.3), ("kd-noisymean", 0.3),
        ]
        for row in out:
            assert isinstance(row, MatchingOutcome)
            assert isinstance(row.result, BlockingResult)

    def test_kd_standard_beats_noisymean_on_average(self, domain, parties):
        holders, seekers = parties
        out = record_matching_experiment(holders, seekers, domain, epsilons=(0.1, 0.3, 0.5),
                                         height=4, matching_distance=0.01,
                                         methods=("kd-standard", "kd-noisymean"), rng=8)
        mean_rr = {}
        for row in out:
            mean_rr.setdefault(row.method, []).append(row.result.reduction_ratio)
        assert np.mean(mean_rr["kd-standard"]) > np.mean(mean_rr["kd-noisymean"]) - 0.05

    def test_method_order_is_irrelevant(self, domain, parties):
        """Each (epsilon, method) pair owns a spawned stream: reordering the
        sweep must not change any pair's released bits."""
        holders, seekers = parties
        kwargs = dict(epsilons=(0.1, 0.3), height=4, matching_distance=0.01, rng=12)
        forward = record_matching_experiment(
            holders, seekers, domain, methods=("kd-standard", "kd-noisymean", "quad-baseline"),
            **kwargs)
        backward = record_matching_experiment(
            holders, seekers, domain, methods=("quad-baseline", "kd-noisymean", "kd-standard"),
            **kwargs)
        by_pair = lambda rows: {(r.method, r.epsilon): r.result for r in rows}  # noqa: E731
        assert by_pair(forward) == by_pair(backward)

    def test_epsilon_order_is_irrelevant(self, domain, parties):
        holders, seekers = parties
        kwargs = dict(height=4, matching_distance=0.01, methods=("kd-standard",), rng=13)
        forward = record_matching_experiment(holders, seekers, domain, epsilons=(0.1, 0.5), **kwargs)
        backward = record_matching_experiment(holders, seekers, domain, epsilons=(0.5, 0.1), **kwargs)
        by_pair = lambda rows: {(r.method, r.epsilon): r.result for r in rows}  # noqa: E731
        assert by_pair(forward) == by_pair(backward)

    def test_duplicate_methods_keep_one_row_each(self, domain, parties):
        """``methods=("kd", "kd")`` used to collapse through a dict; now every
        occurrence yields its own row, the first identical to a solo run."""
        holders, seekers = parties
        kwargs = dict(epsilons=(0.3,), height=4, matching_distance=0.01, rng=14)
        doubled = record_matching_experiment(
            holders, seekers, domain, methods=("kd-standard", "kd-standard"), **kwargs)
        solo = record_matching_experiment(
            holders, seekers, domain, methods=("kd-standard",), **kwargs)
        assert len(doubled) == 2
        assert doubled[0].result == solo[0].result
        # The second occurrence continues the pair's stream: deterministic,
        # but an independent repetition (a fresh noisy tree).
        again = record_matching_experiment(
            holders, seekers, domain, methods=("kd-standard", "kd-standard"), **kwargs)
        assert [row.result for row in doubled] == [row.result for row in again]

    def test_reference_scorer_matches_fast(self, domain, parties):
        holders, seekers = parties
        kwargs = dict(epsilons=(0.3,), height=4, matching_distance=0.01,
                      methods=("kd-standard", "quad-baseline"), rng=15)
        fast = record_matching_experiment(holders, seekers, domain, scorer="fast", **kwargs)
        ref = record_matching_experiment(holders, seekers, domain, scorer="reference", **kwargs)
        assert fast == ref

    def test_unknown_scorer_rejected(self, domain, parties):
        holders, seekers = parties
        with pytest.raises(ValueError):
            record_matching_experiment(holders, seekers, domain, epsilons=(0.3,), scorer="turbo")
