"""Property tests for the exact point-grid kernels (repro.engine.points).

Everything here is asserted **bitwise**: the grid structures are exact
accelerators, so any drift from the brute force — one count, one mask bit,
one matched pair — is a bug, not a tolerance question.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.points import CellJoinIndex, PointGrid, matching_cell_layout


def brute_counts(points, lo, hi):
    out = np.zeros(lo.shape[0], dtype=np.int64)
    for i in range(lo.shape[0]):
        if points.shape[0]:
            inside = np.all(points >= lo[i], axis=1) & np.all(points <= hi[i], axis=1)
            out[i] = int(np.count_nonzero(inside))
    return out


def brute_mask(points, lo, hi):
    mask = np.zeros(points.shape[0], dtype=bool)
    for i in range(lo.shape[0]):
        mask |= np.all(points >= lo[i], axis=1) & np.all(points <= hi[i], axis=1)
    return mask


def brute_join(a, b, distance, a_mask):
    total = kept = 0
    for j in range(b.shape[0]):
        if a.shape[0] == 0:
            break
        matches = np.max(np.abs(a - b[j]), axis=1) <= distance
        total += int(np.count_nonzero(matches))
        kept += int(np.count_nonzero(matches & a_mask))
    return total, kept


class TestPointGrid:
    @pytest.mark.parametrize("seed", range(12))
    def test_counts_and_mask_match_bruteforce(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(0, 400))
        n_rects = int(rng.integers(0, 60))
        dims = int(rng.integers(1, 4))
        points = rng.random((n, dims)) * rng.uniform(0.1, 50.0) + rng.uniform(-25.0, 25.0)
        if seed % 3 == 0 and n:
            points = np.round(points, 1)  # snap onto cell-boundary-prone values
        lo = rng.uniform(-30.0, 30.0, (n_rects, dims))
        hi = lo + rng.uniform(-1.0, 40.0, (n_rects, dims))  # includes inverted rects
        grid = PointGrid.build(points)
        assert np.array_equal(grid.count_in_rects(lo, hi), brute_counts(points, lo, hi))
        assert np.array_equal(grid.mask_in_rects(lo, hi), brute_mask(points, lo, hi))

    def test_rect_edges_are_closed_both_sides(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [0.5, 0.5], [1.0, 0.0]])
        grid = PointGrid.build(points)
        lo = np.array([[0.0, 0.0]])
        hi = np.array([[1.0, 1.0]])
        assert grid.count_in_rects(lo, hi)[0] == 4
        # Degenerate rect: a single point, still closed containment.
        assert grid.count_in_rects(np.array([[1.0, 1.0]]), np.array([[1.0, 1.0]]))[0] == 1

    def test_rects_far_outside_grid(self):
        points = np.random.default_rng(3).random((100, 2))
        grid = PointGrid.build(points)
        lo = np.array([[1e6, 1e6], [-1e7, -1e7], [-1e7, -1e7]])
        hi = np.array([[2e6, 2e6], [-1e6, -1e6], [1e7, 1e7]])
        assert grid.count_in_rects(lo, hi).tolist() == [0, 0, 100]

    def test_small_rect_blocks_match_single_pass(self):
        rng = np.random.default_rng(9)
        points = rng.random((500, 2))
        lo = rng.random((40, 2)) - 0.1
        hi = lo + rng.random((40, 2)) * 0.5
        grid = PointGrid.build(points)
        assert np.array_equal(grid.count_in_rects(lo, hi, rect_block=3),
                              grid.count_in_rects(lo, hi))
        assert np.array_equal(grid.mask_in_rects(lo, hi, rect_block=3),
                              grid.mask_in_rects(lo, hi))

    def test_empty_inputs(self):
        grid = PointGrid.build(np.empty((0, 2)))
        lo = np.array([[0.0, 0.0]])
        hi = np.array([[1.0, 1.0]])
        assert grid.count_in_rects(lo, hi).tolist() == [0]
        assert grid.mask_in_rects(lo, hi).shape == (0,)
        populated = PointGrid.build(np.random.default_rng(0).random((10, 2)))
        nothing = np.empty((0, 2))
        assert populated.count_in_rects(nothing, nothing).shape == (0,)
        assert not populated.mask_in_rects(nothing, nothing).any()


class TestNeighborJoin:
    """Satellite: join completeness == brute-force completeness, always."""

    @pytest.mark.parametrize("seed", range(20))
    def test_join_matches_bruteforce(self, seed):
        rng = np.random.default_rng(100 + seed)
        n_a = int(rng.integers(0, 150))
        n_b = int(rng.integers(0, 150))
        dims = int(rng.integers(1, 4))
        distance = float(rng.choice([0.0, 1e-12, 0.01, 0.05, 0.5, 2.0, 1e6]))
        a = rng.random((n_a, dims))
        b = rng.random((n_b, dims))
        if seed % 4 == 0 and distance > 0:
            # Points exactly on cell boundaries (integer multiples of the side).
            a = np.floor(a / distance) * distance if distance <= 1 else a
        a_mask = rng.random(n_a) < 0.5
        origin, side, extents = matching_cell_layout(a, b, distance)
        index = CellJoinIndex.build(a, origin, side, extents)
        assert index.join_count(b, distance, a_mask) == brute_join(a, b, distance, a_mask)

    def test_zero_matches(self):
        a = np.zeros((10, 2))
        b = np.ones((10, 2)) * 100.0
        origin, side, extents = matching_cell_layout(a, b, 0.5)
        index = CellJoinIndex.build(a, origin, side, extents)
        assert index.join_count(b, 0.5, np.ones(10, dtype=bool)) == (0, 0)

    def test_all_match(self):
        rng = np.random.default_rng(7)
        a = rng.random((30, 2))
        b = rng.random((20, 2))
        origin, side, extents = matching_cell_layout(a, b, 10.0)
        index = CellJoinIndex.build(a, origin, side, extents)
        mask = np.zeros(30, dtype=bool)
        mask[:11] = True
        assert index.join_count(b, 10.0, mask) == (600, 220)

    def test_empty_sides(self):
        a = np.random.default_rng(1).random((5, 2))
        empty = np.empty((0, 2))
        origin, side, extents = matching_cell_layout(a, empty, 0.1)
        index = CellJoinIndex.build(a, origin, side, extents)
        assert index.join_count(empty, 0.1, np.ones(5, dtype=bool)) == (0, 0)
        origin, side, extents = matching_cell_layout(empty, a, 0.1)
        assert CellJoinIndex.build(empty, origin, side, extents).join_count(a, 0.1, None) == (0, 0)

    def test_identical_points_distance_zero(self):
        a = np.array([[0.25, 0.75]] * 4 + [[0.5, 0.5]])
        b = np.array([[0.25, 0.75], [0.5, 0.5], [0.5, 0.50001]])
        origin, side, extents = matching_cell_layout(a, b, 0.0)
        index = CellJoinIndex.build(a, origin, side, extents)
        mask = np.array([True, False, True, False, True])
        assert index.join_count(b, 0.0, mask) == brute_join(a, b, 0.0, mask)

    def test_no_mask_reports_total_twice(self):
        rng = np.random.default_rng(2)
        a, b = rng.random((40, 2)), rng.random((40, 2))
        origin, side, extents = matching_cell_layout(a, b, 0.2)
        index = CellJoinIndex.build(a, origin, side, extents)
        total, kept = index.join_count(b, 0.2, None)
        assert total == kept == brute_join(a, b, 0.2, np.ones(40, dtype=bool))[0]

    def test_dimension_mismatch_rejected(self):
        a = np.zeros((3, 2))
        origin, side, extents = matching_cell_layout(a, a, 0.1)
        index = CellJoinIndex.build(a, origin, side, extents)
        with pytest.raises(ValueError):
            index.join_count(np.zeros((3, 3)), 0.1, None)
