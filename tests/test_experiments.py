"""Smoke/integration tests for the figure-reproduction experiment runners.

These run every experiment at a tiny scale and check structure and basic
sanity of the output rows; the full-scale runs (and the shape assertions
against the paper) live in ``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ExperimentScale,
    evaluate_tree,
    format_table,
    make_dataset,
    make_workloads,
    run_budget_split_ablation,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7a,
    run_fig7b,
    run_geometric_ratio_ablation,
    run_switch_level_ablation,
)
from repro.queries import KD_QUERY_SHAPES

SCALE = ExperimentScale.smoke()


@pytest.fixture(scope="module")
def tiny_points():
    return make_dataset(SCALE, rng=0)


class TestCommonInfrastructure:
    def test_scales(self):
        assert ExperimentScale.paper().n_points == 1_630_000
        assert SCALE.n_points < 10_000

    def test_make_workloads_and_evaluate(self, tiny_points):
        workloads = make_workloads(tiny_points, KD_QUERY_SHAPES, SCALE, rng=1)
        assert set(workloads) == {s.label for s in KD_QUERY_SHAPES}
        errors = evaluate_tree(lambda q: 0.0, workloads)
        assert all(err == pytest.approx(1.0) for err in errors.values())

    def test_format_table(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 2, "b": None}]
        table = format_table(rows, ["a", "b"], title="T")
        assert "T" in table and "0.5000" in table and "-" in table


class TestFigureRunners:
    def test_fig2_rows(self):
        rows = run_fig2(heights=(5, 6, 7))
        assert [r["height"] for r in rows] == [5, 6, 7]
        assert all(r["err_uniform"] > r["err_geometric"] for r in rows)

    def test_fig3_rows(self, tiny_points):
        rows = run_fig3(scale=SCALE, epsilons=(0.5,), points=tiny_points, rng=2)
        variants = {r["variant"] for r in rows}
        assert variants == {"quad-baseline", "quad-geo", "quad-post", "quad-opt"}
        assert all(np.isfinite(r["median_rel_error_pct"]) for r in rows)

    def test_fig4_rows(self):
        rows = run_fig4(n_points=2**12, depth=4, methods=("em", "noisymean"), rng=3)
        assert {r["method"] for r in rows} == {"em", "noisymean"}
        assert {r["depth"] for r in rows} == {0, 1, 2, 3}
        root_rows = [r for r in rows if r["depth"] == 0]
        assert all(r["nodes"] == 1 for r in root_rows)
        assert all(0 <= r["rank_error_pct"] <= 100 for r in rows if np.isfinite(r["rank_error_pct"]))

    def test_fig5_rows(self, tiny_points):
        rows = run_fig5(scale=SCALE, epsilons=(1.0,), variants=("kd-pure", "kd-hybrid"),
                        points=tiny_points, rng=4)
        assert {r["variant"] for r in rows} == {"kd-pure", "kd-hybrid"}
        assert len(rows) == 2 * len(KD_QUERY_SHAPES)

    def test_fig6_rows(self, tiny_points):
        rows = run_fig6(scale=SCALE, heights=(3, 4), methods=("quad-opt", "kd-hybrid"),
                        points=tiny_points, rng=5)
        assert {r["height"] for r in rows} == {3, 4}
        assert {r["method"] for r in rows} == {"quad-opt", "kd-hybrid"}

    def test_fig6_unknown_method(self, tiny_points):
        with pytest.raises(KeyError):
            run_fig6(scale=SCALE, heights=(3,), methods=("voronoi",), points=tiny_points)

    def test_fig7a_rows(self, tiny_points):
        rows = run_fig7a(scale=SCALE, points=tiny_points, methods=("quadtree", "kd-hybrid"), rng=6)
        assert all(r["build_time_sec"] > 0 for r in rows)

    def test_fig7b_rows(self):
        rows = run_fig7b(n_per_party=1_500, epsilons=(0.1, 0.5), height=4, rng=7)
        methods = {r["method"] for r in rows}
        assert methods == {"quad-baseline", "kd-noisymean", "kd-standard"}
        # RR = 1 - candidates/total can dip (slightly) below zero at tiny
        # budgets: dummy padding to noisy leaf counts may cost more SMC work
        # than brute force, which is exactly the failure mode of [12] the
        # paper discusses.  Only the upper bound is structural.
        assert all(r["reduction_ratio"] <= 1.0 for r in rows)
        assert all(r["reduction_ratio"] > 0.5 for r in rows if r["epsilon"] >= 0.5)
        assert all(0.0 <= r["pairs_completeness"] <= 1.0 for r in rows)


class TestAblations:
    def test_budget_split(self, tiny_points):
        rows = run_budget_split_ablation(scale=SCALE, count_fractions=(0.5, 0.9),
                                         points=tiny_points, rng=8)
        assert {r["count_fraction"] for r in rows} == {0.5, 0.9}

    def test_switch_level(self, tiny_points):
        rows = run_switch_level_ablation(scale=SCALE, switch_levels=(0, 2), points=tiny_points, rng=9)
        assert {r["switch_level"] for r in rows} == {0, 2}

    def test_geometric_ratio(self):
        rows = run_geometric_ratio_ablation(heights=(6,))
        assert rows[0]["best_ratio"] == pytest.approx(2 ** (1 / 3), abs=0.12)
