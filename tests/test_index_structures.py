"""Tests for the exact (non-private) index substrate: grid, quadtree, kd-tree, Hilbert R-tree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Rect
from repro.index import (
    ExactHilbertRTree,
    ExactKDTree,
    ExactQuadtree,
    UniformGrid,
)


def brute_force_count(points: np.ndarray, query: Rect) -> int:
    return int(query.count_points(points, closed_hi=True))


# ----------------------------------------------------------------------
# Uniform grid
# ----------------------------------------------------------------------
class TestUniformGrid:
    def test_counts_sum_to_n(self, unit_domain, small_uniform_points):
        grid = UniformGrid(domain=unit_domain, shape=(16, 16)).fit(small_uniform_points)
        assert grid.counts.sum() == pytest.approx(small_uniform_points.shape[0])

    def test_shape_validation(self, unit_domain):
        with pytest.raises(ValueError):
            UniformGrid(domain=unit_domain, shape=(4,))
        with pytest.raises(ValueError):
            UniformGrid(domain=unit_domain, shape=(0, 4))

    def test_cell_rect_and_edges(self, unit_domain):
        grid = UniformGrid(domain=unit_domain, shape=(4, 2))
        assert grid.cell_rect((0, 0)) == Rect((0.0, 0.0), (0.25, 0.5))
        assert np.allclose(grid.edges(0), [0, 0.25, 0.5, 0.75, 1.0])
        assert grid.n_cells == 8

    def test_exact_query_on_aligned_rect(self, unit_domain, small_uniform_points):
        grid = UniformGrid(domain=unit_domain, shape=(8, 8)).fit(small_uniform_points)
        query = Rect((0.25, 0.25), (0.75, 0.75))  # aligned with cell edges
        estimate = grid.range_count(query)
        # Aligned queries are exact up to boundary points sitting exactly on edges.
        assert estimate == pytest.approx(brute_force_count(small_uniform_points, query), abs=6)

    def test_partial_cell_uniformity(self, unit_domain):
        grid = UniformGrid(domain=unit_domain, shape=(1, 1))
        grid.counts = np.array([[100.0]])
        query = Rect((0.0, 0.0), (0.5, 0.5))
        assert grid.range_count(query) == pytest.approx(25.0)

    def test_disjoint_query_zero(self, unit_domain, small_uniform_points):
        grid = UniformGrid(domain=unit_domain, shape=(4, 4)).fit(small_uniform_points)
        assert grid.range_count(Rect((2.0, 2.0), (3.0, 3.0))) == 0.0

    def test_point_cells_in_range(self, unit_domain, small_uniform_points):
        grid = UniformGrid(domain=unit_domain, shape=(8, 8))
        cells = grid.point_cells(small_uniform_points)
        assert cells.min() >= 0 and cells.max() <= 7

    def test_noisy_counts_epsilon_validation(self, unit_domain, small_uniform_points):
        grid = UniformGrid(domain=unit_domain, shape=(4, 4)).fit(small_uniform_points)
        with pytest.raises(ValueError):
            grid.noisy_counts(0.0)

    def test_noisy_counts_statistics(self, unit_domain, small_uniform_points, rng):
        grid = UniformGrid(domain=unit_domain, shape=(4, 4)).fit(small_uniform_points)
        noisy = grid.noisy_counts(10.0, rng=rng)
        assert np.allclose(noisy.counts, grid.counts, atol=5.0)
        assert noisy.non_negative().counts.min() >= 0.0

    def test_noisy_grid_range_count(self, unit_domain, small_uniform_points, rng):
        grid = UniformGrid(domain=unit_domain, shape=(8, 8)).fit(small_uniform_points)
        noisy = grid.noisy_counts(5.0, rng=rng)
        query = Rect((0.1, 0.1), (0.9, 0.9))
        assert noisy.range_count(query) == pytest.approx(grid.range_count(query), rel=0.1)


# ----------------------------------------------------------------------
# Exact quadtree
# ----------------------------------------------------------------------
class TestExactQuadtree:
    @pytest.fixture(scope="class")
    def tree(self, unit_domain, small_uniform_points):
        return ExactQuadtree(domain=unit_domain, height=4).fit(small_uniform_points)

    def test_complete_structure(self, tree):
        assert tree.node_count() == sum(4**i for i in range(5))
        assert len(tree.leaves()) == 4**4

    def test_counts_consistent(self, tree):
        for node in tree.nodes():
            if not node.is_leaf:
                assert node.count == sum(c.count for c in node.children)

    def test_root_count_is_n(self, tree, small_uniform_points):
        assert tree.root.count == small_uniform_points.shape[0]

    def test_range_count_matches_brute_force_on_aligned_query(self, tree, small_uniform_points):
        query = Rect((0.25, 0.5), (0.75, 1.0))
        assert tree.range_count(query, use_uniformity=False) == pytest.approx(
            brute_force_count(small_uniform_points, query), abs=6
        )

    def test_range_count_uniformity_close(self, tree, small_uniform_points):
        query = Rect((0.13, 0.21), (0.77, 0.66))
        estimate = tree.range_count(query)
        truth = brute_force_count(small_uniform_points, query)
        assert estimate == pytest.approx(truth, rel=0.15)

    def test_nodes_touched_within_lemma2_bound(self, tree):
        from repro.analysis import quadtree_touched_bound

        query = Rect((0.111, 0.222), (0.777, 0.888))
        assert tree.nodes_touched(query) <= quadtree_touched_bound(tree.height)

    def test_query_before_fit_raises(self, unit_domain):
        with pytest.raises(RuntimeError):
            ExactQuadtree(domain=unit_domain, height=2).range_count(Rect.unit(2))

    def test_height_zero_tree(self, unit_domain, small_uniform_points):
        tree = ExactQuadtree(domain=unit_domain, height=0).fit(small_uniform_points)
        assert tree.node_count() == 1
        assert tree.root.is_leaf


# ----------------------------------------------------------------------
# Exact kd-tree
# ----------------------------------------------------------------------
class TestExactKDTree:
    @pytest.fixture(scope="class")
    def tree(self, unit_domain, small_uniform_points):
        return ExactKDTree(domain=unit_domain, height=6).fit(small_uniform_points)

    def test_complete_binary_structure(self, tree):
        assert tree.node_count() == 2**7 - 1
        assert len(tree.leaves()) == 2**6

    def test_counts_consistent(self, tree):
        for node in tree.nodes():
            if not node.is_leaf:
                assert node.count == sum(c.count for c in node.children)

    def test_median_splits_are_balanced(self, tree):
        """Exact-median splits put (nearly) half the points on each side."""
        for node in tree.nodes():
            if node.is_leaf or node.count < 4:
                continue
            left, right = node.children
            assert abs(left.count - right.count) <= node.count * 0.5 + 2

    def test_split_values_inside_node_rect(self, tree):
        for node in tree.nodes():
            if node.split_axis is None:
                continue
            assert node.rect.lo[node.split_axis] <= node.split_value <= node.rect.hi[node.split_axis]

    def test_range_count_close_to_truth(self, tree, small_uniform_points):
        query = Rect((0.2, 0.3), (0.8, 0.9))
        assert tree.range_count(query) == pytest.approx(
            brute_force_count(small_uniform_points, query), rel=0.1
        )

    def test_first_axis_validation(self, unit_domain):
        with pytest.raises(ValueError):
            ExactKDTree(domain=unit_domain, height=2, first_axis=5)


# ----------------------------------------------------------------------
# Exact Hilbert R-tree
# ----------------------------------------------------------------------
class TestExactHilbertRTree:
    @pytest.fixture(scope="class")
    def tree(self, unit_domain, small_uniform_points):
        return ExactHilbertRTree(domain=unit_domain, height=8, order=8).fit(small_uniform_points)

    def test_complete_structure_and_counts(self, tree, small_uniform_points):
        assert tree.root.count == small_uniform_points.shape[0]
        for node in tree.nodes():
            if not node.is_leaf:
                assert node.count == sum(c.count for c in node.children)

    def test_bboxes_assigned_and_nested(self, tree):
        for node in tree.nodes():
            assert node.bbox is not None
            for child in node.children:
                # Children's index ranges are nested, so their boxes sit inside the domain.
                assert tree.domain.rect.contains_rect(child.bbox)

    def test_range_count_close_to_truth(self, tree, small_uniform_points):
        query = Rect((0.2, 0.2), (0.7, 0.8))
        truth = brute_force_count(small_uniform_points, query)
        assert tree.range_count(query) == pytest.approx(truth, rel=0.2)

    def test_full_domain_query_returns_everything(self, tree, small_uniform_points):
        assert tree.range_count(tree.domain.rect) == pytest.approx(small_uniform_points.shape[0], rel=0.01)
