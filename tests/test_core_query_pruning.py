"""Tests for canonical range-query processing (Section 4.1) and pruning (Section 7)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import quadtree_touched_bound
from repro.core import build_psd, nodes_touched, nodes_touched_per_level, query_variance, range_query
from repro.core.builder import BudgetSplit
from repro.core.pruning import count_pruned_nodes, prune_low_count_subtrees
from repro.core.splits import KDSplit, QuadSplit
from repro.data import uniform_points
from repro.geometry import Domain, Rect
from repro.privacy import laplace_variance


@pytest.fixture(scope="module")
def domain():
    return Domain.unit(2)


@pytest.fixture(scope="module")
def points(domain):
    return uniform_points(4_000, domain, rng=np.random.default_rng(8))


@pytest.fixture(scope="module")
def noiseless_psd(domain, points):
    """A quadtree with exact counts so query answers can be checked against brute force."""
    return build_psd(points, domain, 4, QuadSplit(), epsilon=1.0, noiseless_counts=True, rng=1)


def brute_force(points, query):
    return float(query.count_points(points, closed_hi=True))


_PROPERTY_CACHE = {}


def _property_tree():
    """A shared noiseless quadtree for the hypothesis property test."""
    if "tree" not in _PROPERTY_CACHE:
        domain = Domain.unit(2)
        pts = uniform_points(3_000, domain, rng=np.random.default_rng(21))
        psd = build_psd(pts, domain, 4, QuadSplit(), epsilon=1.0, noiseless_counts=True, rng=22)
        _PROPERTY_CACHE["tree"] = (psd, pts)
    return _PROPERTY_CACHE["tree"]


class TestCanonicalDecomposition:
    def test_full_domain_query_returns_total(self, noiseless_psd, points):
        assert range_query(noiseless_psd, noiseless_psd.domain.rect) == pytest.approx(points.shape[0])

    def test_aligned_query_exact(self, noiseless_psd, points):
        query = Rect((0.25, 0.5), (0.75, 1.0))
        assert range_query(noiseless_psd, query) == pytest.approx(brute_force(points, query), abs=6)

    def test_unaligned_query_close_under_uniformity(self, noiseless_psd, points):
        query = Rect((0.13, 0.27), (0.81, 0.64))
        estimate = range_query(noiseless_psd, query)
        assert estimate == pytest.approx(brute_force(points, query), rel=0.1)

    def test_disjoint_query_zero(self, noiseless_psd):
        assert range_query(noiseless_psd, Rect((2.0, 2.0), (3.0, 3.0))) == 0.0

    def test_without_uniformity_underestimates(self, noiseless_psd, points):
        query = Rect((0.13, 0.27), (0.81, 0.64))
        no_uniform = range_query(noiseless_psd, query, use_uniformity=False)
        with_uniform = range_query(noiseless_psd, query)
        assert no_uniform <= with_uniform

    def test_aligned_query_uses_few_nodes(self, noiseless_psd):
        # The top-left quadrant is a single node of the decomposition.
        assert nodes_touched(noiseless_psd, Rect((0.0, 0.0), (0.5, 0.5))) == 1

    def test_nodes_touched_within_lemma2_bound(self, noiseless_psd, rng):
        for _ in range(30):
            lo = rng.random(2) * 0.6
            hi = lo + rng.random(2) * 0.39 + 0.005
            query = Rect(tuple(lo), tuple(hi))
            assert nodes_touched(noiseless_psd, query) <= quadtree_touched_bound(noiseless_psd.height)

    def test_per_level_counts_sum_to_total(self, noiseless_psd):
        query = Rect((0.1, 0.1), (0.9, 0.7))
        per_level = nodes_touched_per_level(noiseless_psd, query)
        assert sum(per_level.values()) == nodes_touched(noiseless_psd, query)

    def test_query_variance_formula(self, domain, points):
        psd = build_psd(points, domain, 3, QuadSplit(), epsilon=1.0, count_budget="uniform", rng=2)
        query = Rect((0.0, 0.0), (0.5, 0.5))  # exactly one level-2 node
        expected = laplace_variance(psd.count_epsilons[2])
        assert query_variance(psd, query) == pytest.approx(expected)

    def test_leaf_only_budget_descends_to_leaves(self, domain, points):
        psd = build_psd(points, domain, 3, QuadSplit(), epsilon=1.0, count_budget="leaf-only",
                        noiseless_counts=True, rng=3)
        # Internal nodes have no released counts, so even an aligned quadrant
        # query must be answered from the 4^2 leaf cells beneath it.
        query = Rect((0.0, 0.0), (0.5, 0.5))
        assert nodes_touched(psd, query) == 4**2
        assert range_query(psd, query) == pytest.approx(brute_force(points, query), abs=6)

    def test_private_answer_unbiased_over_draws(self, domain, points):
        from repro.core.builder import populate_noisy_counts

        psd = build_psd(points, domain, 3, QuadSplit(), epsilon=0.5, rng=4)
        query = Rect((0.2, 0.2), (0.8, 0.8))
        truth = brute_force(points, query)
        rng = np.random.default_rng(55)
        answers = []
        for _ in range(150):
            populate_noisy_counts(psd, rng=rng)
            answers.append(range_query(psd, query))
        assert np.mean(answers) == pytest.approx(truth, rel=0.05)

    @given(st.floats(0.0, 0.8), st.floats(0.0, 0.8), st.floats(0.05, 0.2), st.floats(0.05, 0.2))
    @settings(max_examples=40, deadline=None)
    def test_property_noiseless_answers_close_to_truth(self, x, y, w, h):
        psd, pts = _property_tree()
        query = Rect((x, y), (min(x + w, 1.0), min(y + h, 1.0)))
        if query.area <= 0:
            return
        estimate = range_query(psd, query)
        truth = brute_force(pts, query)
        # Uniformity-assumption error only; generous bound for small queries.
        assert abs(estimate - truth) <= max(25.0, 0.25 * truth)


class TestPruning:
    def test_prune_removes_low_count_subtrees(self, domain, points):
        psd = build_psd(points, domain, 4, QuadSplit(), epsilon=1.0, rng=5, postprocess=True)
        full_nodes = psd.node_count()
        # ~4000 points over 64 level-1 nodes gives ~62 points per node, so a
        # threshold of 70 cuts the level-1 subtrees but keeps level 2 and above.
        removed = prune_low_count_subtrees(psd, threshold=70.0)
        assert removed > 0
        assert psd.node_count() == full_nodes - removed
        assert count_pruned_nodes(psd) == removed

    def test_prune_keeps_dense_regions(self, domain):
        # All mass in one quadrant: that quadrant's subtree must survive.
        dense = uniform_points(2_000, Domain.from_bounds((0.0, 0.0), (0.5, 0.5)), rng=np.random.default_rng(1))
        psd = build_psd(dense, domain, 3, QuadSplit(), epsilon=5.0, rng=6, postprocess=True)
        prune_low_count_subtrees(psd, threshold=100.0)
        dense_child = next(c for c in psd.root.children if c.rect.contains_point((0.1, 0.1)))
        assert not dense_child.is_leaf
        sparse_child = next(c for c in psd.root.children if c.rect.contains_point((0.9, 0.9)))
        assert sparse_child.is_leaf

    def test_threshold_zero_keeps_everything_positive(self, domain, points):
        psd = build_psd(points, domain, 3, QuadSplit(), epsilon=1.0, rng=7, postprocess=True)
        prune_low_count_subtrees(psd, threshold=0.0)
        # Only subtrees under negative released counts can be removed at threshold 0.
        for node in psd.nodes():
            if not node.is_leaf:
                assert node.released_count >= 0.0

    def test_negative_threshold_rejected(self, domain, points):
        psd = build_psd(points, domain, 2, QuadSplit(), epsilon=1.0, rng=8)
        with pytest.raises(ValueError):
            prune_low_count_subtrees(psd, threshold=-1.0)

    def test_queries_still_work_after_pruning(self, domain, points):
        psd = build_psd(points, domain, 4, QuadSplit(), epsilon=1.0, rng=9, postprocess=True,
                        prune_threshold=30.0)
        query = Rect((0.1, 0.1), (0.6, 0.6))
        estimate = psd.range_query(query)
        assert estimate == pytest.approx(brute_force(points, query), rel=0.35)

    def test_prune_via_psd_method_chains(self, domain, points):
        psd = build_psd(points, domain, 3, QuadSplit(), epsilon=1.0, rng=10, postprocess=True)
        assert psd.prune(25.0) is psd


class TestTreeHelpers:
    def test_nodes_by_level_and_summary(self, noiseless_psd):
        by_level = noiseless_psd.nodes_by_level()
        assert len(by_level[noiseless_psd.height]) == 1
        assert len(by_level[0]) == 4**noiseless_psd.height
        summary = noiseless_psd.summary()
        assert summary["nodes"] == noiseless_psd.node_count()
        assert summary["height"] == noiseless_psd.height

    def test_level_epsilon_bounds(self, noiseless_psd):
        with pytest.raises(ValueError):
            noiseless_psd.level_epsilon(noiseless_psd.height + 1)

    def test_strip_private_fields(self, domain, points):
        psd = build_psd(points, domain, 2, QuadSplit(), epsilon=1.0, rng=11)
        psd.strip_private_fields()
        assert all(node._true_count == 0 for node in psd.nodes())

    def test_total_count_epsilon(self, domain, points):
        psd = build_psd(points, domain, 2, KDSplit(median_method="em"), epsilon=1.0,
                        budget_split=BudgetSplit(count_fraction=0.7), rng=12)
        assert psd.total_count_epsilon() == pytest.approx(0.7)
