"""Tests for the crash-safe sweep layer: checkpoint journal + fault tolerance.

The load-bearing contracts:

* **bitwise resume** — a sweep journaled to a checkpoint and resumed (after a
  truncation, or after an actual SIGKILL of the process, tested end to end in
  a subprocess with hex-encoded floats) produces rows bitwise identical to an
  uninterrupted run;
* **refusal before guessing** — a corrupted journal (torn header, garbage
  record, sequence gap, foreign fingerprint, duplicate case) refuses to
  resume with a *distinct named error*; only a torn tail after a valid
  header is tolerated (truncate + resume);
* **fault-tolerant parity** — kill-worker / oom-worker / slow-case fault
  schedules, pool rebuilds, timeout retries and graceful degradation all
  leave ``workers=N`` rows bitwise equal to a healthy ``workers=1`` run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.flatbuild import build_flat_structure
from repro.core.splits import QuadSplit
from repro.data import road_intersections
from repro.experiments import ExperimentScale, make_workloads
from repro.experiments.common import run_sweep
from repro.experiments.fig3 import quadtree_sweep_case
from repro.geometry import TIGER_DOMAIN
from repro.parallel.checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointHeaderError,
    CheckpointMismatchError,
    CheckpointSequenceGapError,
    SweepCheckpoint,
    decode_rows,
    encode_rows,
)
from repro.queries import KD_QUERY_SHAPES

SCALE = ExperimentScale.smoke()


@pytest.fixture(scope="module")
def points():
    return road_intersections(n=2_500, rng=0)


@pytest.fixture(scope="module")
def workloads(points):
    return make_workloads(points, KD_QUERY_SHAPES[:1], SCALE, rng=1)


@pytest.fixture(scope="module")
def cases(points):
    structure = build_flat_structure(points, TIGER_DOMAIN, 4, QuadSplit(), 0.0)
    return [
        quadtree_sweep_case(points, TIGER_DOMAIN, 4, (0.1, 0.5), 1, variant, structure)
        for variant in ("quad-baseline", "quad-opt", "quad-geo", "quad-post")
    ]


@pytest.fixture(scope="module")
def reference(cases, workloads):
    return run_sweep(cases, workloads, rng=0)


def _journal(tmp_path, cases, workloads, name="ck.jsonl"):
    """A complete, healthy journal of the reference sweep."""
    path = tmp_path / name
    run_sweep(cases, workloads, rng=0, checkpoint=str(path))
    return path


# ----------------------------------------------------------------------
# Row codec: floats travel as hex, bitwise
# ----------------------------------------------------------------------
class TestRowCodec:
    def test_floats_roundtrip_bitwise(self):
        rows = [{"epsilon": 0.1, "err": 1.0 / 3.0, "neg": -0.0,
                 "inf": float("inf"), "nan": float("nan"),
                 "label": "x", "count": 7, "flag": True, "none": None}]
        # the encoded form is strict JSON (json.dumps default settings)
        encoded = json.loads(json.dumps(encode_rows(rows)))
        decoded = decode_rows(encoded)
        for key in ("epsilon", "err", "neg", "inf", "nan"):
            assert decoded[0][key].hex() == rows[0][key].hex(), key
        for key in ("label", "count", "flag", "none"):
            assert decoded[0][key] == rows[0][key]
        assert isinstance(decoded[0]["flag"], bool)
        # key insertion order survives, so resumed JSON output is byte-equal
        assert list(decoded[0]) == list(rows[0])

    def test_non_scalars_rejected(self):
        with pytest.raises(TypeError, match="scalars"):
            encode_rows([{"bad": np.arange(3)}])
        with pytest.raises(TypeError, match="scalars"):
            encode_rows([{"bad": [1, 2]}])

    def test_malformed_float_record_refused(self):
        with pytest.raises(CheckpointCorruptError):
            decode_rows([{"v": {"f64": "not-hex"}}])


# ----------------------------------------------------------------------
# Resume parity
# ----------------------------------------------------------------------
class TestCheckpointResume:
    def test_journal_then_full_replay_is_bitwise(self, cases, workloads, reference, tmp_path):
        path = _journal(tmp_path, cases, workloads)
        before = path.read_bytes()
        replayed = run_sweep(cases, workloads, rng=0, checkpoint=str(path))
        assert json.dumps(replayed) == json.dumps(reference)
        assert path.read_bytes() == before  # replay appends nothing

    def test_partial_journal_resumes_bitwise(self, cases, workloads, reference, tmp_path):
        path = _journal(tmp_path, cases, workloads)
        lines = path.read_bytes().splitlines(keepends=True)
        assert len(lines) == 1 + len(cases)
        path.write_bytes(b"".join(lines[:2]))  # header + first case only
        resumed = run_sweep(cases, workloads, rng=0, checkpoint=str(path))
        assert json.dumps(resumed) == json.dumps(reference)
        # the journal is complete again after the resume
        assert len(path.read_bytes().splitlines()) == 1 + len(cases)

    def test_parallel_resume_matches_sequential(self, cases, workloads, reference, tmp_path):
        path = _journal(tmp_path, cases, workloads)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:3]))
        resumed = run_sweep(cases, workloads, rng=0, workers=2, checkpoint=str(path))
        assert json.dumps(resumed) == json.dumps(reference)

    def test_fresh_parallel_checkpoint_matches(self, cases, workloads, reference, tmp_path):
        path = tmp_path / "parallel.jsonl"
        rows = run_sweep(cases, workloads, rng=0, workers=2, checkpoint=str(path))
        assert json.dumps(rows) == json.dumps(reference)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[0]["kind"] == "sweep"
        assert sorted(r["case"] for r in records[1:]) == list(range(len(cases)))

    def test_torn_tail_is_truncated_and_resumed(self, cases, workloads, reference, tmp_path):
        path = _journal(tmp_path, cases, workloads)
        lines = path.read_bytes().splitlines(keepends=True)
        torn = b"".join(lines[:2]) + lines[2][:-10]  # mid-append crash
        path.write_bytes(torn)
        resumed = run_sweep(cases, workloads, rng=0, checkpoint=str(path))
        assert json.dumps(resumed) == json.dumps(reference)


# ----------------------------------------------------------------------
# Corruption refusal matrix: distinct named error per failure mode
# ----------------------------------------------------------------------
class TestCheckpointRefusal:
    @pytest.fixture()
    def journal(self, cases, workloads, tmp_path):
        return _journal(tmp_path, cases, workloads)

    def _resume(self, cases, workloads, path):
        return run_sweep(cases, workloads, rng=0, checkpoint=str(path))

    def test_torn_header_refuses(self, cases, workloads, journal):
        first = journal.read_bytes().splitlines(keepends=True)[0]
        journal.write_bytes(first[:-10])  # no newline: torn mid-header
        with pytest.raises(CheckpointHeaderError):
            self._resume(cases, workloads, journal)

    def test_garbage_header_refuses(self, cases, workloads, journal):
        rest = b"".join(journal.read_bytes().splitlines(keepends=True)[1:])
        journal.write_bytes(b"not json at all\n" + rest)
        with pytest.raises(CheckpointHeaderError):
            self._resume(cases, workloads, journal)

    def test_garbage_mid_file_refuses(self, cases, workloads, journal):
        lines = journal.read_bytes().splitlines(keepends=True)
        lines[2] = b'{"broken\n'
        journal.write_bytes(b"".join(lines))
        with pytest.raises(CheckpointCorruptError):
            self._resume(cases, workloads, journal)

    def test_sequence_gap_refuses(self, cases, workloads, journal):
        lines = journal.read_bytes().splitlines(keepends=True)
        del lines[2]  # a record vanished somewhere other than the tail
        journal.write_bytes(b"".join(lines))
        with pytest.raises(CheckpointSequenceGapError):
            self._resume(cases, workloads, journal)

    def test_foreign_sweep_fingerprint_refuses(self, cases, workloads, journal):
        # same grid, different seed: the journaled rows belong to other streams
        with pytest.raises(CheckpointMismatchError):
            run_sweep(cases, workloads, rng=1, checkpoint=str(journal))

    def test_case_count_mismatch_refuses(self, cases, workloads, journal):
        with pytest.raises(CheckpointMismatchError):
            run_sweep(cases[:2], workloads, rng=0, checkpoint=str(journal))

    def test_tampered_case_fingerprint_refuses(self, cases, workloads, journal):
        lines = journal.read_text().splitlines(keepends=True)
        record = json.loads(lines[1])
        record["fingerprint"] = "0" * 40
        lines[1] = json.dumps(record) + "\n"
        journal.write_text("".join(lines))
        with pytest.raises(CheckpointMismatchError):
            self._resume(cases, workloads, journal)

    def test_duplicate_case_refuses(self, cases, workloads, journal):
        lines = journal.read_text().splitlines(keepends=True)
        dup = json.loads(lines[1])
        dup["seq"] = len(lines) + 1
        journal.write_text("".join(lines) + json.dumps(dup) + "\n")
        with pytest.raises(CheckpointCorruptError):
            self._resume(cases, workloads, journal)

    def test_error_taxonomy_is_catchable(self):
        for err in (CheckpointHeaderError, CheckpointCorruptError,
                    CheckpointSequenceGapError, CheckpointMismatchError):
            assert issubclass(err, CheckpointError)
            assert issubclass(err, ValueError)

    def test_out_of_range_case_index_refuses(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        ck = SweepCheckpoint(str(path), "f" * 40, ["a" * 40])
        ck.record(0, [{"x": 1.0}])
        ck.close()
        lines = path.read_text().splitlines(keepends=True)
        record = json.loads(lines[1])
        record["case"] = 5
        lines[1] = json.dumps(record) + "\n"
        path.write_text("".join(lines))
        with pytest.raises(CheckpointCorruptError):
            SweepCheckpoint(str(path), "f" * 40, ["a" * 40])


# ----------------------------------------------------------------------
# Worker fault tolerance: every recovery path preserves bitwise parity
# ----------------------------------------------------------------------
class TestFaultToleranceParity:
    def test_kill_worker_rebuild_parity(self, cases, workloads, reference):
        rows = run_sweep(cases, workloads, rng=0, workers=2, faults="kill-worker:2")
        assert json.dumps(rows) == json.dumps(reference)

    def test_oom_worker_inproc_fallback_parity(self, cases, workloads, reference):
        rows = run_sweep(cases, workloads, rng=0, workers=2, faults="oom-worker:2")
        assert json.dumps(rows) == json.dumps(reference)

    def test_slow_case_timeout_retry_parity(self, cases, workloads, reference):
        # every submission sleeps past the soft timeout: each case is retried
        # once, then falls back to in-process execution — rows unchanged
        rows = run_sweep(cases, workloads, rng=0, workers=2,
                         faults="slow-case:1:0.3", case_timeout=0.05)
        assert json.dumps(rows) == json.dumps(reference)

    def test_graceful_degradation_after_max_rebuilds(self, cases, workloads, reference):
        # every submission kills its worker; after max_rebuilds=1 the sweep
        # must degrade to in-process execution and still finish bit-exact
        rows = run_sweep(cases, workloads, rng=0, workers=2,
                         faults="kill-worker:1", max_rebuilds=1)
        assert json.dumps(rows) == json.dumps(reference)

    def test_kill_worker_with_checkpoint(self, cases, workloads, reference, tmp_path):
        path = tmp_path / "chaos.jsonl"
        rows = run_sweep(cases, workloads, rng=0, workers=2,
                         faults="kill-worker:3", checkpoint=str(path))
        assert json.dumps(rows) == json.dumps(reference)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert sorted(r["case"] for r in records[1:]) == list(range(len(cases)))

    def test_faults_require_workers(self, cases, workloads):
        with pytest.raises(ValueError, match="workers > 1"):
            run_sweep(cases, workloads, rng=0, faults="kill-worker:2")

    def test_serving_fault_kinds_rejected(self, cases, workloads):
        with pytest.raises(ValueError, match="not sweep faults"):
            run_sweep(cases, workloads, rng=0, workers=2, faults="wal-io-error:2")


# ----------------------------------------------------------------------
# The end-to-end contract: SIGKILL mid-sweep, resume, hex-identical output
# ----------------------------------------------------------------------
_SWEEP_SCRIPT = """\
import json, sys
from repro.experiments.common import ExperimentScale
from repro.experiments.fig3 import run_fig3

ck, out = sys.argv[1], sys.argv[2]
rows = run_fig3(scale=ExperimentScale.smoke(), rng=0,
                checkpoint=None if ck == "-" else ck)
hexed = [[(k, v.hex() if isinstance(v, float) else v) for k, v in row.items()]
         for row in rows]
with open(out, "w") as handle:
    handle.write(json.dumps(hexed))
"""


class TestSigkillResume:
    def test_sigkill_resume_hex_identical(self, tmp_path):
        script = tmp_path / "sweep.py"
        script.write_text(_SWEEP_SCRIPT)
        ck = tmp_path / "ck.jsonl"
        out_ref = tmp_path / "ref.json"
        out_resumed = tmp_path / "resumed.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")) if p
        )

        # Uninterrupted reference (no checkpoint involved at all).
        subprocess.run([sys.executable, str(script), "-", str(out_ref)],
                       check=True, env=env, timeout=300)

        # Kill the journaled run as soon as its first case record lands.
        proc = subprocess.Popen([sys.executable, str(script), str(ck),
                                 str(out_resumed)], env=env)
        deadline = time.monotonic() + 300
        killed = False
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            if ck.exists() and b'"kind": "case"' in ck.read_bytes():
                proc.send_signal(signal.SIGKILL)
                killed = True
                break
            time.sleep(0.005)
        proc.wait(timeout=60)
        assert killed, "sweep finished before the harness could SIGKILL it"
        assert proc.returncode == -signal.SIGKILL
        assert not out_resumed.exists()
        journaled = ck.read_bytes().count(b'"kind": "case"')
        assert 1 <= journaled < 4, journaled  # genuinely interrupted mid-sweep

        # Resume: replay the journal, compute the rest, write the final rows.
        subprocess.run([sys.executable, str(script), str(ck),
                        str(out_resumed)], check=True, env=env, timeout=300)
        assert out_resumed.read_bytes() == out_ref.read_bytes()
