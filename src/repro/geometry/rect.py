"""Axis-aligned rectangles (hyper-rectangles) and point containment tests.

The whole PSD framework manipulates axis-aligned boxes: tree-node regions,
range queries, and bounding boxes of Hilbert-curve cells.  ``Rect`` is the
single geometric primitive shared by every other module.

A ``Rect`` in ``d`` dimensions is stored as two length-``d`` float arrays,
``lo`` and ``hi``, with ``lo[k] <= hi[k]`` for every axis ``k``.  Rectangles
are treated as half-open boxes ``[lo, hi)`` for point-membership purposes so
that sibling node regions produced by a split partition their parent exactly
(every point belongs to exactly one child).  The one exception is the upper
boundary of the data domain itself, which is handled by
:meth:`Rect.contains_points` via the ``closed_hi`` mask so points lying on the
domain's top edge are not lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["Rect", "bounding_rect", "domain_aware_mask"]


@dataclass(frozen=True)
class Rect:
    """An axis-aligned hyper-rectangle ``[lo, hi)``.

    Parameters
    ----------
    lo, hi:
        Coordinate tuples of equal length; ``lo[k] <= hi[k]`` must hold on
        every axis.  Stored as tuples so the object is hashable and safely
        usable as a frozen dataclass.
    """

    lo: Tuple[float, ...]
    hi: Tuple[float, ...]

    def __post_init__(self) -> None:
        lo = tuple(float(v) for v in self.lo)
        hi = tuple(float(v) for v in self.hi)
        if len(lo) != len(hi):
            raise ValueError(f"lo and hi must have the same length, got {len(lo)} and {len(hi)}")
        if len(lo) == 0:
            raise ValueError("Rect must have at least one dimension")
        for axis, (a, b) in enumerate(zip(lo, hi)):
            if not (np.isfinite(a) and np.isfinite(b)):
                raise ValueError(f"Rect bounds must be finite, got axis {axis}: [{a}, {b}]")
            if a > b:
                raise ValueError(f"Rect lower bound exceeds upper bound on axis {axis}: {a} > {b}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_arrays(lo: Sequence[float], hi: Sequence[float]) -> "Rect":
        """Build a rectangle from any pair of coordinate sequences."""
        return Rect(tuple(float(v) for v in lo), tuple(float(v) for v in hi))

    @staticmethod
    def unit(dims: int = 2) -> "Rect":
        """The unit box ``[0, 1)^dims``."""
        return Rect((0.0,) * dims, (1.0,) * dims)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def dims(self) -> int:
        """Number of dimensions."""
        return len(self.lo)

    @property
    def widths(self) -> np.ndarray:
        """Per-axis extents ``hi - lo`` as a float array."""
        return np.asarray(self.hi, dtype=float) - np.asarray(self.lo, dtype=float)

    @property
    def area(self) -> float:
        """Product of the per-axis extents (area in 2-D, volume in d-D)."""
        return float(np.prod(self.widths))

    @property
    def center(self) -> Tuple[float, ...]:
        """Midpoint of the rectangle."""
        return tuple((a + b) / 2.0 for a, b in zip(self.lo, self.hi))

    def is_degenerate(self, axis: int | None = None) -> bool:
        """Return ``True`` if the rectangle has zero width on ``axis``.

        With ``axis=None``, checks whether *any* axis is degenerate.
        """
        widths = self.widths
        if axis is None:
            return bool(np.any(widths <= 0.0))
        return bool(widths[axis] <= 0.0)

    # ------------------------------------------------------------------
    # Relations with other rectangles
    # ------------------------------------------------------------------
    def intersects(self, other: "Rect") -> bool:
        """True if the two (half-open) rectangles share any volume."""
        self._check_dims(other)
        for a_lo, a_hi, b_lo, b_hi in zip(self.lo, self.hi, other.lo, other.hi):
            if a_hi <= b_lo or b_hi <= a_lo:
                return False
        return True

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely inside this rectangle."""
        self._check_dims(other)
        for a_lo, a_hi, b_lo, b_hi in zip(self.lo, self.hi, other.lo, other.hi):
            if b_lo < a_lo or b_hi > a_hi:
                return False
        return True

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping rectangle, or ``None`` when the boxes are disjoint."""
        self._check_dims(other)
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(a >= b for a, b in zip(lo, hi)):
            return None
        return Rect(lo, hi)

    def intersection_area(self, other: "Rect") -> float:
        """Area of the overlap (0.0 when disjoint)."""
        inter = self.intersection(other)
        return 0.0 if inter is None else inter.area

    def union_bounds(self, other: "Rect") -> "Rect":
        """The smallest rectangle containing both inputs."""
        self._check_dims(other)
        lo = tuple(min(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(max(a, b) for a, b in zip(self.hi, other.hi))
        return Rect(lo, hi)

    # ------------------------------------------------------------------
    # Points
    # ------------------------------------------------------------------
    def contains_point(self, point: Sequence[float], closed_hi: bool = False) -> bool:
        """Membership test for a single point.

        ``closed_hi=True`` treats the upper boundary as inclusive, which is
        used for the root domain so boundary points are never dropped.
        """
        for axis, value in enumerate(point):
            if value < self.lo[axis]:
                return False
            if closed_hi:
                if value > self.hi[axis]:
                    return False
            elif value >= self.hi[axis]:
                return False
        return True

    def contains_points(self, points: np.ndarray, closed_hi: bool = False) -> np.ndarray:
        """Vectorised membership mask for an ``(n, d)`` array of points."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts.reshape(1, -1)
        if pts.shape[1] != self.dims:
            raise ValueError(f"points have {pts.shape[1]} dims, rect has {self.dims}")
        lo = np.asarray(self.lo)
        hi = np.asarray(self.hi)
        mask = np.all(pts >= lo, axis=1)
        if closed_hi:
            mask &= np.all(pts <= hi, axis=1)
        else:
            mask &= np.all(pts < hi, axis=1)
        return mask

    def count_points(self, points: np.ndarray, closed_hi: bool = False) -> int:
        """Number of points falling inside the rectangle."""
        return int(np.count_nonzero(self.contains_points(points, closed_hi=closed_hi)))

    def filter_points(self, points: np.ndarray, closed_hi: bool = False) -> np.ndarray:
        """The subset of ``points`` inside the rectangle."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts.reshape(1, -1)
        return pts[self.contains_points(pts, closed_hi=closed_hi)]

    # ------------------------------------------------------------------
    # Splitting
    # ------------------------------------------------------------------
    def split_at(self, axis: int, value: float) -> Tuple["Rect", "Rect"]:
        """Split the rectangle along ``axis`` at ``value`` into (low, high) halves.

        ``value`` is clamped into ``[lo[axis], hi[axis]]`` so that a wildly
        noisy split point still produces two valid (possibly degenerate)
        children — exactly the failure mode the paper's noisy-median section
        describes ("wasting a level of the tree").
        """
        if not 0 <= axis < self.dims:
            raise ValueError(f"axis {axis} out of range for {self.dims}-dimensional Rect")
        value = float(min(max(value, self.lo[axis]), self.hi[axis]))
        left_hi = list(self.hi)
        left_hi[axis] = value
        right_lo = list(self.lo)
        right_lo[axis] = value
        return Rect(self.lo, tuple(left_hi)), Rect(tuple(right_lo), self.hi)

    def split_midpoint(self, axis: int) -> Tuple["Rect", "Rect"]:
        """Split at the midpoint of ``axis`` (quadtree-style split on one axis)."""
        return self.split_at(axis, self.center[axis])

    def quad_children(self) -> Tuple["Rect", ...]:
        """The ``2^d`` equal children produced by splitting every axis at its midpoint.

        In 2-D this is the standard quadtree split into four quadrants; in
        ``d`` dimensions it is the generalisation to ``2^d`` orthants the
        paper mentions (octree, etc.).
        """
        mid = self.center
        children = []
        for code in range(2 ** self.dims):
            lo = list(self.lo)
            hi = list(self.hi)
            for axis in range(self.dims):
                if (code >> axis) & 1:
                    lo[axis] = mid[axis]
                else:
                    hi[axis] = mid[axis]
            children.append(Rect(tuple(lo), tuple(hi)))
        return tuple(children)

    # ------------------------------------------------------------------
    def _check_dims(self, other: "Rect") -> None:
        if self.dims != other.dims:
            raise ValueError(f"dimension mismatch: {self.dims} vs {other.dims}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        coords = ", ".join(f"[{a:g}, {b:g})" for a, b in zip(self.lo, self.hi))
        return f"Rect({coords})"


def domain_aware_mask(rect: Rect, points: np.ndarray, domain_rect: Rect) -> np.ndarray:
    """Membership mask that is half-open except on the domain's upper faces.

    Tree nodes are half-open boxes so siblings partition their parent exactly,
    but a point lying exactly on the *domain's* upper boundary would then
    belong to no leaf.  This helper closes the upper bound on every axis where
    ``rect`` touches the domain's upper face, so such boundary points are kept
    by exactly one node per level.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim == 1:
        pts = pts.reshape(1, -1)
    if pts.shape[1] != rect.dims:
        raise ValueError(f"points have {pts.shape[1]} dims, rect has {rect.dims}")
    lo = np.asarray(rect.lo)
    hi = np.asarray(rect.hi)
    domain_hi = np.asarray(domain_rect.hi)
    closed = np.isclose(hi, domain_hi)
    mask = np.all(pts >= lo, axis=1)
    upper_ok = np.where(closed, pts <= hi, pts < hi)
    mask &= np.all(upper_ok, axis=1)
    return mask


def bounding_rect(points: np.ndarray, pad: float = 0.0) -> Rect:
    """The tight axis-aligned bounding box of an ``(n, d)`` point array.

    ``pad`` expands every axis by an absolute amount on both ends, which is
    useful when the box will be used as a half-open domain and the maximal
    points must remain strictly inside it.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim == 1:
        pts = pts.reshape(-1, 1)
    if pts.size == 0:
        raise ValueError("cannot compute the bounding box of an empty point set")
    lo = pts.min(axis=0) - pad
    hi = pts.max(axis=0) + pad
    return Rect.from_arrays(lo, hi)
