"""Hilbert space-filling curve in two dimensions.

The paper's private Hilbert R-tree maps every data point to its index along a
Hilbert curve "of sufficiently large order", builds a private binary tree
(a one-dimensional kd-tree) over those indices, and maps tree nodes back to
the plane via bounding boxes of the Hilbert values they span.

This module provides the three operations that construction and querying
need:

* :class:`HilbertCurve` — vectorised ``encode`` (point → index) and
  ``decode`` (index → cell centre) for a curve of a given ``order`` over an
  arbitrary rectangular domain;
* :meth:`HilbertCurve.rect_to_ranges` — decompose an axis-aligned query
  rectangle into a minimal set of contiguous Hilbert-index intervals, so a
  2-D range query becomes a union of 1-D range queries;
* :meth:`HilbertCurve.range_bbox` — the bounding box (in the plane) of all
  cells whose index lies in a given interval, used for the R-tree node
  rectangles.  This depends only on the interval, never on the data, so
  releasing it is privacy-free.

The curve implementation is the classical iterative rotate-and-reflect
construction (Hamilton's compact algorithm specialised to 2-D), vectorised
with numpy so encoding a million points takes well under a second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .rect import Rect

__all__ = ["HilbertCurve"]


def _rotate(n: int, x: np.ndarray, y: np.ndarray, rx: np.ndarray, ry: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Rotate/flip the quadrant-local coordinates, vectorised over points."""
    swap = ry == 0
    flip = swap & (rx == 1)
    x = np.where(flip, n - 1 - x, x)
    y = np.where(flip, n - 1 - y, y)
    x2 = np.where(swap, y, x)
    y2 = np.where(swap, x, y)
    return x2, y2


@dataclass(frozen=True)
class HilbertCurve:
    """A 2-D Hilbert curve of a given order over a rectangular domain.

    Parameters
    ----------
    order:
        The curve order ``p``: the domain is discretised into a
        ``2^p × 2^p`` grid and indices run over ``[0, 4^p)``.  The paper uses
        orders between 16 and 24 and settles on 18.
    domain:
        The rectangle the curve covers.  Points are mapped into the grid by
        an affine transform of this rectangle onto ``[0, 2^p)^2``.
    """

    order: int
    domain: Rect

    def __post_init__(self) -> None:
        if self.domain.dims != 2:
            raise ValueError("HilbertCurve only supports two-dimensional domains")
        if not 1 <= int(self.order) <= 31:
            raise ValueError(f"order must be in [1, 31], got {self.order}")
        object.__setattr__(self, "order", int(self.order))

    # ------------------------------------------------------------------
    @property
    def side(self) -> int:
        """Number of grid cells per axis, ``2^order``."""
        return 1 << self.order

    @property
    def max_index(self) -> int:
        """Largest valid curve index, ``4^order - 1``."""
        return (1 << (2 * self.order)) - 1

    # ------------------------------------------------------------------
    # Grid <-> domain coordinate transforms
    # ------------------------------------------------------------------
    def to_grid(self, points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Map points in the domain to integer grid coordinates ``(gx, gy)``."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts.reshape(1, -1)
        lo = np.asarray(self.domain.lo)
        widths = self.domain.widths
        widths = np.where(widths > 0, widths, 1.0)
        unit = (pts - lo) / widths
        scaled = np.clip(unit * self.side, 0, self.side - 1)
        grid = scaled.astype(np.int64)
        return grid[:, 0], grid[:, 1]

    def cell_rect(self, gx: int, gy: int) -> Rect:
        """The planar rectangle of grid cell ``(gx, gy)``."""
        lo = np.asarray(self.domain.lo)
        widths = self.domain.widths / self.side
        cell_lo = lo + np.array([gx, gy]) * widths
        return Rect.from_arrays(cell_lo, cell_lo + widths)

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------
    def encode(self, points: np.ndarray) -> np.ndarray:
        """Hilbert indices of an ``(n, 2)`` array of points in the domain."""
        gx, gy = self.to_grid(points)
        return self.encode_cells(gx, gy)

    def encode_cells(self, gx: np.ndarray, gy: np.ndarray) -> np.ndarray:
        """Hilbert indices of integer grid cells (vectorised xy → d)."""
        x = np.asarray(gx, dtype=np.int64).copy()
        y = np.asarray(gy, dtype=np.int64).copy()
        if np.any(x < 0) or np.any(y < 0) or np.any(x >= self.side) or np.any(y >= self.side):
            raise ValueError("grid coordinates out of range for this curve order")
        d = np.zeros_like(x)
        s = self.side >> 1
        while s > 0:
            rx = ((x & s) > 0).astype(np.int64)
            ry = ((y & s) > 0).astype(np.int64)
            d += s * s * ((3 * rx) ^ ry)
            x, y = _rotate(s, x, y, rx, ry)
            s >>= 1
        return d

    def decode_cells(self, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Grid coordinates ``(gx, gy)`` of the given Hilbert indices (d → xy)."""
        d = np.asarray(indices, dtype=np.int64)
        if np.any(d < 0) or np.any(d > self.max_index):
            raise ValueError("Hilbert index out of range for this curve order")
        t = d.copy()
        x = np.zeros_like(t)
        y = np.zeros_like(t)
        s = 1
        while s < self.side:
            rx = 1 & (t // 2)
            ry = 1 & (t ^ rx)
            x, y = _rotate(s, x, y, rx, ry)
            x = x + s * rx
            y = y + s * ry
            t //= 4
            s *= 2
        return x, y

    def decode(self, indices: np.ndarray) -> np.ndarray:
        """Planar coordinates of the centres of the cells at the given indices."""
        gx, gy = self.decode_cells(indices)
        lo = np.asarray(self.domain.lo)
        widths = self.domain.widths / self.side
        centers = lo + (np.stack([gx, gy], axis=1) + 0.5) * widths
        return centers

    # ------------------------------------------------------------------
    # Rectangle <-> index-interval conversions
    # ------------------------------------------------------------------
    def rect_to_ranges(self, rect: Rect, max_ranges: int = 256) -> List[Tuple[int, int]]:
        """Decompose ``rect`` into contiguous Hilbert-index intervals.

        Returns a sorted list of inclusive intervals ``(lo, hi)`` whose union
        covers exactly the grid cells intersecting ``rect`` — up to the
        granularity forced by ``max_ranges``: when the exact decomposition
        would exceed ``max_ranges`` intervals the recursion stops early and
        whole sub-squares are reported even if only partially covered, which
        over-approximates the query slightly (the same effect as the finite
        curve order itself).
        """
        query = self.domain.intersection(rect)
        if query is None:
            return []

        # Work in grid coordinates: inclusive cell bounds of the query.
        lo = np.asarray(self.domain.lo)
        widths = self.domain.widths
        widths = np.where(widths > 0, widths, 1.0)
        cell_w = widths / self.side
        qlo = np.floor((np.asarray(query.lo) - lo) / cell_w).astype(np.int64)
        qhi = np.ceil((np.asarray(query.hi) - lo) / cell_w).astype(np.int64) - 1
        qlo = np.clip(qlo, 0, self.side - 1)
        qhi = np.clip(qhi, qlo, self.side - 1)

        intervals: List[Tuple[int, int]] = []

        def covered(cx0: int, cy0: int, size: int) -> str:
            """Classify the sub-square [cx0, cx0+size) x [cy0, cy0+size)."""
            cx1, cy1 = cx0 + size - 1, cy0 + size - 1
            if cx1 < qlo[0] or cx0 > qhi[0] or cy1 < qlo[1] or cy0 > qhi[1]:
                return "outside"
            if cx0 >= qlo[0] and cx1 <= qhi[0] and cy0 >= qlo[1] and cy1 <= qhi[1]:
                return "inside"
            return "partial"

        # Recursive descent over the curve's quadrant structure.  At each
        # square of side `size` starting at Hilbert offset `base`, the curve
        # visits the four child quadrants contiguously in an order determined
        # by encoding their corner cells, so each fully-covered child maps to
        # one contiguous interval of length (size/2)^2.
        def recurse(cx0: int, cy0: int, size: int) -> None:
            state = covered(cx0, cy0, size)
            if state == "outside":
                return
            first = int(self.encode_cells(np.array([cx0]), np.array([cy0]))[0]) if size == 1 else None
            if state == "inside" or size == 1:
                if size == 1:
                    intervals.append((first, first))
                else:
                    start, end = self._square_range(cx0, cy0, size)
                    intervals.append((start, end))
                return
            if len(intervals) >= max_ranges:
                # Budget exhausted: over-approximate with the whole square.
                start, end = self._square_range(cx0, cy0, size)
                intervals.append((start, end))
                return
            half = size // 2
            for dx in (0, half):
                for dy in (0, half):
                    recurse(cx0 + dx, cy0 + dy, half)

        recurse(0, 0, self.side)
        return _merge_intervals(intervals)

    def _square_range(self, cx0: int, cy0: int, size: int) -> Tuple[int, int]:
        """The contiguous Hilbert interval covered by an aligned square."""
        # An aligned square of side `size` (a node of the curve's quadtree)
        # covers exactly size^2 consecutive indices; its start is the minimum
        # index among its corner cells' aligned block.
        corner = int(self.encode_cells(np.array([cx0]), np.array([cy0]))[0])
        block = size * size
        start = (corner // block) * block
        return start, start + block - 1

    @staticmethod
    def _quadrant_offsets(digit: np.ndarray, swap: np.ndarray, flip_x: np.ndarray,
                          flip_y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Spatial half-offsets of curve-order quadrant ``digit`` under a state.

        A descent state is the inverse of the accumulated rotate/flip
        transform of :func:`_rotate`, represented as an axis ``swap`` plus
        per-axis flips.  The curve visits quadrant ``digit`` at transformed
        position ``(rx, ry) = (digit >> 1, gray(digit))``; the state maps it
        back to the square's own frame.
        """
        rx = ((digit >> 1) & 1).astype(bool)
        ry = ((digit ^ (digit >> 1)) & 1).astype(bool)
        u = np.where(swap, ry, rx)
        v = np.where(swap, rx, ry)
        return (u ^ flip_x).astype(np.int64), (v ^ flip_y).astype(np.int64)

    def range_bboxes(self, lo_indices: np.ndarray, hi_indices: np.ndarray
                     ) -> Tuple[np.ndarray, np.ndarray]:
        """Bounding boxes of many inclusive index intervals, vectorised.

        Returns ``(lo, hi)`` arrays of shape ``(m, 2)``.  Instead of decoding
        a per-interval block decomposition, the curve's quadrant recursion is
        replayed directly: two root-to-leaf descents (one per endpoint)
        maintain each interval's current square corner and orientation state,
        and every level contributes the fully-covered sibling quadrants as
        whole squares — ``O(order)`` vectorised steps over all intervals with
        **no** per-node or per-block decoding.  This is what makes compiling
        a whole released Hilbert R-tree's node boxes one array pass; the
        scalar :meth:`range_bbox` delegates here, so the per-node reference
        path produces bit-identical boxes.
        """
        a = np.clip(np.asarray(lo_indices, dtype=np.int64).ravel(), 0, self.max_index)
        b = np.clip(np.asarray(hi_indices, dtype=np.int64).ravel(), 0, self.max_index)
        if a.shape != b.shape:
            raise ValueError("lo_indices and hi_indices must have the same shape")
        if np.any(b < a):
            raise ValueError("empty Hilbert interval")
        p = self.order
        m = a.size
        dom_lo = np.asarray(self.domain.lo, dtype=float)
        cell_w = self.domain.widths / self.side
        box_lo = np.full((m, 2), np.inf)
        box_hi = np.full((m, 2), -np.inf)
        if m == 0:
            return box_lo, box_hi
        lo_x, lo_y = box_lo[:, 0], box_lo[:, 1]
        hi_x, hi_y = box_hi[:, 0], box_hi[:, 1]

        def emit(mask, corner_x, corner_y, size):
            sub_x = dom_lo[0] + corner_x * cell_w[0]
            sub_y = dom_lo[1] + corner_y * cell_w[1]
            np.minimum(lo_x, sub_x, out=lo_x, where=mask)
            np.minimum(lo_y, sub_y, out=lo_y, where=mask)
            np.maximum(hi_x, sub_x + cell_w[0] * size, out=hi_x, where=mask)
            np.maximum(hi_y, sub_y + cell_w[1] * size, out=hi_y, where=mask)

        # Level (1..p) at which the two endpoints' base-4 digits first differ;
        # above it the descents share a path and no quadrant is fully covered.
        diff = a ^ b
        with np.errstate(divide="ignore"):
            high_bit = np.where(
                diff > 0,
                np.floor(np.log2(np.maximum(diff, 1).astype(float))).astype(np.int64), -1)
        high_bit = np.where((high_bit >= 0) & ((np.int64(1) << np.maximum(high_bit, 0)) > diff),
                            high_bit - 1, high_bit)
        l_div = np.where(diff > 0, p - high_bit // 2, np.int64(p + 1))

        for endpoint_is_a in (True, False):
            idx = a if endpoint_is_a else b
            other = b if endpoint_is_a else a
            swap = np.zeros(m, dtype=bool)
            flip_x = np.zeros(m, dtype=bool)
            flip_y = np.zeros(m, dtype=bool)
            corner_x = np.zeros(m, dtype=np.int64)
            corner_y = np.zeros(m, dtype=np.int64)
            for level in range(1, p + 1):
                half = np.int64(1) << (p - level)
                d = (idx >> (2 * (p - level))) & 3
                d_other = (other >> (2 * (p - level))) & 3
                for j in range(4):
                    if endpoint_is_a:
                        # quadrants after a's (below the fork) plus, at the
                        # fork level itself, those strictly between the two.
                        mask = ((level > l_div) & (j > d)) | (
                            (level == l_div) & (j > d) & (j < d_other))
                    else:
                        mask = (level > l_div) & (j < d)
                    if np.any(mask):
                        ox, oy = self._quadrant_offsets(
                            np.int64(j), swap, flip_x, flip_y)
                        emit(mask, corner_x + ox * half, corner_y + oy * half, half)
                # descend into the endpoint's own quadrant
                ox, oy = self._quadrant_offsets(d, swap, flip_x, flip_y)
                corner_x = corner_x + ox * half
                corner_y = corner_y + oy * half
                turn = (d == 0) | (d == 3)
                reflect = d == 3
                swap = np.where(turn, ~swap, swap)
                flip_x = np.where(reflect, ~flip_x, flip_x)
                flip_y = np.where(reflect, ~flip_y, flip_y)
            # the endpoint's own cell (shared cell emitted once when a == b)
            emit(np.ones(m, dtype=bool) if endpoint_is_a else (a != b),
                 corner_x, corner_y, 1)
        return box_lo, box_hi

    def range_bbox(self, lo_index: int, hi_index: int) -> Rect:
        """Bounding box in the plane of all cells with index in ``[lo, hi]``.

        Depends only on the interval and the curve, never on the data.
        Delegates to the vectorised :meth:`range_bboxes` (a batch of one), so
        scalar and batched callers produce bit-identical boxes.
        """
        lo_index = int(max(0, lo_index))
        hi_index = int(min(self.max_index, hi_index))
        if hi_index < lo_index:
            raise ValueError("empty Hilbert interval")
        box_lo, box_hi = self.range_bboxes(np.array([lo_index]), np.array([hi_index]))
        return Rect.from_arrays(box_lo[0], box_hi[0])


def _merge_intervals(intervals: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Sort inclusive intervals and merge the adjacent/overlapping ones."""
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for lo, hi in intervals[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi + 1:
            merged[-1] = (last_lo, max(last_hi, hi))
        else:
            merged.append((lo, hi))
    return merged
