"""Data domains: the publicly-known bounding region of a spatial dataset.

Differential privacy requires that everything the algorithm conditions on —
other than the noisy quantities themselves — be data independent.  The PSD
framework therefore assumes a *public* data domain (e.g. "GPS coordinates in
the continental USA", or "salaries in [0, 10^7]") which bounds the data but
does not depend on which individuals are present.  ``Domain`` wraps a
:class:`~repro.geometry.rect.Rect` with convenience methods for normalising
points and expressing query sizes in domain units, matching the paper's
convention of expressing query shapes in degrees of longitude/latitude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .rect import Rect

__all__ = ["Domain", "TIGER_DOMAIN", "UNIT_DOMAIN_2D"]


@dataclass(frozen=True)
class Domain:
    """A public, data-independent bounding region for a dataset.

    Parameters
    ----------
    rect:
        The bounding rectangle.  Points on the upper faces are considered
        inside the domain (the domain is closed), unlike interior tree-node
        rectangles which are half-open.
    name:
        Optional human-readable label used in experiment output.
    """

    rect: Rect
    name: str = "domain"

    # ------------------------------------------------------------------
    @property
    def dims(self) -> int:
        return self.rect.dims

    @property
    def widths(self) -> np.ndarray:
        return self.rect.widths

    @property
    def area(self) -> float:
        return self.rect.area

    # ------------------------------------------------------------------
    @staticmethod
    def from_bounds(lo: Sequence[float], hi: Sequence[float], name: str = "domain") -> "Domain":
        """Build a domain from raw bounds."""
        return Domain(Rect.from_arrays(lo, hi), name=name)

    @staticmethod
    def unit(dims: int = 2, name: str = "unit") -> "Domain":
        """The unit cube ``[0, 1]^dims``."""
        return Domain(Rect.unit(dims), name=name)

    # ------------------------------------------------------------------
    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of points lying inside the (closed) domain."""
        return self.rect.contains_points(points, closed_hi=True)

    def validate_points(self, points: np.ndarray) -> np.ndarray:
        """Return ``points`` as a float array, raising if any lie outside the domain.

        The check protects against accidentally building a PSD whose root does
        not cover the data, which would silently drop points.
        """
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts.reshape(-1, 1)
        if pts.shape[1] != self.dims:
            raise ValueError(f"points have {pts.shape[1]} dims, domain has {self.dims}")
        if pts.size and not bool(np.all(self.contains(pts))):
            outside = int(np.count_nonzero(~self.contains(pts)))
            raise ValueError(f"{outside} point(s) fall outside the declared domain {self.name!r}")
        return pts

    def clip_points(self, points: np.ndarray) -> np.ndarray:
        """Clamp points onto the domain instead of rejecting them."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts.reshape(-1, 1)
        lo = np.asarray(self.rect.lo)
        hi = np.asarray(self.rect.hi)
        return np.clip(pts, lo, hi)

    def normalize(self, points: np.ndarray) -> np.ndarray:
        """Map points affinely into the unit cube ``[0, 1]^d``."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts.reshape(-1, 1)
        lo = np.asarray(self.rect.lo)
        widths = self.widths
        widths = np.where(widths > 0, widths, 1.0)
        return (pts - lo) / widths

    def denormalize(self, unit_points: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`normalize`."""
        pts = np.asarray(unit_points, dtype=float)
        if pts.ndim == 1:
            pts = pts.reshape(-1, 1)
        lo = np.asarray(self.rect.lo)
        return lo + pts * self.widths

    # ------------------------------------------------------------------
    def query_rect(self, center: Sequence[float], extents: Sequence[float]) -> Rect:
        """A query rectangle of the given per-axis ``extents`` centred at ``center``.

        The rectangle is clipped to the domain, matching how the paper's query
        generator only produces queries inside the data range.
        """
        center = np.asarray(center, dtype=float)
        half = np.asarray(extents, dtype=float) / 2.0
        lo = np.maximum(center - half, np.asarray(self.rect.lo))
        hi = np.minimum(center + half, np.asarray(self.rect.hi))
        hi = np.maximum(hi, lo)
        return Rect.from_arrays(lo, hi)

    def fraction_extents(self, fractions: Sequence[float]) -> Tuple[float, ...]:
        """Convert per-axis fractions of the domain width into absolute extents."""
        widths = self.widths
        return tuple(float(f) * float(w) for f, w in zip(fractions, widths))


#: The coordinate range of the paper's TIGER/Line dataset (WA + NM road
#: intersections): longitude in [-124.82, -103.00], latitude in [31.33, 49.00].
TIGER_DOMAIN = Domain.from_bounds((-124.82, 31.33), (-103.00, 49.00), name="tiger-wa-nm")

#: Convenience 2-D unit domain used throughout the tests.
UNIT_DOMAIN_2D = Domain.unit(2)
