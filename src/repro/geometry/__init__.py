"""Geometric substrate: rectangles, domains and the Hilbert curve."""

from .domain import TIGER_DOMAIN, UNIT_DOMAIN_2D, Domain
from .hilbert import HilbertCurve
from .rect import Rect, bounding_rect, domain_aware_mask

__all__ = [
    "Rect",
    "bounding_rect",
    "domain_aware_mask",
    "Domain",
    "TIGER_DOMAIN",
    "UNIT_DOMAIN_2D",
    "HilbertCurve",
]
