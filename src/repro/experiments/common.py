"""Shared infrastructure for the figure-reproduction experiments.

Every experiment runner in this package follows the same pattern: generate (or
accept) a dataset, build one or more PSDs, evaluate them on fixed query
workloads, and return plain-Python rows that the benchmark harness prints as
the series behind the corresponding figure of the paper.

:class:`ExperimentScale` centralises the knobs that trade fidelity for running
time.  The defaults are deliberately smaller than the paper's setup (which
uses 1.63 M points and 600 queries per shape) so the whole benchmark suite
finishes in minutes; ``ExperimentScale.paper()`` restores the full-scale
parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence

import numpy as np

from ..data.tiger import road_intersections
from ..geometry.domain import TIGER_DOMAIN, Domain
from ..geometry.rect import Rect
from ..privacy.rng import RngLike, ensure_rng
from ..queries.metrics import median_relative_error
from ..queries.workload import QueryShape, QueryWorkload, generate_workload

__all__ = ["ExperimentScale", "make_dataset", "make_workloads", "evaluate_tree",
           "evaluate_psd", "format_table"]


@dataclass(frozen=True)
class ExperimentScale:
    """Size parameters shared by the experiment runners.

    Attributes
    ----------
    n_points:
        Number of synthetic road-intersection points.
    n_queries:
        Number of queries per shape in each workload.
    repetitions:
        Number of independent noisy releases averaged per configuration.
    quad_height:
        Height of the quadtree experiments (the paper uses 10).
    kd_height:
        Height of the kd-tree experiments (the paper uses 8).
    """

    n_points: int = 60_000
    n_queries: int = 60
    repetitions: int = 1
    quad_height: int = 8
    kd_height: int = 6

    @staticmethod
    def paper() -> "ExperimentScale":
        """The paper's full-scale parameters (slow: minutes per figure)."""
        return ExperimentScale(n_points=1_630_000, n_queries=600, repetitions=1, quad_height=10, kd_height=8)

    @staticmethod
    def smoke() -> "ExperimentScale":
        """A tiny scale used by the integration tests."""
        return ExperimentScale(n_points=5_000, n_queries=12, repetitions=1, quad_height=5, kd_height=4)


def make_dataset(scale: ExperimentScale, rng: RngLike = 0) -> np.ndarray:
    """The TIGER-like dataset used by Figures 3, 5, 6 and 7(a)."""
    return road_intersections(n=scale.n_points, rng=ensure_rng(rng))


def make_workloads(
    points: np.ndarray,
    shapes: Sequence[QueryShape],
    scale: ExperimentScale,
    domain: Domain = TIGER_DOMAIN,
    rng: RngLike = 1,
) -> Dict[str, QueryWorkload]:
    """One workload per query shape, keyed by the shape label."""
    gen = ensure_rng(rng)
    return {
        shape.label: generate_workload(points, domain, shape, n_queries=scale.n_queries, rng=gen)
        for shape in shapes
    }


def evaluate_tree(
    answer_fn: Callable[[Rect], float],
    workloads: Dict[str, QueryWorkload],
) -> Dict[str, float]:
    """Median relative error of ``answer_fn`` on every workload, keyed by shape label."""
    out: Dict[str, float] = {}
    for label, workload in workloads.items():
        estimates = workload.evaluate(answer_fn)
        out[label] = median_relative_error(estimates, workload.true_answers)
    return out


def evaluate_psd(
    psd,
    workloads: Dict[str, QueryWorkload],
    backend: str = "flat",
) -> Dict[str, float]:
    """Median relative error of a built PSD on every workload.

    ``backend="flat"`` (default) answers each workload as one vectorized batch
    through the compiled engine — the natural fit for the many-build /
    many-query experiment loops, where a flat-native build never has to
    materialise pointer nodes at all.  ``backend="recursive"`` falls back to
    the per-query reference walk.
    """
    if backend != "flat":
        return evaluate_tree(lambda q: psd.range_query(q, backend=backend), workloads)
    from ..engine import batch_range_query

    engine = psd.compile()
    out: Dict[str, float] = {}
    for label, workload in workloads.items():
        estimates = np.asarray(batch_range_query(engine, workload.queries))
        out[label] = median_relative_error(estimates, workload.true_answers)
    return out


def format_table(rows: Iterable[Dict[str, object]], columns: Sequence[str], title: str = "") -> str:
    """Render result rows as a fixed-width text table (used by the benchmarks)."""
    rows = list(rows)
    widths = {c: max(len(c), *(len(_fmt(r.get(c))) for r in rows)) if rows else len(c) for c in columns}
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.001 and value != 0):
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)
