"""Shared infrastructure for the figure-reproduction experiments.

Every experiment runner in this package follows the same pattern: generate (or
accept) a dataset, build one or more PSDs, evaluate them on fixed query
workloads, and return plain-Python rows that the benchmark harness prints as
the series behind the corresponding figure of the paper.

:class:`ExperimentScale` centralises the knobs that trade fidelity for running
time.  The defaults are deliberately smaller than the paper's setup (which
uses 1.63 M points and 600 queries per shape) so the whole benchmark suite
finishes in minutes; ``ExperimentScale.paper()`` restores the full-scale
parameters.

The sweep driver
----------------
The paper's evaluation is one shape repeated across Figures 3, 5 and 6: for
every grid point (a variant at a budget, a method at a height, ...) build
``repetitions`` fresh noisy releases and score each on fixed workloads.
:func:`run_sweep` is that loop made first class.  Each :class:`SweepCase`
builds its releases **as a batch** (see
:func:`repro.core.builder.build_psd_releases`); evaluation then takes the
fastest route available per batch:

* releases sharing one query structure (data-independent trees, unpruned) are
  scored through a single sparse query-to-node matrix per workload — one
  ``S @ counts`` product replaces one tree traversal per release;
* everything else (per-release geometry, pruned trees, Hilbert planar views)
  compiles one flat engine per release and evaluates each workload as one
  vectorized batch.

Per-release workload errors come out as matrices and are reduced by the
matrix-form :func:`repro.queries.metrics.median_relative_error`; the driver
finally averages the per-release medians over each case's repetitions, which
is exactly the aggregation the per-release loops used to do.

Every case runs on its own child RNG stream (one ``SeedSequence.spawn`` per
case, in case order), which decouples the released bits from case execution
order — ``run_sweep(..., workers=N)`` fans cases across a process pool (see
:mod:`repro.parallel.sweep`) and is bitwise identical to ``workers=1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..data.tiger import road_intersections
from ..geometry.domain import TIGER_DOMAIN, Domain
from ..geometry.rect import Rect
from ..obs import counter_add, trace_span
from ..privacy.rng import RngLike, ensure_rng
from ..queries.metrics import median_relative_error
from ..queries.workload import QueryShape, QueryWorkload, generate_workload

__all__ = ["ExperimentScale", "SweepCase", "case_rows", "make_dataset",
           "make_workloads", "evaluate_tree", "evaluate_psd", "format_table",
           "release_workload_errors", "run_sweep"]


@dataclass(frozen=True)
class ExperimentScale:
    """Size parameters shared by the experiment runners.

    Attributes
    ----------
    n_points:
        Number of synthetic road-intersection points.
    n_queries:
        Number of queries per shape in each workload.
    repetitions:
        Number of independent noisy releases averaged per configuration.
    quad_height:
        Height of the quadtree experiments (the paper uses 10).
    kd_height:
        Height of the kd-tree experiments (the paper uses 8).
    """

    n_points: int = 60_000
    n_queries: int = 60
    repetitions: int = 1
    quad_height: int = 8
    kd_height: int = 6

    @staticmethod
    def paper() -> "ExperimentScale":
        """The paper's full-scale parameters (slow: minutes per figure)."""
        return ExperimentScale(n_points=1_630_000, n_queries=600, repetitions=1, quad_height=10, kd_height=8)

    @staticmethod
    def smoke() -> "ExperimentScale":
        """A tiny scale used by the integration tests."""
        return ExperimentScale(n_points=5_000, n_queries=12, repetitions=1, quad_height=5, kd_height=4)


def make_dataset(scale: ExperimentScale, rng: RngLike = 0) -> np.ndarray:
    """The TIGER-like dataset used by Figures 3, 5, 6 and 7(a)."""
    return road_intersections(n=scale.n_points, rng=ensure_rng(rng))


def make_workloads(
    points: np.ndarray,
    shapes: Sequence[QueryShape],
    scale: ExperimentScale,
    domain: Domain = TIGER_DOMAIN,
    rng: RngLike = 1,
) -> Dict[str, QueryWorkload]:
    """One workload per query shape, keyed by the shape label."""
    gen = ensure_rng(rng)
    return {
        shape.label: generate_workload(points, domain, shape, n_queries=scale.n_queries, rng=gen)
        for shape in shapes
    }


def evaluate_tree(
    answer_fn: Callable[[Rect], float],
    workloads: Dict[str, QueryWorkload],
) -> Dict[str, float]:
    """Median relative error of ``answer_fn`` on every workload, keyed by shape label."""
    out: Dict[str, float] = {}
    for label, workload in workloads.items():
        estimates = workload.evaluate(answer_fn)
        out[label] = median_relative_error(estimates, workload.true_answers)
    return out


def evaluate_psd(
    psd,
    workloads: Dict[str, QueryWorkload],
    backend: str = "flat",
) -> Dict[str, float]:
    """Median relative error of a built PSD on every workload.

    ``backend="flat"`` (default) answers each workload as one vectorized batch
    through the compiled engine — the natural fit for the many-build /
    many-query experiment loops, where a flat-native build never has to
    materialise pointer nodes at all.  ``backend="recursive"`` falls back to
    the per-query reference walk.
    """
    if backend != "flat":
        return evaluate_tree(lambda q: psd.range_query(q, backend=backend), workloads)
    from ..engine import batch_range_query

    engine = psd.compile()
    out: Dict[str, float] = {}
    for label, workload in workloads.items():
        estimates = np.asarray(batch_range_query(engine, workload.queries))
        out[label] = median_relative_error(estimates, workload.true_answers)
    return out


# ----------------------------------------------------------------------
# The sweep driver: many releases, sparse workload algebra end to end
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepCase:
    """One grid point of a sweep: a release builder plus per-release row keys.

    ``build(gen)`` returns a release collection — a
    :class:`~repro.core.builder.PSDReleaseBatch`, a
    :class:`~repro.core.hilbert_rtree.HilbertRTreeReleases`, or any object
    with ``n_releases`` and ``release(r)`` (releases must expose
    ``compile()``); a plain sequence of built PSDs also works.  ``keys[r]``
    is the row-identifying dict of release ``r`` (e.g. ``{"epsilon": 0.5,
    "variant": "quad-opt"}``); releases sharing a key are that grid point's
    repetitions and their errors are averaged into one row.
    """

    label: str
    keys: Tuple[Mapping[str, object], ...]
    build: Callable[[np.random.Generator], object]


class _SequenceReleases:
    """Adapter giving a plain list of releases the collection protocol."""

    def __init__(self, items: Sequence) -> None:
        self._items = list(items)

    @property
    def n_releases(self) -> int:
        return len(self._items)

    def release(self, r: int):
        return self._items[r]


def _as_release_collection(obj):
    if hasattr(obj, "n_releases") and hasattr(obj, "release"):
        return obj
    if isinstance(obj, (list, tuple)):
        return _SequenceReleases(obj)
    raise TypeError(
        f"a SweepCase build must return a release collection or a sequence, got {type(obj)!r}"
    )


def _structure_fingerprint(engine) -> Tuple:
    """A content hash of everything a query decomposition depends on.

    Two engines with equal fingerprints decompose every query identically, so
    their query matrices are interchangeable — this is what lets a sweep over
    several *variants* of one data-independent structure (identical geometry,
    different budgets/noise) compile each workload matrix once.
    """
    import hashlib

    digest = hashlib.sha1()
    for array in (engine.lo, engine.hi, engine.child_start, engine.child_end,
                  engine.has_count, engine.is_leaf):
        digest.update(np.ascontiguousarray(array).tobytes())
    return (engine.n_nodes, digest.hexdigest())


def _workload_fingerprint(workload: QueryWorkload) -> Tuple:
    """A content hash of a workload's query rectangles.

    Part of the matrix-cache key, so two workloads that merely share a shape
    label (e.g. regenerated ``(5, 5)`` queries) can never alias each other's
    compiled matrices.
    """
    import hashlib

    coords = np.asarray([(*q.lo, *q.hi) for q in workload.queries], dtype=float)
    return (len(workload.queries), hashlib.sha1(coords.tobytes()).hexdigest())


def _case_fingerprint(case: "SweepCase", gen: np.random.Generator) -> str:
    """A content hash of one sweep case *as scheduled*: label, row keys, and
    the spawned RNG stream key (``SeedSequence`` entropy + spawn key).

    Two runs produce equal fingerprints exactly when the case would release
    the same bits — the same grid point built under the same stream — which
    is what lets a checkpoint journal prove a resumed case is interchangeable
    with the one the interrupted run computed.
    """
    import hashlib
    import json

    bitgen = gen.bit_generator
    seed_seq = getattr(bitgen, "seed_seq", None) or bitgen._seed_seq
    payload = {
        "label": case.label,
        "keys": [sorted((str(k), repr(v)) for k, v in key.items()) for key in case.keys],
        "entropy": repr(seed_seq.entropy),
        "spawn_key": list(seed_seq.spawn_key),
    }
    return hashlib.sha1(json.dumps(payload, sort_keys=True).encode()).hexdigest()


def _sweep_fingerprint(case_fingerprints: Sequence[str], workloads: Dict) -> str:
    """A content hash of the whole sweep: every case fingerprint plus every
    workload's query-content fingerprint.  The checkpoint header carries it,
    so a journal can never be replayed into a different sweep."""
    import hashlib

    digest = hashlib.sha1()
    digest.update(str(len(case_fingerprints)).encode())
    for fingerprint in case_fingerprints:
        digest.update(fingerprint.encode())
    for label in sorted(workloads):
        digest.update(label.encode())
        digest.update(repr(_workload_fingerprint(workloads[label])).encode())
    return digest.hexdigest()


def _validated_sweep_faults(faults, n_workers: int):
    """Normalise a ``faults=`` argument to FaultSpec objects, or refuse.

    Sweep faults exist to exercise the process-pool recovery paths, so they
    are rejected outright when the sweep would run in-process — a schedule
    that silently never fires is worse than an error.
    """
    if not faults:
        return None
    from ..serve.faults import SWEEP_FAULT_KINDS, FaultSpec, parse_fault, parse_faults

    if isinstance(faults, str):
        specs = parse_faults(faults)
    else:
        specs = [
            spec if isinstance(spec, FaultSpec) else parse_fault(spec) for spec in faults
        ]
    bad = sorted({spec.kind for spec in specs} - set(SWEEP_FAULT_KINDS))
    if bad:
        raise ValueError(
            f"fault kinds {bad} are not sweep faults (choose from {SWEEP_FAULT_KINDS})"
        )
    if n_workers <= 1:
        raise ValueError(
            "sweep fault injection requires workers > 1: the faults exercise "
            "the process-pool recovery paths, which an in-process sweep never takes"
        )
    return specs


def release_workload_errors(
    releases,
    workloads: Dict[str, QueryWorkload],
    matrix_cache: Optional[Dict] = None,
) -> Dict[str, np.ndarray]:
    """Median relative error of every release on every workload.

    Returns ``{shape label: (R,) per-release medians}``.  Batches whose
    releases share one query structure are evaluated through a single
    compiled query matrix per workload (``S @ counts`` for all releases at
    once); otherwise each release's flat engine answers each workload as one
    vectorized batch.  Pass a dict as ``matrix_cache`` to reuse compiled
    query matrices across calls; entries are keyed by (structure, queries)
    content fingerprints, so only batches that decompose the *same* queries
    over the *same* geometry share a matrix (e.g. the four quadtree variants
    of one sweep on its fixed workloads).
    """
    from ..core.builder import PSDReleaseBatch
    from ..engine.batch import batch_range_query, compile_query_matrix

    collection = _as_release_collection(releases)
    if isinstance(collection, PSDReleaseBatch) and collection.supports_shared_queries():
        engine = collection.query_engine()
        counts = collection.released_matrix()  # (n_nodes, R)
        fingerprint = None if matrix_cache is None else _structure_fingerprint(engine)
        out: Dict[str, np.ndarray] = {}
        for label, workload in workloads.items():
            if matrix_cache is None:
                matrix = compile_query_matrix(engine, workload.queries)
            else:
                key = (fingerprint, _workload_fingerprint(workload))
                matrix = matrix_cache.get(key)
                if matrix is None:
                    matrix = compile_query_matrix(engine, workload.queries)
                    matrix_cache[key] = matrix
            estimates = matrix.dot(counts)  # (Q, R)
            out[label] = np.atleast_1d(
                median_relative_error(estimates.T, workload.true_answers)
            )
        return out

    n = collection.n_releases
    out = {label: np.empty(n) for label in workloads}
    for r in range(n):
        engine = collection.release(r).compile()
        for label, workload in workloads.items():
            estimates = batch_range_query(engine, workload.queries)
            out[label][r] = median_relative_error(estimates, workload.true_answers)
    return out


def case_rows(
    case: SweepCase,
    gen: np.random.Generator,
    workloads: Dict[str, QueryWorkload],
    matrix_cache: Optional[Dict] = None,
) -> List[Dict[str, object]]:
    """Build one case's releases under ``gen`` and aggregate them into rows.

    The releases are built as one batch, scored on every workload, and the
    per-release median errors of releases sharing a row key are averaged.
    Rows carry the key's fields plus ``shape`` and ``median_rel_error_pct``.
    This is the per-case unit of work of :func:`run_sweep`, shared verbatim
    by the in-process loop and the process-parallel executor — which is what
    makes ``workers=N`` bitwise identical to ``workers=1``.
    """
    import os

    counter_add("sweep.cases", worker=os.getpid())
    with trace_span("sweep.build_case", case=case.label):
        releases = case.build(gen)
    collection = _as_release_collection(releases)
    if len(case.keys) != collection.n_releases:
        raise ValueError(
            f"case {case.label!r} declares {len(case.keys)} release keys but "
            f"built {collection.n_releases} releases"
        )
    counter_add("sweep.releases", collection.n_releases)
    with trace_span("sweep.evaluate_case", case=case.label):
        errors = release_workload_errors(collection, workloads, matrix_cache=matrix_cache)
    rows: List[Dict[str, object]] = []
    groups: Dict[Tuple, Tuple[Dict[str, object], List[int]]] = {}
    for r, key in enumerate(case.keys):
        frozen = tuple(sorted(key.items()))
        groups.setdefault(frozen, (dict(key), []))[1].append(r)
    for key_dict, indices in groups.values():
        for label, errs in errors.items():
            rows.append(
                {
                    **key_dict,
                    "shape": label,
                    "median_rel_error_pct": 100.0 * float(np.mean(errs[indices])),
                }
            )
    return rows


def run_sweep(
    cases: Sequence[SweepCase],
    workloads: Dict[str, QueryWorkload],
    rng: RngLike = None,
    workers: Optional[int] = None,
    *,
    checkpoint: Optional[str] = None,
    faults=None,
    case_timeout: Optional[float] = None,
    max_rebuilds: int = 3,
) -> List[Dict[str, object]]:
    """Run every case of a sweep and aggregate repetitions into result rows.

    Every case gets its **own child RNG stream**, spawned off ``rng``'s seed
    sequence — one spawn per case, in case order (see
    :func:`repro.privacy.rng.spawn_generators`).  Because a case's stream no
    longer depends on what earlier cases drew, case execution order is
    irrelevant to the released bits: ``workers=N`` (cases fanned across a
    ``ProcessPoolExecutor`` by :mod:`repro.parallel.sweep`, large inputs
    shared via ``multiprocessing.shared_memory``) is **bitwise identical** to
    ``workers=1`` (the in-process loop) for every N.

    .. note::
       The per-case spawn replaces the historical single generator threaded
       sequentially through all cases, so sweeps draw *different — equally
       distributed — realizations* than pre-parallel versions of this
       library for the same seed (the same kind of draw-order change as the
       PR 2–4 BFS/batching notes).  Within a version, rows are reproducible
       for any worker count.

    ``workers=None``/``0``/``1`` run in-process; negative means all cores.
    Rows carry each key's fields plus ``shape`` and ``median_rel_error_pct``
    — the exact schema of the historical per-release loops, so tables,
    benchmarks and JSON consumers are unaffected.

    Crash safety
    ------------
    ``checkpoint=path`` journals every completed case to an append-only,
    fsynced JSONL file (:class:`repro.parallel.checkpoint.SweepCheckpoint`,
    floats hex-encoded).  Re-running the same sweep with the same path
    replays the journaled cases and computes only the rest; because each
    replayed case was journaled bit-exact and each remaining case runs on
    its own spawned stream, the resumed sweep's rows are **bitwise
    identical** to an uninterrupted run's.  A journal from a *different*
    sweep (other seed, grid or workloads) refuses to resume with a named
    error.  ``faults=`` (sweep kinds of :mod:`repro.serve.faults`),
    ``case_timeout=`` and ``max_rebuilds=`` thread through to the
    fault-tolerant executor; faults require ``workers > 1``.
    """
    from ..privacy.rng import spawn_generators

    gen = ensure_rng(rng)
    case_gens = spawn_generators(gen, len(cases))

    from ..parallel.sweep import resolve_workers

    n_workers = resolve_workers(workers)
    fault_specs = _validated_sweep_faults(faults, n_workers)

    ck = None
    if checkpoint is not None:
        from ..parallel.checkpoint import SweepCheckpoint

        fingerprints = [_case_fingerprint(c, g) for c, g in zip(cases, case_gens)]
        ck = SweepCheckpoint(
            checkpoint, _sweep_fingerprint(fingerprints, workloads), fingerprints
        )
        if ck.n_completed:
            counter_add("sweep.cases_resumed", ck.n_completed)
            with trace_span("sweep.resume", replayed=ck.n_completed, total=len(cases)):
                pass

    try:
        if n_workers > 1 and len(cases) > 1:
            from ..parallel.sweep import run_cases_parallel

            per_case = run_cases_parallel(
                cases,
                case_gens,
                workloads,
                n_workers,
                skip=() if ck is None else tuple(ck.completed),
                on_case_done=None if ck is None else ck.record,
                faults=fault_specs,
                case_timeout=case_timeout,
                max_rebuilds=max_rebuilds,
            )
            if ck is not None:
                replayed = ck.completed
                per_case = [
                    replayed[i] if rows is None else rows
                    for i, rows in enumerate(per_case)
                ]
            return [row for rows in per_case for row in rows]

        rows: List[Dict[str, object]] = []
        matrix_cache: Dict = {}  # shared across cases: same structure -> same matrices
        replayed = {} if ck is None else ck.completed
        for i, (case, case_gen) in enumerate(zip(cases, case_gens)):
            case_result = replayed.get(i)
            if case_result is None:
                case_result = case_rows(case, case_gen, workloads, matrix_cache=matrix_cache)
                if ck is not None:
                    ck.record(i, case_result)
            rows.extend(case_result)
        return rows
    finally:
        if ck is not None:
            ck.close()


def format_table(rows: Iterable[Dict[str, object]], columns: Sequence[str], title: str = "") -> str:
    """Render result rows as a fixed-width text table (used by the benchmarks)."""
    rows = list(rows)
    widths = {c: max(len(c), *(len(_fmt(r.get(c))) for r in rows)) if rows else len(c) for c in columns}
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.001 and value != 0):
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)
