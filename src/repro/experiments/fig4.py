"""Figure 4: quality and cost of the private-median mechanisms.

Setup (Section 8.2): a synthetic one-dimensional dataset of ``2^20`` points
uniform in ``[0, 2^26]``; a binary tree of splits is grown to depth 10 with
each mechanism choosing every split, using a per-level budget of
``eps = 0.01`` (and ``delta = 1e-4`` for smooth sensitivity); the figure
reports, per depth,

* (a) the average normalized rank error of the chosen splits (values outside
  the data range count as 100 %), and
* (b) the wall-clock time spent selecting the splits at that depth,

for six methods: EM, SS, their 1 %-sampled variants EMs and SSs, the noisy
mean NM, and the cell-based approach (cell length ``2^10``).

The paper's conclusions, which the reproduction should echo: EM is the most
accurate at every depth; sampling speeds both EM and SS up by an order of
magnitude, slightly hurting EM and actually *helping* SS; NM is fast but poor
for small node sizes; cell is slow and weak at the top of the tree.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

import numpy as np

from ..data.synthetic import MEDIAN_STUDY_DOMAIN, uniform_1d
from ..privacy.median import MEDIAN_METHODS
from ..privacy.rng import RngLike, ensure_rng
from ..queries.metrics import rank_error

__all__ = ["run_fig4", "PAPER_MEDIAN_METHODS", "DEFAULT_DEPTH"]

#: The six methods of Figure 4, keyed by the paper's labels.
PAPER_MEDIAN_METHODS = ("em", "ss", "ems", "sss", "noisymean", "cell")

#: Number of levels of splits measured (the paper plots depths 0..9).
DEFAULT_DEPTH = 10

#: Cell width used for the cell-based method in the paper (length 2^10 over 2^26).
PAPER_CELL_WIDTH = float(2**10)


def _split_recursively(
    values: np.ndarray,
    method_name: str,
    depth: int,
    epsilon_per_level: float,
    lo: float,
    hi: float,
    rng,
    errors: Dict[int, List[float]],
    times: Dict[int, float],
    current_depth: int = 0,
    min_node_size: int = 8,
) -> None:
    """Grow one root-to-leaves binary split tree, recording error and time per depth."""
    if current_depth >= depth or values.size < min_node_size or hi <= lo:
        return
    method = MEDIAN_METHODS[method_name]
    kwargs = {}
    if method_name == "cell":
        n_cells = max(2, int(round((hi - lo) / PAPER_CELL_WIDTH)))
        kwargs["n_cells"] = min(n_cells, 1 << 16)
    start = time.perf_counter()
    estimate = float(method(values, epsilon_per_level, lo, hi, rng=rng, **kwargs))
    elapsed = time.perf_counter() - start

    errors.setdefault(current_depth, []).append(rank_error(values, estimate, lo, hi))
    times[current_depth] = times.get(current_depth, 0.0) + elapsed

    left = values[values <= estimate]
    right = values[values > estimate]
    _split_recursively(left, method_name, depth, epsilon_per_level, lo, estimate, rng,
                       errors, times, current_depth + 1, min_node_size)
    _split_recursively(right, method_name, depth, epsilon_per_level, estimate, hi, rng,
                       errors, times, current_depth + 1, min_node_size)


def run_fig4(
    n_points: int = 2**17,
    depth: int = DEFAULT_DEPTH,
    epsilon_per_level: float = 0.01,
    methods: Sequence[str] = PAPER_MEDIAN_METHODS,
    rng: RngLike = 0,
) -> List[Dict[str, object]]:
    """Run the Figure 4 experiment.

    ``n_points`` defaults to ``2^17`` so the run takes seconds; pass ``2**20``
    to match the paper exactly.  Returns one row per (method, depth) with the
    mean normalized rank error (in percent, Figure 4a) and the total time spent
    on splits at that depth (seconds, Figure 4b).
    """
    gen = ensure_rng(rng)
    lo, hi = MEDIAN_STUDY_DOMAIN
    values = uniform_1d(n_points, lo=lo, hi=hi, rng=gen)

    rows: List[Dict[str, object]] = []
    for method_name in methods:
        errors: Dict[int, List[float]] = {}
        times: Dict[int, float] = {}
        _split_recursively(values, method_name, depth, epsilon_per_level, lo, hi, gen, errors, times)
        for level in range(depth):
            level_errors = errors.get(level, [])
            rows.append(
                {
                    "method": method_name,
                    "depth": level,
                    "rank_error_pct": 100.0 * float(np.mean(level_errors)) if level_errors else float("nan"),
                    "time_sec": float(times.get(level, 0.0)),
                    "nodes": len(level_errors),
                }
            )
    return rows
