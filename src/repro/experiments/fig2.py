"""Figure 2: worst-case Err(Q) for uniform vs geometric budgets.

The figure plots the two analytic worst-case bounds of Section 4.2 against the
tree height ``h = 5..10`` (in units of ``16 / eps^2``): the uniform-budget
error grows like ``(h+1)^2 2^{h+1}`` while the geometric-budget error grows
like ``2^{h+1}``, an asymptotic gap of ``(h+1)^2``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..analysis.variance import worst_case_error_curves

__all__ = ["run_fig2", "PAPER_HEIGHTS"]

#: The heights plotted in Figure 2.
PAPER_HEIGHTS = tuple(range(5, 11))


def run_fig2(heights: Sequence[int] = PAPER_HEIGHTS) -> List[Dict[str, float]]:
    """Return one row per height with both worst-case bounds (units of 16/eps^2)."""
    curves = worst_case_error_curves(heights)
    rows: List[Dict[str, float]] = []
    for h, unif, geom in zip(curves["height"], curves["uniform"], curves["geometric"]):
        rows.append(
            {
                "height": int(h),
                "err_uniform": float(unif),
                "err_geometric": float(geom),
                "ratio": float(unif / geom) if geom > 0 else float("inf"),
            }
        )
    return rows
