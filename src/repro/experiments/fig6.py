"""Figure 6: comparison of the best PSD of each family across tree heights.

At a fixed privacy budget ``eps = 0.5`` and for query shapes ``(1,1)``,
``(10,10)`` and ``(15,0.2)``, the figure sweeps the maximum tree height
``h = 6..11`` and plots the median relative error of:

* ``quad-opt``   — the optimised private quadtree;
* ``kd-hybrid``  — the hybrid kd-tree;
* ``kd-cell``    — the cell-based kd-tree of [26];
* ``hilbert-r``  — the private Hilbert R-tree (a binary tree over Hilbert
  values; built with ``2h`` binary levels so it has the same number of leaves
  as a fanout-4 tree of height ``h``).

The shape to reproduce: the optimised quadtree keeps improving with height and
is best at the largest heights; kd-hybrid reaches comparable accuracy at a
smaller height on large queries; kd-cell shines only on small square queries;
Hilbert-R is competitive on some shapes and much worse on others.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.hilbert_rtree import build_private_hilbert_rtree
from ..core.kdtree import build_private_kdtree
from ..core.quadtree import build_private_quadtree
from ..geometry.domain import TIGER_DOMAIN, Domain
from ..privacy.rng import RngLike, ensure_rng
from ..queries.workload import KD_QUERY_SHAPES, QueryShape
from .common import ExperimentScale, evaluate_tree, make_dataset, make_workloads
from .fig5 import PAPER_PRUNE_THRESHOLD

__all__ = ["run_fig6", "PAPER_HEIGHTS", "FIG6_METHODS"]

#: Tree heights swept in Figure 6 (reduced by default; pass the paper range to match).
PAPER_HEIGHTS = (6, 7, 8, 9, 10, 11)

#: The four methods compared in Figure 6.
FIG6_METHODS = ("quad-opt", "kd-hybrid", "kd-cell", "hilbert-r")


def run_fig6(
    scale: ExperimentScale = ExperimentScale(),
    heights: Sequence[int] = (5, 6, 7, 8),
    epsilon: float = 0.5,
    shapes: Sequence[QueryShape] = KD_QUERY_SHAPES,
    methods: Sequence[str] = FIG6_METHODS,
    domain: Domain = TIGER_DOMAIN,
    points: Optional[np.ndarray] = None,
    hilbert_order: int = 16,
    rng: RngLike = 0,
) -> List[Dict[str, object]]:
    """Run the Figure 6 sweep; one row per (method, height, shape).

    The default ``heights`` stop at 8 to keep pure-Python tree sizes modest;
    pass ``heights=PAPER_HEIGHTS`` for the full sweep of the paper.
    """
    gen = ensure_rng(rng)
    pts = make_dataset(scale, rng=gen) if points is None else domain.validate_points(points)
    workloads = make_workloads(pts, shapes, scale, domain=domain, rng=gen)

    rows: List[Dict[str, object]] = []
    for height in heights:
        for method in methods:
            answer_fn = _build_method(method, pts, domain, int(height), epsilon, hilbert_order, gen)
            errors = evaluate_tree(answer_fn, workloads)
            for label, err in errors.items():
                rows.append(
                    {
                        "method": method,
                        "height": int(height),
                        "shape": label,
                        "median_rel_error_pct": 100.0 * float(err),
                    }
                )
    return rows


def _build_method(method, pts, domain, height, epsilon, hilbert_order, rng):
    """Build one of the Figure 6 structures and return its query-answering callable."""
    key = method.lower()
    if key == "quad-opt":
        psd = build_private_quadtree(pts, domain, height=height, epsilon=epsilon, variant="quad-opt", rng=rng)
        return psd.range_query
    if key == "kd-hybrid":
        psd = build_private_kdtree(
            pts, domain, height=height, epsilon=epsilon, variant="kd-hybrid",
            prune_threshold=PAPER_PRUNE_THRESHOLD, rng=rng,
        )
        return psd.range_query
    if key == "kd-cell":
        psd = build_private_kdtree(
            pts, domain, height=height, epsilon=epsilon, variant="kd-cell",
            prune_threshold=PAPER_PRUNE_THRESHOLD, rng=rng,
        )
        return psd.range_query
    if key in ("hilbert-r", "hilbert"):
        tree = build_private_hilbert_rtree(
            pts, domain, height=2 * height, epsilon=epsilon, order=hilbert_order,
            prune_threshold=PAPER_PRUNE_THRESHOLD, rng=rng,
        )
        return tree.range_query
    raise KeyError(f"unknown Figure 6 method {method!r}")
