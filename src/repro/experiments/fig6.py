"""Figure 6: comparison of the best PSD of each family across tree heights.

At a fixed privacy budget ``eps = 0.5`` and for query shapes ``(1,1)``,
``(10,10)`` and ``(15,0.2)``, the figure sweeps the maximum tree height
``h = 6..11`` and plots the median relative error of:

* ``quad-opt``   — the optimised private quadtree;
* ``kd-hybrid``  — the hybrid kd-tree;
* ``kd-cell``    — the cell-based kd-tree of [26];
* ``hilbert-r``  — the private Hilbert R-tree (a binary tree over Hilbert
  values; built with ``2h`` binary levels so it has the same number of leaves
  as a fanout-4 tree of height ``h``).

The shape to reproduce: the optimised quadtree keeps improving with height and
is best at the largest heights; kd-hybrid reaches comparable accuracy at a
smaller height on large queries; kd-cell shines only on small square queries;
Hilbert-R is competitive on some shapes and much worse on others.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.hilbert_rtree import build_private_hilbert_rtree_releases
from ..core.kdtree import build_private_kdtree_releases
from ..core.quadtree import build_private_quadtree_releases
from ..geometry.domain import TIGER_DOMAIN, Domain
from ..privacy.rng import RngLike, ensure_rng
from ..queries.workload import KD_QUERY_SHAPES, QueryShape
from .common import ExperimentScale, SweepCase, make_dataset, make_workloads, run_sweep
from .fig5 import PAPER_PRUNE_THRESHOLD

__all__ = ["run_fig6", "PAPER_HEIGHTS", "FIG6_METHODS"]

#: Tree heights swept in Figure 6 (reduced by default; pass the paper range to match).
PAPER_HEIGHTS = (6, 7, 8, 9, 10, 11)

#: The four methods compared in Figure 6.
FIG6_METHODS = ("quad-opt", "kd-hybrid", "kd-cell", "hilbert-r")


def run_fig6(
    scale: ExperimentScale = ExperimentScale(),
    heights: Sequence[int] = (5, 6, 7, 8),
    epsilon: float = 0.5,
    shapes: Sequence[QueryShape] = KD_QUERY_SHAPES,
    methods: Sequence[str] = FIG6_METHODS,
    domain: Domain = TIGER_DOMAIN,
    points: Optional[np.ndarray] = None,
    hilbert_order: int = 16,
    rng: RngLike = 0,
    workers: Optional[int] = None,
    checkpoint: Optional[str] = None,
    faults=None,
    case_timeout: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Run the Figure 6 sweep; one row per (method, height, shape).

    Every (method, height) grid point is one sweep case building its
    ``scale.repetitions`` releases as a batch and evaluating them on the flat
    batch backend — the Hilbert R-tree through its compiled planar engine, so
    no per-query ``range_query`` closures remain anywhere in the runner.
    ``workers`` fans the (method, height) grid across a process pool with
    identical rows for any worker count.

    The default ``heights`` stop at 8 to keep default-scale runtimes modest;
    pass ``heights=PAPER_HEIGHTS`` for the full sweep of the paper.
    """
    gen = ensure_rng(rng)
    pts = make_dataset(scale, rng=gen) if points is None else domain.validate_points(points)
    workloads = make_workloads(pts, shapes, scale, domain=domain, rng=gen)

    cases = [
        _method_case(method, int(height), pts, domain, float(epsilon),
                     hilbert_order, scale)
        for height in heights
        for method in methods
    ]
    return run_sweep(cases, workloads, rng=gen, workers=workers,
                     checkpoint=checkpoint, faults=faults, case_timeout=case_timeout)


@dataclass(frozen=True, eq=False)
class Fig6CaseBuild:
    """The (picklable) release builder of one Figure-6 (method, height) case."""

    method: str
    height: int
    points: np.ndarray
    domain: Domain
    epsilon: float
    hilbert_order: int
    repetitions: int

    def __call__(self, gen: np.random.Generator):
        if self.method == "quad-opt":
            return build_private_quadtree_releases(
                self.points, self.domain, height=self.height, epsilons=(self.epsilon,),
                repetitions=self.repetitions, variant="quad-opt", rng=gen,
            )
        if self.method in ("kd-hybrid", "kd-cell"):
            return build_private_kdtree_releases(
                self.points, self.domain, height=self.height, epsilons=(self.epsilon,),
                repetitions=self.repetitions, variant=self.method,
                prune_threshold=PAPER_PRUNE_THRESHOLD, rng=gen,
            )
        return build_private_hilbert_rtree_releases(
            self.points, self.domain, height=2 * self.height, epsilons=(self.epsilon,),
            repetitions=self.repetitions, order=self.hilbert_order,
            prune_threshold=PAPER_PRUNE_THRESHOLD, rng=gen,
        )


def _method_case(method, height, pts, domain, epsilon, hilbert_order, scale) -> SweepCase:
    """One sweep case: ``scale.repetitions`` releases of a Figure 6 structure."""
    key = str(method).lower()
    if key in ("hilbert-r", "hilbert"):
        key = "hilbert-r"
    elif key not in ("quad-opt", "kd-hybrid", "kd-cell"):
        raise KeyError(f"unknown Figure 6 method {method!r}")
    build = Fig6CaseBuild(method=key, height=height, points=pts, domain=domain,
                          epsilon=epsilon, hilbert_order=hilbert_order,
                          repetitions=scale.repetitions)
    keys = tuple({"method": method, "height": height} for _ in range(scale.repetitions))
    return SweepCase(label=f"{method}/h{height}", keys=keys, build=build)
