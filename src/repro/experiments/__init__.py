"""Experiment runners reproducing every figure of the paper's evaluation (Section 8)."""

from .ablations import (
    run_budget_split_ablation,
    run_geometric_ratio_ablation,
    run_switch_level_ablation,
)
from .common import (
    ExperimentScale,
    SweepCase,
    evaluate_psd,
    evaluate_tree,
    format_table,
    make_dataset,
    make_workloads,
    release_workload_errors,
    run_sweep,
)
from .fig2 import run_fig2
from .fig3 import run_fig3
from .fig4 import run_fig4
from .fig5 import run_fig5
from .fig6 import run_fig6
from .fig7 import run_fig7a, run_fig7b

__all__ = [
    "ExperimentScale",
    "SweepCase",
    "make_dataset",
    "make_workloads",
    "evaluate_tree",
    "evaluate_psd",
    "release_workload_errors",
    "run_sweep",
    "format_table",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7a",
    "run_fig7b",
    "run_budget_split_ablation",
    "run_switch_level_ablation",
    "run_geometric_ratio_ablation",
]
