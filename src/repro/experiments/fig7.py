"""Figure 7: construction-time comparison and the record-matching application.

* **Figure 7(a)** compares how long it takes to build each spatial
  decomposition (kd-hybrid, kd-cell, quadtree, Hilbert-R) on the road data.
  Absolute seconds depend on the machine; the shape to reproduce is the
  ordering — data-independent structures are fastest, the hybrid kd-tree sits
  in the middle, and the cell-based kd-tree and the Hilbert R-tree are the
  slowest (grid materialisation and Hilbert encoding respectively).

* **Figure 7(b)** evaluates private record matching: the reduction ratio
  (fraction of SMC comparisons avoided) as the privacy budget varies from 0.05
  to 0.5, for the data-independent quadtree baseline, the noisy-mean kd-tree
  of [12] and the paper's EM-median kd-tree.  The expected shape: all methods
  improve with budget and ``kd-standard`` dominates the other two.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..applications.record_matching import record_matching_experiment
from ..core.hilbert_rtree import build_private_hilbert_rtree
from ..core.kdtree import build_private_kdtree
from ..core.quadtree import build_private_quadtree
from ..data.synthetic import gaussian_cluster_points
from ..geometry.domain import TIGER_DOMAIN, Domain
from ..privacy.rng import RngLike, ensure_rng
from .common import ExperimentScale, make_dataset

__all__ = ["run_fig7a", "run_fig7b", "FIG7A_METHODS", "PAPER_RECORD_MATCHING_EPSILONS"]

#: Structures timed in Figure 7(a).
FIG7A_METHODS = ("kd-hybrid", "kd-cell", "quadtree", "hilbert-r")

#: The privacy budgets swept in Figure 7(b).
PAPER_RECORD_MATCHING_EPSILONS = (0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5)


def run_fig7a(
    scale: ExperimentScale = ExperimentScale(),
    epsilon: float = 0.5,
    methods: Sequence[str] = FIG7A_METHODS,
    domain: Domain = TIGER_DOMAIN,
    points: Optional[np.ndarray] = None,
    hilbert_order: int = 16,
    rng: RngLike = 0,
) -> List[Dict[str, object]]:
    """Time the construction of each structure; one row per method."""
    gen = ensure_rng(rng)
    pts = make_dataset(scale, rng=gen) if points is None else domain.validate_points(points)

    rows: List[Dict[str, object]] = []
    for method in methods:
        start = time.perf_counter()
        if method == "quadtree":
            build_private_quadtree(pts, domain, height=scale.quad_height, epsilon=epsilon,
                                   variant="quad-opt", rng=gen)
        elif method == "kd-hybrid":
            build_private_kdtree(pts, domain, height=scale.kd_height, epsilon=epsilon,
                                 variant="kd-hybrid", rng=gen)
        elif method == "kd-cell":
            build_private_kdtree(pts, domain, height=scale.kd_height, epsilon=epsilon,
                                 variant="kd-cell", rng=gen)
        elif method in ("hilbert-r", "hilbert"):
            build_private_hilbert_rtree(pts, domain, height=2 * scale.kd_height, epsilon=epsilon,
                                        order=hilbert_order, rng=gen)
        else:
            raise KeyError(f"unknown Figure 7(a) method {method!r}")
        rows.append({"method": method, "build_time_sec": time.perf_counter() - start, "n_points": pts.shape[0]})
    return rows


def run_fig7b(
    n_per_party: Optional[int] = None,
    epsilons: Sequence[float] = PAPER_RECORD_MATCHING_EPSILONS,
    height: Optional[int] = None,
    matching_distance: float = 0.05,
    overlap: float = 0.5,
    domain: Domain = TIGER_DOMAIN,
    rng: RngLike = 0,
    scale: Optional[ExperimentScale] = None,
    workers: Optional[int] = None,
    scorer: str = "fast",
) -> List[Dict[str, object]]:
    """The record-matching sweep of Figure 7(b).

    Two synthetic parties are generated with partially overlapping cluster
    structure (``overlap`` controls the fraction of party B drawn from party
    A's neighbourhoods, i.e. the true matches).  Returns one row per
    (method, epsilon) with the reduction ratio and pairs completeness.

    ``scale`` supplies defaults when ``n_per_party``/``height`` are not
    given (a tenth of ``scale.n_points`` per party at ``scale.kd_height`` —
    ``--scale paper`` puts 163k records on each side); ``workers`` fans the
    candidate scoring across processes with bitwise-identical results, and
    ``scorer`` selects the vectorised path (``"fast"``) or the seed-era
    reference loop (``"reference"``), which agree value-for-value.
    """
    if n_per_party is None:
        n_per_party = max(scale.n_points // 10, 1000) if scale is not None else 20_000
    if height is None:
        height = scale.kd_height if scale is not None else 6
    gen = ensure_rng(rng)
    holders = gaussian_cluster_points(n_per_party, domain, n_clusters=12, spread=0.03, rng=gen)

    n_overlap = int(round(n_per_party * overlap))
    near_matches = holders[gen.integers(0, holders.shape[0], n_overlap)]
    near_matches = near_matches + gen.normal(scale=matching_distance / 4.0, size=near_matches.shape)
    fresh = gaussian_cluster_points(n_per_party - n_overlap, domain, n_clusters=12, spread=0.03, rng=gen)
    seekers = domain.clip_points(np.concatenate([near_matches, fresh], axis=0))

    results = record_matching_experiment(
        holders, seekers, domain, epsilons=epsilons, height=height,
        matching_distance=matching_distance, rng=gen, workers=workers, scorer=scorer,
    )
    rows: List[Dict[str, object]] = []
    for row in results:
        rows.append(
            {
                "method": row.method,
                "epsilon": row.epsilon,
                "reduction_ratio": row.result.reduction_ratio,
                "pairs_completeness": row.result.pairs_completeness,
                "surviving_leaves": row.result.surviving_leaves,
            }
        )
    return rows
