"""Figure 3: query accuracy of the quadtree optimisations.

For every privacy budget ``eps in {0.1, 0.5, 1.0}`` and every query shape
``(1,1), (5,5), (10,10), (15,0.2)``, the figure reports the median relative
error of four quadtree configurations grown to the same height:

* ``quad-baseline`` — uniform budget, no post-processing;
* ``quad-geo``      — geometric budget only;
* ``quad-post``     — OLS post-processing only;
* ``quad-opt``      — both optimisations combined.

The paper's headline observation is that each optimisation helps individually
and together they cut the error by up to an order of magnitude, especially at
small budgets.  Each variant runs as **one** :class:`~repro.experiments.common.SweepCase`:
the data-independent structure is computed once, all ``(epsilon, repetition)``
releases draw their noise as one batch, and every workload is scored against
all releases through a single shared query matrix — the per-release rebuild
loop of the sequential methodology is gone, with bitwise-identical releases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.flatbuild import FlatTree, build_flat_structure
from ..core.quadtree import QUADTREE_VARIANTS, build_private_quadtree_releases
from ..core.splits import QuadSplit
from ..geometry.domain import TIGER_DOMAIN, Domain
from ..privacy.rng import RngLike, ensure_rng
from ..queries.workload import PAPER_QUERY_SHAPES, QueryShape
from .common import ExperimentScale, SweepCase, make_dataset, make_workloads, run_sweep

__all__ = ["run_fig3", "quadtree_sweep_case", "QuadtreeSweepBuild", "PAPER_EPSILONS"]

#: The privacy budgets of Figure 3(a)-(c).
PAPER_EPSILONS = (0.1, 0.5, 1.0)


@dataclass(frozen=True, eq=False)
class QuadtreeSweepBuild:
    """The (picklable) release builder behind one Figure-3 sweep case.

    A module-level callable rather than a closure so the process-parallel
    sweep can ship cases to workers; the points array and the shared
    structure ride :mod:`repro.parallel.shm` shared-memory views instead of
    being re-pickled per case.
    """

    points: np.ndarray
    domain: Domain
    height: int
    epsilons: Tuple[float, ...]
    repetitions: int
    variant: str
    structure: FlatTree

    def __call__(self, gen: np.random.Generator):
        return build_private_quadtree_releases(
            self.points, self.domain, height=self.height, epsilons=self.epsilons,
            repetitions=self.repetitions, variant=self.variant, rng=gen,
            structure=self.structure,
        )

    def shared_engine(self):
        """The shared query structure (every fig3 variant funds all levels),
        letting the parallel sweep precompile one query matrix per workload
        in the parent and hand workers the CSR buffers via shared memory."""
        from ..parallel.sweep import engine_from_structure

        return engine_from_structure(self.structure, self.domain,
                                     name=f"quad-{self.variant}")


def quadtree_sweep_case(
    points: np.ndarray,
    domain: Domain,
    height: int,
    epsilons: Sequence[float],
    repetitions: int,
    variant: str,
    structure: FlatTree,
) -> SweepCase:
    """One quadtree sweep case: ``len(epsilons) * repetitions`` releases."""
    eps_list = tuple(float(e) for e in epsilons)
    keys = tuple(
        {"epsilon": e, "variant": variant} for e in eps_list for _ in range(repetitions)
    )
    build = QuadtreeSweepBuild(points=points, domain=domain, height=height,
                               epsilons=eps_list, repetitions=repetitions,
                               variant=variant, structure=structure)
    return SweepCase(label=variant, keys=keys, build=build)


def run_fig3(
    scale: ExperimentScale = ExperimentScale(),
    epsilons: Sequence[float] = PAPER_EPSILONS,
    shapes: Sequence[QueryShape] = PAPER_QUERY_SHAPES,
    variants: Sequence[str] = tuple(QUADTREE_VARIANTS),
    domain: Domain = TIGER_DOMAIN,
    points: Optional[np.ndarray] = None,
    rng: RngLike = 0,
    workers: Optional[int] = None,
    checkpoint: Optional[str] = None,
    faults=None,
    case_timeout: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Run the Figure 3 experiment and return one row per (epsilon, variant, shape).

    ``workers`` fans the variant cases across a process pool; any value
    yields the same rows as ``workers=1`` (see :func:`~.common.run_sweep`).
    """
    gen = ensure_rng(rng)
    pts = make_dataset(scale, rng=gen) if points is None else domain.validate_points(points)
    workloads = make_workloads(pts, shapes, scale, domain=domain, rng=gen)
    eps_list = tuple(float(e) for e in epsilons)

    # One geometry serves every variant's releases: quadtree structure is data
    # independent and draw-free, so sharing it changes no release bits.
    structure = build_flat_structure(pts, domain, scale.quad_height, QuadSplit(), 0.0)

    cases = [
        quadtree_sweep_case(pts, domain, scale.quad_height, eps_list,
                            scale.repetitions, variant, structure)
        for variant in variants
    ]
    return run_sweep(cases, workloads, rng=gen, workers=workers,
                     checkpoint=checkpoint, faults=faults, case_timeout=case_timeout)
