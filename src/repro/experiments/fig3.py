"""Figure 3: query accuracy of the quadtree optimisations.

For every privacy budget ``eps in {0.1, 0.5, 1.0}`` and every query shape
``(1,1), (5,5), (10,10), (15,0.2)``, the figure reports the median relative
error of four quadtree configurations grown to the same height:

* ``quad-baseline`` — uniform budget, no post-processing;
* ``quad-geo``      — geometric budget only;
* ``quad-post``     — OLS post-processing only;
* ``quad-opt``      — both optimisations combined.

The paper's headline observation is that each optimisation helps individually
and together they cut the error by up to an order of magnitude, especially at
small budgets.  The runner rebuilds the *structure* once (it is data
independent) and redraws the noise for every variant, matching the paper's
methodology of comparing variants on identical data and workloads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.quadtree import QUADTREE_VARIANTS, build_private_quadtree
from ..geometry.domain import TIGER_DOMAIN, Domain
from ..privacy.rng import RngLike, ensure_rng
from ..queries.workload import PAPER_QUERY_SHAPES, QueryShape
from .common import ExperimentScale, evaluate_psd, make_dataset, make_workloads

__all__ = ["run_fig3", "PAPER_EPSILONS"]

#: The privacy budgets of Figure 3(a)-(c).
PAPER_EPSILONS = (0.1, 0.5, 1.0)


def run_fig3(
    scale: ExperimentScale = ExperimentScale(),
    epsilons: Sequence[float] = PAPER_EPSILONS,
    shapes: Sequence[QueryShape] = PAPER_QUERY_SHAPES,
    variants: Sequence[str] = tuple(QUADTREE_VARIANTS),
    domain: Domain = TIGER_DOMAIN,
    points: Optional[np.ndarray] = None,
    rng: RngLike = 0,
) -> List[Dict[str, object]]:
    """Run the Figure 3 experiment and return one row per (epsilon, variant, shape)."""
    gen = ensure_rng(rng)
    pts = make_dataset(scale, rng=gen) if points is None else domain.validate_points(points)
    workloads = make_workloads(pts, shapes, scale, domain=domain, rng=gen)

    rows: List[Dict[str, object]] = []
    for epsilon in epsilons:
        for variant in variants:
            errors_accum: Dict[str, List[float]] = {label: [] for label in workloads}
            for _ in range(scale.repetitions):
                psd = build_private_quadtree(
                    pts, domain, height=scale.quad_height, epsilon=epsilon, variant=variant, rng=gen
                )
                errors = evaluate_psd(psd, workloads)
                for label, err in errors.items():
                    errors_accum[label].append(err)
            for label, errs in errors_accum.items():
                rows.append(
                    {
                        "epsilon": float(epsilon),
                        "variant": variant,
                        "shape": label,
                        "median_rel_error_pct": 100.0 * float(np.mean(errs)),
                    }
                )
    return rows
