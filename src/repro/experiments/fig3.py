"""Figure 3: query accuracy of the quadtree optimisations.

For every privacy budget ``eps in {0.1, 0.5, 1.0}`` and every query shape
``(1,1), (5,5), (10,10), (15,0.2)``, the figure reports the median relative
error of four quadtree configurations grown to the same height:

* ``quad-baseline`` — uniform budget, no post-processing;
* ``quad-geo``      — geometric budget only;
* ``quad-post``     — OLS post-processing only;
* ``quad-opt``      — both optimisations combined.

The paper's headline observation is that each optimisation helps individually
and together they cut the error by up to an order of magnitude, especially at
small budgets.  Each variant runs as **one** :class:`~repro.experiments.common.SweepCase`:
the data-independent structure is computed once, all ``(epsilon, repetition)``
releases draw their noise as one batch, and every workload is scored against
all releases through a single shared query matrix — the per-release rebuild
loop of the sequential methodology is gone, with bitwise-identical releases.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.quadtree import QUADTREE_VARIANTS, build_private_quadtree_releases
from ..geometry.domain import TIGER_DOMAIN, Domain
from ..privacy.rng import RngLike, ensure_rng
from ..queries.workload import PAPER_QUERY_SHAPES, QueryShape
from .common import ExperimentScale, SweepCase, make_dataset, make_workloads, run_sweep

__all__ = ["run_fig3", "PAPER_EPSILONS"]

#: The privacy budgets of Figure 3(a)-(c).
PAPER_EPSILONS = (0.1, 0.5, 1.0)


def run_fig3(
    scale: ExperimentScale = ExperimentScale(),
    epsilons: Sequence[float] = PAPER_EPSILONS,
    shapes: Sequence[QueryShape] = PAPER_QUERY_SHAPES,
    variants: Sequence[str] = tuple(QUADTREE_VARIANTS),
    domain: Domain = TIGER_DOMAIN,
    points: Optional[np.ndarray] = None,
    rng: RngLike = 0,
) -> List[Dict[str, object]]:
    """Run the Figure 3 experiment and return one row per (epsilon, variant, shape)."""
    gen = ensure_rng(rng)
    pts = make_dataset(scale, rng=gen) if points is None else domain.validate_points(points)
    workloads = make_workloads(pts, shapes, scale, domain=domain, rng=gen)
    eps_list = tuple(float(e) for e in epsilons)

    # One geometry serves every variant's releases: quadtree structure is data
    # independent and draw-free, so sharing it changes no release bits.
    from ..core.flatbuild import build_flat_structure
    from ..core.splits import QuadSplit

    structure = build_flat_structure(pts, domain, scale.quad_height, QuadSplit(), 0.0)

    def case(variant: str) -> SweepCase:
        def build(case_gen: np.random.Generator):
            return build_private_quadtree_releases(
                pts, domain, height=scale.quad_height, epsilons=eps_list,
                repetitions=scale.repetitions, variant=variant, rng=case_gen,
                structure=structure,
            )

        keys = tuple(
            {"epsilon": e, "variant": variant}
            for e in eps_list
            for _ in range(scale.repetitions)
        )
        return SweepCase(label=variant, keys=keys, build=build)

    return run_sweep([case(v) for v in variants], workloads, rng=gen)
