"""Figure 5: query accuracy of the kd-tree variants.

For ``eps in {0.1, 0.5, 1.0}`` and query shapes ``(1,1), (10,10), (15,0.2)``
the figure compares six kd-trees, all of height 8 with fanout 4 and pruning
threshold ``m = 32``:

* ``kd-pure``      — exact medians, exact counts (no privacy; error floor of
  the uniformity assumption);
* ``kd-true``      — exact medians, noisy counts (cost of count noise alone);
* ``kd-standard``  — EM medians;
* ``kd-hybrid``    — EM medians for the top half, quadtree below;
* ``kd-cell``      — the cell-based structure of [26];
* ``kd-noisymean`` — the noisy-mean structure of [12].

The shape to reproduce: kd-pure and kd-true stay below ~1 % error (count
noise is cheap); the private-median variants are noticeably worse, with
kd-noisymean the weakest, kd-cell competitive only on small square queries,
and kd-hybrid the most reliably accurate private variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.kdtree import KDTREE_VARIANTS, build_private_kdtree_releases
from ..geometry.domain import TIGER_DOMAIN, Domain
from ..privacy.rng import RngLike, ensure_rng
from ..queries.workload import KD_QUERY_SHAPES, QueryShape
from .common import ExperimentScale, SweepCase, make_dataset, make_workloads, run_sweep

__all__ = ["run_fig5", "KDTreeSweepBuild", "PAPER_EPSILONS", "PAPER_PRUNE_THRESHOLD"]


@dataclass(frozen=True, eq=False)
class KDTreeSweepBuild:
    """The (picklable) release builder behind one Figure-5 sweep case.

    Module-level so the process-parallel sweep can ship kd-tree cases to
    workers; the points array is shared across cases via shared memory.
    """

    points: np.ndarray
    domain: Domain
    height: int
    epsilons: Tuple[float, ...]
    repetitions: int
    variant: str
    prune_threshold: float

    def __call__(self, gen: np.random.Generator):
        return build_private_kdtree_releases(
            self.points, self.domain, height=self.height, epsilons=self.epsilons,
            repetitions=self.repetitions, variant=self.variant,
            prune_threshold=self.prune_threshold, rng=gen,
        )

#: The privacy budgets of Figure 5(a)-(c).
PAPER_EPSILONS = (0.1, 0.5, 1.0)

#: The pruning threshold used throughout the kd-tree experiments.
PAPER_PRUNE_THRESHOLD = 32.0


def run_fig5(
    scale: ExperimentScale = ExperimentScale(),
    epsilons: Sequence[float] = PAPER_EPSILONS,
    shapes: Sequence[QueryShape] = KD_QUERY_SHAPES,
    variants: Sequence[str] = tuple(KDTREE_VARIANTS),
    domain: Domain = TIGER_DOMAIN,
    points: Optional[np.ndarray] = None,
    prune_threshold: float = PAPER_PRUNE_THRESHOLD,
    rng: RngLike = 0,
    workers: Optional[int] = None,
    checkpoint: Optional[str] = None,
    faults=None,
    case_timeout: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Run the Figure 5 sweep; one row per (epsilon, variant, shape).

    Each variant is one :class:`~repro.experiments.common.SweepCase` whose
    ``(epsilon, repetition)`` releases build as a batch — the data-dependent
    variants stack all releases' private medians into one ragged-batch call
    per level; the cell-based variant (a fresh noisy grid per release) keeps
    its sequential builds and shares only the evaluation machinery.
    ``workers`` fans the variant cases across a process pool with identical
    rows for any worker count.
    """
    gen = ensure_rng(rng)
    pts = make_dataset(scale, rng=gen) if points is None else domain.validate_points(points)
    workloads = make_workloads(pts, shapes, scale, domain=domain, rng=gen)
    eps_list = tuple(float(e) for e in epsilons)

    def case(variant: str) -> SweepCase:
        keys = tuple(
            {"epsilon": e, "variant": variant}
            for e in eps_list
            for _ in range(scale.repetitions)
        )
        build = KDTreeSweepBuild(points=pts, domain=domain, height=scale.kd_height,
                                 epsilons=eps_list, repetitions=scale.repetitions,
                                 variant=variant, prune_threshold=prune_threshold)
        return SweepCase(label=variant, keys=keys, build=build)

    return run_sweep([case(v) for v in variants], workloads, rng=gen, workers=workers,
                     checkpoint=checkpoint, faults=faults, case_timeout=case_timeout)
