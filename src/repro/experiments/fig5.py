"""Figure 5: query accuracy of the kd-tree variants.

For ``eps in {0.1, 0.5, 1.0}`` and query shapes ``(1,1), (10,10), (15,0.2)``
the figure compares six kd-trees, all of height 8 with fanout 4 and pruning
threshold ``m = 32``:

* ``kd-pure``      — exact medians, exact counts (no privacy; error floor of
  the uniformity assumption);
* ``kd-true``      — exact medians, noisy counts (cost of count noise alone);
* ``kd-standard``  — EM medians;
* ``kd-hybrid``    — EM medians for the top half, quadtree below;
* ``kd-cell``      — the cell-based structure of [26];
* ``kd-noisymean`` — the noisy-mean structure of [12].

The shape to reproduce: kd-pure and kd-true stay below ~1 % error (count
noise is cheap); the private-median variants are noticeably worse, with
kd-noisymean the weakest, kd-cell competitive only on small square queries,
and kd-hybrid the most reliably accurate private variant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.kdtree import KDTREE_VARIANTS, build_private_kdtree
from ..geometry.domain import TIGER_DOMAIN, Domain
from ..privacy.rng import RngLike, ensure_rng
from ..queries.workload import KD_QUERY_SHAPES, QueryShape
from .common import ExperimentScale, evaluate_psd, make_dataset, make_workloads

__all__ = ["run_fig5", "PAPER_EPSILONS", "PAPER_PRUNE_THRESHOLD"]

#: The privacy budgets of Figure 5(a)-(c).
PAPER_EPSILONS = (0.1, 0.5, 1.0)

#: The pruning threshold used throughout the kd-tree experiments.
PAPER_PRUNE_THRESHOLD = 32.0


def run_fig5(
    scale: ExperimentScale = ExperimentScale(),
    epsilons: Sequence[float] = PAPER_EPSILONS,
    shapes: Sequence[QueryShape] = KD_QUERY_SHAPES,
    variants: Sequence[str] = tuple(KDTREE_VARIANTS),
    domain: Domain = TIGER_DOMAIN,
    points: Optional[np.ndarray] = None,
    prune_threshold: float = PAPER_PRUNE_THRESHOLD,
    rng: RngLike = 0,
) -> List[Dict[str, object]]:
    """Run the Figure 5 experiment; one row per (epsilon, variant, shape)."""
    gen = ensure_rng(rng)
    pts = make_dataset(scale, rng=gen) if points is None else domain.validate_points(points)
    workloads = make_workloads(pts, shapes, scale, domain=domain, rng=gen)

    rows: List[Dict[str, object]] = []
    for epsilon in epsilons:
        for variant in variants:
            errors_accum: Dict[str, List[float]] = {label: [] for label in workloads}
            for _ in range(scale.repetitions):
                psd = build_private_kdtree(
                    pts,
                    domain,
                    height=scale.kd_height,
                    epsilon=epsilon,
                    variant=variant,
                    prune_threshold=prune_threshold,
                    rng=gen,
                )
                errors = evaluate_psd(psd, workloads)
                for label, err in errors.items():
                    errors_accum[label].append(err)
            for label, errs in errors_accum.items():
                rows.append(
                    {
                        "epsilon": float(epsilon),
                        "variant": variant,
                        "shape": label,
                        "median_rel_error_pct": 100.0 * float(np.mean(errs)),
                    }
                )
    return rows
