"""Ablation experiments for the parameter settings reported in prose (Section 8.2).

The paper summarises three parameter studies without dedicated figures:

* **Median vs count budget** — "in most cases the best results were seen when
  budget was biased towards the node counts, allocated roughly as
  ``eps_count = 0.7 eps`` and ``eps_median = 0.3 eps``";
* **Hybrid switch level** — "switching about half-way down the tree (height 3
  or 4) gives the best result over this data set";
* **Geometric ratio** — Lemma 3 proves ``2^{1/3}`` optimal under the
  worst-case bound; the ablation confirms a grid search lands near it.

Each runner sweeps the corresponding knob and returns rows suitable for the
benchmark harness.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.budget_analysis import best_geometric_ratio
from ..core.kdtree import build_private_kdtree
from ..geometry.domain import TIGER_DOMAIN, Domain
from ..privacy.rng import RngLike, ensure_rng
from ..queries.workload import KD_QUERY_SHAPES, QueryShape
from .common import ExperimentScale, evaluate_psd, make_dataset, make_workloads
from .fig5 import PAPER_PRUNE_THRESHOLD

__all__ = ["run_budget_split_ablation", "run_switch_level_ablation", "run_geometric_ratio_ablation"]


def run_budget_split_ablation(
    scale: ExperimentScale = ExperimentScale(),
    count_fractions: Sequence[float] = (0.3, 0.5, 0.7, 0.9),
    epsilon: float = 0.5,
    shapes: Sequence[QueryShape] = KD_QUERY_SHAPES,
    domain: Domain = TIGER_DOMAIN,
    points: Optional[np.ndarray] = None,
    rng: RngLike = 0,
) -> List[Dict[str, object]]:
    """Sweep the count/median budget split of the standard kd-tree."""
    gen = ensure_rng(rng)
    pts = make_dataset(scale, rng=gen) if points is None else domain.validate_points(points)
    workloads = make_workloads(pts, shapes, scale, domain=domain, rng=gen)

    rows: List[Dict[str, object]] = []
    for fraction in count_fractions:
        psd = build_private_kdtree(
            pts, domain, height=scale.kd_height, epsilon=epsilon, variant="kd-standard",
            count_fraction=float(fraction), prune_threshold=PAPER_PRUNE_THRESHOLD, rng=gen,
        )
        errors = evaluate_psd(psd, workloads)
        for label, err in errors.items():
            rows.append(
                {
                    "count_fraction": float(fraction),
                    "shape": label,
                    "median_rel_error_pct": 100.0 * float(err),
                }
            )
    return rows


def run_switch_level_ablation(
    scale: ExperimentScale = ExperimentScale(),
    switch_levels: Optional[Sequence[int]] = None,
    epsilon: float = 0.5,
    shapes: Sequence[QueryShape] = KD_QUERY_SHAPES,
    domain: Domain = TIGER_DOMAIN,
    points: Optional[np.ndarray] = None,
    rng: RngLike = 0,
) -> List[Dict[str, object]]:
    """Sweep the hybrid tree's switch level ``l`` from fully-quad to fully-kd."""
    gen = ensure_rng(rng)
    pts = make_dataset(scale, rng=gen) if points is None else domain.validate_points(points)
    workloads = make_workloads(pts, shapes, scale, domain=domain, rng=gen)
    levels = list(switch_levels) if switch_levels is not None else list(range(0, scale.kd_height + 1))

    rows: List[Dict[str, object]] = []
    for level in levels:
        psd = build_private_kdtree(
            pts, domain, height=scale.kd_height, epsilon=epsilon, variant="kd-hybrid",
            switch_level=int(level), prune_threshold=PAPER_PRUNE_THRESHOLD, rng=gen,
        )
        errors = evaluate_psd(psd, workloads)
        for label, err in errors.items():
            rows.append(
                {
                    "switch_level": int(level),
                    "shape": label,
                    "median_rel_error_pct": 100.0 * float(err),
                }
            )
    return rows


def run_geometric_ratio_ablation(
    heights: Sequence[int] = (6, 8, 10),
    epsilon: float = 1.0,
) -> List[Dict[str, object]]:
    """Grid-search the geometric budget ratio and compare with Lemma 3's optimum."""
    rows: List[Dict[str, object]] = []
    for height in heights:
        result = best_geometric_ratio(int(height), epsilon)
        rows.append(
            {
                "height": int(height),
                "best_ratio": result["ratio"],
                "lemma3_ratio": result["lemma3_ratio"],
                "worst_case_error": result["error"],
            }
        )
    return rows
