"""Private record matching via PSD blocking (Section 8.3, after [12]).

Two parties hold spatial datasets and want to find matching records (points
that are close to each other) without revealing their data.  A full secure
multiparty computation (SMC) over all ``|A| x |B|`` candidate pairs is
prohibitively expensive, so [12] first releases a *differentially private*
index of one party's data and uses it to discard regions that cannot contain
matches; only the surviving candidate pairs go to SMC.

The quality metric is the **reduction ratio**:

    ``RR = 1 - (candidate pairs after blocking) / (all pairs)``,

so larger is better (the paper notes that improving RR from 0.93 to 0.95 is a
28 % cut in SMC work).  In this application the entire count budget goes to
the leaves and queries are answered over the leaf grid, so the hierarchical
post-processing does not apply — exactly the configuration of Figure 7(b).

This module reproduces the blocking step.  The SMC phase itself is out of
scope (its cost is what RR measures), so matching quality after blocking is
reported simply as the fraction of true matching pairs whose blocks survive
(the *pairs completeness*), letting users check that the blocking is not
discarding real matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.builder import build_psd
from ..core.splits import KDSplit, QuadSplit
from ..core.tree import PrivateSpatialDecomposition
from ..geometry.domain import Domain
from ..geometry.rect import Rect
from ..privacy.rng import RngLike, ensure_rng

__all__ = [
    "BlockingResult",
    "blocking_from_psd",
    "build_blocking_tree",
    "record_matching_experiment",
]


@dataclass(frozen=True)
class BlockingResult:
    """Outcome of the private blocking step.

    Attributes
    ----------
    reduction_ratio:
        ``1 - candidate_pairs / total_pairs`` — the paper's metric.
    candidate_pairs:
        Number of (a, b) pairs that survive blocking and would be handed to SMC.
    total_pairs:
        ``|A| * |B|``.
    pairs_completeness:
        Fraction of truly matching pairs retained by the blocking (quality
        check; not plotted in the paper but reported by our harness).
    surviving_leaves:
        Number of leaf regions whose noisy count exceeded the threshold.
    """

    reduction_ratio: float
    candidate_pairs: int
    total_pairs: int
    pairs_completeness: float
    surviving_leaves: int


def build_blocking_tree(
    points: np.ndarray,
    domain: Domain,
    height: int,
    epsilon: float,
    method: str = "kd-standard",
    rng: RngLike = None,
) -> PrivateSpatialDecomposition:
    """Build the private index used for blocking.

    ``method`` is one of the three configurations of Figure 7(b):
    ``"quad-baseline"`` (data-independent quadtree), ``"kd-noisymean"`` (the
    original approach of [12]) or ``"kd-standard"`` (the paper's EM-median
    kd-tree).  In this application all count budget goes to the leaves and no
    post-processing is applied.
    """
    gen = ensure_rng(rng)
    key = method.lower()
    if key in ("quad", "quad-baseline", "quadtree"):
        return build_psd(
            points,
            domain,
            height,
            QuadSplit(),
            epsilon=epsilon,
            count_budget="leaf-only",
            rng=gen,
            name="quad-baseline",
            postprocess=False,
        )
    if key in ("kd-noisymean", "noisymean"):
        split = KDSplit(median_method="noisymean")
    elif key in ("kd-standard", "kd", "em"):
        split = KDSplit(median_method="em")
    else:
        raise KeyError(f"unknown blocking method {method!r}")
    return build_psd(
        points,
        domain,
        height,
        split,
        epsilon=epsilon,
        count_budget="leaf-only",
        rng=gen,
        name=key,
        postprocess=False,
    )


def blocking_from_psd(
    psd: PrivateSpatialDecomposition,
    holders_points: np.ndarray,
    seekers_points: np.ndarray,
    matching_distance: float,
    count_threshold: float = 0.0,
) -> BlockingResult:
    """Evaluate the blocking induced by a released PSD.

    ``holders_points`` is the dataset the PSD was built on (party A) and
    ``seekers_points`` the other party's records (party B).  A leaf survives
    if its released count exceeds ``count_threshold``; each of B's records is
    then a candidate against the records A contributes for that leaf.  As in
    [12], A cannot reveal how many records truly fall in a block — it pads the
    block with dummy records up to the *released noisy count* — so the SMC
    cost of a surviving leaf is ``ceil(noisy count) x (B records within
    matching distance of the leaf)``.  This padding is exactly why a
    fine-grained data-independent grid with small per-leaf budgets performs
    poorly here: noise alone makes thousands of empty cells survive, and every
    one of them ships dummy records into the SMC.
    """
    holders = np.asarray(holders_points, dtype=float)
    seekers = np.asarray(seekers_points, dtype=float)
    if holders.ndim != 2 or seekers.ndim != 2:
        raise ValueError("point arrays must be two-dimensional (n, d)")
    total_pairs = holders.shape[0] * seekers.shape[0]
    if total_pairs == 0:
        return BlockingResult(1.0, 0, 0, 1.0, 0)

    leaves = [leaf for leaf in psd.leaves() if np.isfinite(leaf.released_count)
              and leaf.released_count > count_threshold]

    candidate_pairs = 0
    matched_retained = 0
    matched_total = 0

    # Per surviving leaf: A contributes records padded (or truncated) to the
    # released noisy count — its true count is never revealed — and B
    # contributes every record within matching distance of the leaf rectangle.
    for leaf in leaves:
        expanded = Rect(
            tuple(lo - matching_distance for lo in leaf.rect.lo),
            tuple(hi + matching_distance for hi in leaf.rect.hi),
        )
        a_padded = int(np.ceil(max(leaf.released_count, 0.0)))
        b_mask = expanded.contains_points(seekers, closed_hi=True)
        b_in = int(np.count_nonzero(b_mask))
        candidate_pairs += a_padded * b_in

    # Pairs completeness: fraction of true matches whose A-record sits in a
    # surviving leaf (B's side never filters out its own record).
    if holders.shape[0] and seekers.shape[0]:
        surviving_mask = np.zeros(holders.shape[0], dtype=bool)
        for leaf in leaves:
            surviving_mask |= leaf.rect.contains_points(holders, closed_hi=True)
        # A pair (a, b) is a true match when ||a - b||_inf <= matching_distance.
        for b in seekers:
            diffs = np.max(np.abs(holders - b), axis=1)
            matches = diffs <= matching_distance
            matched_total += int(np.count_nonzero(matches))
            matched_retained += int(np.count_nonzero(matches & surviving_mask))

    completeness = 1.0 if matched_total == 0 else matched_retained / matched_total
    reduction = 1.0 - candidate_pairs / total_pairs
    return BlockingResult(
        reduction_ratio=float(reduction),
        candidate_pairs=int(candidate_pairs),
        total_pairs=int(total_pairs),
        pairs_completeness=float(completeness),
        surviving_leaves=len(leaves),
    )


def record_matching_experiment(
    holders_points: np.ndarray,
    seekers_points: np.ndarray,
    domain: Domain,
    epsilons: Sequence[float],
    height: int = 6,
    matching_distance: float = 0.01,
    methods: Sequence[str] = ("quad-baseline", "kd-noisymean", "kd-standard"),
    rng: RngLike = None,
) -> Dict[str, List[Tuple[float, BlockingResult]]]:
    """The Figure 7(b) sweep: reduction ratio vs privacy budget per method."""
    gen = ensure_rng(rng)
    results: Dict[str, List[Tuple[float, BlockingResult]]] = {m: [] for m in methods}
    for epsilon in epsilons:
        for method in methods:
            psd = build_blocking_tree(holders_points, domain, height, epsilon, method=method, rng=gen)
            outcome = blocking_from_psd(psd, holders_points, seekers_points, matching_distance)
            results[method].append((float(epsilon), outcome))
    return results
