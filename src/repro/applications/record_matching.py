"""Private record matching via PSD blocking (Section 8.3, after [12]).

Two parties hold spatial datasets and want to find matching records (points
that are close to each other) without revealing their data.  A full secure
multiparty computation (SMC) over all ``|A| x |B|`` candidate pairs is
prohibitively expensive, so [12] first releases a *differentially private*
index of one party's data and uses it to discard regions that cannot contain
matches; only the surviving candidate pairs go to SMC.

The quality metric is the **reduction ratio**:

    ``RR = 1 - (candidate pairs after blocking) / (all pairs)``,

so larger is better (the paper notes that improving RR from 0.93 to 0.95 is a
28 % cut in SMC work); see the "Matching layer" subsection of README.md's
Performance architecture section for how RR, the padding semantics and the
scoring pipeline fit together.  In this application the entire count budget
goes to the leaves and queries are answered over the leaf grid, so the
hierarchical post-processing does not apply — exactly the configuration of
Figure 7(b).

This module reproduces the blocking step.  The SMC phase itself is out of
scope (its cost is what RR measures), so matching quality after blocking is
reported simply as the fraction of true matching pairs whose blocks survive
(the *pairs completeness*), letting users check that the blocking is not
discarding real matches.

Two scorers produce identical :class:`BlockingResult` values:

* :func:`blocking_from_engine` (the default behind
  :func:`blocking_from_psd`) — surviving leaves come straight from the
  compiled flat engine's arrays, candidate counting runs over a
  :class:`~repro.engine.points.PointGrid` of the seekers, pairs completeness
  over a :class:`~repro.engine.points.CellJoinIndex` neighbor join, and the
  whole evaluation fans seeker chunks across
  :mod:`repro.parallel.matching` (``workers=N`` bitwise equal to
  ``workers=1``).  This is the path that carries a 10^6 x 10^6 linkage.
* :func:`blocking_reference` — the seed-era per-leaf / per-seeker loop,
  kept as the executable specification for parity tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.builder import build_psd
from ..core.splits import KDSplit, QuadSplit
from ..core.tree import PrivateSpatialDecomposition
from ..engine.points import CellJoinIndex, PointGrid, matching_cell_layout
from ..geometry.domain import Domain
from ..geometry.rect import Rect
from ..obs import trace_span
from ..privacy.rng import RngLike, ensure_rng, spawn_generators

__all__ = [
    "BlockingResult",
    "MatchingOutcome",
    "blocking_from_engine",
    "blocking_from_psd",
    "blocking_reference",
    "build_blocking_tree",
    "record_matching_experiment",
]


@dataclass(frozen=True)
class BlockingResult:
    """Outcome of the private blocking step.

    Attributes
    ----------
    reduction_ratio:
        ``1 - candidate_pairs / total_pairs`` — the paper's metric.
    candidate_pairs:
        Number of (a, b) pairs that survive blocking and would be handed to SMC.
    total_pairs:
        ``|A| * |B|``.
    pairs_completeness:
        Fraction of truly matching pairs retained by the blocking (quality
        check; not plotted in the paper but reported by our harness).
    surviving_leaves:
        Number of leaf regions whose noisy count exceeded the threshold.
    """

    reduction_ratio: float
    candidate_pairs: int
    total_pairs: int
    pairs_completeness: float
    surviving_leaves: int


@dataclass(frozen=True)
class MatchingOutcome:
    """One row of :func:`record_matching_experiment`, in sweep order."""

    method: str
    epsilon: float
    result: BlockingResult


def build_blocking_tree(
    points: np.ndarray,
    domain: Domain,
    height: int,
    epsilon: float,
    method: str = "kd-standard",
    rng: RngLike = None,
) -> PrivateSpatialDecomposition:
    """Build the private index used for blocking.

    ``method`` is one of the three configurations of Figure 7(b):
    ``"quad-baseline"`` (data-independent quadtree), ``"kd-noisymean"`` (the
    original approach of [12]) or ``"kd-standard"`` (the paper's EM-median
    kd-tree).  In this application all count budget goes to the leaves and no
    post-processing is applied.
    """
    gen = ensure_rng(rng)
    key = method.lower()
    if key in ("quad", "quad-baseline", "quadtree"):
        return build_psd(
            points,
            domain,
            height,
            QuadSplit(),
            epsilon=epsilon,
            count_budget="leaf-only",
            rng=gen,
            name="quad-baseline",
            postprocess=False,
        )
    if key in ("kd-noisymean", "noisymean"):
        split = KDSplit(median_method="noisymean")
    elif key in ("kd-standard", "kd", "em"):
        split = KDSplit(median_method="em")
    else:
        raise KeyError(f"unknown blocking method {method!r}")
    return build_psd(
        points,
        domain,
        height,
        split,
        epsilon=epsilon,
        count_budget="leaf-only",
        rng=gen,
        name=key,
        postprocess=False,
    )


def _validate_parties(holders_points: np.ndarray, seekers_points: np.ndarray):
    holders = np.asarray(holders_points, dtype=float)
    seekers = np.asarray(seekers_points, dtype=float)
    if holders.ndim != 2 or seekers.ndim != 2:
        raise ValueError("point arrays must be two-dimensional (n, d)")
    return holders, seekers


def blocking_from_engine(
    engine,
    holders_points: np.ndarray,
    seekers_points: np.ndarray,
    matching_distance: float,
    count_threshold: float = 0.0,
    workers: Optional[int] = None,
    seeker_chunk: Optional[int] = None,
) -> BlockingResult:
    """Evaluate the blocking induced by a compiled released engine.

    The vectorised scorer: surviving leaves are selected straight from the
    :class:`~repro.engine.flat.FlatPSD` leaf arrays (a leaf survives when it
    carries a usable released count above ``count_threshold``), each of B's
    records is counted against the expanded leaf rects through a seekers
    :class:`~repro.engine.points.PointGrid`, and pairs completeness comes
    from a holder-side grid neighbor join — every step exact, so the result
    is bitwise identical to :func:`blocking_reference` on the same tree.
    ``workers`` fans seeker chunks across a process pool with the same
    guarantee (``workers=N`` equals ``workers=1``).

    As in [12], A cannot reveal how many records truly fall in a block — it
    pads the block with dummy records up to the *released noisy count* — so
    the SMC cost of a surviving leaf is ``ceil(noisy count) x (B records
    within matching distance of the leaf)``.
    """
    from ..parallel.matching import score_seeker_chunks

    holders, seekers = _validate_parties(holders_points, seekers_points)
    total_pairs = holders.shape[0] * seekers.shape[0]
    if total_pairs == 0:
        return BlockingResult(1.0, 0, 0, 1.0, 0)

    with trace_span("matching.blocking", n_holders=holders.shape[0], n_seekers=seekers.shape[0]):
        released = engine.released.astype(np.float64, copy=False)
        surviving = (
            engine.is_leaf
            & engine.has_count
            & np.isfinite(released)
            & (released > count_threshold)
        )
        leaf_ids = np.nonzero(surviving)[0]
        lo = engine.lo[leaf_ids].astype(np.float64, copy=False)
        hi = engine.hi[leaf_ids].astype(np.float64, copy=False)
        a_padded = np.ceil(np.maximum(released[leaf_ids], 0.0)).astype(np.int64)
        exp_lo = lo - matching_distance
        exp_hi = hi + matching_distance

        # Which holder records sit in a surviving (unexpanded) leaf.
        holder_grid = PointGrid.build(holders)
        surviving_mask = holder_grid.mask_in_rects(lo, hi)

        # Holder-side join index with the shared cell layout: built once in
        # the parent so every seeker chunk scores against identical state.
        origin, side, extents = matching_cell_layout(holders, seekers, matching_distance)
        join_index = CellJoinIndex.build(holders, origin, side, extents)

        b_in, matched_total, matched_retained = score_seeker_chunks(
            exp_lo,
            exp_hi,
            join_index,
            seekers,
            matching_distance,
            surviving_mask,
            workers=workers,
            chunk=seeker_chunk,
        )
        candidate_pairs = int(np.multiply(a_padded, b_in).sum())

    completeness = 1.0 if matched_total == 0 else matched_retained / matched_total
    reduction = 1.0 - candidate_pairs / total_pairs
    return BlockingResult(
        reduction_ratio=float(reduction),
        candidate_pairs=int(candidate_pairs),
        total_pairs=int(total_pairs),
        pairs_completeness=float(completeness),
        surviving_leaves=int(leaf_ids.size),
    )


def blocking_from_psd(
    psd: PrivateSpatialDecomposition,
    holders_points: np.ndarray,
    seekers_points: np.ndarray,
    matching_distance: float,
    count_threshold: float = 0.0,
    workers: Optional[int] = None,
    seeker_chunk: Optional[int] = None,
) -> BlockingResult:
    """Evaluate the blocking induced by a released PSD.

    ``holders_points`` is the dataset the PSD was built on (party A) and
    ``seekers_points`` the other party's records (party B).  Compiles (and
    memoises) the flat engine, then scores through
    :func:`blocking_from_engine`; values are identical to the seed-era
    reference loop (:func:`blocking_reference`).
    """
    return blocking_from_engine(
        psd.compile(),
        holders_points,
        seekers_points,
        matching_distance,
        count_threshold=count_threshold,
        workers=workers,
        seeker_chunk=seeker_chunk,
    )


def blocking_reference(
    psd: PrivateSpatialDecomposition,
    holders_points: np.ndarray,
    seekers_points: np.ndarray,
    matching_distance: float,
    count_threshold: float = 0.0,
) -> BlockingResult:
    """The seed-era blocking evaluation, kept as the executable reference.

    Walks pointer-tree leaves and scans every seeker against every holder —
    O(leaves * |B| + |A| * |B|) with Python-loop constants, fine up to ~10^4
    records per party.  :func:`blocking_from_engine` reproduces these values
    bitwise; parity tests and :mod:`benchmarks.bench_matching_scale` hold the
    fast path to this implementation.

    A leaf survives if its released count exceeds ``count_threshold``; each
    of B's records is then a candidate against the records A contributes for
    that leaf.  A pads every surviving block with dummy records up to the
    released noisy count, which is exactly why a fine-grained
    data-independent grid with small per-leaf budgets performs poorly here:
    noise alone makes thousands of empty cells survive, and every one of
    them ships dummy records into the SMC.
    """
    holders, seekers = _validate_parties(holders_points, seekers_points)
    total_pairs = holders.shape[0] * seekers.shape[0]
    if total_pairs == 0:
        return BlockingResult(1.0, 0, 0, 1.0, 0)

    leaves = [leaf for leaf in psd.leaves() if np.isfinite(leaf.released_count)
              and leaf.released_count > count_threshold]

    candidate_pairs = 0
    matched_retained = 0
    matched_total = 0

    # Per surviving leaf: A contributes records padded (or truncated) to the
    # released noisy count — its true count is never revealed — and B
    # contributes every record within matching distance of the leaf rectangle.
    for leaf in leaves:
        expanded = Rect(
            tuple(lo - matching_distance for lo in leaf.rect.lo),
            tuple(hi + matching_distance for hi in leaf.rect.hi),
        )
        a_padded = int(np.ceil(max(leaf.released_count, 0.0)))
        b_mask = expanded.contains_points(seekers, closed_hi=True)
        b_in = int(np.count_nonzero(b_mask))
        candidate_pairs += a_padded * b_in

    # Pairs completeness: fraction of true matches whose A-record sits in a
    # surviving leaf (B's side never filters out its own record).
    if holders.shape[0] and seekers.shape[0]:
        surviving_mask = np.zeros(holders.shape[0], dtype=bool)
        for leaf in leaves:
            surviving_mask |= leaf.rect.contains_points(holders, closed_hi=True)
        # A pair (a, b) is a true match when ||a - b||_inf <= matching_distance.
        for b in seekers:
            diffs = np.max(np.abs(holders - b), axis=1)
            matches = diffs <= matching_distance
            matched_total += int(np.count_nonzero(matches))
            matched_retained += int(np.count_nonzero(matches & surviving_mask))

    completeness = 1.0 if matched_total == 0 else matched_retained / matched_total
    reduction = 1.0 - candidate_pairs / total_pairs
    return BlockingResult(
        reduction_ratio=float(reduction),
        candidate_pairs=int(candidate_pairs),
        total_pairs=int(total_pairs),
        pairs_completeness=float(completeness),
        surviving_leaves=len(leaves),
    )


def record_matching_experiment(
    holders_points: np.ndarray,
    seekers_points: np.ndarray,
    domain: Domain,
    epsilons: Sequence[float],
    height: int = 6,
    matching_distance: float = 0.01,
    methods: Sequence[str] = ("quad-baseline", "kd-noisymean", "kd-standard"),
    rng: RngLike = None,
    workers: Optional[int] = None,
    scorer: str = "fast",
) -> List[MatchingOutcome]:
    """The Figure 7(b) sweep: one :class:`MatchingOutcome` per (epsilon,
    method) pair, in sweep order (epsilons outer, methods inner).

    RNG contract: every *distinct* ``(epsilon, method)`` pair gets its own
    ``SeedSequence.spawn`` child stream, derived in sorted-pair order — so
    reordering ``methods`` or ``epsilons`` never changes any pair's released
    bits, exactly as ``run_sweep`` guarantees for its cases.  Repeating a
    pair (e.g. ``methods=("kd", "kd")``) is allowed and yields one row per
    occurrence: occurrences consume the pair's stream in order, giving
    deterministic independent repetitions rather than the silent dict
    collapse of earlier versions.

    ``scorer`` selects ``"fast"`` (:func:`blocking_from_psd`, the vectorised
    engine path honouring ``workers``) or ``"reference"``
    (:func:`blocking_reference`); both produce identical results.
    """
    if scorer not in ("fast", "reference"):
        raise ValueError(f"scorer must be 'fast' or 'reference', got {scorer!r}")
    pairs = sorted({(float(epsilon), str(method)) for epsilon in epsilons for method in methods})
    streams = dict(zip(pairs, spawn_generators(rng, len(pairs))))
    rows: List[MatchingOutcome] = []
    for epsilon in epsilons:
        for method in methods:
            gen = streams[(float(epsilon), str(method))]
            psd = build_blocking_tree(holders_points, domain, height, epsilon, method=method, rng=gen)
            if scorer == "reference":
                outcome = blocking_reference(psd, holders_points, seekers_points, matching_distance)
            else:
                outcome = blocking_from_psd(
                    psd, holders_points, seekers_points, matching_distance, workers=workers
                )
            rows.append(MatchingOutcome(str(method), float(epsilon), outcome))
    return rows
