"""Counting-Bloom-filter blocking for multi-party private record linkage.

The PSD blocking of :mod:`repro.applications.record_matching` is inherently
two-party: one side publishes a DP spatial index, the other scores against
it.  For *multi-party* linkage, Vatsalan et al.'s protocols replace the
index with a **counting Bloom filter** (CBF): every party bins its records
into a shared public reference grid, inserts the per-cell counts into its
own CBF, perturbs the counters with Laplace noise (one record touches
``n_hashes`` counters by one each, so the L1 sensitivity is ``n_hashes`` and
scale ``n_hashes / epsilon`` noise gives epsilon-DP), and publishes only the
filter.  The coordinator never sees raw points — the candidate-block
decision consumes published filters alone:

* a grid cell is a **candidate block** when *every* party's estimated count
  clears the threshold (records can only match inside the same cell when
  the cell side is at least the matching distance);
* the SMC cost bound pads each party's contribution up to the ceiling of
  its (over)estimated count, mirroring the padding semantics of
  :func:`~repro.applications.record_matching.blocking_from_psd`.

A CBF ``query`` takes the minimum over its ``n_hashes`` counter positions,
so without noise the estimate can only over-count (hash collisions add,
never subtract) — blocking never silently drops a populated cell, it only
admits some extra ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..geometry.domain import Domain
from ..privacy.rng import RngLike, ensure_rng, spawn_generators

__all__ = [
    "CBFBlockingResult",
    "CountingBloomFilter",
    "cbf_blocking",
    "cbf_candidate_cells",
    "grid_cell_keys",
    "party_filter",
]


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser — the per-key hash behind the CBF."""
    z = values.astype(np.uint64, copy=True)
    z += np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


class CountingBloomFilter:
    """A counting Bloom filter over integer keys with double hashing.

    ``n_hashes`` counter positions per key are derived as
    ``h1 + i * h2 (mod n_counters)`` from two splitmix64 streams, the
    standard Kirsch–Mitzenmacher construction.  Counters are float64 so that
    Laplace perturbation (:meth:`add_laplace_noise`) lives in the same
    array; before noise every query is an over-estimate of the inserted
    count (min over positions, collisions only add).
    """

    def __init__(self, n_counters: int = 4096, n_hashes: int = 3, seed: int = 0) -> None:
        if n_counters < 1:
            raise ValueError("n_counters must be positive")
        if n_hashes < 1:
            raise ValueError("n_hashes must be positive")
        self.counters = np.zeros(int(n_counters), dtype=np.float64)
        self.n_hashes = int(n_hashes)
        self.seed = int(seed)

    @property
    def n_counters(self) -> int:
        return int(self.counters.shape[0])

    def _positions(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.int64).astype(np.uint64)
        h1 = _splitmix64(keys ^ np.uint64(2 * self.seed + 1))
        h2 = _splitmix64(keys ^ np.uint64(2 * self.seed + 2)) | np.uint64(1)
        i = np.arange(self.n_hashes, dtype=np.uint64)
        pos = (h1[:, None] + i[None, :] * h2[:, None]) % np.uint64(self.n_counters)
        return pos.astype(np.int64)

    def add(self, keys: np.ndarray, counts: np.ndarray) -> "CountingBloomFilter":
        keys = np.asarray(keys)
        counts = np.asarray(counts, dtype=np.float64)
        if keys.shape != counts.shape or keys.ndim != 1:
            raise ValueError("keys and counts must be matching one-dimensional arrays")
        if np.any(counts < 0):
            raise ValueError("counts must be non-negative")
        if keys.size:
            np.add.at(self.counters, self._positions(keys), counts[:, None])
        return self

    def query(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys)
        if keys.size == 0:
            return np.zeros(0, dtype=np.float64)
        return self.counters[self._positions(keys)].min(axis=1)

    def add_laplace_noise(self, epsilon: float, rng: RngLike = None) -> "CountingBloomFilter":
        """Perturb every counter with Laplace(``n_hashes / epsilon``) noise.

        One record contributes +1 to ``n_hashes`` counters, so the filter's
        L1 sensitivity to one record is ``n_hashes`` and this release is
        ``epsilon``-differentially private for the party's point set.
        """
        if not epsilon > 0:
            raise ValueError("epsilon must be positive")
        gen = ensure_rng(rng)
        self.counters += gen.laplace(scale=self.n_hashes / float(epsilon),
                                     size=self.counters.shape)
        return self


def grid_cell_keys(points: np.ndarray, domain: Domain, grid_shape: Sequence[int]) -> np.ndarray:
    """Flattened reference-grid cell ids for each point (top edges closed)."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != domain.dims:
        raise ValueError("points must have shape (n, domain.dims)")
    shape = np.asarray(grid_shape, dtype=np.int64)
    if shape.shape != (domain.dims,) or np.any(shape < 1):
        raise ValueError("grid_shape needs one positive extent per dimension")
    lo = np.asarray(domain.rect.lo, dtype=np.float64)
    hi = np.asarray(domain.rect.hi, dtype=np.float64)
    width = (hi - lo) / shape
    cells = np.clip(np.floor((pts - lo) / width).astype(np.int64), 0, shape - 1)
    flat = cells[:, 0].copy()
    for k in range(1, shape.shape[0]):
        flat = flat * shape[k] + cells[:, k]
    return flat


def party_filter(
    points: np.ndarray,
    domain: Domain,
    grid_shape: Sequence[int] = (32, 32),
    epsilon: float = None,
    n_counters: int = 4096,
    n_hashes: int = 3,
    rng: RngLike = None,
    seed: int = 0,
) -> CountingBloomFilter:
    """One party's published artifact: its gridded counts in a noisy CBF.

    With ``epsilon=None`` the filter is released un-noised (useful for
    testing the hashing layer); otherwise Laplace noise makes the release
    ``epsilon``-DP.  All parties must share ``grid_shape``, ``n_counters``,
    ``n_hashes`` and ``seed`` for their filters to be comparable.
    """
    keys = grid_cell_keys(points, domain, grid_shape)
    unique_keys, counts = np.unique(keys, return_counts=True)
    cbf = CountingBloomFilter(n_counters=n_counters, n_hashes=n_hashes, seed=seed)
    cbf.add(unique_keys, counts.astype(np.float64))
    if epsilon is not None:
        cbf.add_laplace_noise(epsilon, rng)
    return cbf


def cbf_candidate_cells(
    filters: Sequence[CountingBloomFilter],
    n_cells: int,
    count_threshold: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Intersect published filters over the reference grid.

    Queries every cell key against every party's filter and keeps the cells
    where *all* estimates exceed ``count_threshold``.  Returns
    ``(candidate_cells, estimates)`` with ``estimates[p, i]`` party ``p``'s
    estimated count in candidate cell ``i``.  Only filters are consumed —
    no party's raw points appear in this decision.
    """
    if not filters:
        raise ValueError("at least one filter is required")
    keys = np.arange(int(n_cells), dtype=np.int64)
    estimates = np.stack([cbf.query(keys) for cbf in filters])
    candidate = np.all(estimates > count_threshold, axis=0)
    cells = np.nonzero(candidate)[0]
    return cells, estimates[:, cells]


@dataclass(frozen=True)
class CBFBlockingResult:
    """Outcome of multi-party CBF blocking, in the units of
    :class:`~repro.applications.record_matching.BlockingResult`."""

    reduction_ratio: float
    candidate_pairs: int
    total_pairs: int
    surviving_cells: int
    candidate_cells: np.ndarray
    estimates: np.ndarray


def cbf_blocking(
    parties_points: Sequence[np.ndarray],
    domain: Domain,
    grid_shape: Sequence[int] = (32, 32),
    epsilon: float = 0.5,
    n_counters: int = 4096,
    n_hashes: int = 3,
    count_threshold: float = 0.0,
    rng: RngLike = None,
    seed: int = 0,
) -> CBFBlockingResult:
    """Multi-party private blocking via noisy counting Bloom filters.

    Each party independently publishes a noisy CBF of its gridded counts
    (its own spawned noise stream, so party order never changes another
    party's release); the candidate blocks are the cells every filter agrees
    are populated.  The SMC cost bound pads each party's per-cell
    contribution to the ceiling of its estimate, and the reduction ratio
    compares that against the all-pairs product ``prod(|P_i|)``.
    """
    if len(parties_points) < 2:
        raise ValueError("multi-party blocking needs at least two parties")
    gens = spawn_generators(rng, len(parties_points))
    n_cells = int(np.prod(np.asarray(grid_shape, dtype=np.int64)))
    filters: List[CountingBloomFilter] = [
        party_filter(points, domain, grid_shape, epsilon=epsilon,
                     n_counters=n_counters, n_hashes=n_hashes, rng=gen, seed=seed)
        for points, gen in zip(parties_points, gens)
    ]
    cells, estimates = cbf_candidate_cells(filters, n_cells, count_threshold)
    padded = np.ceil(np.maximum(estimates, 0.0)).astype(np.int64)
    candidate_pairs = int(np.prod(padded, axis=0).sum()) if cells.size else 0
    total_pairs = 1
    for points in parties_points:
        total_pairs *= int(np.asarray(points).shape[0])
    reduction = 1.0 if total_pairs == 0 else 1.0 - candidate_pairs / total_pairs
    return CBFBlockingResult(
        reduction_ratio=float(reduction),
        candidate_pairs=candidate_pairs,
        total_pairs=int(total_pairs),
        surviving_cells=int(cells.size),
        candidate_cells=cells,
        estimates=estimates,
    )
