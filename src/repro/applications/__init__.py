"""Applications built on top of private spatial decompositions."""

from .record_matching import (
    BlockingResult,
    blocking_from_psd,
    build_blocking_tree,
    record_matching_experiment,
)

__all__ = [
    "BlockingResult",
    "blocking_from_psd",
    "build_blocking_tree",
    "record_matching_experiment",
]
