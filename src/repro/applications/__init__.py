"""Applications built on top of private spatial decompositions."""

from .cbf import (
    CBFBlockingResult,
    CountingBloomFilter,
    cbf_blocking,
    cbf_candidate_cells,
    party_filter,
)
from .record_matching import (
    BlockingResult,
    MatchingOutcome,
    blocking_from_engine,
    blocking_from_psd,
    blocking_reference,
    build_blocking_tree,
    record_matching_experiment,
)

__all__ = [
    "BlockingResult",
    "CBFBlockingResult",
    "CountingBloomFilter",
    "MatchingOutcome",
    "blocking_from_engine",
    "blocking_from_psd",
    "blocking_reference",
    "build_blocking_tree",
    "cbf_blocking",
    "cbf_candidate_cells",
    "party_filter",
    "record_matching_experiment",
]
