"""Random-number-generator plumbing.

Every randomized component in the library (noise mechanisms, private medians,
sampling, data generators, query workloads) takes an explicit
``numpy.random.Generator`` so that experiments are reproducible end to end.
``ensure_rng`` is the single normalisation point: it accepts ``None``, an
integer seed, or an existing generator.

:class:`ReplayRng` is the multi-release build's bridge between two draw
orders: a sweep pre-draws every release's uniforms **release-major** (the
order a sequential loop of builds would consume them in), then replays them
into the level-stacked builder, which asks for each level's uniforms across
all releases at once.  Because every batched mechanism consumes its uniforms
through plain ``Generator.random`` calls of statically-known sizes (the draw
-order contract of :mod:`repro.privacy.median`), replaying re-ordered slices
of the same stream is enough to keep each release bitwise identical to its
sequential counterpart.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

__all__ = ["RngLike", "ReplayRng", "ensure_rng", "spawn_generators", "spawn_rngs"]


class ReplayRng(np.random.Generator):
    """A :class:`numpy.random.Generator` that replays pre-drawn uniforms.

    Constructed with an ordered list of uniform chunks; every ``random(n)``
    call pops the next chunk, which must have exactly ``n`` entries — a
    mismatch means the caller's draw layout diverged from the pre-draw plan,
    which would silently break release parity, so it fails loudly instead.
    Only ``random`` is served from the replay buffer; every other draw method
    is overridden to raise (see the loop below the class), because a
    non-uniform draw would silently consume the dummy bit generator and
    desynchronise the replay from the sequential reference.
    """

    def __init__(self, chunks: Sequence[np.ndarray]) -> None:
        # The backing bit generator is never consulted; it only satisfies the
        # Generator constructor so ``ensure_rng`` passes a replay through.
        super().__init__(np.random.PCG64(0))
        self._chunks = [np.asarray(c, dtype=float).ravel() for c in chunks]
        self._cursor = 0

    def random(self, size=None, dtype=np.float64, out=None):  # type: ignore[override]
        if out is not None:
            raise ValueError("ReplayRng.random does not support out=")
        if self._cursor >= len(self._chunks):
            raise RuntimeError("ReplayRng exhausted: more random() calls than pre-drawn chunks")
        chunk = self._chunks[self._cursor]
        n = 1 if size is None else int(np.prod(size))
        if chunk.size != n:
            raise RuntimeError(
                f"ReplayRng draw-layout mismatch: caller asked for {n} uniforms, "
                f"pre-drawn chunk {self._cursor} holds {chunk.size}"
            )
        self._cursor += 1
        if size is None:
            return float(chunk[0])
        return chunk.reshape(size)

    def exhausted(self) -> bool:
        """Whether every pre-drawn chunk has been consumed."""
        return self._cursor == len(self._chunks)


def _make_rejecting_draw(name: str):
    def rejecting(self, *args, **kwargs):
        raise RuntimeError(
            f"ReplayRng serves only random(); {name}() would draw from the dummy "
            "bit generator and silently break release parity"
        )
    rejecting.__name__ = name
    return rejecting


# Any non-uniform draw would consume the dummy bit generator instead of the
# pre-drawn stream; block every Generator draw method except random().
for _name in dir(np.random.Generator):
    if _name.startswith("_") or _name in ("random", "bit_generator", "spawn"):
        continue
    if callable(getattr(np.random.Generator, _name, None)):
        setattr(ReplayRng, _name, _make_rejecting_draw(_name))
del _name

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Normalise ``rng`` into a :class:`numpy.random.Generator`.

    * ``None``  → a fresh, OS-seeded generator;
    * ``int``   → ``numpy.random.default_rng(seed)``;
    * ``Generator`` → returned unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, an int seed, or a numpy Generator, got {type(rng)!r}")


def spawn_generators(rng: RngLike, count: int) -> list[np.random.Generator]:
    """``count`` child generators via the parent's ``SeedSequence.spawn``.

    This is the canonical per-case stream derivation of the sweep driver:
    one spawn per child, in order, off the parent generator's seed sequence.
    Unlike :func:`spawn_rngs` it does not consume the parent's *draw* stream
    (only its spawn counter advances), and the children are exactly the
    ``SeedSequence`` spawn tree — so a result computed from child ``i`` is
    the same no matter where (or in what order) the children execute.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    base = ensure_rng(rng)
    if count == 0:
        return []
    try:
        return list(base.spawn(count))
    except AttributeError:  # numpy < 1.25: spawn straight off the seed sequence
        bitgen = base.bit_generator
        # the public BitGenerator.seed_seq accessor arrived together with
        # Generator.spawn; older releases expose only the private name
        seed_seq = getattr(bitgen, "seed_seq", None) or bitgen._seed_seq
        return [np.random.Generator(type(bitgen)(child)) for child in seed_seq.spawn(count)]


def spawn_rngs(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Used by experiment runners that fan out over repetitions so each
    repetition has its own stream regardless of execution order.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    base = ensure_rng(rng)
    seeds = base.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
