"""Random-number-generator plumbing.

Every randomized component in the library (noise mechanisms, private medians,
sampling, data generators, query workloads) takes an explicit
``numpy.random.Generator`` so that experiments are reproducible end to end.
``ensure_rng`` is the single normalisation point: it accepts ``None``, an
integer seed, or an existing generator.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["RngLike", "ensure_rng", "spawn_rngs"]

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Normalise ``rng`` into a :class:`numpy.random.Generator`.

    * ``None``  → a fresh, OS-seeded generator;
    * ``int``   → ``numpy.random.default_rng(seed)``;
    * ``Generator`` → returned unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, an int seed, or a numpy Generator, got {type(rng)!r}")


def spawn_rngs(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Used by experiment runners that fan out over repetitions so each
    repetition has its own stream regardless of execution order.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    base = ensure_rng(rng)
    seeds = base.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
