"""Private median selection (Section 6.1 of the paper).

A data-dependent PSD (kd-tree, Hilbert R-tree) splits every internal node at
the median of the points it contains along some axis.  Releasing that median
exactly would leak information, and the global sensitivity of the median is of
the order of the whole domain, so plain Laplace noise is useless.  The paper
surveys four practical alternatives, all implemented here with a common
signature ``method(values, epsilon, lo, hi, rng) -> float``:

* :func:`exponential_mechanism_median` (**EM**) — samples an output with
  probability proportional to ``exp(-eps/2 * |rank(x) - rank(median)|)``
  (Definition 5), implemented exactly with the interval decomposition the
  paper describes;
* :func:`smooth_sensitivity_median` (**SS**) — Laplace noise calibrated to the
  smooth sensitivity of the median (Definition 4); only (ε, δ)-DP;
* :func:`cell_median` (**cell**) — the heuristic of [26]: noisy counts on a
  fixed grid, median read off the noisy cumulative distribution;
* :func:`noisy_mean_median` (**NM**) — the heuristic of [12]: a noisy mean
  (noisy sum / noisy count) used as a surrogate for the median.

plus the non-private :func:`true_median` baseline ("kd-true" in Section 8.2)
and sampled variants **EMs** / **SSs** built by combining any method with
Bernoulli sampling (Theorem 7, :mod:`repro.privacy.sampling`).

All methods clamp their output to the public domain ``[lo, hi]`` — a value
outside the domain could never be a useful split and the clamp is a
post-processing step, so it costs nothing in privacy.

Batched evaluation and the draw-order contract
----------------------------------------------
Every method also has a **ragged-batch** form ``method_batch(sorted_values,
offsets, epsilons, los, his, rng) -> medians`` that evaluates one private
median per segment — segment ``i`` holds ``sorted_values[offsets[i]:
offsets[i+1]]`` with domain ``[los[i], his[i]]`` and budget ``epsilons[i]``.
The level-vectorized tree builders call these once per level instead of once
per node, which removes the per-node Python cost from the data-dependent
build path.

The batch is **bitwise identical** to the sequential per-node calls (the same
contract the Laplace count batching in :mod:`repro.core.flatbuild` meets),
which requires a fixed draw layout:

* every method consumes a *fixed* number of ``Generator.random()`` uniforms
  per call — ``em`` 2, ``ss`` 1, ``noisymean`` 2, ``cell`` ``n_cells``,
  ``true`` 0 — independent of the data it sees (unused draws are simply
  discarded, which is distribution- and privacy-neutral);
* a Bernoulli-sampled variant additionally consumes one uniform per candidate
  value, *after* sorting, so the sampled subset does not depend on the
  caller's point order;
* Laplace noise inside the methods is derived from those uniforms via
  :func:`repro.privacy.mechanisms.laplace_from_uniform` rather than drawn
  with ``Generator.laplace``, so every draw is a plain uniform;
* a batch over ``k`` segments consumes its uniforms **node-major in segment
  (BFS) order**: segment 0's draws first, then segment 1's, and so on —
  exactly the stream a loop of scalar calls would consume.

The scalar methods are thin wrappers over the batch kernels (a batch of one),
so the two can never drift apart; the property suite additionally asserts the
bitwise equality and the final generator state match on ragged inputs.

Each scalar method carries its draw layout as attributes: ``method.batch``
(the batch form), ``method.draws_per_call`` and ``method.draws_per_value``.
Batched mechanisms written by third parties must honor the same node-major
draw order to stay interchangeable with the per-node reference builder.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from .mechanisms import laplace_from_uniform
from .rng import RngLike, ensure_rng

__all__ = [
    "MedianMethod",
    "true_median",
    "true_median_batch",
    "exponential_mechanism_median",
    "exponential_mechanism_median_batch",
    "smooth_sensitivity_median",
    "smooth_sensitivity_median_batch",
    "smooth_sensitivity_of_median",
    "cell_median",
    "cell_median_batch",
    "median_from_noisy_cells",
    "noisy_mean_median",
    "noisy_mean_median_batch",
    "make_sampled_median",
    "MEDIAN_METHODS",
    "resolve_median_method",
    "resolve_median_batch",
]

#: Signature shared by every private-median method.
MedianMethod = Callable[..., float]


def _prepare(values: np.ndarray, lo: float, hi: float) -> np.ndarray:
    """Validate the inputs common to all methods and return sorted values."""
    lo, hi = float(lo), float(hi)
    if hi < lo:
        raise ValueError(f"invalid domain [{lo}, {hi}]")
    vals = np.asarray(values, dtype=float).ravel()
    if vals.size and (vals.min() < lo - 1e-9 or vals.max() > hi + 1e-9):
        raise ValueError("values fall outside the declared domain [lo, hi]")
    return np.sort(np.clip(vals, lo, hi))


def _clamp_array(values: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    return np.minimum(np.maximum(values, lo), hi)


# ----------------------------------------------------------------------
# Ragged-segment plumbing
# ----------------------------------------------------------------------
def _per_segment(x, k: int, name: str) -> np.ndarray:
    """Broadcast a scalar to ``(k,)`` or validate an existing ``(k,)`` array."""
    arr = np.asarray(x, dtype=float)
    if arr.ndim == 0:
        return np.full(k, float(arr))
    arr = arr.ravel()
    if arr.shape != (k,):
        raise ValueError(f"{name} must be a scalar or have one entry per segment ({k})")
    return arr


def _prepare_batch(sorted_values, offsets, los, his, validate: bool = True):
    """Validate a ragged batch; returns clipped values plus segment geometry.

    Values must be sorted within each segment (the clip preserves that) and
    lie inside their segment's domain up to the same 1e-9 slack the scalar
    path allows.  ``validate=False`` skips the domain / sortedness sweeps and
    the (then identity) clip — for callers like the level-vectorized builders
    whose routing already guarantees both.
    """
    vals = np.asarray(sorted_values, dtype=float).ravel()
    offs = np.asarray(offsets, dtype=np.int64).ravel()
    if offs.size < 2 or offs[0] != 0 or offs[-1] != vals.size or np.any(np.diff(offs) < 0):
        raise ValueError("offsets must be non-decreasing, start at 0 and end at len(values)")
    k = offs.size - 1
    lo = _per_segment(los, k, "los")
    hi = _per_segment(his, k, "his")
    if np.any(hi < lo):
        raise ValueError("invalid domain: hi < lo in some segment")
    counts = np.diff(offs)
    if vals.size:
        seg = np.repeat(np.arange(k, dtype=np.int64), counts)
        if validate:
            lo_v, hi_v = lo[seg], hi[seg]
            if np.any(vals < lo_v - 1e-9) or np.any(vals > hi_v + 1e-9):
                raise ValueError("values fall outside the declared domain [lo, hi]")
            if vals.size > 1:
                diffs = np.diff(vals)
                within = np.ones(vals.size - 1, dtype=bool)
                boundary = offs[1:-1]  # pairs straddling a segment boundary
                boundary = boundary[(boundary > 0) & (boundary < vals.size)]
                within[boundary - 1] = False
                if np.any(diffs[within] < 0):
                    raise ValueError("values must be sorted within each segment")
            vals = np.clip(vals, lo_v, hi_v)
    else:
        seg = np.empty(0, dtype=np.int64)
    return vals, offs, counts, seg, lo, hi, k


def _check_epsilons(epsilons, k: int) -> np.ndarray:
    eps = _per_segment(epsilons, k, "epsilons")
    if np.any(eps <= 0):
        raise ValueError("epsilon must be positive")
    return eps


def _draw_uniforms(uniforms, rng: RngLike, k: int, per_call: int) -> np.ndarray:
    """The ``(k, per_call)`` uniform block of a batch, drawn node-major.

    Pre-drawn uniforms (from a caller that manages a whole level's stream, see
    :meth:`repro.core.splits.KDSplit.split_level`) are validated and reshaped;
    otherwise one ``Generator.random`` call produces the identical stream a
    loop of scalar calls would consume.
    """
    if uniforms is None:
        return ensure_rng(rng).random(k * per_call).reshape(k, per_call)
    u = np.asarray(uniforms, dtype=float).reshape(k, per_call)
    return u


def _segment_reduce(ufunc, flat: np.ndarray, offsets: np.ndarray, empty):
    """Per-segment ``ufunc.reduce``; ``empty`` fills zero-length segments.

    Using ``reduceat`` on the nonempty starts keeps the accumulation order of
    each segment independent of how the surrounding batch is segmented, which
    is what makes a batch of one bitwise-equal to a segment of many.
    """
    counts = np.diff(offsets)
    out = np.full(counts.shape[0], empty, dtype=flat.dtype)
    nz = counts > 0
    if flat.size and np.any(nz):
        out[nz] = ufunc.reduceat(flat, offsets[:-1][nz])
    return out


def _segment_cumsum(flat: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment cumulative sum, bitwise equal to ``np.cumsum`` per segment.

    Segments are scattered into zero-padded rows (bucketed by power-of-two
    length so the padding stays linear in the input) and accumulated with one
    row-wise ``cumsum``, whose left-to-right order matches the 1-D form
    exactly.
    """
    flat = np.asarray(flat, dtype=float)
    out = np.empty(flat.size)
    counts = np.diff(offsets)
    starts = offsets[:-1]
    nz = np.flatnonzero(counts)
    if nz.size == 0:
        return out
    sizes = counts[nz]
    classes = np.frexp(sizes.astype(float))[1]  # ceil(log2) size buckets
    for c in np.flatnonzero(np.bincount(classes)):
        pick = nz[classes == c]
        width = int(counts[pick].max())
        local = np.arange(width)
        idx = starts[pick][:, None] + local[None, :]
        valid = local[None, :] < counts[pick][:, None]
        rows = np.where(valid, flat[np.minimum(idx, flat.size - 1)], 0.0)
        cs = np.cumsum(rows, axis=1)
        out[idx[valid]] = cs[valid]
    return out


def _safe_values(vals: np.ndarray):
    """A gather-safe view: empty input becomes a one-zero array (always masked)."""
    return vals if vals.size else np.zeros(1), max(vals.size - 1, 0)


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
def true_median_batch(sorted_values, offsets, epsilons=0.0, los=0.0, his=1.0,
                      rng: RngLike = None, *, validate: bool = True) -> np.ndarray:
    """Exact (non-private) medians of every segment; consumes no randomness."""
    vals, offs, counts, seg, lo, hi, k = _prepare_batch(sorted_values, offsets, los, his,
                                                        validate=validate)
    safe, guard = _safe_values(vals)
    lo_idx = np.minimum(offs[:-1] + np.maximum(counts - 1, 0) // 2, guard)
    hi_idx = np.minimum(offs[:-1] + counts // 2, guard)
    med = (safe[lo_idx] + safe[hi_idx]) / 2.0  # odd n: (x + x) / 2 == x exactly
    res = np.where(counts > 0, med, (lo + hi) / 2.0)
    return _clamp_array(res, lo, hi)


def true_median(values: np.ndarray, epsilon: float = 0.0, lo: float = 0.0, hi: float = 1.0,
                rng: RngLike = None) -> float:
    """The exact (non-private) median; the paper's ``kd-true`` baseline.

    ``epsilon`` and ``rng`` are accepted (and ignored) so the function is a
    drop-in replacement for the private methods in the tree builders.
    """
    vals = _prepare(values, lo, hi)
    return float(true_median_batch(vals, np.array([0, vals.size]), epsilon, lo, hi)[0])


# ----------------------------------------------------------------------
# Exponential mechanism (Definition 5)
# ----------------------------------------------------------------------
def exponential_mechanism_median_batch(
    sorted_values, offsets, epsilons, los, his,
    rng: RngLike = None, *, uniforms=None, validate: bool = True,
) -> np.ndarray:
    """Batched EM medians: one interval decomposition sweep over all segments.

    Consumes exactly two uniforms per segment, node-major: the first selects
    the inter-value interval (by inverting the normalized weight CDF, the
    same inversion ``Generator.choice`` performs), the second places the
    output uniformly inside it.
    """
    vals, offs, counts, seg, lo, hi, k = _prepare_batch(sorted_values, offsets, los, his,
                                                        validate=validate)
    eps = _check_epsilons(epsilons, k)
    u = _draw_uniforms(uniforms, rng, k, 2)
    safe, guard = _safe_values(vals)

    # Segment i contributes n_i + 1 intervals I_0..I_n delimited by
    # lo, x_1, ..., x_n, hi; a value in I_t has rank t.
    iv_counts = counts + 1
    iv_off = offs + np.arange(k + 1, dtype=np.int64)
    total = int(iv_off[-1])
    iv_seg = np.repeat(np.arange(k, dtype=np.int64), iv_counts)
    t = np.arange(total, dtype=np.int64) - iv_off[:-1][iv_seg]

    left = np.where(t == 0, lo[iv_seg],
                    safe[np.minimum(np.maximum(offs[:-1][iv_seg] + t - 1, 0), guard)])
    right = np.where(t == counts[iv_seg], hi[iv_seg],
                     safe[np.minimum(offs[:-1][iv_seg] + t, guard)])
    lengths = right - left

    log_weights = -(eps[iv_seg] / 2.0) * np.abs(t - counts[iv_seg] / 2.0)
    positive = lengths > 0
    log_w = np.where(positive, log_weights + np.log(np.where(positive, lengths, 1.0)), -np.inf)
    seg_max = _segment_reduce(np.maximum, log_w, iv_off, -np.inf)
    degenerate = ~np.isfinite(seg_max)  # zero-width domain: only one possible output
    safe_max = np.where(degenerate, 0.0, seg_max)
    shifted = np.where(degenerate[iv_seg], 0.0, log_w - safe_max[iv_seg])
    weights = np.exp(shifted)

    cdf = _segment_cumsum(weights, iv_off)
    cdf_last = cdf[iv_off[1:] - 1]
    norm = cdf / cdf_last[iv_seg]
    below = (norm <= u[:, 0][iv_seg]).astype(np.int64)
    chosen = np.minimum(_segment_reduce(np.add, below, iv_off, 0), counts)

    pos = iv_off[:-1] + chosen
    l_sel, r_sel = left[pos], right[pos]
    width = r_sel - l_sel
    res = np.where(width > 0, l_sel + width * u[:, 1], l_sel)
    mid = np.where(counts > 0, safe[np.minimum(offs[:-1] + counts // 2, guard)], lo)
    res = np.where(degenerate, mid, res)
    return _clamp_array(res, lo, hi)


def exponential_mechanism_median(
    values: np.ndarray,
    epsilon: float,
    lo: float,
    hi: float,
    rng: RngLike = None,
) -> float:
    """Private median via the exponential mechanism.

    The output ``x`` is drawn with probability proportional to
    ``exp(-eps/2 * |rank(x) - rank(x_m)|)``.  Because all values between two
    consecutive data points share a rank, the sampler first picks the interval
    ``I_k = [x_k, x_{k+1})`` with probability proportional to
    ``|I_k| * exp(-eps/2 * |k - m|)`` and then returns a uniform value inside
    it, exactly as described after Definition 5.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    vals = _prepare(values, lo, hi)
    return float(exponential_mechanism_median_batch(
        vals, np.array([0, vals.size]), epsilon, lo, hi, rng=rng)[0])


# ----------------------------------------------------------------------
# Smooth sensitivity (Definition 4)
# ----------------------------------------------------------------------
def _smooth_sensitivity_kernel(vals, offs, counts, eps, lo, hi, delta, max_k) -> np.ndarray:
    """ξ-smooth sensitivities of every segment's median, one shared k-scan.

    The loop runs over the scan variable ``k`` only — all segments still in
    play are processed per iteration with one window gather — and each
    segment drops out exactly when the sequential early-termination bound
    (``exp(-k ξ) * |domain|`` can no longer beat its best) fires, so the
    result matches the per-node scan bit for bit.
    """
    n_segs = counts.shape[0]
    domain = hi - lo
    xi = eps / (4.0 * (1.0 + np.log(2.0 / delta)))
    cap = counts if max_k is None else np.minimum(int(max_k), counts)
    best = np.zeros(n_segs)
    active = counts > 0
    safe, guard = _safe_values(vals)
    starts = offs[:-1]

    step = 0
    while True:
        decay = np.exp(-step * xi)
        active = active & (step <= cap) & (decay * domain > best)
        if not np.any(active):
            break
        idx = np.flatnonzero(active)
        n_a = counts[idx][:, None]
        off_a = starts[idx][:, None]
        med = ((counts[idx] - 1) // 2)[:, None]
        tgrid = np.arange(step + 2, dtype=np.int64)[None, :]
        uidx = med + tgrid
        lidx = uidx - (step + 1)
        upper = np.where(uidx >= n_a, hi[idx][:, None],
                         safe[np.minimum(off_a + np.minimum(uidx, n_a - 1), guard)])
        lower = np.where(lidx < 0, lo[idx][:, None],
                         safe[np.minimum(off_a + np.maximum(lidx, 0), guard)])
        local = np.max(upper - lower, axis=1)
        best[idx] = np.maximum(best[idx], decay[idx] * local)
        step += 1

    if max_k is not None:
        # Conservative tail bound keeps a capped scan a valid smooth upper bound.
        short = (cap < counts) & (counts > 0)
        best = np.where(short, np.maximum(best, np.exp(-(cap + 1) * xi) * domain), best)
    return np.where(counts > 0, best, domain)


def smooth_sensitivity_of_median(
    values: np.ndarray,
    epsilon: float,
    delta: float,
    lo: float,
    hi: float,
    max_k: Optional[int] = None,
) -> float:
    """The ξ-smooth sensitivity of the median (Definition 4).

    ``sigma_s = max_k exp(-k * xi) * max_t (x_{m+t} - x_{m+t-k-1})`` with
    ``xi = eps / (4 * (1 + ln(2/delta)))`` and values outside ``[1, n]``
    padded with ``lo`` / ``hi``.

    The scan over ``k`` terminates early once ``exp(-k*xi) * (hi - lo)`` can
    no longer beat the best value found (at that point every remaining term is
    dominated), so the result is exact.  ``max_k`` optionally caps the scan;
    when the cap is hit the tail is replaced by its upper bound
    ``exp(-max_k*xi) * (hi - lo)``, which keeps the output a valid ξ-smooth
    upper bound (privacy is preserved, utility can only degrade).
    """
    if epsilon <= 0 or not 0 < delta < 1:
        raise ValueError("need epsilon > 0 and 0 < delta < 1")
    vals = _prepare(values, lo, hi)
    sigma = _smooth_sensitivity_kernel(
        vals, np.array([0, vals.size], dtype=np.int64), np.array([vals.size], dtype=np.int64),
        np.full(1, float(epsilon)), np.full(1, float(lo)), np.full(1, float(hi)), delta, max_k)
    return float(sigma[0])


def smooth_sensitivity_median_batch(
    sorted_values, offsets, epsilons, los, his,
    rng: RngLike = None, *, uniforms=None, validate: bool = True,
    delta: float = 1e-4, max_k: Optional[int] = None,
) -> np.ndarray:
    """Batched SS medians; consumes exactly one uniform per segment.

    Empty segments return the (clamped) domain midpoint; their uniform is
    discarded so the draw layout stays data independent.
    """
    vals, offs, counts, seg, lo, hi, k = _prepare_batch(sorted_values, offsets, los, his,
                                                        validate=validate)
    eps = _check_epsilons(epsilons, k)
    if not 0 < delta < 1:
        raise ValueError("need 0 < delta < 1")
    u = _draw_uniforms(uniforms, rng, k, 1)
    sigma = _smooth_sensitivity_kernel(vals, offs, counts, eps, lo, hi, delta, max_k)
    safe, guard = _safe_values(vals)
    med = safe[np.minimum(offs[:-1] + np.maximum(counts - 1, 0) // 2, guard)]
    noise = laplace_from_uniform(u[:, 0])
    res = np.where(counts > 0, med + (2.0 * sigma / eps) * noise, (lo + hi) / 2.0)
    return _clamp_array(res, lo, hi)


def smooth_sensitivity_median(
    values: np.ndarray,
    epsilon: float,
    lo: float,
    hi: float,
    rng: RngLike = None,
    delta: float = 1e-4,
    max_k: Optional[int] = None,
) -> float:
    """Private median via smooth sensitivity: ``x_m + (2*sigma_s/eps) * Lap(1)``.

    Satisfies (ε, δ)-differential privacy.  ``delta`` defaults to the paper's
    experimental setting of ``1e-4``.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    vals = _prepare(values, lo, hi)
    return float(smooth_sensitivity_median_batch(
        vals, np.array([0, vals.size]), epsilon, lo, hi, rng=rng,
        delta=delta, max_k=max_k)[0])


# ----------------------------------------------------------------------
# Cell-based heuristic [26]
# ----------------------------------------------------------------------
def median_from_noisy_cells(noisy_counts: np.ndarray, edges: np.ndarray) -> float:
    """Read a median off noisy per-cell counts.

    ``edges`` has one more entry than ``noisy_counts``.  Negative noisy counts
    are floored at zero (a standard post-processing step), the half-mass cell
    is located on the cumulative distribution and the position is linearly
    interpolated inside it under a within-cell uniformity assumption.
    """
    counts = np.clip(np.asarray(noisy_counts, dtype=float), 0.0, None)
    edges = np.asarray(edges, dtype=float)
    if edges.size != counts.size + 1:
        raise ValueError("edges must have exactly one more entry than counts")
    total = counts.sum()
    if total <= 0:
        return float((edges[0] + edges[-1]) / 2.0)
    cum = np.cumsum(counts)
    half = total / 2.0
    idx = int(np.searchsorted(cum, half))
    idx = min(idx, counts.size - 1)
    prev = cum[idx - 1] if idx > 0 else 0.0
    in_cell = counts[idx]
    frac = 0.5 if in_cell <= 0 else (half - prev) / in_cell
    frac = min(max(frac, 0.0), 1.0)
    return float(edges[idx] + frac * (edges[idx + 1] - edges[idx]))


def cell_median_batch(
    sorted_values, offsets, epsilons, los, his,
    rng: RngLike = None, *, uniforms=None, validate: bool = True, n_cells: int = 1024,
) -> np.ndarray:
    """Batched cell-heuristic medians; ``n_cells`` uniforms per segment.

    Every segment lays an ``n_cells`` grid over its own domain, one
    ``bincount`` histograms all segments at once and the noisy-CDF inversion
    runs as rectangular row operations.  Zero-width domains return ``lo``
    (their noise draws are discarded, keeping the layout data independent).
    """
    if n_cells < 1:
        raise ValueError("n_cells must be at least 1")
    vals, offs, counts, seg, lo, hi, k = _prepare_batch(sorted_values, offsets, los, his,
                                                        validate=validate)
    eps = _check_epsilons(epsilons, k)
    u = _draw_uniforms(uniforms, rng, k, n_cells)

    step = (hi - lo) / n_cells
    edges = lo[:, None] + np.arange(n_cells + 1) * step[:, None]
    edges[:, -1] = hi
    degenerate = hi <= lo

    if vals.size:
        safe_step = np.where(step[seg] > 0, step[seg], 1.0)
        b = np.floor((vals - lo[seg]) / safe_step).astype(np.int64)
        b = np.clip(b, 0, n_cells - 1)
        # The formula can be one ulp off the actual edge comparison; nudge
        # until edges[b] <= v < edges[b+1] (last cell closed), as a
        # searchsorted against the edge values would decide.
        for _ in range(2):
            b = np.where((b > 0) & (vals < edges[seg, b]), b - 1, b)
        for _ in range(2):
            b = np.where((b < n_cells - 1) & (vals >= edges[seg, b + 1]), b + 1, b)
        hist = np.bincount(seg * n_cells + b, minlength=k * n_cells).astype(float)
        hist = hist.reshape(k, n_cells)
    else:
        hist = np.zeros((k, n_cells))

    noisy = hist + (1.0 / eps)[:, None] * laplace_from_uniform(u)
    clipped = np.clip(noisy, 0.0, None)
    cum = np.cumsum(clipped, axis=1)
    total = cum[:, -1]
    half = total / 2.0
    rows = np.arange(k)
    idx = np.minimum(np.sum(cum < half[:, None], axis=1), n_cells - 1)
    prev = np.where(idx > 0, cum[rows, np.maximum(idx - 1, 0)], 0.0)
    in_cell = clipped[rows, idx]
    frac = np.where(in_cell > 0, (half - prev) / np.where(in_cell > 0, in_cell, 1.0), 0.5)
    frac = np.clip(frac, 0.0, 1.0)
    res = edges[rows, idx] + frac * (edges[rows, idx + 1] - edges[rows, idx])
    res = np.where(total <= 0, (edges[:, 0] + edges[:, -1]) / 2.0, res)
    res = _clamp_array(res, lo, hi)
    return np.where(degenerate, lo, res)


def cell_median(
    values: np.ndarray,
    epsilon: float,
    lo: float,
    hi: float,
    rng: RngLike = None,
    n_cells: int = 1024,
) -> float:
    """Private median via the cell-based heuristic of [26].

    A fixed-resolution grid of ``n_cells`` equal cells is laid over
    ``[lo, hi]``, Laplace noise with parameter ``epsilon`` is added to every
    cell count (cell counts have sensitivity 1 and the cells are disjoint, so
    this is a single ``epsilon`` charge), and the median is read off the noisy
    cumulative counts.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if n_cells < 1:
        raise ValueError("n_cells must be at least 1")
    vals = _prepare(values, lo, hi)
    return float(cell_median_batch(
        vals, np.array([0, vals.size]), epsilon, lo, hi, rng=rng, n_cells=n_cells)[0])


# ----------------------------------------------------------------------
# Noisy-mean heuristic [12]
# ----------------------------------------------------------------------
def noisy_mean_median_batch(
    sorted_values, offsets, epsilons, los, his,
    rng: RngLike = None, *, uniforms=None, validate: bool = True,
) -> np.ndarray:
    """Batched noisy-mean surrogates; two uniforms per segment (sum, count)."""
    vals, offs, counts, seg, lo, hi, k = _prepare_batch(sorted_values, offsets, los, his,
                                                        validate=validate)
    eps = _check_epsilons(epsilons, k)
    u = _draw_uniforms(uniforms, rng, k, 2)
    eps_half = eps / 2.0
    sum_scale = np.maximum(np.abs(lo), np.abs(hi)) / eps_half  # sum_sensitivity(lo, hi)
    count_scale = 1.0 / eps_half
    sums = _segment_reduce(np.add, vals, offs, 0.0)
    noisy_sum = sums + sum_scale * laplace_from_uniform(u[:, 0])
    noisy_count = np.maximum(counts + count_scale * laplace_from_uniform(u[:, 1]), 1.0)
    return _clamp_array(noisy_sum / noisy_count, lo, hi)


def noisy_mean_median(
    values: np.ndarray,
    epsilon: float,
    lo: float,
    hi: float,
    rng: RngLike = None,
) -> float:
    """Private "median" via the noisy-mean surrogate of [12].

    Half the budget goes to a noisy sum (sensitivity ``max(|lo|, |hi|)``), half
    to a noisy count (sensitivity 1); the released value is their ratio,
    clamped to the domain.  As the paper notes there is no guarantee this is
    close to the median, which is exactly the weakness Figure 4(a) exhibits.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    vals = _prepare(values, lo, hi)
    return float(noisy_mean_median_batch(
        vals, np.array([0, vals.size]), epsilon, lo, hi, rng=rng)[0])


# ----------------------------------------------------------------------
# Sampling wrappers (Theorem 7)
# ----------------------------------------------------------------------
def _tight_base_epsilon_array(epsilons: np.ndarray, rate: float, cap: float = 5.0) -> np.ndarray:
    """Vector form of :func:`repro.privacy.sampling.tight_base_epsilon`."""
    run = np.log(1.0 + (np.exp(epsilons) - 1.0) / rate)
    return np.minimum(np.maximum(run, epsilons), cap)


def _base_draw_count(base_method: MedianMethod, kwargs: dict) -> int:
    if getattr(base_method, "draws_scale_with_cells", False) and "n_cells" in kwargs:
        return int(kwargs["n_cells"])
    return int(base_method.draws_per_call)


def make_sampled_median(
    base_method: MedianMethod,
    sampling_rate: float,
    amplify_budget: bool = True,
) -> MedianMethod:
    """Wrap a median method so it runs on a Bernoulli sample of the input.

    Sampling amplifies privacy (Section 7 / Theorem 7), so the wrapper may run
    the base method at a *larger* per-run budget while still delivering the
    requested guarantee.  With ``amplify_budget=True`` the per-run budget is
    obtained by inverting the tight amplification bound
    ``eps' = ln(1 + (e^eps - 1) / p)`` (see
    :func:`repro.privacy.sampling.tight_base_epsilon`); this reproduces the
    paper's Figure 4 setting where a 0.01 per-level budget with 1 % sampling
    becomes a per-run budget roughly 50-70x larger.  With
    ``amplify_budget=False`` the base method simply runs at the target budget
    on the sample (strictly more private, less accurate).

    Draw contract: the wrapper first sorts (and clips) the values, then
    consumes **one uniform per value** for the Bernoulli mask, then hands the
    stream to the base method — so the sampled subset is independent of the
    caller's point order and a batch over many segments can slice one flat
    uniform vector node-major.
    """
    if not 0 < sampling_rate <= 1:
        raise ValueError("sampling_rate must lie in (0, 1]")
    base_batch = getattr(base_method, "batch", None)
    if base_batch is None:
        raise TypeError("make_sampled_median requires a base method with a batch form")

    def sampled_batch(sorted_values, offsets, epsilons, los, his,
                      rng: RngLike = None, *, uniforms=None, validate: bool = True,
                      **kwargs) -> np.ndarray:
        vals, offs, counts, seg, lo, hi, k = _prepare_batch(sorted_values, offsets, los, his,
                                                            validate=validate)
        eps = _check_epsilons(epsilons, k)
        d = _base_draw_count(base_method, kwargs)
        if uniforms is None:
            gen = ensure_rng(rng)
            u = gen.random(int(vals.size + d * k))
            # node-major layout: [mask(n_i), base(d)] per segment; the r-th
            # value of segment i (global index j) sits at j + d*i.
            mask_u = u[np.arange(vals.size) + d * seg] if vals.size else np.empty(0)
            base_u = u[offs[1:, None] + d * np.arange(k)[:, None] + np.arange(d)[None, :]]
        else:
            mask_u, base_u = uniforms
            mask_u = np.asarray(mask_u, dtype=float).ravel()
        keep = mask_u < sampling_rate
        new_vals = vals[keep]
        new_counts = (np.bincount(seg[keep], minlength=k).astype(np.int64)
                      if vals.size else np.zeros(k, dtype=np.int64))
        new_offsets = np.concatenate(([0], np.cumsum(new_counts)))
        eps_run = _tight_base_epsilon_array(eps, sampling_rate) if amplify_budget else eps
        # The sampled subset of a validated batch is itself valid.
        return base_batch(new_vals, new_offsets, eps_run, lo, hi, uniforms=base_u,
                          validate=False, **kwargs)

    def sampled(values: np.ndarray, epsilon: float, lo: float, hi: float,
                rng: RngLike = None, **kwargs) -> float:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        vals = _prepare(values, lo, hi)
        return float(sampled_batch(vals, np.array([0, vals.size]), epsilon, lo, hi,
                                   rng=ensure_rng(rng), **kwargs)[0])

    name = getattr(base_method, "__name__", "median")
    sampled.__name__ = f"sampled_{name}"
    sampled.__doc__ = f"Sampled (p={sampling_rate}) variant of {name}."
    sampled.batch = sampled_batch
    sampled.draws_per_call = _base_draw_count(base_method, {})
    sampled.draws_per_value = 1
    sampled.draws_scale_with_cells = getattr(base_method, "draws_scale_with_cells", False)
    return sampled


# ----------------------------------------------------------------------
# Draw-layout attributes and registries
# ----------------------------------------------------------------------
# ``batch``: the ragged-batch form; ``draws_per_call`` / ``draws_per_value``:
# the fixed draw layout the level-vectorized builders rely on to pre-draw a
# whole level's uniforms in per-node BFS order.
true_median.batch = true_median_batch
true_median.draws_per_call = 0
true_median.draws_per_value = 0

exponential_mechanism_median.batch = exponential_mechanism_median_batch
exponential_mechanism_median.draws_per_call = 2
exponential_mechanism_median.draws_per_value = 0

smooth_sensitivity_median.batch = smooth_sensitivity_median_batch
smooth_sensitivity_median.draws_per_call = 1
smooth_sensitivity_median.draws_per_value = 0

cell_median.batch = cell_median_batch
cell_median.draws_per_call = 1024  # the default n_cells
cell_median.draws_per_value = 0
cell_median.draws_scale_with_cells = True

noisy_mean_median.batch = noisy_mean_median_batch
noisy_mean_median.draws_per_call = 2
noisy_mean_median.draws_per_value = 0

#: Registry of the paper's median methods keyed by the labels used in Figure 4.
MEDIAN_METHODS: Dict[str, MedianMethod] = {
    "true": true_median,
    "em": exponential_mechanism_median,
    "ss": smooth_sensitivity_median,
    "cell": cell_median,
    "noisymean": noisy_mean_median,
    "ems": make_sampled_median(exponential_mechanism_median, sampling_rate=0.01),
    "sss": make_sampled_median(smooth_sensitivity_median, sampling_rate=0.01),
}


def resolve_median_method(method: "str | MedianMethod") -> MedianMethod:
    """Look up a median method by name, or pass a callable straight through."""
    if callable(method):
        return method
    key = str(method).lower()
    if key not in MEDIAN_METHODS:
        raise KeyError(f"unknown median method {method!r}; available: {sorted(MEDIAN_METHODS)}")
    return MEDIAN_METHODS[key]


def resolve_median_batch(method: "str | MedianMethod"):
    """The batch form of a method, or ``None`` for a callable without one."""
    return getattr(resolve_median_method(method), "batch", None)
