"""Private median selection (Section 6.1 of the paper).

A data-dependent PSD (kd-tree, Hilbert R-tree) splits every internal node at
the median of the points it contains along some axis.  Releasing that median
exactly would leak information, and the global sensitivity of the median is of
the order of the whole domain, so plain Laplace noise is useless.  The paper
surveys four practical alternatives, all implemented here with a common
signature ``method(values, epsilon, lo, hi, rng) -> float``:

* :func:`exponential_mechanism_median` (**EM**) — samples an output with
  probability proportional to ``exp(-eps/2 * |rank(x) - rank(median)|)``
  (Definition 5), implemented exactly with the interval decomposition the
  paper describes;
* :func:`smooth_sensitivity_median` (**SS**) — Laplace noise calibrated to the
  smooth sensitivity of the median (Definition 4); only (ε, δ)-DP;
* :func:`cell_median` (**cell**) — the heuristic of [26]: noisy counts on a
  fixed grid, median read off the noisy cumulative distribution;
* :func:`noisy_mean_median` (**NM**) — the heuristic of [12]: a noisy mean
  (noisy sum / noisy count) used as a surrogate for the median.

plus the non-private :func:`true_median` baseline ("kd-true" in Section 8.2)
and sampled variants **EMs** / **SSs** built by combining any method with
Bernoulli sampling (Theorem 7, :mod:`repro.privacy.sampling`).

All methods clamp their output to the public domain ``[lo, hi]`` — a value
outside the domain could never be a useful split and the clamp is a
post-processing step, so it costs nothing in privacy.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

import numpy as np

from .mechanisms import laplace_noise
from .rng import RngLike, ensure_rng
from .sensitivity import sum_sensitivity

__all__ = [
    "MedianMethod",
    "true_median",
    "exponential_mechanism_median",
    "smooth_sensitivity_median",
    "smooth_sensitivity_of_median",
    "cell_median",
    "median_from_noisy_cells",
    "noisy_mean_median",
    "make_sampled_median",
    "MEDIAN_METHODS",
    "resolve_median_method",
]

#: Signature shared by every private-median method.
MedianMethod = Callable[..., float]


def _prepare(values: np.ndarray, lo: float, hi: float) -> np.ndarray:
    """Validate the inputs common to all methods and return sorted values."""
    lo, hi = float(lo), float(hi)
    if hi < lo:
        raise ValueError(f"invalid domain [{lo}, {hi}]")
    vals = np.asarray(values, dtype=float).ravel()
    if vals.size and (vals.min() < lo - 1e-9 or vals.max() > hi + 1e-9):
        raise ValueError("values fall outside the declared domain [lo, hi]")
    return np.sort(np.clip(vals, lo, hi))


def _clamp(value: float, lo: float, hi: float) -> float:
    return float(min(max(value, lo), hi))


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
def true_median(values: np.ndarray, epsilon: float = 0.0, lo: float = 0.0, hi: float = 1.0,
                rng: RngLike = None) -> float:
    """The exact (non-private) median; the paper's ``kd-true`` baseline.

    ``epsilon`` and ``rng`` are accepted (and ignored) so the function is a
    drop-in replacement for the private methods in the tree builders.
    """
    vals = _prepare(values, lo, hi)
    if vals.size == 0:
        return _clamp((lo + hi) / 2.0, lo, hi)
    return float(np.median(vals))


# ----------------------------------------------------------------------
# Exponential mechanism (Definition 5)
# ----------------------------------------------------------------------
def exponential_mechanism_median(
    values: np.ndarray,
    epsilon: float,
    lo: float,
    hi: float,
    rng: RngLike = None,
) -> float:
    """Private median via the exponential mechanism.

    The output ``x`` is drawn with probability proportional to
    ``exp(-eps/2 * |rank(x) - rank(x_m)|)``.  Because all values between two
    consecutive data points share a rank, the sampler first picks the interval
    ``I_k = [x_k, x_{k+1})`` with probability proportional to
    ``|I_k| * exp(-eps/2 * |k - m|)`` and then returns a uniform value inside
    it, exactly as described after Definition 5.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    gen = ensure_rng(rng)
    vals = _prepare(values, lo, hi)
    n = vals.size
    if n == 0:
        return float(gen.uniform(lo, hi)) if hi > lo else float(lo)

    # Interval endpoints: lo, x_1, ..., x_n, hi  ->  n + 1 intervals I_0..I_n,
    # where a value in I_k has rank k (number of data values <= it).
    edges = np.concatenate(([lo], vals, [hi]))
    lengths = np.diff(edges)
    ranks = np.arange(n + 1, dtype=float)
    median_rank = n / 2.0
    log_weights = -(epsilon / 2.0) * np.abs(ranks - median_rank)

    positive = lengths > 0
    if not np.any(positive):
        # Degenerate domain (all mass at one point): the only possible output.
        return _clamp(float(vals[n // 2]), lo, hi)

    log_w = np.where(positive, log_weights + np.log(np.where(positive, lengths, 1.0)), -np.inf)
    log_w -= log_w.max()
    weights = np.exp(log_w)
    probs = weights / weights.sum()
    k = int(gen.choice(n + 1, p=probs))
    left, right = edges[k], edges[k + 1]
    if right <= left:
        return _clamp(float(left), lo, hi)
    return _clamp(float(gen.uniform(left, right)), lo, hi)


# ----------------------------------------------------------------------
# Smooth sensitivity (Definition 4)
# ----------------------------------------------------------------------
def smooth_sensitivity_of_median(
    values: np.ndarray,
    epsilon: float,
    delta: float,
    lo: float,
    hi: float,
    max_k: Optional[int] = None,
) -> float:
    """The ξ-smooth sensitivity of the median (Definition 4).

    ``sigma_s = max_k exp(-k * xi) * max_t (x_{m+t} - x_{m+t-k-1})`` with
    ``xi = eps / (4 * (1 + ln(2/delta)))`` and values outside ``[1, n]``
    padded with ``lo`` / ``hi``.

    The scan over ``k`` terminates early once ``exp(-k*xi) * (hi - lo)`` can
    no longer beat the best value found (at that point every remaining term is
    dominated), so the result is exact.  ``max_k`` optionally caps the scan;
    when the cap is hit the tail is replaced by its upper bound
    ``exp(-max_k*xi) * (hi - lo)``, which keeps the output a valid ξ-smooth
    upper bound (privacy is preserved, utility can only degrade).
    """
    if epsilon <= 0 or not 0 < delta < 1:
        raise ValueError("need epsilon > 0 and 0 < delta < 1")
    vals = _prepare(values, lo, hi)
    n = vals.size
    domain = float(hi) - float(lo)
    xi = epsilon / (4.0 * (1.0 + math.log(2.0 / delta)))
    if n == 0:
        return domain
    # Padded 1-indexed array: x[0] = lo, x[1..n] = data, x[n+1..] = hi.
    pad = n + 2
    x = np.concatenate((np.full(pad, lo), vals, np.full(pad, hi)))
    m = pad + (n - 1) // 2  # index of the median in the padded array
    cap = n if max_k is None else min(int(max_k), n)

    best = 0.0
    k = 0
    while k <= cap:
        decay = math.exp(-k * xi)
        if decay * domain <= best:
            return best  # no remaining k can improve on `best`
        # max over t in [0, k+1] of x[m+t] - x[m+t-k-1]
        upper = x[m : m + k + 2]
        lower = x[m - k - 1 : m + 1]
        local = float(np.max(upper - lower))
        best = max(best, decay * local)
        k += 1
    if max_k is not None and cap < n:
        # Conservative tail bound keeps the estimate a valid smooth upper bound.
        best = max(best, math.exp(-(cap + 1) * xi) * domain)
    return best


def smooth_sensitivity_median(
    values: np.ndarray,
    epsilon: float,
    lo: float,
    hi: float,
    rng: RngLike = None,
    delta: float = 1e-4,
    max_k: Optional[int] = None,
) -> float:
    """Private median via smooth sensitivity: ``x_m + (2*sigma_s/eps) * Lap(1)``.

    Satisfies (ε, δ)-differential privacy.  ``delta`` defaults to the paper's
    experimental setting of ``1e-4``.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    gen = ensure_rng(rng)
    vals = _prepare(values, lo, hi)
    if vals.size == 0:
        return _clamp((lo + hi) / 2.0, lo, hi)
    sigma_s = smooth_sensitivity_of_median(vals, epsilon, delta, lo, hi, max_k=max_k)
    median = float(vals[(vals.size - 1) // 2])
    noise = float(laplace_noise(1.0, rng=gen))
    return _clamp(median + (2.0 * sigma_s / epsilon) * noise, lo, hi)


# ----------------------------------------------------------------------
# Cell-based heuristic [26]
# ----------------------------------------------------------------------
def median_from_noisy_cells(noisy_counts: np.ndarray, edges: np.ndarray) -> float:
    """Read a median off noisy per-cell counts.

    ``edges`` has one more entry than ``noisy_counts``.  Negative noisy counts
    are floored at zero (a standard post-processing step), the half-mass cell
    is located on the cumulative distribution and the position is linearly
    interpolated inside it under a within-cell uniformity assumption.
    """
    counts = np.clip(np.asarray(noisy_counts, dtype=float), 0.0, None)
    edges = np.asarray(edges, dtype=float)
    if edges.size != counts.size + 1:
        raise ValueError("edges must have exactly one more entry than counts")
    total = counts.sum()
    if total <= 0:
        return float((edges[0] + edges[-1]) / 2.0)
    cum = np.cumsum(counts)
    half = total / 2.0
    idx = int(np.searchsorted(cum, half))
    idx = min(idx, counts.size - 1)
    prev = cum[idx - 1] if idx > 0 else 0.0
    in_cell = counts[idx]
    frac = 0.5 if in_cell <= 0 else (half - prev) / in_cell
    frac = min(max(frac, 0.0), 1.0)
    return float(edges[idx] + frac * (edges[idx + 1] - edges[idx]))


def cell_median(
    values: np.ndarray,
    epsilon: float,
    lo: float,
    hi: float,
    rng: RngLike = None,
    n_cells: int = 1024,
) -> float:
    """Private median via the cell-based heuristic of [26].

    A fixed-resolution grid of ``n_cells`` equal cells is laid over
    ``[lo, hi]``, Laplace noise with parameter ``epsilon`` is added to every
    cell count (cell counts have sensitivity 1 and the cells are disjoint, so
    this is a single ``epsilon`` charge), and the median is read off the noisy
    cumulative counts.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if n_cells < 1:
        raise ValueError("n_cells must be at least 1")
    gen = ensure_rng(rng)
    vals = _prepare(values, lo, hi)
    edges = np.linspace(lo, hi, n_cells + 1)
    if hi <= lo:
        return float(lo)
    counts, _ = np.histogram(vals, bins=edges)
    noisy = counts + laplace_noise(1.0 / epsilon, size=counts.shape, rng=gen)
    return _clamp(median_from_noisy_cells(noisy, edges), lo, hi)


# ----------------------------------------------------------------------
# Noisy-mean heuristic [12]
# ----------------------------------------------------------------------
def noisy_mean_median(
    values: np.ndarray,
    epsilon: float,
    lo: float,
    hi: float,
    rng: RngLike = None,
) -> float:
    """Private "median" via the noisy-mean surrogate of [12].

    Half the budget goes to a noisy sum (sensitivity ``max(|lo|, |hi|)``), half
    to a noisy count (sensitivity 1); the released value is their ratio,
    clamped to the domain.  As the paper notes there is no guarantee this is
    close to the median, which is exactly the weakness Figure 4(a) exhibits.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    gen = ensure_rng(rng)
    vals = _prepare(values, lo, hi)
    eps_half = epsilon / 2.0
    noisy_sum = float(vals.sum()) + float(laplace_noise(sum_sensitivity(lo, hi) / eps_half, rng=gen))
    noisy_count = float(vals.size) + float(laplace_noise(1.0 / eps_half, rng=gen))
    if noisy_count < 1.0:
        noisy_count = 1.0
    return _clamp(noisy_sum / noisy_count, lo, hi)


# ----------------------------------------------------------------------
# Sampling wrappers (Theorem 7)
# ----------------------------------------------------------------------
def make_sampled_median(
    base_method: MedianMethod,
    sampling_rate: float,
    amplify_budget: bool = True,
) -> MedianMethod:
    """Wrap a median method so it runs on a Bernoulli sample of the input.

    Sampling amplifies privacy (Section 7 / Theorem 7), so the wrapper may run
    the base method at a *larger* per-run budget while still delivering the
    requested guarantee.  With ``amplify_budget=True`` the per-run budget is
    obtained by inverting the tight amplification bound
    ``eps' = ln(1 + (e^eps - 1) / p)`` (see
    :func:`repro.privacy.sampling.tight_base_epsilon`); this reproduces the
    paper's Figure 4 setting where a 0.01 per-level budget with 1 % sampling
    becomes a per-run budget roughly 50-70x larger.  With
    ``amplify_budget=False`` the base method simply runs at the target budget
    on the sample (strictly more private, less accurate).
    """
    if not 0 < sampling_rate <= 1:
        raise ValueError("sampling_rate must lie in (0, 1]")

    def sampled(values: np.ndarray, epsilon: float, lo: float, hi: float,
                rng: RngLike = None, **kwargs) -> float:
        from .sampling import tight_base_epsilon

        gen = ensure_rng(rng)
        vals = np.asarray(values, dtype=float).ravel()
        mask = gen.random(vals.size) < sampling_rate
        sample = vals[mask]
        eps_prime = tight_base_epsilon(epsilon, sampling_rate) if amplify_budget else epsilon
        return base_method(sample, eps_prime, lo, hi, rng=gen, **kwargs)

    sampled.__name__ = f"sampled_{getattr(base_method, '__name__', 'median')}"
    sampled.__doc__ = f"Sampled (p={sampling_rate}) variant of {getattr(base_method, '__name__', 'median')}."
    return sampled


#: Registry of the paper's median methods keyed by the labels used in Figure 4.
MEDIAN_METHODS: Dict[str, MedianMethod] = {
    "true": true_median,
    "em": exponential_mechanism_median,
    "ss": smooth_sensitivity_median,
    "cell": cell_median,
    "noisymean": noisy_mean_median,
    "ems": make_sampled_median(exponential_mechanism_median, sampling_rate=0.01),
    "sss": make_sampled_median(smooth_sensitivity_median, sampling_rate=0.01),
}


def resolve_median_method(method: "str | MedianMethod") -> MedianMethod:
    """Look up a median method by name, or pass a callable straight through."""
    if callable(method):
        return method
    key = str(method).lower()
    if key not in MEDIAN_METHODS:
        raise KeyError(f"unknown median method {method!r}; available: {sorted(MEDIAN_METHODS)}")
    return MEDIAN_METHODS[key]
