"""Differential-privacy substrate: mechanisms, accounting, medians, sampling."""

from .accountant import PrivacyAccountant, PrivacyCharge
from .mechanisms import (
    LaplaceCountMechanism,
    exponential_mechanism,
    geometric_mechanism,
    laplace_mechanism,
    laplace_noise,
    laplace_variance,
)
from .median import (
    MEDIAN_METHODS,
    cell_median,
    exponential_mechanism_median,
    make_sampled_median,
    median_from_noisy_cells,
    noisy_mean_median,
    resolve_median_method,
    smooth_sensitivity_median,
    smooth_sensitivity_of_median,
    true_median,
)
from .rng import ensure_rng, spawn_rngs
from .sampling import (
    amplified_epsilon,
    bernoulli_sample,
    required_base_epsilon,
    sampled_mechanism,
    tight_base_epsilon,
)
from .sensitivity import (
    COUNT_SENSITIVITY,
    mean_numerator_sensitivity,
    median_global_sensitivity,
    sum_sensitivity,
)

__all__ = [
    "PrivacyAccountant",
    "PrivacyCharge",
    "LaplaceCountMechanism",
    "laplace_mechanism",
    "laplace_noise",
    "laplace_variance",
    "geometric_mechanism",
    "exponential_mechanism",
    "MEDIAN_METHODS",
    "true_median",
    "exponential_mechanism_median",
    "smooth_sensitivity_median",
    "smooth_sensitivity_of_median",
    "cell_median",
    "median_from_noisy_cells",
    "noisy_mean_median",
    "make_sampled_median",
    "resolve_median_method",
    "ensure_rng",
    "spawn_rngs",
    "bernoulli_sample",
    "amplified_epsilon",
    "required_base_epsilon",
    "tight_base_epsilon",
    "sampled_mechanism",
    "COUNT_SENSITIVITY",
    "sum_sensitivity",
    "mean_numerator_sensitivity",
    "median_global_sensitivity",
]
