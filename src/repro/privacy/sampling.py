"""Privacy amplification by Bernoulli sampling (Theorem 7).

The paper uses sampling in two ways:

* to make the expensive private-median mechanisms (smooth sensitivity,
  exponential mechanism) an order of magnitude faster by running them on a
  1 % sample of the node's points;
* as a generic amplification result: running an ε-DP algorithm on a sample
  where each element is included independently with probability ``p`` is
  ``2 p e^ε``-DP (their extension of Kasiviswanathan et al.).

This module provides the sampling primitive, the amplification arithmetic in
both directions, and a small helper that wraps an arbitrary ε-DP callable.
"""

from __future__ import annotations

import math
from typing import Callable, Tuple

import numpy as np

from .rng import RngLike, ensure_rng

__all__ = [
    "bernoulli_sample",
    "amplified_epsilon",
    "required_base_epsilon",
    "tight_base_epsilon",
    "sampled_mechanism",
]


def bernoulli_sample(data: np.ndarray, rate: float, rng: RngLike = None) -> np.ndarray:
    """Include each row of ``data`` independently with probability ``rate``."""
    if not 0 <= rate <= 1:
        raise ValueError("rate must lie in [0, 1]")
    arr = np.asarray(data)
    gen = ensure_rng(rng)
    if rate == 1.0:
        return arr.copy()
    if rate == 0.0:
        return arr[:0]
    n = arr.shape[0]
    mask = gen.random(n) < rate
    return arr[mask]


def amplified_epsilon(base_epsilon: float, rate: float) -> float:
    """Privacy of running a ``base_epsilon``-DP algorithm on a ``rate``-sample.

    Theorem 7: the composed procedure is ``2 * rate * exp(base_epsilon)``-DP.
    """
    if base_epsilon <= 0:
        raise ValueError("base_epsilon must be positive")
    if not 0 < rate <= 1:
        raise ValueError("rate must lie in (0, 1]")
    return 2.0 * rate * math.exp(base_epsilon)


def required_base_epsilon(target_epsilon: float, rate: float, cap: float = 5.0) -> float:
    """The largest per-run ε that keeps the sampled procedure ``target_epsilon``-DP.

    Inverts Theorem 7: ``eps' = ln(target / (2 * rate))``.  When the target is
    so small that even ``eps' = target`` over-delivers privacy (i.e. the
    inversion yields a value below ``target``) the target itself is returned,
    since running the base algorithm at the target budget on a sample is only
    *more* private.  ``cap`` bounds the result so a very aggressive sampling
    rate cannot produce a per-run budget large enough to be numerically silly.
    """
    if target_epsilon <= 0:
        raise ValueError("target_epsilon must be positive")
    if not 0 < rate <= 1:
        raise ValueError("rate must lie in (0, 1]")
    ratio = target_epsilon / (2.0 * rate)
    if ratio <= 1.0:
        return target_epsilon
    return min(math.log(ratio), cap)


def tight_base_epsilon(target_epsilon: float, rate: float, cap: float = 5.0) -> float:
    """Per-run ε under the *tight* amplification bound, ``ln(1 + (e^eps - 1) / p)``.

    The standard privacy-amplification-by-sampling result states that running
    an ε'-DP algorithm on a Bernoulli ``p``-sample is
    ``ln(1 + p (e^{ε'} - 1))``-DP, which Theorem 7's ``2 p e^{ε'}`` loosely
    upper-bounds.  Inverting the tight form gives a usable per-run budget even
    when the target is below ``2p`` (where the loose form has no solution) —
    this matches the paper's Figure 4 experiment, where a per-level budget of
    0.01 with 1 % sampling translates into a per-run budget "about 50 times
    larger".
    """
    if target_epsilon <= 0:
        raise ValueError("target_epsilon must be positive")
    if not 0 < rate <= 1:
        raise ValueError("rate must lie in (0, 1]")
    eps_prime = math.log(1.0 + (math.exp(target_epsilon) - 1.0) / rate)
    return float(min(max(eps_prime, target_epsilon), cap))


def sampled_mechanism(
    mechanism: Callable[..., float],
    rate: float,
) -> Callable[..., Tuple[float, float]]:
    """Wrap ``mechanism(data, epsilon, *args, rng=...)`` to run on a sample.

    The wrapper draws a Bernoulli ``rate``-sample, computes the per-run budget
    via :func:`required_base_epsilon`, runs the mechanism on the sample at that
    budget and returns ``(result, effective_epsilon)`` where
    ``effective_epsilon`` is the amplified guarantee actually delivered.
    """
    if not 0 < rate <= 1:
        raise ValueError("rate must lie in (0, 1]")

    def wrapped(data: np.ndarray, epsilon: float, *args, rng: RngLike = None, **kwargs):
        gen = ensure_rng(rng)
        sample = bernoulli_sample(np.asarray(data), rate, rng=gen)
        eps_prime = required_base_epsilon(epsilon, rate)
        result = mechanism(sample, eps_prime, *args, rng=gen, **kwargs)
        return result, amplified_epsilon(eps_prime, rate)

    return wrapped
