"""Privacy budget accounting for hierarchical decompositions.

The paper's privacy argument (Section 3.3 and Lemma 1) is that a PSD is
``ε``-differentially private as long as the *sequential* composition of all
private operations along any single root-to-leaf path sums to at most ``ε``.
Operations on nodes that are not ancestors of one another act on disjoint
subsets of the data and compose in parallel, so they do not add up.

``PrivacyAccountant`` makes this argument executable: PSD builders charge
every noisy median and every noisy count against it, tagged with the tree
level at which the operation happened, and the accountant exposes the
per-path total (the sum over levels of the per-level charges) plus the
``delta`` accumulated by any (ε, δ) mechanisms such as smooth sensitivity.
Tests assert that every builder's per-path total equals the budget the caller
asked for, which is how the reproduction demonstrates the end-to-end privacy
guarantee rather than merely claiming it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..obs import counter_add, gauge_set, metrics_enabled

__all__ = ["PrivacyCharge", "PrivacyAccountant", "AnalystAccount", "BUDGET_TOLERANCE"]

#: Numerical slack applied to every cap comparison.  A charge may overshoot the
#: cap by at most this much before it is refused — the same tolerance
#: :meth:`PrivacyAccountant.assert_within_budget` has always used, so the
#: single-release and multi-tenant views of "within budget" agree.
BUDGET_TOLERANCE = 1e-9


@dataclass(frozen=True)
class PrivacyCharge:
    """A single privacy expenditure.

    Parameters
    ----------
    epsilon:
        The ε spent by the operation.
    level:
        Tree level at which the operation runs (leaves are level 0).  All
        operations at the same level act on disjoint node regions, so their
        charges compose in parallel; across levels they compose sequentially.
    kind:
        Free-form label such as ``"count"`` or ``"median"``; used for
        reporting the εcount / εmedian split of Section 6.2.
    delta:
        The δ spent, non-zero only for (ε, δ) mechanisms (smooth sensitivity).
    """

    epsilon: float
    level: int
    kind: str = "count"
    delta: float = 0.0

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError("epsilon charge must be non-negative")
        if self.delta < 0:
            raise ValueError("delta charge must be non-negative")


@dataclass
class PrivacyAccountant:
    """Tracks per-level privacy spend and verifies the per-path total.

    Parameters
    ----------
    total_budget:
        The ε the final release must satisfy.  ``assert_within_budget`` checks
        the realised per-path spend against it (with a small numerical
        tolerance).
    """

    total_budget: float
    charges: List[PrivacyCharge] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.total_budget <= 0:
            raise ValueError("total_budget must be positive")

    # ------------------------------------------------------------------
    def charge(self, epsilon: float, level: int, kind: str = "count", delta: float = 0.0) -> None:
        """Record one private operation at ``level``.

        Only one charge per (level, kind) pair is recorded even when a level
        contains many nodes: sibling operations compose in parallel, so the
        per-path cost of the level is the per-node ε, not the sum over nodes.
        Builders therefore call this once per level per operation type.
        """
        self.charges.append(PrivacyCharge(epsilon=float(epsilon), level=int(level), kind=kind, delta=float(delta)))
        if metrics_enabled():
            # The seed of the multi-tenant budget ledger: running ε totals as
            # gauges.  Gauges merge by max across processes, and every process
            # that builds the same release reports identical running totals,
            # so the merged view stays the per-release spend (not a sum).
            counter_add("privacy.charges", kind=kind)
            lvl = int(level)
            level_total = sum(c.epsilon for c in self.charges if c.level == lvl)
            kind_total = sum(c.epsilon for c in self.charges if c.kind == kind)
            gauge_set("privacy.epsilon_spent", level_total, level=lvl)
            gauge_set("privacy.epsilon_spent", kind_total, kind=kind)
            gauge_set("privacy.path_epsilon", self.path_epsilon)

    # ------------------------------------------------------------------
    @property
    def per_level(self) -> Dict[int, float]:
        """Total ε charged at each level (sum over kinds)."""
        levels: Dict[int, float] = {}
        for c in self.charges:
            levels[c.level] = levels.get(c.level, 0.0) + c.epsilon
        return levels

    @property
    def per_kind(self) -> Dict[str, float]:
        """Total ε charged per operation kind (``count``, ``median``, ...)."""
        kinds: Dict[str, float] = {}
        for c in self.charges:
            kinds[c.kind] = kinds.get(c.kind, 0.0) + c.epsilon
        return kinds

    @property
    def path_epsilon(self) -> float:
        """The sequential-composition ε along a root-to-leaf path.

        Because charges are recorded once per level, this is simply the sum of
        all charges (Lemma 1 applied level by level down one path).
        """
        return sum(c.epsilon for c in self.charges)

    @property
    def path_delta(self) -> float:
        """Total δ along a root-to-leaf path."""
        return sum(c.delta for c in self.charges)

    # ------------------------------------------------------------------
    def assert_within_budget(self, tolerance: float = 1e-9) -> None:
        """Raise if the realised per-path ε exceeds the declared budget."""
        spent = self.path_epsilon
        if spent > self.total_budget + tolerance:
            raise ValueError(
                f"privacy budget exceeded: spent {spent:.6g} along a path "
                f"but only {self.total_budget:.6g} was allowed"
            )

    def remaining(self) -> float:
        """Unspent budget (may be slightly negative only via numerical error)."""
        return self.total_budget - self.path_epsilon

    def summary(self) -> List[Tuple[int, str, float, float]]:
        """A ``(level, kind, epsilon, delta)`` row per charge, sorted by level descending.

        Root-first ordering matches how the paper describes budgets "from the
        root down".
        """
        rows = [(c.level, c.kind, c.epsilon, c.delta) for c in self.charges]
        return sorted(rows, key=lambda r: (-r[0], r[1]))


class AnalystAccount:
    """One analyst's ε account: lock-protected charge-or-refuse against a cap.

    Where :class:`PrivacyAccountant` audits the spend of building *one*
    release, an :class:`AnalystAccount` enforces the spend of *one consumer*
    across many queries of a long-lived service (the PSI "private data
    sharing interface" model): every query charges its ε here first, and a
    charge that would push the running total past the cap is refused atomically
    — the check and the increment happen under one lock, so no interleaving of
    concurrent charges can overshoot.  This is the in-memory half of the
    serving layer's budget ledger (:mod:`repro.serve.ledger` adds the
    crash-safe write-ahead log).
    """

    def __init__(self, analyst: str, cap: float, spent: float = 0.0) -> None:
        if cap <= 0:
            raise ValueError("budget cap must be positive")
        if spent < 0:
            raise ValueError("spent must be non-negative")
        self.analyst = str(analyst)
        self.cap = float(cap)
        self.spent = float(spent)
        self.charges = 0
        self._lock = threading.Lock()

    def try_charge(self, epsilon: float) -> bool:
        """Atomically spend ``epsilon`` if it fits under the cap.

        Returns True (and records the spend) when the charge fits; False —
        leaving the account untouched — when it would exceed the cap.  A
        non-positive charge is rejected outright: a zero-cost query would let
        an analyst probe the refusal boundary for free, and a negative one
        would be a refund, which differential privacy does not offer.
        """
        epsilon = float(epsilon)
        if epsilon <= 0:
            raise ValueError("charge epsilon must be positive")
        with self._lock:
            if self.spent + epsilon > self.cap + BUDGET_TOLERANCE:
                return False
            self.spent += epsilon
            self.charges += 1
            return True

    def remaining(self) -> float:
        """Unspent budget (never negative beyond numerical tolerance)."""
        with self._lock:
            return self.cap - self.spent

    def snapshot(self) -> Dict[str, float]:
        """A consistent ``{spent, cap, remaining, charges}`` view."""
        with self._lock:
            return {
                "spent": self.spent,
                "cap": self.cap,
                "remaining": self.cap - self.spent,
                "charges": self.charges,
            }
