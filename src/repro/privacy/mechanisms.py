"""Core differential-privacy noise mechanisms.

Implements the primitives the paper builds on:

* the **Laplace mechanism** (Definition 2) for numeric queries, in scalar and
  vectorised form — this is what populates every node count in a PSD;
* the **geometric mechanism** (two-sided geometric noise), the discrete
  counterpart of Laplace noise mentioned in related work, useful when integer
  count output is desired;
* a generic **exponential mechanism** over a finite set of candidate outputs
  with a caller-supplied quality score (the private-median exponential
  mechanism in :mod:`repro.privacy.median` uses a specialised, exact
  interval-based sampler, but the generic form is exposed for reuse and for
  testing against it).

All mechanisms raise :class:`ValueError` on non-positive ``epsilon`` rather
than silently producing infinite noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .rng import RngLike, ensure_rng
from .sensitivity import COUNT_SENSITIVITY

__all__ = [
    "laplace_noise",
    "laplace_from_uniform",
    "laplace_mechanism",
    "laplace_variance",
    "geometric_mechanism",
    "exponential_mechanism",
    "LaplaceCountMechanism",
]


def _check_epsilon(epsilon: float) -> float:
    epsilon = float(epsilon)
    if not np.isfinite(epsilon) or epsilon <= 0:
        raise ValueError(f"epsilon must be a positive finite number, got {epsilon}")
    return epsilon


def laplace_noise(scale: float, size=None, rng: RngLike = None) -> np.ndarray | float:
    """Draw Laplace noise with the given ``scale`` (mean 0, variance ``2*scale**2``)."""
    if scale < 0:
        raise ValueError("scale must be non-negative")
    gen = ensure_rng(rng)
    if scale == 0:
        return np.zeros(size) if size is not None else 0.0
    noise = gen.laplace(loc=0.0, scale=scale, size=size)
    return noise


def laplace_from_uniform(uniforms, scale: float = 1.0):
    """Standard Laplace noise derived from ``U[0, 1)`` draws by inverse CDF.

    ``u < 1/2`` maps to ``log(2u)`` and ``u >= 1/2`` to ``-log(2 - 2u)`` — the
    same transform NumPy's own sampler applies.  The private-median mechanisms
    use this instead of :func:`laplace_noise` so that *every* draw they make
    is a plain ``Generator.random()`` uniform: a batched mechanism can then
    reproduce a sequence of per-node scalar calls bit for bit by slicing one
    flat uniform vector (the BFS draw-order contract of
    :mod:`repro.privacy.median`).  A ``u`` of exactly 0 is floored at the
    smallest positive double rather than mapping to ``-inf``.
    """
    u = np.asarray(uniforms, dtype=float)
    tiny = np.finfo(float).tiny
    low = np.log(np.maximum(2.0 * u, tiny))
    high = -np.log(np.maximum(2.0 - 2.0 * u, tiny))
    return scale * np.where(u < 0.5, low, high)


def laplace_mechanism(
    value,
    epsilon: float,
    sensitivity: float = COUNT_SENSITIVITY,
    rng: RngLike = None,
):
    """Release ``value + Lap(sensitivity / epsilon)`` (Definition 2).

    ``value`` may be a scalar or an array; in the array case independent noise
    is added to every entry (each entry is charged ``epsilon`` — composition
    across entries is the caller's responsibility, e.g. counts of disjoint
    regions compose in parallel and cost ``epsilon`` total).
    """
    epsilon = _check_epsilon(epsilon)
    if sensitivity < 0:
        raise ValueError("sensitivity must be non-negative")
    arr = np.asarray(value, dtype=float)
    scale = sensitivity / epsilon
    noise = laplace_noise(scale, size=arr.shape if arr.shape else None, rng=rng)
    result = arr + noise
    if np.isscalar(value) or arr.shape == ():
        return float(result)
    return result


def laplace_variance(epsilon: float, sensitivity: float = COUNT_SENSITIVITY) -> float:
    """Variance of the Laplace mechanism: ``2 * (sensitivity / epsilon)**2``.

    With sensitivity 1 this is the ``2 / eps_i**2`` appearing in the paper's
    Equation (1).
    """
    epsilon = _check_epsilon(epsilon)
    scale = sensitivity / epsilon
    return 2.0 * scale * scale


def geometric_mechanism(
    value,
    epsilon: float,
    sensitivity: float = COUNT_SENSITIVITY,
    rng: RngLike = None,
):
    """Release ``value`` plus two-sided geometric noise (the discrete Laplace).

    The noise ``Z`` takes integer values with ``Pr[Z = z] ∝ alpha**|z|`` where
    ``alpha = exp(-epsilon / sensitivity)``; it is the universally
    utility-maximising mechanism for counts [Ghosh et al., STOC 2009].
    """
    epsilon = _check_epsilon(epsilon)
    if sensitivity <= 0:
        raise ValueError("sensitivity must be positive")
    gen = ensure_rng(rng)
    alpha = np.exp(-epsilon / sensitivity)
    arr = np.asarray(value, dtype=float)
    size = arr.shape if arr.shape else None
    # A two-sided geometric is the difference of two i.i.d. geometric draws.
    g1 = gen.geometric(p=1 - alpha, size=size) - 1
    g2 = gen.geometric(p=1 - alpha, size=size) - 1
    result = arr + (g1 - g2)
    if np.isscalar(value) or arr.shape == ():
        return float(result)
    return result.astype(float)


def exponential_mechanism(
    candidates: Sequence,
    scores: Sequence[float],
    epsilon: float,
    sensitivity: float = 1.0,
    rng: RngLike = None,
):
    """Sample one of ``candidates`` with probability ``∝ exp(eps * score / (2 * sensitivity))``.

    ``scores`` is the quality function evaluated on the true data; its
    sensitivity (maximum change under one tuple insertion/removal) must be
    supplied by the caller.  Scores are shifted by their maximum before
    exponentiation for numerical stability.
    """
    epsilon = _check_epsilon(epsilon)
    if sensitivity <= 0:
        raise ValueError("sensitivity must be positive")
    scores_arr = np.asarray(scores, dtype=float)
    if len(candidates) == 0 or scores_arr.shape[0] != len(candidates):
        raise ValueError("candidates and scores must be non-empty and of equal length")
    gen = ensure_rng(rng)
    logits = epsilon * scores_arr / (2.0 * sensitivity)
    logits -= logits.max()
    weights = np.exp(logits)
    total = weights.sum()
    if not np.isfinite(total) or total <= 0:
        raise ValueError("exponential mechanism produced a degenerate weight vector")
    probs = weights / total
    idx = gen.choice(len(candidates), p=probs)
    return candidates[idx]


@dataclass(frozen=True)
class LaplaceCountMechanism:
    """A reusable Laplace mechanism bound to a fixed privacy parameter.

    The PSD builders create one of these per tree level (with that level's
    ``eps_i``) and call it for every node on the level; keeping the parameter
    in one object makes the accounting explicit and testable.
    """

    epsilon: float
    sensitivity: float = COUNT_SENSITIVITY

    def __post_init__(self) -> None:
        _check_epsilon(self.epsilon)
        if self.sensitivity < 0:
            raise ValueError("sensitivity must be non-negative")

    @property
    def scale(self) -> float:
        """Scale of the Laplace noise this mechanism adds."""
        return self.sensitivity / self.epsilon

    @property
    def variance(self) -> float:
        """Variance of a single released value."""
        return 2.0 * self.scale * self.scale

    def release(self, value, rng: RngLike = None):
        """Release a noisy version of ``value`` (scalar or array)."""
        return laplace_mechanism(value, self.epsilon, self.sensitivity, rng=rng)
