"""Sensitivity calculations for the query functions used by the PSD framework.

Definition 2 in the paper calibrates Laplace noise to the *sensitivity* of the
released function: the maximum change in its value when one tuple is added to
or removed from the dataset (the paper uses the add/remove neighbouring
relation throughout).  This module collects the handful of sensitivities the
framework relies on, each with its justification, so the mechanisms never
hard-code magic constants.
"""

from __future__ import annotations

__all__ = [
    "COUNT_SENSITIVITY",
    "sum_sensitivity",
    "mean_numerator_sensitivity",
    "median_global_sensitivity",
]

#: Sensitivity of a count query.  Adding or removing one tuple changes any
#: count by at most 1 (Definition 2's example).
COUNT_SENSITIVITY: float = 1.0


def sum_sensitivity(lo: float, hi: float) -> float:
    """Sensitivity of a sum of values known to lie in ``[lo, hi]``.

    Under add/remove neighbours, inserting or deleting one value changes the
    sum by at most ``max(|lo|, |hi|)``; for the coordinate sums used by the
    noisy-mean median surrogate the paper uses the domain size ``M``.
    """
    if hi < lo:
        raise ValueError("hi must be at least lo")
    return max(abs(float(lo)), abs(float(hi)))


def mean_numerator_sensitivity(lo: float, hi: float) -> float:
    """Sensitivity of the numerator (sum) used by the noisy-mean heuristic."""
    return sum_sensitivity(lo, hi)


def median_global_sensitivity(lo: float, hi: float) -> float:
    """Global sensitivity of the median over a domain ``[lo, hi]``.

    The paper notes that the global sensitivity of the median "is of the same
    order of magnitude as the range M": in the worst case moving one element
    shifts the median across (a constant fraction of) the whole domain, so the
    conservative bound is the domain size itself.  This is why naive Laplace
    noise on the median is useless and the paper studies smarter mechanisms.
    """
    if hi < lo:
        raise ValueError("hi must be at least lo")
    return float(hi) - float(lo)
