"""Analytical error bounds of Section 4.

This module contains the closed-form quantities the paper derives before any
experiment is run:

* **Lemma 2** — bounds on ``n_i``, the number of nodes at level ``i`` that a
  range query touches, for quadtrees and kd-trees in two dimensions, plus the
  resulting bound on ``n(Q)``;
* **Equation (1)** — the query variance ``Err(Q) = sum_i 2 n_i / eps_i^2``;
* **Lemma 3** — the geometrically-optimal budget and its error bound;
* the two worst-case curves plotted in **Figure 2**:
  ``Err_unif(h) = (h+1)^2 (2^{h+1} - 1)`` and
  ``Err_geom(h) = ((2^{(h+1)/3} - 1) / (2^{1/3} - 1))^3`` (both in units of
  ``16 / eps^2``).

These functions double as the oracle for the property tests, which check that
the simulated query processing never touches more nodes than Lemma 2 allows
and that the geometric allocation indeed minimises the Equation (1) bound.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = [
    "quadtree_level_bound",
    "kdtree_level_bound",
    "quadtree_touched_bound",
    "kdtree_touched_bound",
    "query_error_bound",
    "uniform_budget_error",
    "geometric_budget_error",
    "worst_case_error_curves",
    "optimal_geometric_epsilons",
]


def quadtree_level_bound(height: int, level: int) -> int:
    """Lemma 2(i): a query touches at most ``8 * 2^{h-i}`` quadtree nodes at level ``i``.

    The bound is additionally capped at the number of nodes on the level,
    ``4^{h-i}``, as noted in the paper's footnote.
    """
    if not 0 <= level <= height:
        raise ValueError("level must lie in [0, height]")
    return int(min(8 * 2 ** (height - level), 4 ** (height - level)))


def kdtree_level_bound(height: int, level: int) -> int:
    """Lemma 2(ii): a query touches at most ``8 * 2^{floor((h-i+1)/2)}`` kd-tree nodes at level ``i``."""
    if not 0 <= level <= height:
        raise ValueError("level must lie in [0, height]")
    return int(min(8 * 2 ** ((height - level + 1) // 2), 2 ** (height - level)))


def quadtree_touched_bound(height: int) -> int:
    """Lemma 2(i): ``n(Q) <= 8 (2^{h+1} - 1)`` for a quadtree of height ``h``."""
    if height < 0:
        raise ValueError("height must be non-negative")
    return 8 * (2 ** (height + 1) - 1)


def kdtree_touched_bound(height: int) -> int:
    """Lemma 2(ii): ``n(Q) <= 8 (2^{floor((h+1)/2)+1} - 1)`` for a kd-tree of height ``h``."""
    if height < 0:
        raise ValueError("height must be non-negative")
    return 8 * (2 ** ((height + 1) // 2 + 1) - 1)


def query_error_bound(level_counts: Dict[int, int], epsilons: Sequence[float]) -> float:
    """Equation (1): ``Err(Q) = sum_i 2 n_i / eps_i^2`` for given per-level touch counts."""
    eps = np.asarray(epsilons, dtype=float)
    total = 0.0
    for level, n_i in level_counts.items():
        if not 0 <= level < eps.size:
            raise ValueError(f"level {level} outside the epsilon allocation")
        if n_i == 0:
            continue
        if eps[level] <= 0:
            raise ValueError(f"level {level} is touched but has zero budget")
        total += 2.0 * n_i / (eps[level] ** 2)
    return total


def uniform_budget_error(height: int, epsilon: float = 1.0) -> float:
    """Worst-case Err(Q) bound for the uniform budget (Section 4.2).

    ``Err_unif = (16 / eps^2) * (h+1)^2 * (2^{h+1} - 1)`` — the curve labelled
    "uniform noise" in Figure 2 (the figure plots it in units of 16/eps^2).
    """
    if height < 0:
        raise ValueError("height must be non-negative")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    return (16.0 / epsilon**2) * (height + 1) ** 2 * (2 ** (height + 1) - 1)


def geometric_budget_error(height: int, epsilon: float = 1.0) -> float:
    """Worst-case Err(Q) bound for the geometric budget (Lemma 3).

    ``Err_geom = (16 / eps^2) * ((2^{(h+1)/3} - 1) / (2^{1/3} - 1))^3``, which the
    paper further upper-bounds by ``2^{h+7} / eps^2``.
    """
    if height < 0:
        raise ValueError("height must be non-negative")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    cube_root_2 = 2.0 ** (1.0 / 3.0)
    ratio = (2.0 ** ((height + 1) / 3.0) - 1.0) / (cube_root_2 - 1.0)
    return (16.0 / epsilon**2) * ratio**3


def worst_case_error_curves(heights: Sequence[int], epsilon: float = 1.0) -> Dict[str, np.ndarray]:
    """The two series of Figure 2, in units of ``16 / eps^2`` as the paper plots them."""
    hs = np.asarray(list(heights), dtype=int)
    unit = 16.0 / epsilon**2
    uniform = np.array([uniform_budget_error(int(h), epsilon) / unit for h in hs])
    geometric = np.array([geometric_budget_error(int(h), epsilon) / unit for h in hs])
    return {"height": hs, "uniform": uniform, "geometric": geometric}


def optimal_geometric_epsilons(height: int, epsilon: float) -> Tuple[float, ...]:
    """The optimal allocation of Lemma 3: ``eps_i = 2^{(h-i)/3} eps (2^{1/3}-1)/(2^{(h+1)/3}-1)``.

    Identical to :func:`repro.core.budget.geometric_level_epsilons`; re-derived
    here from the closed form so the tests can cross-check the two.
    """
    if height < 0:
        raise ValueError("height must be non-negative")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    cube_root_2 = 2.0 ** (1.0 / 3.0)
    scale = epsilon * (cube_root_2 - 1.0) / (2.0 ** ((height + 1) / 3.0) - 1.0)
    return tuple(float(2.0 ** ((height - i) / 3.0) * scale) for i in range(height + 1))
