"""Comparing budget strategies analytically and empirically.

The paper argues (Section 4.2) that the geometric allocation dominates the
uniform one under the worst-case Lemma 2 bound, and verifies empirically that
the advantage persists for realistic workloads.  This module provides the
bridging utilities: evaluating Equation (1) for an arbitrary allocation
against either the analytic worst case or the per-level touch counts measured
on a concrete tree and workload, and a small grid-search helper used by the
ablation benchmark to confirm that ``2^{1/3}`` is (near-)optimal among
geometric ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..core.budget import BudgetStrategy, GeometricBudget, resolve_budget
from ..core.query import nodes_touched_per_level
from ..core.tree import PrivateSpatialDecomposition
from ..geometry.rect import Rect
from .variance import quadtree_level_bound, query_error_bound

__all__ = [
    "worst_case_error_for_strategy",
    "empirical_error_for_strategy",
    "best_geometric_ratio",
    "StrategyComparison",
    "compare_strategies",
]


def worst_case_error_for_strategy(
    strategy: "str | BudgetStrategy",
    height: int,
    epsilon: float,
    fanout: int = 4,
) -> float:
    """Equation (1) evaluated at the Lemma 2(i) worst-case touch counts.

    Levels with a zero budget release no counts, so the nodes a query would
    have used there must be replaced by their descendants at the next budgeted
    level; the touch counts migrate downwards multiplied by the fanout per
    skipped level (this is how the leaf-only strategy of [12] is priced).
    """
    eps = resolve_budget(strategy).validate(height, epsilon)
    if eps[0] <= 0:
        raise ValueError("the leaf level must receive a positive budget")
    total = 0.0
    pending = 0.0
    for level in range(height, -1, -1):
        if level < height:
            pending *= fanout
        n_i = quadtree_level_bound(height, level)
        if eps[level] > 0:
            total += 2.0 * (n_i + pending) / (eps[level] ** 2)
            pending = 0.0
        else:
            pending += n_i
    return total


def empirical_error_for_strategy(
    psd: PrivateSpatialDecomposition,
    queries: Iterable[Rect],
    strategy: "str | BudgetStrategy",
    epsilon: float,
) -> float:
    """Average Equation-(1) variance over a workload, for a hypothetical allocation.

    The tree's structure (and hence which nodes each query touches) is reused;
    only the per-level noise parameters are swapped, which is exactly the
    comparison in Section 4.2.
    """
    eps = resolve_budget(strategy).validate(psd.height, epsilon)
    errors: List[float] = []
    for query in queries:
        counts = nodes_touched_per_level(psd, query)
        errors.append(query_error_bound(counts, eps))
    return float(np.mean(errors)) if errors else float("nan")


def best_geometric_ratio(
    height: int,
    epsilon: float,
    ratios: Sequence[float] = tuple(np.linspace(1.05, 2.0, 39)),
) -> Dict[str, float]:
    """Grid-search the geometric ratio minimising the worst-case bound.

    Lemma 3 proves the optimum is ``2^{1/3} ~ 1.26``; the ablation benchmark
    verifies that the grid search lands there (up to grid resolution).
    """
    best_ratio, best_error = None, np.inf
    for ratio in ratios:
        error = worst_case_error_for_strategy(GeometricBudget(ratio=float(ratio)), height, epsilon)
        if error < best_error:
            best_ratio, best_error = float(ratio), float(error)
    return {"ratio": best_ratio, "error": best_error, "lemma3_ratio": 2.0 ** (1.0 / 3.0)}


@dataclass(frozen=True)
class StrategyComparison:
    """One row of the strategy-comparison table."""

    strategy: str
    height: int
    epsilon: float
    worst_case_error: float


def compare_strategies(
    height: int,
    epsilon: float,
    strategies: Sequence[str] = ("uniform", "geometric", "leaf-only"),
) -> List[StrategyComparison]:
    """Worst-case Equation-(1) errors for several strategies at one (h, eps)."""
    rows = []
    for name in strategies:
        rows.append(
            StrategyComparison(
                strategy=name,
                height=height,
                epsilon=epsilon,
                worst_case_error=worst_case_error_for_strategy(name, height, epsilon),
            )
        )
    return rows
