"""Analytical error bounds and budget-strategy analytics (Section 4)."""

from .budget_analysis import (
    StrategyComparison,
    best_geometric_ratio,
    compare_strategies,
    empirical_error_for_strategy,
    worst_case_error_for_strategy,
)
from .variance import (
    geometric_budget_error,
    kdtree_level_bound,
    kdtree_touched_bound,
    optimal_geometric_epsilons,
    quadtree_level_bound,
    quadtree_touched_bound,
    query_error_bound,
    uniform_budget_error,
    worst_case_error_curves,
)

__all__ = [
    "quadtree_level_bound",
    "kdtree_level_bound",
    "quadtree_touched_bound",
    "kdtree_touched_bound",
    "query_error_bound",
    "uniform_budget_error",
    "geometric_budget_error",
    "worst_case_error_curves",
    "optimal_geometric_epsilons",
    "worst_case_error_for_strategy",
    "empirical_error_for_strategy",
    "best_geometric_ratio",
    "compare_strategies",
    "StrategyComparison",
]
