"""Compiled, read-optimised query engine for released PSDs.

A private spatial decomposition is a *publish-once, query-many* artifact: the
data owner builds it a single time under a privacy budget, and consumers then
answer arbitrarily many range queries from the released counts.  The pointer
tree of :class:`~repro.core.tree.PSDNode` objects is the right shape for
*building* (splits, post-processing, pruning mutate it freely) but the wrong
shape for *serving*: every query is a recursive Python walk that chases
heap-allocated node objects one attribute access at a time.

This package compiles any built PSD — quadtree, kd-tree or Hilbert R-tree,
complete or pruned — into a **flat structure-of-arrays** form and evaluates
range queries over it with vectorised NumPy kernels:

* :mod:`repro.engine.flat` — the compiler.  Nodes are laid out in
  breadth-first order so each node's children occupy a contiguous index range;
  the tree becomes a handful of parallel arrays (``lo``/``hi`` rect bounds,
  levels, released counts, a has-released-count mask, child offset ranges,
  areas) plus per-level epsilon/variance tables.  Compilation is lossless for
  query purposes: the arrays capture exactly the released information the
  canonical decomposition of Section 4.1 consumes.  Since the build pipeline
  went flat-native (:mod:`repro.core.flatbuild`), a freshly built PSD already
  *is* BFS arrays — compiling one is a cheap array snapshot rather than a
  pointer walk; the walk remains only for pointer-backed trees (deserialised
  releases, the planar Hilbert view, hand-built trees).
* :mod:`repro.engine.batch` — the evaluator.  Many queries are answered at
  once by level-synchronous frontier expansion: one ``(query, node)`` pair
  array per wavefront, with containment / intersection / leaf-fraction logic
  expressed as NumPy masks.  Per-query estimates, ``n(Q)`` and the analytic
  variance ``Err(Q)`` come out of the same pass and match the recursive
  reference in :mod:`repro.core.query` (identical ``n(Q)``, estimates equal
  up to float summation order).
* :mod:`repro.engine.cache` — an LRU answer cache keyed by canonicalised
  query rectangles, for serving workloads with repeated or popular queries.
* :mod:`repro.engine.io` — save/load so a compiled engine can be shipped to
  query servers without re-compiling (or even without the JSON release).
  Two formats: compressed ``.npz`` (format v1) and the page-aligned
  zero-copy layout of :mod:`repro.engine.store` (format v2), which attaches
  via ``np.memmap`` in microseconds and optionally stores counts in reduced
  precision (float32 counts / int32 child offsets).

When to prefer the flat engine
------------------------------
Use ``backend="flat"`` (or compile explicitly) whenever the tree is queried
more than a handful of times: batch throughput is one to two orders of
magnitude above the recursive walk, and even single queries amortise the
one-off compile after a few dozen calls.  Stick with the recursive reference
when the tree is still being mutated (compile caches are invalidated by
post-processing and pruning, so correctness is never at risk — only compile
time) or when you need the actual :class:`~repro.core.tree.PSDNode` objects,
e.g. :func:`~repro.core.query.contributing_nodes` for introspection.
"""

from .batch import (
    BatchQueryResult,
    QueryMatrix,
    batch_nodes_touched,
    batch_query,
    batch_range_query,
    compile_query_matrix,
)
from .cache import CachedEngine, QueryCache, canonical_rect_key
from .flat import (
    FlatPSD,
    compile_hilbert_rtree,
    compile_psd,
    compiled_engine,
    invalidate_compiled_engine,
)
from .io import ENGINE_FORMATS, detect_engine_format, load_engine, save_engine
from .points import CellJoinIndex, PointGrid, matching_cell_layout
from .store import (
    PRECISIONS,
    EngineIntegrityError,
    engine_with_precision,
    load_engine_mmap,
    save_engine_mmap,
)

__all__ = [
    "FlatPSD",
    "compile_psd",
    "compile_hilbert_rtree",
    "compiled_engine",
    "invalidate_compiled_engine",
    "BatchQueryResult",
    "QueryMatrix",
    "batch_query",
    "batch_range_query",
    "batch_nodes_touched",
    "compile_query_matrix",
    "QueryCache",
    "CachedEngine",
    "canonical_rect_key",
    "CellJoinIndex",
    "PointGrid",
    "matching_cell_layout",
    "save_engine",
    "load_engine",
    "detect_engine_format",
    "ENGINE_FORMATS",
    "PRECISIONS",
    "EngineIntegrityError",
    "engine_with_precision",
    "save_engine_mmap",
    "load_engine_mmap",
]
