"""Exact vectorised point-set kernels: grid range counting and neighbor joins.

The record-matching pipeline (:mod:`repro.applications.record_matching`) asks
two geometric questions at scale: *how many of party B's points fall in each
of thousands of leaf rectangles* and *which pairs of points lie within an
L-infinity matching distance of each other*.  Both are answered here with
uniform-grid indexes whose results are **bitwise identical** to the brute
force — no tolerance, no "approximately equal":

* :class:`PointGrid` bins a point set once and answers batched closed-rect
  containment counts (and membership masks).  Cells *strictly between* a
  rectangle's corner cells are counted wholesale from a dense prefix-sum
  table; only the thin shell of cells that contain a corner coordinate fall
  back to exact per-point comparisons.  The classification is sound because
  the cell map ``c(x) = floor((x - origin) / side)`` is monotone in ``x``
  (float subtraction and division are monotone under IEEE round-to-nearest),
  so ``c(p) > c(rect_lo)`` implies ``p > rect_lo`` exactly — interior cells
  can only hold interior points.

* :class:`CellJoinIndex` supports the neighbor join behind pairs
  completeness: with a cell side of at least ``distance * (1 + 1e-9)`` (and
  at most ~10^6 cells per axis, which keeps the accumulated rounding of the
  cell map well under that margin), any two points within ``distance`` land
  in the same or adjacent cells, so comparing each point against the 3^d
  neighboring cells of its own finds every matching pair.  The candidate
  pairs are then filtered with exactly the brute-force predicate
  ``max(|a - b|) <= distance`` — identical floats, identical counts.

Everything is ragged-array NumPy built on the same
:func:`~repro.engine.flat.expand_ranges` primitive as the batch query
evaluator; there are no per-point Python loops.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .flat import expand_ranges

__all__ = [
    "CellJoinIndex",
    "PointGrid",
    "matching_cell_layout",
]

#: Total dense-cell budget of a :class:`PointGrid` (the prefix table is a
#: dense ``prod(shape)`` array; 4M int64 cells is ~32 MiB).
_DENSE_CELL_BUDGET = 4_000_000

#: Relative safety margin on the neighbor-join cell side: with at most
#: ``_MAX_JOIN_CELLS`` cells per axis the cell map's rounding error is below
#: ``~4e-10`` cells, so a side of ``distance * (1 + 1e-9)`` guarantees that
#: points within ``distance`` differ by at most one cell per axis.
_SIDE_MARGIN = 1e-9
_MAX_JOIN_CELLS = 1_000_000

#: Clamp applied to cell coordinates before the float -> int64 conversion;
#: preserves ordering (values this large are always "far outside the grid")
#: while avoiding undefined casts for callers with unbounded rectangles.
_CELL_CLAMP = float(2**62)


def _as_points(points: np.ndarray) -> np.ndarray:
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError("point arrays must be two-dimensional (n, d)")
    return pts


@dataclass
class PointGrid:
    """A uniform grid over one point set answering exact batched rect counts.

    Attributes
    ----------
    points:
        The ``(n, d)`` float64 point array the grid indexes (referenced, not
        copied).
    origin, side:
        The cell map parameters: point ``p`` lives in cell
        ``floor((p - origin) / side)`` per axis (``side > 0`` elementwise).
    shape:
        ``(d,)`` dense cell extents; every point's cell is in
        ``[0, shape)``.
    order, indptr:
        CSR layout of points grouped by flattened cell id: cell ``c`` holds
        points ``order[indptr[c]:indptr[c + 1]]``.
    prefix:
        Dense ``shape + 1`` cumulative count table (zero-padded on the low
        side), giving any axis-aligned cell-box population in ``2^d`` reads.
    """

    points: np.ndarray
    origin: np.ndarray
    side: np.ndarray
    shape: np.ndarray
    order: np.ndarray
    indptr: np.ndarray
    prefix: np.ndarray

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, points: np.ndarray, target_cells: Optional[int] = None) -> "PointGrid":
        pts = _as_points(points)
        n, d = pts.shape
        if d < 1:
            raise ValueError("points must have at least one dimension")
        if n == 0:
            shape = np.ones(d, dtype=np.int64)
            return cls(
                points=pts,
                origin=np.zeros(d, dtype=np.float64),
                side=np.ones(d, dtype=np.float64),
                shape=shape,
                order=np.empty(0, dtype=np.int64),
                indptr=np.zeros(2, dtype=np.int64),
                prefix=np.zeros(tuple(shape + 1), dtype=np.int64),
            )
        budget = _DENSE_CELL_BUDGET if target_cells is None else max(1, int(target_cells))
        per_axis_cap = max(1, int(budget ** (1.0 / d)))
        # ~2 points per cell keeps both the dense table and the boundary
        # shells cheap across the sizes the matching pipeline sees.
        g = min(max(int(np.ceil((n / 2.0) ** (1.0 / d))), 1), per_axis_cap)
        origin = pts.min(axis=0)
        extent = pts.max(axis=0) - origin
        side = np.where(extent > 0.0, extent / g, 1.0)
        cells = np.floor((pts - origin) / side).astype(np.int64)
        shape = cells.max(axis=0) + 1
        flat = cells[:, 0].copy()
        for k in range(1, d):
            flat = flat * shape[k] + cells[:, k]
        n_cells = int(np.prod(shape))
        order = np.argsort(flat, kind="stable").astype(np.int64)
        counts = np.bincount(flat, minlength=n_cells)
        indptr = np.zeros(n_cells + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        core = counts.reshape(tuple(shape))
        for axis in range(d):
            core = np.cumsum(core, axis=axis)
        prefix = np.zeros(tuple(shape + 1), dtype=np.int64)
        prefix[tuple(slice(1, None) for _ in range(d))] = core
        return cls(pts, origin, side, shape, order, indptr, prefix)

    # ------------------------------------------------------------------
    @property
    def dims(self) -> int:
        return int(self.points.shape[1])

    def cell_of(self, values: np.ndarray) -> np.ndarray:
        """Unclipped cell coordinates of arbitrary points (may be negative or
        beyond ``shape`` — the same monotone map the build applied)."""
        raw = np.floor((np.asarray(values, dtype=np.float64) - self.origin) / self.side)
        return np.clip(raw, -_CELL_CLAMP, _CELL_CLAMP).astype(np.int64)

    # -- internal geometry helpers -------------------------------------
    def _interior_bounds(self, clo: np.ndarray, chi: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Half-open per-axis ranges of cells strictly between the corner
        cells (whose points are guaranteed strictly inside the rect)."""
        a = np.clip(clo + 1, 0, self.shape)
        b = np.maximum(a, np.clip(chi, 0, self.shape))
        return a, b

    def _covered_bounds(self, clo: np.ndarray, chi: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Half-open per-axis ranges of every cell that can hold an in-rect
        point (cells outside ``[clo, chi]`` provably cannot)."""
        a = np.clip(clo, 0, self.shape)
        b = np.maximum(a, np.clip(chi + 1, 0, self.shape))
        return a, b

    def _interior_counts(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Populations of the half-open cell boxes ``[a, b)`` via ``2^d``
        inclusion-exclusion reads of the dense prefix table."""
        n_rects, d = a.shape
        pshape = self.shape + 1
        flat_prefix = self.prefix.reshape(-1)
        total = np.zeros(n_rects, dtype=np.int64)
        for picks in itertools.product((0, 1), repeat=d):
            idx = np.zeros(n_rects, dtype=np.int64)
            for k in range(d):
                coord = a[:, k] if picks[k] else b[:, k]
                idx = idx * pshape[k] + coord
            if sum(picks) % 2:
                total -= flat_prefix[idx]
            else:
                total += flat_prefix[idx]
        return total

    def _boundary_boxes(
        self, clo: np.ndarray, chi: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The shell of cells containing a rect corner coordinate, as a
        disjoint union of thin axis-aligned cell boxes.

        Axis ``k`` contributes the (at most two) slabs whose ``k``-coordinate
        equals a corner cell, restricted to *interior* ranges on axes before
        ``k`` and *covered* ranges after it — a standard disjoint tiling of
        covered-minus-interior.  Returns ``(rect_owner, box_lo, box_hi)``.
        """
        n_rects, d = clo.shape
        ia, ib = self._interior_bounds(clo, chi)
        ca, cb = self._covered_bounds(clo, chi)
        owners, los, his = [], [], []
        for k in range(d):
            for hi_slab in (False, True):
                coord = chi[:, k] if hi_slab else clo[:, k]
                valid = (coord >= 0) & (coord < self.shape[k])
                if hi_slab:
                    valid &= chi[:, k] != clo[:, k]
                rect_ids = np.nonzero(valid)[0]
                if rect_ids.size == 0:
                    continue
                blo = np.empty((rect_ids.size, d), dtype=np.int64)
                bhi = np.empty((rect_ids.size, d), dtype=np.int64)
                for j in range(d):
                    if j < k:
                        blo[:, j] = ia[rect_ids, j]
                        bhi[:, j] = ib[rect_ids, j]
                    elif j > k:
                        blo[:, j] = ca[rect_ids, j]
                        bhi[:, j] = cb[rect_ids, j]
                blo[:, k] = coord[rect_ids]
                bhi[:, k] = coord[rect_ids] + 1
                owners.append(rect_ids)
                los.append(blo)
                his.append(bhi)
        if not owners:
            empty = np.empty((0, d), dtype=np.int64)
            return np.empty(0, dtype=np.int64), empty, empty
        return np.concatenate(owners), np.concatenate(los), np.concatenate(his)

    def _enumerate_cells(self, blo: np.ndarray, bhi: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Flattened ids of every cell in each half-open box, axis by axis via
        :func:`expand_ranges`; returns ``(box_index, flat_cell)``."""
        n_boxes, d = blo.shape
        item = np.arange(n_boxes, dtype=np.int64)
        acc = np.zeros(n_boxes, dtype=np.int64)
        for k in range(d):
            starts = blo[item, k]
            ends = np.maximum(bhi[item, k], starts)
            coords = expand_ranges(starts, ends)
            widths = ends - starts
            item = np.repeat(item, widths)
            acc = np.repeat(acc, widths) * self.shape[k] + coords
        return item, acc

    def _cell_point_pairs(
        self, rect_of_cell: np.ndarray, flat_cells: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        starts = self.indptr[flat_cells]
        ends = self.indptr[flat_cells + 1]
        pair_rect = np.repeat(rect_of_cell, ends - starts)
        pair_point = self.order[expand_ranges(starts, ends)]
        return pair_rect, pair_point

    # ------------------------------------------------------------------
    def count_in_rects(
        self, qlo: np.ndarray, qhi: np.ndarray, rect_block: int = 4096
    ) -> np.ndarray:
        """Per-rect counts of points with ``lo <= p <= hi`` (closed on both
        sides, the :meth:`Rect.contains_points(closed_hi=True)` predicate),
        exact for every input including inverted or off-grid rectangles."""
        qlo = np.asarray(qlo, dtype=np.float64)
        qhi = np.asarray(qhi, dtype=np.float64)
        if qlo.shape != qhi.shape or qlo.ndim != 2 or qlo.shape[1] != self.dims:
            raise ValueError("rect bounds must both have shape (n_rects, dims)")
        n_rects = qlo.shape[0]
        out = np.zeros(n_rects, dtype=np.int64)
        if n_rects == 0 or self.points.shape[0] == 0:
            return out
        for start in range(0, n_rects, max(1, int(rect_block))):
            stop = min(n_rects, start + max(1, int(rect_block)))
            blo, bhi = qlo[start:stop], qhi[start:stop]
            clo, chi = self.cell_of(blo), self.cell_of(bhi)
            ia, ib = self._interior_bounds(clo, chi)
            block = self._interior_counts(ia, ib)
            rect_ids, box_lo, box_hi = self._boundary_boxes(clo, chi)
            cell_item, flat_cells = self._enumerate_cells(box_lo, box_hi)
            pair_rect, pair_point = self._cell_point_pairs(rect_ids[cell_item], flat_cells)
            if pair_rect.size:
                pts = self.points[pair_point]
                inside = np.all(pts >= blo[pair_rect], axis=1)
                inside &= np.all(pts <= bhi[pair_rect], axis=1)
                block += np.bincount(pair_rect[inside], minlength=stop - start)
            out[start:stop] = block
        return out

    def mask_in_rects(
        self, qlo: np.ndarray, qhi: np.ndarray, rect_block: int = 2048
    ) -> np.ndarray:
        """Boolean mask of points contained (closed on both sides) in the
        union of the given rectangles."""
        qlo = np.asarray(qlo, dtype=np.float64)
        qhi = np.asarray(qhi, dtype=np.float64)
        if qlo.shape != qhi.shape or qlo.ndim != 2 or qlo.shape[1] != self.dims:
            raise ValueError("rect bounds must both have shape (n_rects, dims)")
        mask = np.zeros(self.points.shape[0], dtype=bool)
        if qlo.shape[0] == 0 or self.points.shape[0] == 0:
            return mask
        for start in range(0, qlo.shape[0], max(1, int(rect_block))):
            stop = min(qlo.shape[0], start + max(1, int(rect_block)))
            blo, bhi = qlo[start:stop], qhi[start:stop]
            clo, chi = self.cell_of(blo), self.cell_of(bhi)
            # Interior cells: strictly inside the rect, no per-point test.
            ia, ib = self._interior_bounds(clo, chi)
            _, flat_cells = self._enumerate_cells(ia, ib)
            starts = self.indptr[flat_cells]
            ends = self.indptr[flat_cells + 1]
            mask[self.order[expand_ranges(starts, ends)]] = True
            # Boundary shell: exact per-point containment.
            rect_ids, box_lo, box_hi = self._boundary_boxes(clo, chi)
            cell_item, shell_cells = self._enumerate_cells(box_lo, box_hi)
            pair_rect, pair_point = self._cell_point_pairs(rect_ids[cell_item], shell_cells)
            if pair_rect.size:
                pts = self.points[pair_point]
                inside = np.all(pts >= blo[pair_rect], axis=1)
                inside &= np.all(pts <= bhi[pair_rect], axis=1)
                mask[pair_point[inside]] = True
        return mask


# ----------------------------------------------------------------------
# Neighbor join
# ----------------------------------------------------------------------
def matching_cell_layout(
    a_points: np.ndarray, b_points: np.ndarray, distance: float
) -> Tuple[np.ndarray, float, np.ndarray]:
    """The shared cell map for a neighbor join between two point sets.

    Returns ``(origin, side, extents)``: a joint origin (elementwise minimum
    over both sets, so every cell coordinate is non-negative), a scalar cell
    side of at least ``distance * (1 + 1e-9)`` — large enough that any two
    points within L-infinity ``distance`` land in same-or-adjacent cells
    despite cell-map rounding — and per-axis key extents sized for the
    ``+/-1`` neighbor offsets of *either* set's coordinates without int64
    key collisions.
    """
    a = _as_points(a_points)
    b = _as_points(b_points)
    d = a.shape[1] if a.size or not b.size else b.shape[1]
    mins = [pts.min(axis=0) for pts in (a, b) if pts.shape[0]]
    maxs = [pts.max(axis=0) for pts in (a, b) if pts.shape[0]]
    if mins:
        origin = np.minimum.reduce(mins)
        span = np.maximum.reduce(maxs) - origin
    else:
        origin = np.zeros(d, dtype=np.float64)
        span = np.zeros(d, dtype=np.float64)
    # Cap the per-axis cell count both for the rounding-margin argument and
    # so the composed int64 keys cannot overflow in any dimension count.
    cells_cap = max(2, min(_MAX_JOIN_CELLS, int((2.0**62) ** (1.0 / max(d, 1)) / 4)))
    side = max(float(distance) * (1.0 + _SIDE_MARGIN), float(span.max(initial=0.0)) / cells_cap)
    if not (side > 0.0 and np.isfinite(side)):
        side = 1.0
    if mins:
        cmax = np.floor((np.maximum.reduce(maxs) - origin) / side).astype(np.int64)
    else:
        cmax = np.zeros(d, dtype=np.int64)
    # Shifted coordinates plus a +/-1 offset live in [0, cmax + 2].
    extents = cmax + 3
    return origin, side, extents


@dataclass
class CellJoinIndex:
    """One side of a grid neighbor join, grouped by int64 cell key.

    Build it over the larger (or reused) point set with
    :func:`matching_cell_layout`'s shared parameters, then stream the other
    side through :meth:`join_count` in chunks.  All candidate enumeration is
    sparse — only nonempty cells occupy memory — and the final predicate is
    the exact brute-force comparison, so counts are bitwise reproducible.
    """

    points: np.ndarray
    origin: np.ndarray
    side: float
    strides: np.ndarray
    keys: np.ndarray
    starts: np.ndarray
    counts: np.ndarray
    order: np.ndarray

    @classmethod
    def build(
        cls,
        points: np.ndarray,
        origin: np.ndarray,
        side: float,
        extents: np.ndarray,
    ) -> "CellJoinIndex":
        pts = _as_points(points)
        n, d = pts.shape
        extents = np.asarray(extents, dtype=np.int64)
        strides = np.ones(d, dtype=np.int64)
        for k in range(d - 2, -1, -1):
            strides[k] = strides[k + 1] * extents[k + 1]
        if n:
            coords = np.floor((pts - origin) / side).astype(np.int64) + 1
            keys_all = (coords * strides).sum(axis=1)
        else:
            keys_all = np.empty(0, dtype=np.int64)
        order = np.argsort(keys_all, kind="stable").astype(np.int64)
        keys, starts, counts = np.unique(keys_all[order], return_index=True, return_counts=True)
        return cls(
            points=pts,
            origin=np.asarray(origin, dtype=np.float64),
            side=float(side),
            strides=strides,
            keys=keys.astype(np.int64),
            starts=starts.astype(np.int64),
            counts=counts.astype(np.int64),
            order=order,
        )

    def join_count(
        self,
        other: np.ndarray,
        distance: float,
        index_mask: Optional[np.ndarray] = None,
    ) -> Tuple[int, int]:
        """Count pairs within L-infinity ``distance`` of each other.

        Returns ``(total, kept)`` where ``total`` counts every matching
        (index point, other point) pair and ``kept`` only those whose index
        point has ``index_mask`` set (``kept == total`` without a mask).
        Exact: candidates come from the 3^d adjacent cells, the decision from
        ``max(|a - b|) <= distance`` on the original float64 coordinates.
        """
        other = _as_points(other)
        if other.shape[0] == 0 or self.points.shape[0] == 0 or not (float(distance) >= 0.0):
            return 0, 0
        d = self.points.shape[1]
        if other.shape[1] != d:
            raise ValueError("point sets must share a dimensionality")
        coords = np.floor((other - self.origin) / self.side).astype(np.int64) + 1
        total = 0
        kept = 0
        for offset in itertools.product((-1, 0, 1), repeat=d):
            nkeys = ((coords + np.asarray(offset, dtype=np.int64)) * self.strides).sum(axis=1)
            pos = np.searchsorted(self.keys, nkeys)
            hit = self.keys[np.minimum(pos, self.keys.size - 1)] == nkeys
            other_ids = np.nonzero(hit)[0]
            if other_ids.size == 0:
                continue
            runs = pos[other_ids]
            run_starts = self.starts[runs]
            run_counts = self.counts[runs]
            pair_other = np.repeat(other_ids, run_counts)
            pair_index = self.order[expand_ranges(run_starts, run_starts + run_counts)]
            diffs = np.max(np.abs(self.points[pair_index] - other[pair_other]), axis=1)
            matched = diffs <= distance
            total += int(np.count_nonzero(matched))
            if index_mask is not None:
                kept += int(np.count_nonzero(matched & index_mask[pair_index]))
        return total, (total if index_mask is None else kept)
