"""FlatPSD format v2: a zero-copy, memory-mapped on-disk engine layout.

The ``.npz`` format (:mod:`repro.engine.io`, format v1) must be fully
decompressed and deserialised before the first query — startup cost and
resident memory both scale with engine size.  Format v2 trades compression
for **addressability**: every :class:`~repro.engine.flat.FlatPSD` array is
written uncompressed at a page-aligned offset, so a loader attaches the file
with ``np.memmap`` and the batch evaluator runs directly over the mapped
(read-only) pages.  Opening an engine becomes a header parse plus a handful
of ``mmap`` calls — microseconds regardless of node count — and the OS page
cache, not process heaps, holds the one physical copy that every serving
process shares.

File layout::

    bytes 0..7    magic  b"FLATPSD2"
    bytes 8..15   little-endian uint64: header length H
    bytes 16..16+H JSON header:
        meta    {format_version: 2, precision, height, fanout, name, domain_name}
        arrays  {field: {dtype, shape, offset, nbytes}}  (absolute offsets)
    ...zero padding...
    page-aligned array regions, one per FlatPSD field, in _V2_FIELDS order

Precision contract
------------------
``precision="float64"`` stores every array in the engine's canonical dtypes;
a memmapped float64 engine answers **bitwise identically** to the same engine
loaded from ``.npz`` (same values in, same float ops out).
``precision="float32"`` narrows the *count* payload only — ``released`` and
``count_epsilons`` to float32, ``child_start``/``child_end`` to int32 — while
all geometry (``lo``/``hi``/``area``/domain bounds) stays float64.  The
query-to-node decomposition (which nodes are full/partial, every uniformity
fraction, ``n(Q)``) is therefore *identical* across precisions; only the
count values are rounded once at store time, and the evaluator still
accumulates in float64 (see :mod:`repro.engine.batch`).  The added error is
bounded by per-count float32 rounding and, for Laplace-noised releases at
realistic epsilons, sits far below the noise floor — measured and gated by
``benchmarks/bench_memmap.py``.

Loading validates the header, the field table and region bounds (a missing
or truncated field is reported *by name*); the O(n) structural validation of
:meth:`FlatPSD.validate` is opt-in (``deep_validate=True``) so attach stays
sub-millisecond.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import replace
from pathlib import Path
from typing import Dict, Union

import numpy as np

from ..obs import counter_add, trace_span
from .flat import FlatPSD, _freeze, level_variances

__all__ = [
    "FORMAT_MAGIC",
    "PAGE_SIZE",
    "PRECISIONS",
    "EngineIntegrityError",
    "engine_with_precision",
    "save_engine_mmap",
    "load_engine_mmap",
]


class EngineIntegrityError(ValueError):
    """A stored engine's bytes disagree with its recorded checksums.

    Raised by ``verify=True`` loads — :func:`load_engine_mmap` against the
    per-field CRC32 values in the v2 header, :func:`repro.engine.io.load_engine`
    against an ``.npz`` file's adler32 sidecar — naming the corrupted array,
    so torn writes and bit rot are caught before a single query is answered
    from bad counts.
    """

#: Leading magic bytes of a format-v2 engine file.
FORMAT_MAGIC = b"FLATPSD2"

_FORMAT_VERSION = 2

#: Array regions start at multiples of this (a memory page), so mapped views
#: share pages cleanly across processes and never straddle the header.
PAGE_SIZE = 4096

#: Every FlatPSD array persisted in a v2 file, in on-disk order.  Unlike the
#: ``.npz`` format, the derived arrays (``area``, ``level_variance``) are
#: stored too: a v2 load must be a pure attach with no O(n) recomputation.
_V2_FIELDS = (
    "lo",
    "hi",
    "level",
    "released",
    "has_count",
    "is_leaf",
    "child_start",
    "child_end",
    "area",
    "count_epsilons",
    "level_variance",
    "domain_lo",
    "domain_hi",
)

#: On-disk dtype of every field, per precision.  Geometry is always float64;
#: float32 narrows only counts/epsilons (and node indices to int32).
_FIELD_DTYPES: Dict[str, Dict[str, str]] = {
    "float64": {
        "lo": "<f8", "hi": "<f8", "level": "<i4", "released": "<f8",
        "has_count": "|b1", "is_leaf": "|b1", "child_start": "<i8",
        "child_end": "<i8", "area": "<f8", "count_epsilons": "<f8",
        "level_variance": "<f8", "domain_lo": "<f8", "domain_hi": "<f8",
    },
    "float32": {
        "lo": "<f8", "hi": "<f8", "level": "<i4", "released": "<f4",
        "has_count": "|b1", "is_leaf": "|b1", "child_start": "<i4",
        "child_end": "<i4", "area": "<f8", "count_epsilons": "<f4",
        "level_variance": "<f8", "domain_lo": "<f8", "domain_hi": "<f8",
    },
}

PRECISIONS = tuple(sorted(_FIELD_DTYPES))


def _align(n: int) -> int:
    return -(-n // PAGE_SIZE) * PAGE_SIZE


def engine_with_precision(engine: FlatPSD, precision: str) -> FlatPSD:
    """The same engine with its storage arrays cast to ``precision``.

    ``float32`` rounds ``released``/``count_epsilons`` to float32 and narrows
    ``child_start``/``child_end`` to int32 (``level_variance`` is recomputed
    from the *rounded* epsilons, so a loader deriving it from the stored file
    agrees bitwise); geometry stays float64 so the canonical decomposition of
    every query — and with it ``n(Q)`` — is unchanged.  ``float64`` upcasts
    back to the canonical dtypes.  Returns ``engine`` itself when nothing
    needs casting.
    """
    if precision not in _FIELD_DTYPES:
        raise ValueError(f"unknown precision {precision!r} (choose from {PRECISIONS})")
    if precision == engine.storage_precision and (
        engine.child_start.dtype == np.dtype(_FIELD_DTYPES[precision]["child_start"])
    ):
        return engine
    if precision == "float32" and engine.n_nodes > np.iinfo(np.int32).max:
        raise ValueError(
            f"engine has {engine.n_nodes} nodes; int32 child offsets cap "
            f"float32 storage at {np.iinfo(np.int32).max}"
        )
    spec = _FIELD_DTYPES[precision]
    eps = np.asarray(engine.count_epsilons, dtype=np.dtype(spec["count_epsilons"]))
    return replace(
        engine,
        released=_freeze(np.asarray(engine.released, dtype=np.dtype(spec["released"]))),
        count_epsilons=_freeze(eps),
        level_variance=_freeze(level_variances(eps)),
        child_start=_freeze(np.asarray(engine.child_start, dtype=np.dtype(spec["child_start"]))),
        child_end=_freeze(np.asarray(engine.child_end, dtype=np.dtype(spec["child_end"]))),
        source_path=None,
    )


def save_engine_mmap(
    engine: FlatPSD, destination: Union[str, Path], precision: str = "float64"
) -> None:
    """Write ``engine`` to ``destination`` in the format-v2 binary layout.

    Every array lands uncompressed at a page-aligned offset recorded in the
    JSON header, ready for :func:`load_engine_mmap` to attach with
    ``np.memmap``.  ``precision`` selects the storage dtypes (see
    :func:`engine_with_precision`); the payload is still only released
    information, exactly like the ``.npz`` format.
    """
    engine = engine_with_precision(engine, precision)
    spec = _FIELD_DTYPES[precision]
    arrays = {}
    for name in _V2_FIELDS:
        arr = np.ascontiguousarray(np.asarray(getattr(engine, name), dtype=np.dtype(spec[name])))
        arrays[name] = arr

    # Page-aligned offsets relative to the data region; the data region start
    # itself grows in page steps until the header (whose serialised length
    # depends on the absolute offsets) fits in front of it.
    rel = {}
    total = 0
    for name, arr in arrays.items():
        rel[name] = total
        total += _align(max(1, arr.nbytes))
    data_start = PAGE_SIZE
    while True:
        table = {
            name: {
                "dtype": arrays[name].dtype.str,
                "shape": list(arrays[name].shape),
                "offset": data_start + rel[name],
                "nbytes": int(arrays[name].nbytes),
                # Integrity stamp over the exact bytes written below; a
                # verify=True load recomputes it per region and names the
                # first field whose bytes disagree.
                "crc32": zlib.crc32(arrays[name].tobytes(order="C")) & 0xFFFFFFFF,
            }
            for name in _V2_FIELDS
        }
        meta = {
            "format_version": _FORMAT_VERSION,
            "precision": precision,
            "height": engine.height,
            "fanout": engine.fanout,
            "name": engine.name,
            "domain_name": engine.domain_name,
        }
        header = json.dumps({"meta": meta, "arrays": table}, sort_keys=True).encode("utf-8")
        if len(FORMAT_MAGIC) + 8 + len(header) <= data_start:
            break
        data_start += PAGE_SIZE

    with open(destination, "wb") as handle:
        handle.write(FORMAT_MAGIC)
        handle.write(struct.pack("<Q", len(header)))
        handle.write(header)
        for name in _V2_FIELDS:
            handle.seek(data_start + rel[name])
            handle.write(arrays[name].tobytes(order="C"))
        # Extend the file to the last aligned slot so every region, including
        # a trailing one shorter than its slot, maps within bounds.
        handle.truncate(data_start + total)


def _parse_header(path: Path, size: int):
    with open(path, "rb") as handle:
        magic = handle.read(len(FORMAT_MAGIC))
        if magic != FORMAT_MAGIC:
            raise ValueError(f"{path}: not a FlatPSD v2 engine file (bad magic)")
        raw_len = handle.read(8)
        if len(raw_len) != 8:
            raise ValueError(f"{path}: truncated before the header length field")
        (header_len,) = struct.unpack("<Q", raw_len)
        if 16 + header_len > size:
            raise ValueError(
                f"{path}: truncated header (needs {16 + header_len} bytes, "
                f"file has {size})"
            )
        try:
            header = json.loads(handle.read(header_len).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"{path}: corrupt v2 header: {exc}")
    return header


def load_engine_mmap(
    source: Union[str, Path], deep_validate: bool = False, verify: bool = False
) -> FlatPSD:
    """Attach a format-v2 engine file as memory-mapped read-only arrays.

    Zero-copy: no array bytes are read eagerly — the returned engine's fields
    are ``np.memmap`` views paged in on demand and shared with every other
    process mapping the same file.  Header integrity, field presence, dtype
    agreement with the declared precision and region bounds are always
    checked (a missing or truncated array is reported by name);
    ``deep_validate=True`` additionally runs the O(n) structural checks of
    :meth:`FlatPSD.validate`.

    ``verify=True`` recomputes every region's CRC32 against the header stamp
    and raises :class:`EngineIntegrityError` naming the first corrupted
    array.  It pages the whole file in once (an O(bytes) scan), so it is the
    default for long-lived consumers (``repro serve``) and opt-in for
    everything latency-sensitive.
    """
    path = Path(source)
    with trace_span("engine.attach_mmap"):
        size = path.stat().st_size
        header = _parse_header(path, size)
        meta = header.get("meta") or {}
        version = meta.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported engine format version {version!r} (expected 2)")
        precision = meta.get("precision")
        if precision not in _FIELD_DTYPES:
            raise ValueError(f"{path}: unknown storage precision {precision!r}")
        spec = _FIELD_DTYPES[precision]
        table = header.get("arrays") or {}

        views: Dict[str, np.ndarray] = {}
        for name in _V2_FIELDS:
            entry = table.get(name)
            if entry is None:
                raise ValueError(f"{path}: engine file is missing array field {name!r}")
            dtype = np.dtype(str(entry["dtype"]))
            shape = tuple(int(v) for v in entry["shape"])
            offset = int(entry["offset"])
            nbytes = int(entry["nbytes"])
            if dtype != np.dtype(spec[name]):
                raise ValueError(
                    f"{path}: field {name!r} stored as {dtype.str}, but precision "
                    f"{precision!r} requires {spec[name]}"
                )
            expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            if nbytes != expected:
                raise ValueError(
                    f"{path}: field {name!r} advertises {nbytes} bytes but its "
                    f"shape {shape} needs {expected}"
                )
            if offset < 0 or offset + nbytes > size:
                raise ValueError(
                    f"{path}: field {name!r} is truncated: bytes "
                    f"[{offset}, {offset + nbytes}) exceed the {size}-byte file"
                )
            if nbytes == 0:
                views[name] = _freeze(np.empty(shape, dtype=dtype))
            else:
                # mode="r" views are read-only; each field maps the same file,
                # so the page cache holds one physical copy system-wide.
                views[name] = np.memmap(path, dtype=dtype, mode="r",
                                        offset=offset, shape=shape)
            if verify:
                recorded = entry.get("crc32")
                if recorded is None:
                    raise EngineIntegrityError(
                        f"{path}: field {name!r} carries no crc32 stamp; "
                        f"re-save the engine to enable verified loads"
                    )
                actual = zlib.crc32(np.ascontiguousarray(views[name]).tobytes()) & 0xFFFFFFFF
                if actual != int(recorded):
                    raise EngineIntegrityError(
                        f"{path}: array {name!r} is corrupted (crc32 "
                        f"{actual:#010x} != recorded {int(recorded):#010x})"
                    )

        # Cheap (O(1)-per-field) shape consistency so the evaluator can trust
        # the arrays without paging anything in.
        if views["lo"].ndim != 2 or views["lo"].shape != views["hi"].shape:
            raise ValueError(f"{path}: lo/hi must be matching (n_nodes, dims) arrays")
        n = views["lo"].shape[0]
        for name in ("level", "released", "has_count", "is_leaf",
                     "child_start", "child_end", "area"):
            if views[name].shape != (n,):
                raise ValueError(f"{path}: field {name!r} must have shape ({n},)")
        height = int(meta.get("height", -1))
        for name in ("count_epsilons", "level_variance"):
            if views[name].shape != (height + 1,):
                raise ValueError(
                    f"{path}: field {name!r} must have height + 1 = {height + 1} entries"
                )

        engine = FlatPSD(
            height=height,
            fanout=int(meta.get("fanout", 0)),
            name=str(meta.get("name", "psd")),
            domain_name=str(meta.get("domain_name", "domain")),
            source_path=str(path),
            **views,
        )
    counter_add("engine.mmap_attaches")
    if deep_validate:
        engine.validate()
    return engine
