"""Vectorised batch evaluation of range queries over a compiled PSD.

The evaluator answers ``Q`` queries in one pass of **level-synchronous
frontier expansion**.  The state is a pair of parallel index arrays
``(q_idx, n_idx)`` — every element is one "query q is examining node n"
obligation, exactly the stack entries of the recursive reference in
:mod:`repro.core.query`, but held all at once.  Each wavefront:

1. drops pairs whose node does not intersect the query (half-open box test);
2. credits *full* nodes (node rect contained in the query, released count
   present) to their query's accumulator and retires them;
3. credits intersecting *partial leaves* with the uniformity fraction
   ``overlap_area / node_area``;
4. expands every remaining pair into ``(q, child)`` pairs via the contiguous
   BFS child ranges — a single ``np.repeat``, no Python per node.

Because children sit one level below their parents, the loop runs at most
``height + 1`` iterations regardless of how many queries are in flight.  The
same pass accumulates the estimate, ``n(Q)`` (number of counts summed,
partial leaves included, matching :func:`repro.core.query.nodes_touched`) and
the analytic variance ``Err(Q)`` of Equation (1) — partial leaves contribute
``fraction^2 * Var`` like the reference.

The evaluator is **storage-dtype agnostic**: the engine's counts may be
stored as float32 and its child offsets as int32 (the reduced-precision
format-v2 layout of :mod:`repro.engine.store`), possibly as read-only
``np.memmap`` views.  Gathered counts are upcast *per element* and all
accumulation happens in float64, so narrowing the storage never compounds —
a float32 engine's answers differ from float64 only by the one-time rounding
of each stored count, and ``n(Q)``/the decomposition are identical because
geometry is always float64.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from ..geometry.rect import Rect
from ..obs import counter_add, gauge_max, metrics_enabled, trace_span
from .flat import FlatPSD, expand_ranges

__all__ = [
    "BatchQueryResult",
    "QueryMatrix",
    "batch_query",
    "batch_range_query",
    "batch_nodes_touched",
    "compile_query_matrix",
    "queries_to_arrays",
]

QueryInput = Union[Rect, Sequence[float], np.ndarray]


@dataclass(frozen=True)
class BatchQueryResult:
    """Per-query outputs of one batch evaluation.

    Attributes
    ----------
    estimates:
        ``(Q,)`` estimated counts (the canonical-decomposition answers).
    nodes_touched:
        ``(Q,)`` the ``n(Q)`` of each query — how many released counts were
        summed (full nodes plus partial leaves).
    variances:
        ``(Q,)`` the analytic ``Err(Q)`` of each query (Equation 1).
    """

    estimates: np.ndarray
    nodes_touched: np.ndarray
    variances: np.ndarray

    def __len__(self) -> int:
        return int(self.estimates.shape[0])


def queries_to_arrays(
    queries: Union[Iterable[QueryInput], np.ndarray], dims: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Normalise a query collection into ``(Q, dims)`` lo / hi arrays.

    Accepts a list of :class:`~repro.geometry.rect.Rect`, a list of flat
    ``(lo..., hi...)`` coordinate rows, or an already-stacked ``(Q, 2 * dims)``
    array.
    """
    if isinstance(queries, np.ndarray) and queries.ndim == 2:
        if queries.shape[1] != 2 * dims:
            raise ValueError(f"query array needs {2 * dims} columns (lo..., hi...)")
        arr = np.asarray(queries, dtype=np.float64)
        return _checked(np.ascontiguousarray(arr[:, :dims]), np.ascontiguousarray(arr[:, dims:]))

    query_list = queries if isinstance(queries, (list, tuple)) else list(queries)
    if query_list and all(isinstance(q, Rect) for q in query_list):
        # Homogeneous Rect input (the common workload shape): one stack over
        # the extracted bounds instead of a per-query Python append loop.
        for query in query_list:
            if query.dims != dims:
                raise ValueError(f"query has {query.dims} dims, engine has {dims}")
        lo = np.asarray([q.lo for q in query_list], dtype=np.float64)
        hi = np.asarray([q.hi for q in query_list], dtype=np.float64)
        return _checked(lo, hi)

    lo_rows = []
    hi_rows = []
    for query in query_list:
        if isinstance(query, Rect):
            if query.dims != dims:
                raise ValueError(f"query has {query.dims} dims, engine has {dims}")
            lo_rows.append(query.lo)
            hi_rows.append(query.hi)
        else:
            row = np.asarray(query, dtype=np.float64).ravel()
            if row.shape[0] != 2 * dims:
                raise ValueError(f"query row needs {2 * dims} values (lo..., hi...)")
            lo_rows.append(row[:dims])
            hi_rows.append(row[dims:])
    if not lo_rows:
        return np.empty((0, dims)), np.empty((0, dims))
    return _checked(np.asarray(lo_rows, dtype=np.float64), np.asarray(hi_rows, dtype=np.float64))


def _checked(qlo: np.ndarray, qhi: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Reject inverted or non-finite boxes; Rect enforces both at construction,
    so raw coordinate rows must too (two negative extents would otherwise
    multiply into a positive overlap, and NaN bounds would silently answer 0)."""
    finite = np.isfinite(qlo) & np.isfinite(qhi)
    bad_rows = np.any((qlo > qhi) | ~finite, axis=1)
    if np.any(bad_rows):
        bad = int(np.nonzero(bad_rows)[0][0])
        raise ValueError(f"query {bad}: bounds must be finite with lo <= hi")
    return qlo, qhi


def _expand_children(
    q_idx: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Turn (query, node) pairs into (query, child) pairs for all children."""
    return np.repeat(q_idx, ends - starts), expand_ranges(starts, ends)


def batch_query(
    engine: FlatPSD,
    queries: Union[Iterable[QueryInput], np.ndarray],
    use_uniformity: bool = True,
    chunk_queries: Optional[int] = None,
) -> BatchQueryResult:
    """Answer a batch of range queries in one vectorised pass.

    Semantics are identical to the recursive reference: for each query the
    estimate equals :func:`repro.core.query.range_query`, ``nodes_touched``
    equals :func:`repro.core.query.nodes_touched` and ``variances`` equals
    :func:`repro.core.query.query_variance` (estimates up to float summation
    order).  ``use_uniformity=False`` drops the partial-leaf contribution from
    the *estimate* only, exactly like the reference.

    ``chunk_queries`` evaluates the batch in slices of at most that many
    queries, capping the peak size of the ``(q_idx, n_idx)`` frontier (a
    100k-query batch over a deep tree can otherwise hold tens of millions of
    in-flight pairs).  Chunking never reorders any single query's
    accumulation — each query's contributions arrive in the same node order
    regardless of which other queries share its wavefront — so the outputs
    are identical to the unchunked pass (estimates to float equality; the
    sharded server relies on agreement within 1e-9).
    """
    qlo, qhi = queries_to_arrays(queries, engine.dims)
    n_queries = qlo.shape[0]
    counter_add("engine.queries", n_queries)
    with trace_span("engine.batch_query", queries=n_queries):
        if chunk_queries is not None:
            chunk = int(chunk_queries)
            if chunk < 1:
                raise ValueError("chunk_queries must be at least 1")
            if n_queries > chunk:
                counter_add("engine.chunks", -(-n_queries // chunk))
                parts = [
                    _evaluate_frontier(engine, qlo[start : start + chunk],
                                       qhi[start : start + chunk], use_uniformity)
                    for start in range(0, n_queries, chunk)
                ]
                return BatchQueryResult(
                    estimates=np.concatenate([p.estimates for p in parts]),
                    nodes_touched=np.concatenate([p.nodes_touched for p in parts]),
                    variances=np.concatenate([p.variances for p in parts]),
                )
        if n_queries:
            counter_add("engine.chunks", 1)
        return _evaluate_frontier(engine, qlo, qhi, use_uniformity)


def _evaluate_frontier(
    engine: FlatPSD, qlo: np.ndarray, qhi: np.ndarray, use_uniformity: bool
) -> BatchQueryResult:
    """One level-synchronous frontier pass over pre-normalised query bounds."""
    n_queries = qlo.shape[0]
    estimates = np.zeros(n_queries, dtype=np.float64)
    touched = np.zeros(n_queries, dtype=np.int64)
    variances = np.zeros(n_queries, dtype=np.float64)
    if n_queries == 0 or engine.n_nodes == 0:
        return BatchQueryResult(estimates, touched, variances)

    # Wavefront: query q is examining node n, starting with every query at root.
    q_idx = np.arange(n_queries, dtype=np.int64)
    n_idx = np.zeros(n_queries, dtype=np.int64)
    track_peak = metrics_enabled()
    peak = 0

    while q_idx.size:
        if track_peak and q_idx.size > peak:
            peak = int(q_idx.size)
        node_lo = engine.lo[n_idx]
        node_hi = engine.hi[n_idx]
        cur_qlo = qlo[q_idx]
        cur_qhi = qhi[q_idx]

        intersects = np.all((node_hi > cur_qlo) & (cur_qhi > node_lo), axis=1)
        if not intersects.all():
            q_idx = q_idx[intersects]
            n_idx = n_idx[intersects]
            node_lo = node_lo[intersects]
            node_hi = node_hi[intersects]
            cur_qlo = cur_qlo[intersects]
            cur_qhi = cur_qhi[intersects]
            if not q_idx.size:
                break

        contained = np.all((node_lo >= cur_qlo) & (node_hi <= cur_qhi), axis=1)
        has_count = engine.has_count[n_idx]
        leaf = engine.is_leaf[n_idx]

        full = contained & has_count
        if full.any():
            fq = q_idx[full]
            fn = n_idx[full]
            # Upcast gathered counts before accumulating: float32 storage
            # rounds each count once at store time, never during summation.
            released = engine.released[fn].astype(np.float64, copy=False)
            estimates += np.bincount(fq, weights=released, minlength=n_queries)
            touched += np.bincount(fq, minlength=n_queries)
            variances += np.bincount(
                fq, weights=engine.level_variance[engine.level[fn]], minlength=n_queries
            )

        partial = leaf & has_count & ~contained
        if partial.any():
            pn = n_idx[partial]
            node_area = engine.area[pn]
            overlap = np.prod(
                np.minimum(node_hi[partial], cur_qhi[partial])
                - np.maximum(node_lo[partial], cur_qlo[partial]),
                axis=1,
            )
            ok = (node_area > 0) & (overlap > 0)
            if ok.any():
                pq = q_idx[partial][ok]
                pn = pn[ok]
                fraction = overlap[ok] / node_area[ok]
                if use_uniformity:
                    released = engine.released[pn].astype(np.float64, copy=False)
                    estimates += np.bincount(
                        pq, weights=released * fraction, minlength=n_queries
                    )
                touched += np.bincount(pq, minlength=n_queries)
                variances += np.bincount(
                    pq,
                    weights=fraction * fraction * engine.level_variance[engine.level[pn]],
                    minlength=n_queries,
                )

        descend = ~full & ~leaf
        q_idx, n_idx = _expand_children(
            q_idx[descend], engine.child_start[n_idx[descend]], engine.child_end[n_idx[descend]]
        )

    if track_peak and peak:
        gauge_max("engine.frontier_peak", peak)
    return BatchQueryResult(estimates, touched, variances)


def batch_range_query(
    engine: FlatPSD,
    queries: Union[Iterable[QueryInput], np.ndarray],
    use_uniformity: bool = True,
    chunk_queries: Optional[int] = None,
) -> np.ndarray:
    """The ``(Q,)`` estimated counts for a batch of queries."""
    return batch_query(engine, queries, use_uniformity=use_uniformity,
                       chunk_queries=chunk_queries).estimates


def batch_nodes_touched(
    engine: FlatPSD, queries: Union[Iterable[QueryInput], np.ndarray]
) -> np.ndarray:
    """The ``(Q,)`` per-query ``n(Q)`` values."""
    return batch_query(engine, queries).nodes_touched


# ----------------------------------------------------------------------
# Workload algebra: queries as a sparse incidence matrix over the nodes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryMatrix:
    """A workload compiled to a sparse query-to-node incidence matrix ``S``.

    Row ``q`` holds the canonical decomposition of query ``q`` over one tree
    *structure*: weight ``1`` for every exact-cover node and the uniformity
    fraction ``overlap / area`` for every partially covered boundary leaf.
    The decomposition depends only on the geometry and the released-count
    pattern — never on the count *values* — so one matrix answers the same
    workload against **any number of noisy releases** of that structure:
    ``S @ counts_matrix`` replaces one frontier traversal per release.

    Stored in CSR form (``indptr`` / ``indices`` / ``weights``) with a
    ``partial`` mask so both uniformity modes are served by the same matrix.
    """

    indptr: np.ndarray   # (Q + 1,) row offsets into the entry arrays
    indices: np.ndarray  # (nnz,) node index of each entry
    weights: np.ndarray  # (nnz,) 1.0 for full nodes, the fraction for partial leaves
    partial: np.ndarray  # (nnz,) True where the entry is a partial boundary leaf
    n_nodes: int

    @property
    def n_queries(self) -> int:
        return int(self.indptr.shape[0] - 1)

    @property
    def nnz(self) -> int:
        return int(self.indices.shape[0])

    def nodes_touched(self) -> np.ndarray:
        """Per-query ``n(Q)``: identical to :attr:`BatchQueryResult.nodes_touched`."""
        return np.diff(self.indptr)

    def _row_sums(self, contrib: np.ndarray) -> np.ndarray:
        """Sum per-entry contributions into per-query rows (CSR row reduce).

        Entries are sorted by query, so consecutive non-empty rows are
        contiguous segments and ``reduceat`` sums each exactly once; empty
        rows (which ``reduceat`` cannot represent) stay zero.
        """
        out = np.zeros((self.n_queries,) + contrib.shape[1:], dtype=np.float64)
        starts = self.indptr[:-1]
        nonempty = starts != self.indptr[1:]
        if np.any(nonempty):
            out[nonempty] = np.add.reduceat(contrib, starts[nonempty], axis=0)
        return out

    def dot(self, counts: np.ndarray, use_uniformity: bool = True) -> np.ndarray:
        """``S @ counts`` — estimates for one or many releases at once.

        ``counts`` is the engine's ``released`` vector (``(n_nodes,)``) or a
        ``(n_nodes, R)`` matrix of released counts, one column per release;
        the result has shape ``(Q,)`` or ``(Q, R)`` accordingly and matches
        :func:`batch_range_query` per release up to float summation order.
        """
        counts = np.asarray(counts, dtype=np.float64)
        if counts.shape[0] != self.n_nodes:
            raise ValueError(
                f"counts has {counts.shape[0]} rows, matrix was compiled over "
                f"{self.n_nodes} nodes"
            )
        weights = self.weights
        if not use_uniformity:
            weights = np.where(self.partial, 0.0, weights)
        gathered = counts[self.indices]
        contrib = gathered * (weights if counts.ndim == 1 else weights[:, None])
        return self._row_sums(contrib)

    def variances(self, level_variance: np.ndarray, node_levels: np.ndarray) -> np.ndarray:
        """Per-query ``Err(Q)`` under the given per-level count variances.

        ``level_variance`` may be ``(height + 1,)`` or ``(height + 1, R)`` —
        releases under different budgets share the decomposition but not the
        variance, so the level axis is the only per-release input needed.
        """
        var = np.asarray(level_variance, dtype=np.float64)[np.asarray(node_levels)[self.indices]]
        w2 = self.weights * self.weights
        contrib = var * (w2 if var.ndim == 1 else w2[:, None])
        return self._row_sums(contrib)


def compile_query_matrix(
    engine: FlatPSD, queries: Union[Iterable[QueryInput], np.ndarray]
) -> QueryMatrix:
    """Compile a workload's canonical decompositions into a :class:`QueryMatrix`.

    One frontier pass (the same level-synchronous expansion as
    :func:`batch_query`) records, instead of accumulating, every (query, node,
    weight) obligation: full nodes with weight 1 and partially covered leaves
    with their uniformity fraction.  ``S.dot(engine.released)`` then equals
    ``batch_range_query(engine, queries)`` up to float summation order, and
    ``S.dot(counts_matrix)`` evaluates every release of a sweep in one product.
    """
    with trace_span("engine.compile_matrix"):
        matrix = _compile_query_matrix(engine, queries)
    counter_add("engine.matrices_compiled", 1)
    return matrix


def _compile_query_matrix(
    engine: FlatPSD, queries: Union[Iterable[QueryInput], np.ndarray]
) -> QueryMatrix:
    qlo, qhi = queries_to_arrays(queries, engine.dims)
    n_queries = qlo.shape[0]
    q_parts = []
    n_parts = []
    w_parts = []
    p_parts = []
    if n_queries and engine.n_nodes:
        q_idx = np.arange(n_queries, dtype=np.int64)
        n_idx = np.zeros(n_queries, dtype=np.int64)
        while q_idx.size:
            node_lo = engine.lo[n_idx]
            node_hi = engine.hi[n_idx]
            cur_qlo = qlo[q_idx]
            cur_qhi = qhi[q_idx]

            intersects = np.all((node_hi > cur_qlo) & (cur_qhi > node_lo), axis=1)
            if not intersects.all():
                q_idx = q_idx[intersects]
                n_idx = n_idx[intersects]
                node_lo = node_lo[intersects]
                node_hi = node_hi[intersects]
                cur_qlo = cur_qlo[intersects]
                cur_qhi = cur_qhi[intersects]
                if not q_idx.size:
                    break

            contained = np.all((node_lo >= cur_qlo) & (node_hi <= cur_qhi), axis=1)
            has_count = engine.has_count[n_idx]
            leaf = engine.is_leaf[n_idx]

            full = contained & has_count
            if full.any():
                q_parts.append(q_idx[full])
                n_parts.append(n_idx[full])
                w_parts.append(np.ones(int(full.sum())))
                p_parts.append(np.zeros(int(full.sum()), dtype=bool))

            partial = leaf & has_count & ~contained
            if partial.any():
                pn = n_idx[partial]
                node_area = engine.area[pn]
                overlap = np.prod(
                    np.minimum(node_hi[partial], cur_qhi[partial])
                    - np.maximum(node_lo[partial], cur_qlo[partial]),
                    axis=1,
                )
                ok = (node_area > 0) & (overlap > 0)
                if ok.any():
                    q_parts.append(q_idx[partial][ok])
                    n_parts.append(pn[ok])
                    w_parts.append(overlap[ok] / node_area[ok])
                    p_parts.append(np.ones(int(ok.sum()), dtype=bool))

            descend = ~full & ~leaf
            q_idx, n_idx = _expand_children(
                q_idx[descend], engine.child_start[n_idx[descend]],
                engine.child_end[n_idx[descend]]
            )

    if q_parts:
        q_all = np.concatenate(q_parts)
        order = np.argsort(q_all, kind="stable")
        q_all = q_all[order]
        indices = np.concatenate(n_parts)[order]
        weights = np.concatenate(w_parts)[order]
        partial = np.concatenate(p_parts)[order]
    else:
        q_all = np.empty(0, dtype=np.int64)
        indices = np.empty(0, dtype=np.int64)
        weights = np.empty(0)
        partial = np.empty(0, dtype=bool)
    counts_per_query = np.bincount(q_all, minlength=n_queries)
    indptr = np.concatenate(([0], np.cumsum(counts_per_query)))
    return QueryMatrix(indptr=indptr, indices=indices, weights=weights,
                       partial=partial, n_nodes=engine.n_nodes)
