"""LRU answer caching for a compiled PSD engine.

A released PSD never changes, so every distinct query rectangle has one fixed
answer — ideal conditions for caching.  Serving workloads are also heavily
skewed (dashboards refresh the same regions, popular map tiles repeat), so an
LRU over canonicalised query rects turns the common case into a dictionary
hit.

Keys are produced by :func:`canonical_rect_key`: coordinates are rounded to a
fixed number of significant decimal digits so queries that differ only by
float formatting noise (e.g. a rect that went through JSON) share an entry,
while genuinely different rects collide with negligible probability at the
default 12 digits.

:class:`CachedEngine` wraps a :class:`~repro.engine.flat.FlatPSD` with the
same query surface (``range_query`` / ``nodes_touched`` / ``query_variance``
/ ``batch_query``).  All three scalar quantities are cached together, so a
``range_query`` hit also pre-warms ``query_variance`` for the same rect.  The
batch path is cache-aware: hits are served from the store and only the misses
go through one vectorised evaluation.

The wrapped engine may be a memory-mapped one (format v2, loaded via
:func:`repro.engine.io.load_engine`): the evaluator reads the mapped arrays
directly, so cache misses page in only the regions they touch and cache hits
touch the file not at all — an LRU in front of a mapped engine is how a
server keeps hot queries fast over a tree larger than RAM.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from ..obs import counter_add
from .batch import BatchQueryResult, QueryInput, batch_query, queries_to_arrays
from .flat import FlatPSD

__all__ = ["canonical_rect_key", "QueryCache", "CachedEngine"]

#: One cached answer: (estimate, n(Q), Err(Q)).
CacheEntry = Tuple[float, int, float]


def canonical_rect_key(lo, hi, ndigits: int = 12) -> Tuple[float, ...]:
    """A hashable canonical form of a query rectangle.

    Rounds every coordinate to ``ndigits`` significant decimal digits (via the
    ``float('%.*g')`` round-trip) so representation noise does not fragment
    the cache, and concatenates ``lo`` then ``hi`` into one flat tuple.
    """
    values = [float(v) for v in lo] + [float(v) for v in hi]
    return tuple(float(f"{v:.{ndigits}g}") for v in values)


class QueryCache:
    """A bounded LRU mapping canonical query keys to cached answers.

    Thread-safe: every operation holds one internal lock, so a cache can be
    shared by the threads of a sharded serving front-end (the LRU reordering
    of ``OrderedDict`` is not safe under concurrent mutation, and the
    hit/miss counters must move together with the store).  Lookups and
    insertions are dictionary operations, so the critical sections are tiny;
    evaluation of misses always happens *outside* the lock.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.maxsize = int(maxsize)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.RLock()
        self._store: "OrderedDict[Tuple[float, ...], CacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def get(self, key: Tuple[float, ...]) -> "CacheEntry | None":
        with self._lock:
            entry = self._store.get(key)
            if entry is None:
                self.misses += 1
                counter_add("cache.misses")
                return None
            self._store.move_to_end(key)
            self.hits += 1
            counter_add("cache.hits")
            return entry

    def put(self, key: Tuple[float, ...], entry: CacheEntry) -> None:
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
            self._store[key] = entry
            if len(self._store) > self.maxsize:
                self._store.popitem(last=False)
                self.evictions += 1
                counter_add("cache.evictions")

    def clear(self) -> None:
        with self._lock:
            self._store.clear()

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus the current size."""
        with self._lock:
            return {
                "size": len(self._store),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


@dataclass
class _Normalised:
    lo: np.ndarray
    hi: np.ndarray
    keys: List[Tuple[float, ...]]


class CachedEngine:
    """A :class:`FlatPSD` wrapped with an LRU answer cache.

    Parameters
    ----------
    engine:
        The compiled engine to serve from.
    maxsize:
        Cache capacity in distinct query rectangles.
    ndigits:
        Significant digits used by the canonical key (see
        :func:`canonical_rect_key`).
    evaluator:
        Optional replacement for the miss path: a callable taking a
        ``(Q, 2 * dims)`` query array and returning a
        :class:`~repro.engine.batch.BatchQueryResult`.  Pass a
        :meth:`repro.parallel.serve.ShardedQueryServer.batch_query` bound
        method to put the answer cache in front of a sharded worker pool —
        hits are served in-process, only misses fan out.

    Notes
    -----
    Only the ``use_uniformity=True`` answers are cached (the serving default);
    calls with ``use_uniformity=False`` bypass the cache entirely rather than
    double the key space.  The underlying :class:`QueryCache` is thread-safe,
    so one ``CachedEngine`` may be shared by concurrent serving threads;
    racing misses on the same rect evaluate redundantly but insert identical
    entries.
    """

    def __init__(
        self,
        engine: FlatPSD,
        maxsize: int = 4096,
        ndigits: int = 12,
        evaluator: Optional[Callable[[np.ndarray], BatchQueryResult]] = None,
    ) -> None:
        self.engine = engine
        self.ndigits = int(ndigits)
        self.cache = QueryCache(maxsize=maxsize)
        self._evaluate = evaluator or (lambda rows: batch_query(self.engine, rows))

    @property
    def hits(self) -> int:
        """Lifetime cache hits (mirrors ``QueryCache.hits``)."""
        return self.cache.hits

    @property
    def misses(self) -> int:
        """Lifetime cache misses (mirrors ``QueryCache.misses``)."""
        return self.cache.misses

    # ------------------------------------------------------------------
    def _normalise(self, queries: Union[Iterable[QueryInput], np.ndarray]) -> _Normalised:
        qlo, qhi = queries_to_arrays(queries, self.engine.dims)
        keys = [
            canonical_rect_key(qlo[i], qhi[i], ndigits=self.ndigits)
            for i in range(qlo.shape[0])
        ]
        return _Normalised(qlo, qhi, keys)

    def _lookup_one(self, query: QueryInput) -> CacheEntry:
        norm = self._normalise([query])
        key = norm.keys[0]
        entry = self.cache.get(key)
        if entry is None:
            result = self._evaluate(np.hstack([norm.lo, norm.hi]))
            entry = (
                float(result.estimates[0]),
                int(result.nodes_touched[0]),
                float(result.variances[0]),
            )
            self.cache.put(key, entry)
        return entry

    # ------------------------------------------------------------------
    # Single-query surface (mirrors PrivateSpatialDecomposition / FlatPSD)
    # ------------------------------------------------------------------
    def range_query(self, query: QueryInput, use_uniformity: bool = True) -> float:
        """Cached estimate for one query rectangle."""
        if not use_uniformity:
            return self.engine.range_query(query, use_uniformity=False)
        return self._lookup_one(query)[0]

    def nodes_touched(self, query: QueryInput) -> int:
        """Cached ``n(Q)`` for one query rectangle."""
        return self._lookup_one(query)[1]

    def query_variance(self, query: QueryInput) -> float:
        """Cached ``Err(Q)`` for one query rectangle."""
        return self._lookup_one(query)[2]

    # ------------------------------------------------------------------
    def batch_query(
        self, queries: Union[Iterable[QueryInput], np.ndarray], use_uniformity: bool = True
    ) -> BatchQueryResult:
        """Batch evaluation that serves hits from the cache.

        Misses are evaluated together in one vectorised pass and inserted; the
        returned arrays are in the input query order.
        """
        if not use_uniformity:
            return batch_query(self.engine, queries, use_uniformity=False)
        norm = self._normalise(queries)
        n_queries = norm.lo.shape[0]
        estimates = np.zeros(n_queries, dtype=np.float64)
        touched = np.zeros(n_queries, dtype=np.int64)
        variances = np.zeros(n_queries, dtype=np.float64)

        miss_positions: List[int] = []
        # A batch can repeat a rect: make the second occurrence wait for the
        # first instead of evaluating it twice.
        pending: Dict[Tuple[float, ...], List[int]] = {}
        for i, key in enumerate(norm.keys):
            if key in pending:
                # Coalesced onto an earlier miss in this batch: one evaluation
                # serves all occurrences, so only the first counts as a miss.
                pending[key].append(i)
                continue
            entry = self.cache.get(key)
            if entry is not None:
                estimates[i], touched[i], variances[i] = entry
            else:
                pending[key] = [i]
                miss_positions.append(i)

        if miss_positions:
            miss = np.asarray(miss_positions, dtype=np.int64)
            result = self._evaluate(np.hstack([norm.lo[miss], norm.hi[miss]]))
            for j, i in enumerate(miss_positions):
                entry = (
                    float(result.estimates[j]),
                    int(result.nodes_touched[j]),
                    float(result.variances[j]),
                )
                self.cache.put(norm.keys[i], entry)
                for position in pending[norm.keys[i]]:
                    estimates[position], touched[position], variances[position] = entry
        return BatchQueryResult(estimates, touched, variances)

    def batch_range_query(
        self, queries: Union[Iterable[QueryInput], np.ndarray], use_uniformity: bool = True
    ) -> np.ndarray:
        """Cached batch estimates in input order."""
        return self.batch_query(queries, use_uniformity=use_uniformity).estimates

    def stats(self) -> Dict[str, int]:
        """Cache statistics (size, hits, misses, evictions)."""
        return self.cache.stats()
