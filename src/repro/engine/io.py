"""Persistence for compiled PSD engines: ``.npz`` (v1) and memmap (v2).

The JSON release (:mod:`repro.core.serialization`) is the canonical published
artifact — human-inspectable, structure-validated, tool-friendly.  But a
query *server* should not pay JSON parsing plus tree reconstruction plus
compilation on every start.  Two binary formats serve that need:

* **format v1** — a compressed ``.npz`` of the compiled
  :class:`~repro.engine.flat.FlatPSD` arrays.  Small on disk; loading
  decompresses everything into process RAM and re-validates the structural
  invariants, so a corrupted file fails loudly.
* **format v2** — the uncompressed, page-aligned layout of
  :mod:`repro.engine.store`.  Loading attaches the file with ``np.memmap``
  in microseconds regardless of size; the OS page cache holds the single
  physical copy shared by every serving process.  Supports reduced-precision
  (float32 counts / int32 offsets) storage.

:func:`load_engine` dispatches on the file's magic bytes, not its suffix, so
``repro query`` serves either format transparently.  The payload of both is
only released information (rects, released counts, per-level epsilons) —
shipping an engine file is as privacy-safe as shipping the JSON.
"""

from __future__ import annotations

import json
import os
import zipfile
import zlib
from pathlib import Path
from typing import IO, Optional, Union

import numpy as np

from ..obs import counter_add, gauge_max, trace_span
from .flat import FlatPSD, _freeze, level_variances
from .store import (
    FORMAT_MAGIC,
    EngineIntegrityError,
    engine_with_precision,
    load_engine_mmap,
    save_engine_mmap,
)

__all__ = ["save_engine", "load_engine", "detect_engine_format", "ENGINE_FORMATS"]

#: Suffix of the integrity sidecar written next to every ``.npz`` engine:
#: ``engine.npz`` gets ``engine.npz.adler32`` holding one adler32 per array.
SIDECAR_SUFFIX = ".adler32"

_FORMAT_VERSION = 1

#: The on-disk formats :func:`save_engine` can write.
ENGINE_FORMATS = ("npz", "mmap")

# The arrays persisted in the .npz.  `area` and `level_variance` are *not*
# among them: both are fully derivable (from lo/hi and count_epsilons) and are
# recomputed on load, so corrupted values can never skew answers and the file
# carries no dead bytes.
_ARRAY_FIELDS = (
    "lo",
    "hi",
    "level",
    "released",
    "has_count",
    "is_leaf",
    "child_start",
    "child_end",
    "count_epsilons",
    "domain_lo",
    "domain_hi",
)


def detect_engine_format(source: Union[str, Path]) -> Optional[str]:
    """Sniff an engine file's format from its magic bytes.

    Returns ``"npz"`` (zip magic), ``"mmap"`` (format-v2 magic) or ``None``
    when the file is neither — e.g. a JSON release — or cannot be read; the
    caller decides how to proceed (``repro query`` falls back to the JSON
    loader).
    """
    try:
        with open(source, "rb") as handle:
            head = handle.read(len(FORMAT_MAGIC))
    except OSError:
        return None
    if head == FORMAT_MAGIC:
        return "mmap"
    if head[:4] == b"PK\x03\x04":
        return "npz"
    return None


def save_engine(
    engine: FlatPSD,
    destination: Union[str, Path, IO[bytes]],
    format: str = "npz",
    precision: str = "float64",
) -> None:
    """Write a compiled engine to ``destination``.

    ``format="npz"`` (the default, format v1) writes a compressed archive;
    scalar metadata (height, fanout, names) travels as a JSON string under
    the ``meta`` key, everything else as native arrays.  ``format="mmap"``
    writes the page-aligned format-v2 layout for zero-copy serving (requires
    a filesystem path).  ``precision`` narrows count storage to float32 /
    int32 offsets before writing (see
    :func:`repro.engine.store.engine_with_precision`).
    """
    if format not in ENGINE_FORMATS:
        raise ValueError(f"unknown engine format {format!r} (choose from {ENGINE_FORMATS})")
    if format == "mmap":
        if not isinstance(destination, (str, Path)):
            raise ValueError("format='mmap' requires a filesystem path destination")
        save_engine_mmap(engine, destination, precision=precision)
        return
    engine = engine_with_precision(engine, precision)
    meta = {
        "format_version": _FORMAT_VERSION,
        "height": engine.height,
        "fanout": engine.fanout,
        "name": engine.name,
        "domain_name": engine.domain_name,
    }
    arrays = {name: np.asarray(getattr(engine, name)) for name in _ARRAY_FIELDS}
    if isinstance(destination, (str, Path)):
        # np.savez appends '.npz' to bare string paths; write through an open
        # handle so the file lands exactly where the caller asked.
        with open(destination, "wb") as handle:
            np.savez_compressed(handle, meta=np.array(json.dumps(meta)), **arrays)
        _write_npz_sidecar(Path(destination), arrays)
        return
    np.savez_compressed(destination, meta=np.array(json.dumps(meta)), **arrays)


def _array_adler32(array: np.ndarray) -> int:
    return zlib.adler32(np.ascontiguousarray(array).tobytes()) & 0xFFFFFFFF


def _write_npz_sidecar(destination: Path, arrays) -> None:
    """Stamp ``<engine>.npz.adler32`` with one checksum per stored array.

    Written atomically (temp file + ``os.replace``) so a crash mid-save can
    leave a missing sidecar — which a ``verify=True`` load reports — but
    never a torn one that would accuse a healthy engine.
    """
    sidecar = destination.with_name(destination.name + SIDECAR_SUFFIX)
    payload = {
        "format": "npz-adler32",
        "arrays": {name: _array_adler32(arr) for name, arr in arrays.items()},
    }
    tmp = sidecar.with_name(sidecar.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, sidecar)


def _verify_npz_arrays(source: Path, arrays) -> None:
    """Check every decompressed array against the ``.adler32`` sidecar."""
    sidecar = source.with_name(source.name + SIDECAR_SUFFIX)
    try:
        with open(sidecar, "r", encoding="utf-8") as handle:
            recorded = json.load(handle)
    except FileNotFoundError:
        raise EngineIntegrityError(
            f"{source}: no integrity sidecar {sidecar.name!r}; re-save the "
            f"engine (or load with verify=False)"
        )
    except (OSError, json.JSONDecodeError) as exc:
        raise EngineIntegrityError(f"{source}: unreadable integrity sidecar: {exc}")
    table = recorded.get("arrays") or {}
    for name, array in arrays.items():
        if name not in table:
            raise EngineIntegrityError(
                f"{source}: sidecar carries no checksum for array {name!r}"
            )
        actual = _array_adler32(array)
        if actual != int(table[name]):
            raise EngineIntegrityError(
                f"{source}: array {name!r} is corrupted (adler32 {actual:#010x} "
                f"!= recorded {int(table[name]):#010x})"
            )


def _load_engine_npz(
    source: Union[str, Path, IO[bytes]], verify: bool = False
) -> FlatPSD:
    """The format-v1 loader: decompress, recompute derived arrays, validate."""
    try:
        payload_ctx = np.load(source, allow_pickle=False)
    except (zipfile.BadZipFile, OSError, EOFError) as exc:
        raise ValueError(
            f"cannot read compiled engine {source!r}: {exc} "
            "(file truncated or not an engine .npz?)"
        )
    with payload_ctx as payload:
        if "meta" not in payload:
            raise ValueError("not a compiled-engine file: missing 'meta' entry")
        meta = json.loads(str(payload["meta"]))
        version = meta.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported engine format version {version!r}")
        missing = [name for name in _ARRAY_FIELDS if name not in payload]
        if missing:
            raise ValueError(f"engine file is missing arrays: {missing}")
        arrays = {}
        for name in _ARRAY_FIELDS:
            # NpzFile decompresses members lazily, so a member cut short by a
            # truncated file surfaces here — attribute it to its field.
            try:
                arrays[name] = np.asarray(payload[name])
            except Exception as exc:
                raise ValueError(f"array field {name!r} is truncated or corrupt: {exc}")
    if verify:
        if not isinstance(source, (str, Path)):
            raise ValueError("verify=True requires a filesystem path source")
        _verify_npz_arrays(Path(source), arrays)
    # The derivable arrays are recomputed, never read from the file.
    arrays["level_variance"] = level_variances(arrays["count_epsilons"])
    if arrays["lo"].ndim != 2 or arrays["lo"].shape != arrays["hi"].shape:
        raise ValueError("lo/hi must be matching (n_nodes, dims) arrays")
    arrays["area"] = np.prod(arrays["hi"] - arrays["lo"], axis=1)
    arrays = {name: _freeze(array) for name, array in arrays.items()}
    engine = FlatPSD(
        height=int(meta["height"]),
        fanout=int(meta["fanout"]),
        name=str(meta.get("name", "psd")),
        domain_name=str(meta.get("domain_name", "domain")),
        source_path=str(source) if isinstance(source, (str, Path)) else None,
        **arrays,
    )
    return engine.validate()


def load_engine(
    source: Union[str, Path, IO[bytes]],
    deep_validate: Optional[bool] = None,
    verify: bool = False,
) -> FlatPSD:
    """Load a compiled engine, dispatching on the file's magic bytes.

    ``.npz`` files (format v1) are decompressed into RAM and fully
    re-validated.  Format-v2 files are attached zero-copy as read-only
    ``np.memmap`` views after header/bounds validation only — pass
    ``deep_validate=True`` to additionally run the O(n) structural checks
    (which pages the whole file in, forfeiting the fast attach).
    File-like sources are supported for ``.npz`` only.

    ``verify=True`` checks every array's bytes against the stored checksums
    (the v2 header's per-region CRC32, or the ``.npz`` file's adler32
    sidecar) and raises
    :class:`~repro.engine.store.EngineIntegrityError` naming the corrupted
    array.  ``repro serve`` verifies by default — a query server must never
    answer from silently rotten counts.

    Raises :class:`ValueError` on unknown formats/versions, missing or
    truncated arrays (reported by field name) or structural-invariant
    violations (via :meth:`FlatPSD.validate`).
    """
    fmt = "npz"
    if isinstance(source, (str, Path)):
        detected = detect_engine_format(source)
        if detected is not None:
            fmt = detected
    with trace_span("engine.load", format=fmt, verify=verify):
        if fmt == "mmap":
            engine = load_engine_mmap(
                source, deep_validate=bool(deep_validate), verify=verify
            )
        else:
            engine = _load_engine_npz(source, verify=verify)
            if deep_validate:  # already validated, but honour an explicit ask
                engine.validate()
    if verify:
        counter_add("engine.verified_loads", format=fmt)
    counter_add("engine.loads", format=fmt)
    mapped = engine.mapped_nbytes()
    if mapped:
        gauge_max("engine.bytes_mapped", mapped)
    return engine
