"""``.npz`` persistence for compiled PSD engines.

The JSON release (:mod:`repro.core.serialization`) is the canonical published
artifact — human-inspectable, structure-validated, tool-friendly.  But a
query *server* should not pay JSON parsing plus tree reconstruction plus
compilation on every start.  This module saves the compiled
:class:`~repro.engine.flat.FlatPSD` arrays directly to a compressed ``.npz``:
loading is a handful of ``np.load`` reads straight into the batch evaluator's
working form.

The payload is still only released information (rects, released counts,
per-level epsilons) — shipping the ``.npz`` is as privacy-safe as shipping
the JSON.  Structural invariants are re-validated on load so a truncated or
hand-edited file fails loudly instead of answering queries wrongly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Union

import numpy as np

from .flat import FlatPSD, _freeze, level_variances

__all__ = ["save_engine", "load_engine"]

_FORMAT_VERSION = 1

# The arrays persisted in the .npz.  `area` and `level_variance` are *not*
# among them: both are fully derivable (from lo/hi and count_epsilons) and are
# recomputed on load, so corrupted values can never skew answers and the file
# carries no dead bytes.
_ARRAY_FIELDS = (
    "lo",
    "hi",
    "level",
    "released",
    "has_count",
    "is_leaf",
    "child_start",
    "child_end",
    "count_epsilons",
    "domain_lo",
    "domain_hi",
)


def save_engine(engine: FlatPSD, destination: Union[str, Path, IO[bytes]]) -> None:
    """Write a compiled engine to ``destination`` as a compressed ``.npz``.

    Scalar metadata (height, fanout, names) travels as a JSON string under the
    ``meta`` key; everything else is stored as native arrays.
    """
    meta = {
        "format_version": _FORMAT_VERSION,
        "height": engine.height,
        "fanout": engine.fanout,
        "name": engine.name,
        "domain_name": engine.domain_name,
    }
    arrays = {name: np.asarray(getattr(engine, name)) for name in _ARRAY_FIELDS}
    if isinstance(destination, (str, Path)):
        # np.savez appends '.npz' to bare string paths; write through an open
        # handle so the file lands exactly where the caller asked.
        with open(destination, "wb") as handle:
            np.savez_compressed(handle, meta=np.array(json.dumps(meta)), **arrays)
        return
    np.savez_compressed(destination, meta=np.array(json.dumps(meta)), **arrays)


def load_engine(source: Union[str, Path, IO[bytes]]) -> FlatPSD:
    """Load a compiled engine previously written by :func:`save_engine`.

    Raises :class:`ValueError` on unknown format versions, missing arrays or
    structural-invariant violations (via :meth:`FlatPSD.validate`).
    """
    with np.load(source, allow_pickle=False) as payload:
        if "meta" not in payload:
            raise ValueError("not a compiled-engine file: missing 'meta' entry")
        meta = json.loads(str(payload["meta"]))
        version = meta.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported engine format version {version!r}")
        missing = [name for name in _ARRAY_FIELDS if name not in payload]
        if missing:
            raise ValueError(f"engine file is missing arrays: {missing}")
        arrays = {name: np.asarray(payload[name]) for name in _ARRAY_FIELDS}
    # The derivable arrays are recomputed, never read from the file.
    arrays["level_variance"] = level_variances(arrays["count_epsilons"])
    if arrays["lo"].ndim != 2 or arrays["lo"].shape != arrays["hi"].shape:
        raise ValueError("lo/hi must be matching (n_nodes, dims) arrays")
    arrays["area"] = np.prod(arrays["hi"] - arrays["lo"], axis=1)
    arrays = {name: _freeze(array) for name, array in arrays.items()}
    engine = FlatPSD(
        height=int(meta["height"]),
        fanout=int(meta["fanout"]),
        name=str(meta.get("name", "psd")),
        domain_name=str(meta.get("domain_name", "domain")),
        **arrays,
    )
    return engine.validate()
