"""Compiling a pointer-based PSD into a flat structure-of-arrays engine.

The compiled form lays the nodes out in **breadth-first order**: node 0 is the
root, and every node's children occupy the contiguous index range
``[child_start[i], child_end[i])``.  That single invariant is what makes the
batch evaluator a loop of array operations — a query frontier expands into the
next wavefront with one ``np.repeat`` instead of per-node pointer chasing.

All arrays are read-only (``writeable=False``): a compiled engine is a view of
a *released* artifact and must never drift from the tree it was compiled from.
When the tree itself is mutated (post-processing, pruning) the memoised engine
attached to the PSD is dropped via :func:`invalidate_compiled_engine`.

The container is **dtype-generic**: the compiler always produces the
canonical dtypes (float64 counts/geometry, int64 child offsets), but the
arrays may equally be float32 counts with int32 child offsets (the
reduced-precision storage of :mod:`repro.engine.store`) or read-only
``np.memmap`` views of a format-v2 file — the batch evaluator accumulates in
float64 regardless of what dtype the storage arrays carry, and the OS page
cache, not this object, owns mapped bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

import numpy as np

from ..privacy.mechanisms import laplace_variance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.tree import PrivateSpatialDecomposition, PSDNode

__all__ = [
    "FlatPSD",
    "compile_psd",
    "compile_hilbert_rtree",
    "compiled_engine",
    "compiled_planar_engine",
    "invalidate_compiled_engine",
    "expand_ranges",
    "level_variances",
    "COMPILED_ENGINE_KEY",
    "PLANAR_ENGINE_KEY",
]

#: Metadata key under which :func:`compiled_engine` memoises the compiled form.
COMPILED_ENGINE_KEY = "_compiled_flat_engine"

#: Metadata key for the planar (bounding-box) view of a Hilbert R-tree.
PLANAR_ENGINE_KEY = "_compiled_planar_engine"


def _freeze(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


@dataclass
class FlatPSD:
    """A released PSD compiled to contiguous arrays, ready for batch queries.

    Attributes
    ----------
    lo, hi:
        ``(n_nodes, dims)`` rectangle bounds per node (half-open boxes, same
        convention as :class:`~repro.geometry.rect.Rect`).
    level:
        ``(n_nodes,)`` node levels (leaves 0, root ``height``).
    released:
        ``(n_nodes,)`` the count a query uses — post-processed when present,
        otherwise the raw noisy count; ``0.0`` where ``has_count`` is false.
    has_count:
        ``(n_nodes,)`` whether the node carries a usable released count
        (mirrors ``repro.core.query._has_released_count``).
    is_leaf:
        ``(n_nodes,)`` leaf mask (after any pruning).
    child_start, child_end:
        ``(n_nodes,)`` BFS child offset ranges; equal for leaves.
    area:
        ``(n_nodes,)`` rectangle areas, used for uniformity fractions.
    count_epsilons:
        ``(height + 1,)`` per-level Laplace parameters, indexed by level.
    level_variance:
        ``(height + 1,)`` per-level count variance ``2 / eps_i^2`` (zero for
        unreleased levels), the per-node term of Equation (1).
    """

    lo: np.ndarray
    hi: np.ndarray
    level: np.ndarray
    released: np.ndarray
    has_count: np.ndarray
    is_leaf: np.ndarray
    child_start: np.ndarray
    child_end: np.ndarray
    area: np.ndarray
    count_epsilons: np.ndarray
    level_variance: np.ndarray
    height: int
    fanout: int
    name: str = "psd"
    domain_lo: np.ndarray = field(default=None)  # type: ignore[assignment]
    domain_hi: np.ndarray = field(default=None)  # type: ignore[assignment]
    domain_name: str = "domain"
    #: Path of the on-disk engine file this instance was loaded from (set by
    #: the loaders in :mod:`repro.engine.io` / :mod:`repro.engine.store`);
    #: ``None`` for engines compiled in RAM.
    source_path: str = None  # type: ignore[assignment]

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return int(self.lo.shape[0])

    @property
    def dims(self) -> int:
        return int(self.lo.shape[1])

    @property
    def storage_precision(self) -> str:
        """``"float32"`` when the released counts are stored narrowed,
        ``"float64"`` otherwise (the canonical compile output)."""
        return "float32" if self.released.dtype == np.float32 else "float64"

    def _arrays(self):
        return (self.lo, self.hi, self.level, self.released, self.has_count,
                self.is_leaf, self.child_start, self.child_end, self.area,
                self.count_epsilons, self.level_variance,
                self.domain_lo, self.domain_hi)

    def nbytes(self) -> int:
        """Memory footprint of the compiled arrays (mapped bytes included)."""
        return int(sum(a.nbytes for a in self._arrays()))

    def mapped_nbytes(self) -> int:
        """Bytes served from memory-mapped storage rather than process heap.

        Non-zero exactly when the engine was attached from a format-v2 file
        (:func:`repro.engine.store.load_engine_mmap`); those bytes live in
        the OS page cache and are shared with every process mapping the
        same file.
        """
        return int(sum(a.nbytes for a in self._arrays() if isinstance(a, np.memmap)))

    def validate(self) -> "FlatPSD":
        """Check the structural invariants the batch evaluator relies on.

        Raises :class:`ValueError` on malformed input (wrong shapes, child
        ranges out of bounds or non-BFS, level mismatches).  Used by the
        ``.npz`` loader so a corrupted file fails loudly.
        """
        n = self.n_nodes
        if n == 0:
            raise ValueError("compiled engine must contain at least the root node")
        if self.lo.shape != self.hi.shape or self.lo.ndim != 2:
            raise ValueError("lo/hi must be matching (n_nodes, dims) arrays")
        if not (np.all(np.isfinite(self.lo)) and np.all(np.isfinite(self.hi))):
            raise ValueError("node bounds must be finite")
        if np.any(self.lo > self.hi):
            raise ValueError("node lower bounds must not exceed upper bounds")
        if not np.all(np.isfinite(self.released)):
            raise ValueError("released counts must be finite (0.0 where has_count is false)")
        for name in ("level", "released", "has_count", "is_leaf",
                     "child_start", "child_end", "area"):
            if getattr(self, name).shape != (n,):
                raise ValueError(f"{name} must have shape ({n},)")
        if self.count_epsilons.shape != (self.height + 1,):
            raise ValueError("count_epsilons must have height + 1 entries")
        if self.level_variance.shape != (self.height + 1,):
            raise ValueError("level_variance must have height + 1 entries")
        if not np.all(np.isfinite(self.level_variance)) or np.any(self.level_variance < 0):
            raise ValueError("level_variance entries must be finite and non-negative")
        dims = self.dims
        if self.domain_lo.shape != (dims,) or self.domain_hi.shape != (dims,):
            raise ValueError("domain bounds must match the node dimensionality")
        if int(self.level[0]) != self.height:
            raise ValueError("node 0 must be the root at level == height")
        if np.any(self.level < 0) or np.any(self.level > self.height):
            raise ValueError("node levels must lie within [0, height]")
        starts, ends = self.child_start, self.child_end
        if np.any(ends < starts) or np.any(starts < 0) or np.any(ends > n):
            raise ValueError("child offset ranges out of bounds")
        leaf = ends == starts
        if not np.array_equal(leaf, self.is_leaf):
            raise ValueError("is_leaf mask inconsistent with child offsets")
        internal = ~leaf
        if np.any(starts[internal] <= np.nonzero(internal)[0]):
            raise ValueError("children must come after their parent in BFS order")
        parent_level = np.repeat(self.level[internal], (ends - starts)[internal])
        child_idx = expand_ranges(starts[internal], ends[internal])
        # In a breadth-first layout the child ranges, read in node order, must
        # partition nodes 1..n-1 exactly — no gaps, no aliased subtrees.
        if not np.array_equal(child_idx, np.arange(1, n, dtype=np.int64)):
            raise ValueError("child ranges must partition nodes 1..n-1 in BFS order")
        if not np.array_equal(self.level[child_idx], parent_level - 1):
            raise ValueError("child level must be one less than its parent's")
        return self

    # ------------------------------------------------------------------
    # Single-query conveniences (delegate to the batch evaluator)
    # ------------------------------------------------------------------
    def range_query(self, query, use_uniformity: bool = True) -> float:
        """Estimated count inside ``query`` — flat equivalent of
        :func:`repro.core.query.range_query`."""
        from .batch import batch_query

        result = batch_query(self, [query], use_uniformity=use_uniformity)
        return float(result.estimates[0])

    def nodes_touched(self, query) -> int:
        """``n(Q)`` — flat equivalent of :func:`repro.core.query.nodes_touched`."""
        from .batch import batch_query

        return int(batch_query(self, [query]).nodes_touched[0])

    def query_variance(self, query) -> float:
        """``Err(Q)`` — flat equivalent of :func:`repro.core.query.query_variance`."""
        from .batch import batch_query

        return float(batch_query(self, [query]).variances[0])

    def query_matrix(self, queries):
        """Compile a workload into a sparse query-to-node matrix over this
        structure (see :func:`repro.engine.batch.compile_query_matrix`):
        the decomposition of every query, reusable against any number of
        noisy releases of the same structure via ``matrix.dot(counts)``."""
        from .batch import compile_query_matrix

        return compile_query_matrix(self, queries)


def level_variances(count_epsilons) -> np.ndarray:
    """Per-level count variance ``2 / eps_i^2`` (zero for unreleased levels).

    The single source of the per-node variance term of Equation (1), shared by
    the compiler and the ``.npz`` loader.
    """
    return np.asarray(
        [laplace_variance(e) if e > 0 else 0.0 for e in count_epsilons], dtype=np.float64
    )


def expand_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, e)`` for every (s, e) pair, fully vectorised.

    This is the ragged-range primitive behind both structure validation and
    the batch evaluator's frontier expansion.
    """
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out_ends = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(out_ends - counts, counts)
    return np.repeat(starts, counts) + offsets


def compile_psd(psd: "PrivateSpatialDecomposition") -> FlatPSD:
    """Compile a built PSD into its flat structure-of-arrays form.

    Works for any of the three tree families (quadtree, kd-tree, Hilbert
    R-tree — for the latter this is the 1-D index tree; see
    :func:`compile_hilbert_rtree` for the planar view) and for pruned /
    incomplete trees: the only assumptions are the ones the recursive
    reference also makes (child rects nested in parents, child level one
    below the parent's).

    A **flat-native** tree (built by ``build_psd(layout="flat")``) is already
    in BFS array form, so "compilation" degenerates to a cheap array snapshot
    — no pointer walk, no node materialisation.
    """
    flat = getattr(psd, "flat_tree", None)
    if flat is not None:
        return _compile_from_flat_tree(flat, psd)
    return _compile(psd, lambda node: node.rect, psd.domain, psd.name)


def _released_from_flat_tree(tree, eps: np.ndarray):
    """The released counts and usability mask of a flat build-side tree.

    Same predicate as ``_has_released_count``: post-processed counts are
    always usable, raw noisy counts only where the level released one.
    """
    if tree.post_count is not None:
        released = tree.post_count.astype(np.float64, copy=True)
        has_count = np.ones(tree.n_nodes, dtype=bool)
    else:
        has_count = (eps[tree.level] > 0) & np.isfinite(tree.noisy_count)
        released = np.where(has_count, tree.noisy_count, 0.0)
    return released, has_count


def _compile_from_flat_tree(tree, psd: "PrivateSpatialDecomposition") -> FlatPSD:
    """Snapshot a flat-native build-side tree into the frozen engine form.

    Applies the same released-count predicate as ``_has_released_count``:
    post-processed counts are always usable, raw noisy counts only where the
    level released one.  Arrays are copied so later build-side mutations can
    never alias into a released engine.
    """
    eps = np.asarray(psd.count_epsilons, dtype=np.float64)
    released, has_count = _released_from_flat_tree(tree, eps)
    lo = tree.lo.astype(np.float64, copy=True)
    hi = tree.hi.astype(np.float64, copy=True)
    return FlatPSD(
        lo=_freeze(lo),
        hi=_freeze(hi),
        level=_freeze(tree.level.astype(np.int32, copy=True)),
        released=_freeze(released),
        has_count=_freeze(has_count),
        is_leaf=_freeze(tree.is_leaf.copy()),
        child_start=_freeze(tree.child_start.astype(np.int64, copy=True)),
        child_end=_freeze(tree.child_end.astype(np.int64, copy=True)),
        area=_freeze(np.prod(hi - lo, axis=1)),
        count_epsilons=_freeze(eps),
        level_variance=_freeze(level_variances(eps)),
        height=psd.height,
        fanout=psd.fanout,
        name=psd.name,
        domain_lo=_freeze(np.asarray(psd.domain.rect.lo, dtype=np.float64)),
        domain_hi=_freeze(np.asarray(psd.domain.rect.hi, dtype=np.float64)),
        domain_name=psd.domain.name,
    )


def compile_hilbert_rtree(tree) -> FlatPSD:
    """Compile the planar (bounding-box) view of a private Hilbert R-tree.

    The node rectangles of the compiled engine are the planar bounding boxes
    of each node's Hilbert-index interval — the R-tree rectangles the paper
    releases — so the engine answers **planar** queries with the same
    semantics as :meth:`~repro.core.hilbert_rtree.PrivateHilbertRTree.range_query`.
    Unlike the other tree families, sibling boxes may overlap; the evaluator
    never assumes disjointness, so nothing changes.

    A **flat-native** 1-D tree compiles without materialising pointer nodes:
    the interval bounds come straight from the BFS arrays and all bounding
    boxes are produced by one vectorised
    :meth:`~repro.geometry.hilbert.HilbertCurve.range_bboxes` pass — bitwise
    identical to the per-node ``node_bbox`` walk, at a fraction of the cost.
    """
    flat = getattr(tree.psd, "flat_tree", None)
    if flat is not None:
        return _compile_planar_from_flat_tree(flat, tree)
    return _compile(tree.psd, tree.node_bbox, tree.domain, tree.name)


def _compile_planar_from_flat_tree(ft, tree) -> FlatPSD:
    """Planar Hilbert engine straight from the flat 1-D arrays (no node walk)."""
    from ..core.hilbert_rtree import hilbert_interval_bounds

    curve = tree.curve
    psd = tree.psd
    lo_idx, hi_idx = hilbert_interval_bounds(ft.lo[:, 0], ft.hi[:, 0], curve)
    lo, hi = curve.range_bboxes(lo_idx, hi_idx)
    eps = np.asarray(psd.count_epsilons, dtype=np.float64)
    released, has_count = _released_from_flat_tree(ft, eps)
    return FlatPSD(
        lo=_freeze(lo),
        hi=_freeze(hi),
        level=_freeze(ft.level.astype(np.int32, copy=True)),
        released=_freeze(released),
        has_count=_freeze(has_count),
        is_leaf=_freeze(ft.is_leaf.copy()),
        child_start=_freeze(ft.child_start.astype(np.int64, copy=True)),
        child_end=_freeze(ft.child_end.astype(np.int64, copy=True)),
        area=_freeze(np.prod(hi - lo, axis=1)),
        count_epsilons=_freeze(eps),
        level_variance=_freeze(level_variances(eps)),
        height=psd.height,
        fanout=psd.fanout,
        name=tree.name,
        domain_lo=_freeze(np.asarray(tree.domain.rect.lo, dtype=np.float64)),
        domain_hi=_freeze(np.asarray(tree.domain.rect.hi, dtype=np.float64)),
        domain_name=tree.domain.name,
    )


def _compile(psd: "PrivateSpatialDecomposition", rect_of, domain, name: str) -> FlatPSD:
    # Breadth-first order (the canonical array order): every node's children
    # end up in one contiguous index range.
    from ..core.flatbuild import bfs_order

    order: List["PSDNode"] = bfs_order(psd.root)
    n = len(order)
    dims = domain.dims

    starts = np.empty(n, dtype=np.int64)
    ends = np.empty(n, dtype=np.int64)
    pos = 1
    for idx, node in enumerate(order):
        starts[idx] = pos
        pos += len(node.children)
        ends[idx] = pos

    lo = np.empty((n, dims), dtype=np.float64)
    hi = np.empty((n, dims), dtype=np.float64)
    level = np.empty(n, dtype=np.int32)
    released = np.zeros(n, dtype=np.float64)
    has_count = np.zeros(n, dtype=bool)
    # The reference predicate for "carries a usable released count" — shared
    # with the recursive backend so the two can never drift apart.
    from ..core.query import _has_released_count

    eps = np.asarray(psd.count_epsilons, dtype=np.float64)
    for idx, node in enumerate(order):
        rect = rect_of(node)
        lo[idx] = rect.lo
        hi[idx] = rect.hi
        level[idx] = node.level
        if _has_released_count(psd, node):
            released[idx] = node.released_count
            has_count[idx] = True

    flat = FlatPSD(
        lo=_freeze(lo),
        hi=_freeze(hi),
        level=_freeze(level),
        released=_freeze(released),
        has_count=_freeze(has_count),
        is_leaf=_freeze(ends == starts),
        child_start=_freeze(starts),
        child_end=_freeze(ends),
        area=_freeze(np.prod(hi - lo, axis=1)),
        count_epsilons=_freeze(eps),
        level_variance=_freeze(level_variances(eps)),
        height=psd.height,
        fanout=psd.fanout,
        name=name,
        domain_lo=_freeze(np.asarray(domain.rect.lo, dtype=np.float64)),
        domain_hi=_freeze(np.asarray(domain.rect.hi, dtype=np.float64)),
        domain_name=domain.name,
    )
    return flat


def compiled_engine(psd: "PrivateSpatialDecomposition") -> FlatPSD:
    """The memoised compiled engine for ``psd``, compiling on first use.

    The engine is cached in ``psd.metadata`` so repeated ``backend="flat"``
    queries pay the compile once.  Post-processing and pruning drop the cache
    (see :func:`invalidate_compiled_engine`); the cache entry is also skipped
    by serialisation, which only keeps JSON-compatible metadata.
    """
    cached = psd.metadata.get(COMPILED_ENGINE_KEY)
    if isinstance(cached, FlatPSD):
        return cached
    engine = compile_psd(psd)
    psd.metadata[COMPILED_ENGINE_KEY] = engine
    return engine


def compiled_planar_engine(tree) -> FlatPSD:
    """The memoised planar engine of a Hilbert R-tree, compiling on first use.

    Memoised in the underlying PSD's metadata (like :func:`compiled_engine`)
    so that a mutation of the 1-D tree — whether through the
    :class:`~repro.core.hilbert_rtree.PrivateHilbertRTree` wrappers or by
    calling ``apply_ols`` / ``prune_low_count_subtrees`` on ``tree.psd``
    directly — drops both compiled views at once.
    """
    cached = tree.psd.metadata.get(PLANAR_ENGINE_KEY)
    if isinstance(cached, FlatPSD):
        return cached
    engine = compile_hilbert_rtree(tree)
    tree.psd.metadata[PLANAR_ENGINE_KEY] = engine
    return engine


def invalidate_compiled_engine(psd: "PrivateSpatialDecomposition") -> None:
    """Drop the memoised compiled engines after a mutation of the tree.

    Called by :func:`repro.core.postprocess.apply_ols` and
    :func:`repro.core.pruning.prune_low_count_subtrees`, the two released-data
    transformations that change query answers.  Clears both the direct view
    and, for Hilbert R-trees, the planar bounding-box view.
    """
    metadata: Dict[str, object] = getattr(psd, "metadata", None) or {}
    metadata.pop(COMPILED_ENGINE_KEY, None)
    metadata.pop(PLANAR_ENGINE_KEY, None)
