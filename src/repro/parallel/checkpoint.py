"""Crash-safe sweep checkpoints: a journal of completed cases, replayable bitwise.

A paper-scale sweep is hours of compute whose unit of loss used to be the
whole run: one worker OOM, one SIGKILL, one power cut and every finished
case evaporated with the process.  This module gives :func:`repro.experiments.common.run_sweep`
a durable spine — an append-only JSON-lines **journal** in the idiom of the
serving layer's budget WAL (:mod:`repro.serve.ledger`):

* **journal-on-completion** — the moment a case's rows are computed they are
  appended to the journal and ``fsync``\\ ed, before the sweep moves on.  A
  crash at any point therefore loses at most the cases still in flight;
* **bitwise replay** — every float in a journaled row travels as
  ``float.hex()`` (with a decimal rendering alongside for human audit), so a
  replayed row is bit-for-bit the row the original run computed.  Combined
  with the per-case ``SeedSequence.spawn`` contract (case ``i``'s stream
  depends only on the sweep seed and ``i``, never on what other cases drew),
  a resumed sweep — replayed cases from the journal, remaining cases
  recomputed on their own spawned streams — is **bitwise identical** to an
  uninterrupted run;
* **fingerprints, not faith** — the journal header records a fingerprint of
  the whole sweep (every case's label, row keys and spawned-stream key, plus
  the workload content hashes) and each case record carries its own case
  fingerprint.  A journal written by a *different* sweep (other seed, other
  grid, other workloads) refuses to resume — replaying it would silently
  splice foreign rows into the output;
* **torn-tail tolerance, nothing more** — a crash mid-append leaves a
  partial last line; replay discards it and truncates the file back to the
  last complete record.  Any *other* malformation refuses to resume with a
  named error (below): a checkpoint must never guess which cases are done.

Named refusal errors
--------------------
=================================  =========================================
:class:`CheckpointHeaderError`     the sweep header record is missing, torn
                                   or not a header — e.g. the file was
                                   truncated from the front
:class:`CheckpointCorruptError`    a complete line is not a valid journal
                                   record (garbage, duplicate case, bad
                                   index)
:class:`CheckpointSequenceGapError` record ``seq`` numbers are not
                                   contiguous — records missing or reordered
:class:`CheckpointMismatchError`   a fingerprint disagrees: the journal
                                   belongs to a different sweep (seed, case
                                   grid or workloads changed)
=================================  =========================================

File format (one JSON object per line)::

    {"kind": "sweep", "seq": 1, "fingerprint": "<sha1>", "cases": N}
    {"kind": "case",  "seq": 2, "case": 3, "fingerprint": "<sha1>",
     "rows": [{"epsilon": {"f64": "0x1p-1", "approx": "0.5"}, ...}, ...]}
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence

from ..obs import counter_add, trace_span

__all__ = [
    "CheckpointError",
    "CheckpointHeaderError",
    "CheckpointCorruptError",
    "CheckpointSequenceGapError",
    "CheckpointMismatchError",
    "SweepCheckpoint",
    "encode_rows",
    "decode_rows",
]


class CheckpointError(ValueError):
    """Base class: the checkpoint journal cannot be trusted for a resume."""


class CheckpointHeaderError(CheckpointError):
    """The sweep header record is missing, torn, or not a header record."""


class CheckpointCorruptError(CheckpointError):
    """A complete journal line is not a valid record (garbage bytes,
    duplicate or out-of-range case index, wrong record kind)."""


class CheckpointSequenceGapError(CheckpointError):
    """Record sequence numbers are not contiguous — records were lost or
    reordered somewhere other than the torn tail."""


class CheckpointMismatchError(CheckpointError):
    """The journal's fingerprints belong to a different sweep (different
    seed, case grid, workloads or case count)."""


# ----------------------------------------------------------------------
# Row codec: floats as hex, everything else as native JSON scalars
# ----------------------------------------------------------------------
def _encode_value(value):
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        # repr() of a NaN is not valid strict JSON, so the human-readable
        # rendering travels as a string; the hex field is the value of record.
        return {"f64": value.hex(), "approx": repr(value)}
    raise TypeError(
        f"sweep rows must contain only scalars (str/int/float/bool/None); "
        f"got {type(value).__name__}"
    )


def _decode_value(value):
    if isinstance(value, dict):
        try:
            return float.fromhex(value["f64"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointCorruptError(f"malformed float record {value!r}") from exc
    return value


def encode_rows(rows: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Journal form of a case's result rows: float values hex-encoded,
    key order preserved (rows replay in exactly their computed shape)."""
    return [{key: _encode_value(val) for key, val in row.items()} for row in rows]


def decode_rows(rows: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Inverse of :func:`encode_rows`; bitwise-exact floats via ``fromhex``."""
    return [{key: _decode_value(val) for key, val in row.items()} for row in rows]


# ----------------------------------------------------------------------
class SweepCheckpoint:
    """The journal of one sweep: completed case rows, durable and replayable.

    Parameters
    ----------
    path:
        The journal file.  Created with a header record if missing or empty;
        replayed (and validated against the fingerprints) if present.
    sweep_fingerprint:
        Content hash of the whole sweep (cases + streams + workloads); must
        match an existing journal's header or the resume is refused.
    case_fingerprints:
        Per-case content hashes, indexed by case position; each replayed
        case record must match its slot.

    After construction, :attr:`completed` maps case index → decoded rows for
    every case already journaled; :meth:`record` appends (and fsyncs) a
    freshly finished case.  All floats round-trip bitwise via ``float.hex``.
    """

    def __init__(
        self,
        path: str,
        sweep_fingerprint: str,
        case_fingerprints: Sequence[str],
    ) -> None:
        self.path = str(path)
        self.sweep_fingerprint = str(sweep_fingerprint)
        self.case_fingerprints = [str(f) for f in case_fingerprints]
        self._completed: Dict[int, List[Dict[str, object]]] = {}
        self._seq = 0
        with trace_span("checkpoint.open", path=self.path):
            self._replay()
            # Append handle opened after replay so a refused resume leaves the
            # file byte-identical for post-mortem inspection.
            self._handle = open(self.path, "a", encoding="utf-8")
            if self._seq == 0:
                self._append(
                    {
                        "kind": "sweep",
                        "seq": 1,
                        "fingerprint": self.sweep_fingerprint,
                        "cases": len(self.case_fingerprints),
                    }
                )
                self._seq = 1

    # ------------------------------------------------------------------
    @property
    def completed(self) -> Dict[int, List[Dict[str, object]]]:
        """Case index → replayed rows for every case already journaled."""
        return dict(self._completed)

    @property
    def n_completed(self) -> int:
        return len(self._completed)

    # ------------------------------------------------------------------
    def _replay(self) -> None:
        """Rebuild :attr:`completed` from the journal; truncate a torn tail.

        Refusal before tolerance: every complete line must parse, sequence,
        and fingerprint-match — only a partial *last* line (a crash cut the
        append mid-write) is silently dropped, and even that is only
        tolerated once a valid header exists.
        """
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return
        if not raw:
            return
        valid_bytes = 0
        offset = 0
        records: List[Dict[str, object]] = []
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                break  # torn tail: dropped below (header case handled first)
            line = raw[offset : newline + 1]
            try:
                record = json.loads(line.decode("utf-8"))
                if not isinstance(record, dict) or "kind" not in record:
                    raise ValueError("not a journal record")
            except ValueError as exc:
                if not records:
                    raise CheckpointHeaderError(
                        f"checkpoint {self.path}: first record is not a valid "
                        f"sweep header: {exc}"
                    ) from exc
                raise CheckpointCorruptError(
                    f"checkpoint {self.path}: corrupt record at byte {offset}: {exc}"
                ) from exc
            records.append(record)
            offset = newline + 1
            valid_bytes = offset
        if not records:
            raise CheckpointHeaderError(
                f"checkpoint {self.path}: no complete header record (file "
                f"truncated mid-header?) — delete the file to start fresh"
            )
        for record in records:
            self._apply(record)
        if valid_bytes < len(raw):
            counter_add("checkpoint.torn_tail_truncated")
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_bytes)
        counter_add("checkpoint.cases_replayed", len(self._completed))

    def _apply(self, record: Dict[str, object]) -> None:
        kind = record.get("kind")
        try:
            seq = int(record.get("seq", -1))
        except (TypeError, ValueError):
            raise CheckpointCorruptError(
                f"checkpoint {self.path}: non-integer seq in record {record!r}"
            )
        if self._seq == 0:
            if kind != "sweep":
                raise CheckpointHeaderError(
                    f"checkpoint {self.path}: first record must be the sweep "
                    f"header, found kind {kind!r}"
                )
            if record.get("fingerprint") != self.sweep_fingerprint:
                raise CheckpointMismatchError(
                    f"checkpoint {self.path}: journal belongs to a different "
                    f"sweep (header fingerprint {record.get('fingerprint')!r} != "
                    f"expected {self.sweep_fingerprint!r}); refusing to splice "
                    f"its rows into this run"
                )
            if int(record.get("cases", -1)) != len(self.case_fingerprints):
                raise CheckpointMismatchError(
                    f"checkpoint {self.path}: journal covers "
                    f"{record.get('cases')} cases, this sweep has "
                    f"{len(self.case_fingerprints)}"
                )
            if seq != 1:
                raise CheckpointSequenceGapError(
                    f"checkpoint {self.path}: header seq is {seq}, expected 1"
                )
            self._seq = 1
            return
        if seq != self._seq + 1:
            raise CheckpointSequenceGapError(
                f"checkpoint {self.path}: sequence gap (expected {self._seq + 1}, "
                f"found {seq}) — records missing or reordered"
            )
        if kind != "case":
            raise CheckpointCorruptError(
                f"checkpoint {self.path}: unknown record kind {kind!r}"
            )
        try:
            index = int(record["case"])
        except (KeyError, TypeError, ValueError):
            raise CheckpointCorruptError(
                f"checkpoint {self.path}: case record without a valid index"
            )
        if not 0 <= index < len(self.case_fingerprints):
            raise CheckpointCorruptError(
                f"checkpoint {self.path}: case index {index} out of range "
                f"[0, {len(self.case_fingerprints)})"
            )
        if index in self._completed:
            raise CheckpointCorruptError(
                f"checkpoint {self.path}: case {index} journaled twice"
            )
        if record.get("fingerprint") != self.case_fingerprints[index]:
            raise CheckpointMismatchError(
                f"checkpoint {self.path}: case {index} fingerprint "
                f"{record.get('fingerprint')!r} != expected "
                f"{self.case_fingerprints[index]!r} (different seed, stream or "
                f"case definition)"
            )
        rows = record.get("rows")
        if not isinstance(rows, list):
            raise CheckpointCorruptError(
                f"checkpoint {self.path}: case {index} record has no rows list"
            )
        self._completed[index] = decode_rows(rows)
        self._seq = seq

    # ------------------------------------------------------------------
    def _append(self, record: Dict[str, object]) -> None:
        """Durably append one record, or leave the journal byte-identical.

        Same contract as the budget WAL's append: capture the pre-write
        offset, and on any failure truncate back to it so the next append —
        or the next resume — never sees a half-written line glued to a
        healthy one.
        """
        start = self._handle.tell()
        try:
            self._handle.write(json.dumps(record) + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except BaseException:
            try:
                self._handle.truncate(start)
                self._handle.seek(start)
            except OSError:  # pragma: no cover - disk gone entirely
                pass
            raise

    def record(self, case_index: int, rows: Sequence[Dict[str, object]]) -> None:
        """Journal one freshly completed case (append + fsync)."""
        index = int(case_index)
        if index in self._completed:
            return  # replayed earlier in this same resume; nothing to add
        self._append(
            {
                "kind": "case",
                "seq": self._seq + 1,
                "case": index,
                "fingerprint": self.case_fingerprints[index],
                "rows": encode_rows(list(rows)),
            }
        )
        self._seq += 1
        self._completed[index] = [dict(row) for row in rows]
        counter_add("checkpoint.cases_journaled")

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the append handle (idempotent); the journal stays on disk."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
