"""Sharded query serving: one shared compiled engine, many worker processes.

A compiled :class:`~repro.engine.flat.FlatPSD` is a read-only bundle of
arrays — exactly the shape of thing :mod:`repro.parallel.shm` shares for
free.  :class:`ShardedQueryServer` exports the engine into shared memory
once, starts a process pool whose workers attach the same pages, and serves
every query batch by fanning fixed-size **chunks** across the pool (the
``chunk_queries=`` path of :func:`repro.engine.batch.batch_query`, which
also caps each worker's peak frontier memory).  Results come back in input
order; per-query outputs are identical to the single-process evaluator
because chunking never changes any query's own accumulation order.

A precompiled :class:`~repro.engine.batch.QueryMatrix` can be shared the
same way: :meth:`ShardedQueryServer.matrix_dot` ships the CSR buffers once
and splits the release axis across the pool — the serving analogue of the
sweep pipeline's ``S @ counts`` product.

A *memory-mapped* engine (format v2, :mod:`repro.engine.store`) needs no
shared-memory export at all: its arrays pickle as
:class:`~repro.parallel.shm.MappedArrayHandle` file references, so every
worker re-maps the same engine file and the OS page cache holds the single
physical copy.  Serving a mapped engine to N workers therefore costs N tiny
mmap calls, not N (or even 1) array copies — check
``stats()["engine_mapped_bytes"]`` to confirm the zero-copy path is active.

The server composes with the LRU answer cache: pass
``CachedEngine(server.engine, evaluator=server.batch_query)`` so hits are
answered from the (thread-safe) cache and only misses fan out.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from ..engine.batch import BatchQueryResult, QueryInput, batch_query, queries_to_arrays
from ..engine.flat import FlatPSD
from ..obs import (
    counter_add,
    gauge_max,
    merge_obs_snapshot,
    metrics_enabled,
    obs_snapshot,
    tracing_enabled,
)
from .shm import SharedArena, SharedArrayHandle, attach_array, dumps_shared, loads_shared

__all__ = ["ShardedQueryServer"]

#: Default number of queries per fanned-out chunk — large enough that worker
#: dispatch overhead is noise, small enough to spread a batch across cores
#: and bound each worker's (q_idx, n_idx) frontier.
DEFAULT_CHUNK_QUERIES = 1024

_SERVE: Dict = {}


def _init_serve_worker(payload: bytes) -> None:
    # Forked workers inherit the parent's Python-level signal handlers AND its
    # signal wakeup fd.  Under an asyncio parent that is poisonous: a SIGTERM
    # delivered to a *worker* (e.g. executor cleanup after a sibling crashed)
    # would run the inherited handler, which writes the signal number into the
    # shared wakeup socketpair — and the parent's event loop reads it as a
    # signal delivered to *itself*, shutting the server down.  Detach the
    # wakeup fd and restore default dispositions before serving anything.
    import signal

    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (ValueError, OSError):  # pragma: no cover
            pass

    from .sweep import _init_worker_obs

    state = loads_shared(payload)
    _SERVE.update(state)
    _init_worker_obs(state.get("obs") or {})


def _serve_chunk(
    rows: np.ndarray, use_uniformity: bool
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, object]:
    result = batch_query(_SERVE["engine"], rows, use_uniformity=use_uniformity)
    return result.estimates, result.nodes_touched, result.variances, obs_snapshot()


def _worker_exit(code: int = 1) -> None:  # pragma: no cover - runs in a worker
    """Kill the worker that picks this task up (fault injection / tests).

    ``os._exit`` skips interpreter teardown, which is exactly what a crashed
    worker looks like: the pool's next result raises ``BrokenProcessPool``.
    """
    os._exit(code)


def _serve_matrix_rows(
    key: int, start: int, stop: int, counts: "np.ndarray | SharedArrayHandle"
) -> np.ndarray:
    if isinstance(counts, SharedArrayHandle):
        counts = attach_array(counts)
    return _matrix_row_slice(_SERVE["matrices"][key], start, stop, counts)


def _matrix_row_slice(matrix, start: int, stop: int, counts: np.ndarray) -> np.ndarray:
    """``(S @ counts)[start:stop]`` without materialising the other rows."""
    from ..engine.batch import QueryMatrix

    lo, hi = int(matrix.indptr[start]), int(matrix.indptr[stop])
    sliced = QueryMatrix(
        indptr=matrix.indptr[start : stop + 1] - matrix.indptr[start],
        indices=matrix.indices[lo:hi],
        weights=matrix.weights[lo:hi],
        partial=matrix.partial[lo:hi],
        n_nodes=matrix.n_nodes,
    )
    return sliced.dot(counts)


class ShardedQueryServer:
    """Serve batched range queries from a pool of processes over one engine.

    Parameters
    ----------
    engine:
        The compiled engine to serve.  Its arrays are exported to shared
        memory once; workers attach views instead of receiving copies.
    workers:
        Pool size; ``None``/negative means all cores.
    chunk_queries:
        Queries per fanned-out chunk (also the ``chunk_queries=`` passed to
        each worker's evaluator, capping its frontier memory).
    max_rebuilds:
        How many times one batch may rebuild a broken pool before its
        remaining chunks are served in-process.
    rebuild_backoff:
        Optional ``callable(attempt)`` run before each rebuild (install a
        sleep for bounded exponential backoff; default: rebuild immediately).

    Use as a context manager (or call :meth:`close`) so the pool and the
    shared segments are reclaimed deterministically.
    """

    def __init__(
        self,
        engine: FlatPSD,
        workers: Optional[int] = None,
        chunk_queries: int = DEFAULT_CHUNK_QUERIES,
        max_rebuilds: int = 3,
        rebuild_backoff: Optional[Callable[[int], None]] = None,
    ) -> None:
        from .sweep import resolve_workers

        if chunk_queries < 1:
            raise ValueError("chunk_queries must be at least 1")
        if max_rebuilds < 0:
            raise ValueError("max_rebuilds must be non-negative")
        self.engine = engine
        self.chunk_queries = int(chunk_queries)
        self.workers = resolve_workers(workers if workers is not None else -1)
        #: Pool rebuilds allowed per batch before the remaining chunks are
        #: served in-process.  A crashed worker therefore costs the caller
        #: latency, never an exception.
        self.max_rebuilds = int(max_rebuilds)
        #: Optional hook called with the rebuild attempt number (1-based)
        #: before each rebuild — the serving layer installs its bounded
        #: exponential backoff here; the default rebuilds immediately.
        self.rebuild_backoff = rebuild_backoff
        self._matrices: Dict[int, object] = {}
        self._next_matrix_key = 0
        self._arena = SharedArena()
        self._pool: Optional[ProcessPoolExecutor] = None
        # Plain-int serving stats, kept unconditionally (like QueryCache's
        # counters) so `repro query --workers N --stats` reports them without
        # the metrics registry being enabled.
        self._stats: Dict[str, int] = {
            "batches": 0,
            "sharded_batches": 0,
            "queries": 0,
            "chunks": 0,
            "matrix_dots": 0,
            "pool_rebuilds": 0,
            "inproc_fallbacks": 0,
        }

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """Start the worker pool on first need.

        Lazy so that a server whose batches never exceed one chunk (or whose
        ``workers`` is 1) pays neither process startup nor the engine's
        shared-memory export — small workloads are served in-process at zero
        overhead.  If the pool cannot be brought up, the arena's segments are
        unlinked before the error propagates: a failed init must not leak
        ``/dev/shm`` entries.
        """
        if self._pool is None:
            try:
                payload = dumps_shared(
                    {
                        "engine": self.engine,
                        "matrices": dict(self._matrices),
                        "obs": {"metrics": metrics_enabled(), "trace": tracing_enabled()},
                    },
                    self._arena,
                )
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_serve_worker,
                    initargs=(payload,),
                )
            except BaseException:
                self._arena.close()
                raise
        return self._pool

    def _teardown_pool(self) -> None:
        """Discard the (possibly broken) pool; shared segments stay exported.

        A rebuilt pool re-attaches the same arena segments, so teardown after
        a worker crash keeps the engine's shared pages warm for the replay.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=True)
            except Exception:  # pragma: no cover - broken pools may misbehave
                pass

    # ------------------------------------------------------------------
    def kill_worker(self) -> None:
        """Crash one pool worker (deterministic fault injection).

        Submits a task that hard-exits whichever worker picks it up; the next
        fanned-out batch observes ``BrokenProcessPool`` and exercises the
        rebuild-and-replay path.  A server whose pool has not started yet (or
        runs with ``workers <= 1``) has no process to kill — a no-op then, so
        fault plans compose with the in-process degenerate case.
        """
        if self.workers <= 1 or self._pool is None:
            return
        counter_add("serve.fault_kills")
        try:
            self._pool.submit(_worker_exit)
        except BrokenProcessPool:  # already dead; the next batch rebuilds
            pass

    def _eval_inproc(self, rows: np.ndarray, use_uniformity: bool) -> Tuple[np.ndarray, ...]:
        """Evaluate one chunk in the parent — the always-correct fallback."""
        self._stats["inproc_fallbacks"] += 1
        counter_add("serve.inproc_fallbacks")
        result = batch_query(self.engine, rows, use_uniformity=use_uniformity,
                             chunk_queries=self.chunk_queries)
        return result.estimates, result.nodes_touched, result.variances

    def batch_query(
        self,
        queries: Union[Iterable[QueryInput], np.ndarray],
        use_uniformity: bool = True,
    ) -> BatchQueryResult:
        """Evaluate a batch, fanning chunks across the pool; input order kept.

        Worker death is survivable: chunks lost to a ``BrokenProcessPool``
        are replayed on a rebuilt pool (up to ``max_rebuilds`` times, with
        :attr:`rebuild_backoff` between attempts), and chunks that still
        cannot be served — or whose task raised in the worker, e.g. an OOM —
        are evaluated in-process.  The evaluator is deterministic, so a
        replayed chunk is bitwise identical to a first-try one; callers see
        added latency, never an error.
        """
        qlo, qhi = queries_to_arrays(queries, self.engine.dims)
        n_queries = qlo.shape[0]
        rows = np.hstack([qlo, qhi])
        self._stats["batches"] += 1
        self._stats["queries"] += n_queries
        counter_add("serve.queries", n_queries)
        if self.workers <= 1 or n_queries <= self.chunk_queries:
            return batch_query(self.engine, rows, use_uniformity=use_uniformity,
                               chunk_queries=self.chunk_queries)
        self._stats["sharded_batches"] += 1
        starts = list(range(0, n_queries, self.chunk_queries))
        gauge_max("serve.queue_depth", len(starts))
        parts: Dict[int, Tuple[np.ndarray, ...]] = {}
        pending = [(start, rows[start : start + self.chunk_queries]) for start in starts]
        rebuilds = 0
        while pending:
            try:
                pool = self._ensure_pool()
                # submit() raises BrokenProcessPool when a worker died idle
                # between batches — same recovery as a mid-batch break.
                futures = [(start, chunk, pool.submit(_serve_chunk, chunk, use_uniformity))
                           for start, chunk in pending]
            except BrokenProcessPool:
                self._teardown_pool()
                rebuilds += 1
                if rebuilds > self.max_rebuilds:
                    for start, chunk in pending:
                        parts[start] = self._eval_inproc(chunk, use_uniformity)
                    break
                self._stats["pool_rebuilds"] += 1
                counter_add("serve.pool_rebuilds")
                if self.rebuild_backoff is not None:
                    self.rebuild_backoff(rebuilds)
                continue
            except Exception:
                # The pool cannot come up at all (resource exhaustion, fork
                # failure): degrade to in-process serving for this batch.
                for start, chunk in pending:
                    parts[start] = self._eval_inproc(chunk, use_uniformity)
                break
            self._stats["chunks"] += len(futures)
            counter_add("serve.chunks", len(futures))
            failed: List[Tuple[int, np.ndarray]] = []
            for start, chunk, future in futures:
                try:
                    estimates, touched, variances, worker_obs = future.result()
                    merge_obs_snapshot(worker_obs)
                    parts[start] = (estimates, touched, variances)
                except BrokenProcessPool:
                    failed.append((start, chunk))
                except Exception:
                    # The task itself raised in the worker (injected OOM, a
                    # poisoned chunk): the pool is still alive, so only this
                    # chunk is re-evaluated — in the parent, where a repeat
                    # failure cannot take a worker down with it.
                    parts[start] = self._eval_inproc(chunk, use_uniformity)
            if not failed:
                break
            self._teardown_pool()
            rebuilds += 1
            if rebuilds > self.max_rebuilds:
                for start, chunk in failed:
                    parts[start] = self._eval_inproc(chunk, use_uniformity)
                break
            self._stats["pool_rebuilds"] += 1
            counter_add("serve.pool_rebuilds")
            if self.rebuild_backoff is not None:
                self.rebuild_backoff(rebuilds)
            pending = failed
        return BatchQueryResult(
            estimates=np.concatenate([parts[s][0] for s in starts]),
            nodes_touched=np.concatenate([parts[s][1] for s in starts]),
            variances=np.concatenate([parts[s][2] for s in starts]),
        )

    def batch_range_query(
        self,
        queries: Union[Iterable[QueryInput], np.ndarray],
        use_uniformity: bool = True,
    ) -> np.ndarray:
        """The ``(Q,)`` estimates for a batch (sharded)."""
        return self.batch_query(queries, use_uniformity=use_uniformity).estimates

    # ------------------------------------------------------------------
    def share_matrix(self, matrix) -> int:
        """Ship a precompiled query matrix's CSR buffers to every worker.

        Returns a key accepted by :meth:`matrix_dot`.  The buffers go through
        shared memory, so the per-worker cost is a few mmaps regardless of
        workload size.  Sharing restarts the pool with the enlarged matrix
        set (worker state is installed by the initializer), so register
        matrices up front rather than between latency-sensitive batches; in
        the ``workers == 1`` degenerate case the matrix is simply kept
        in-process.
        """
        key = self._next_matrix_key
        self._next_matrix_key += 1
        self._matrices[key] = matrix
        if self._pool is not None:
            # Workers received their matrices at initializer time; recycle
            # the pool so the next fanned-out call re-installs the full set.
            self._pool.shutdown(wait=True)
            self._pool = None
        return key

    def matrix_dot(self, key: int, counts: np.ndarray) -> np.ndarray:
        """``S @ counts`` with the query rows sharded across the pool.

        The counts matrix is exported to shared memory once per distinct
        array object (workers attach and cache the view), so repeated dots
        against the same release matrix ship only a tiny handle per chunk —
        a large ``(n_nodes, R)`` matrix is never re-pickled per task.
        Segments live until :meth:`close`, so a server fed a *fresh* counts
        array on every call should be closed periodically (or sized for it).
        """
        matrix = self._matrices[key]
        counts = np.asarray(counts, dtype=np.float64)
        n_queries = matrix.n_queries
        self._stats["matrix_dots"] += 1
        if self.workers <= 1 or n_queries <= self.chunk_queries:
            return matrix.dot(counts)
        starts = list(range(0, n_queries, self.chunk_queries))
        spans = [(start, min(start + self.chunk_queries, n_queries)) for start in starts]
        parts: Dict[int, np.ndarray] = {}
        pending = spans
        rebuilds = 0
        while pending:
            try:
                pool = self._ensure_pool()
                shipped = (
                    self._arena.export(counts)
                    if counts.nbytes >= self._arena.threshold
                    else counts
                )
                futures = [
                    (start, stop, pool.submit(_serve_matrix_rows, key, start, stop, shipped))
                    for start, stop in pending
                ]
            except BrokenProcessPool:
                self._teardown_pool()
                rebuilds += 1
                if rebuilds > self.max_rebuilds:
                    break
                self._stats["pool_rebuilds"] += 1
                counter_add("serve.pool_rebuilds")
                if self.rebuild_backoff is not None:
                    self.rebuild_backoff(rebuilds)
                continue
            except Exception:
                break
            failed: List[Tuple[int, int]] = []
            for start, stop, future in futures:
                try:
                    parts[start] = future.result()
                except BrokenProcessPool:
                    failed.append((start, stop))
                except Exception:
                    self._stats["inproc_fallbacks"] += 1
                    counter_add("serve.inproc_fallbacks")
                    parts[start] = _matrix_row_slice(matrix, start, stop, counts)
            if not failed:
                break
            self._teardown_pool()
            rebuilds += 1
            if rebuilds > self.max_rebuilds:
                pending = failed
                break
            self._stats["pool_rebuilds"] += 1
            counter_add("serve.pool_rebuilds")
            if self.rebuild_backoff is not None:
                self.rebuild_backoff(rebuilds)
            pending = failed
        # Whatever never made it through the pool is computed in-process.
        for start, stop in spans:
            if start not in parts:
                self._stats["inproc_fallbacks"] += 1
                counter_add("serve.inproc_fallbacks")
                parts[start] = _matrix_row_slice(matrix, start, stop, counts)
        return np.concatenate([parts[start] for start in starts], axis=0)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Serving counters: batches, queries, chunks fanned out, shm traffic.

        Always available (plain ints, no registry needed) so the CLI's
        ``--stats`` can report the sharded path next to the cache counters.
        """
        out = dict(self._stats)
        out["workers"] = self.workers
        out["shm_bytes_exported"] = int(self._arena.nbytes())
        out["shm_segments"] = int(self._arena.n_segments)
        out["engine_mapped_bytes"] = int(self.engine.mapped_nbytes())
        return out

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and unlink the shared segments.

        Idempotent, and safe after a worker crash: a broken pool's shutdown
        error is swallowed (the processes are already gone) and the arena's
        close tolerates segments a dead twin already unlinked — so a server
        can always be closed, whatever state its pool died in.
        """
        self._teardown_pool()
        self._arena.close()

    def __enter__(self) -> "ShardedQueryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
