"""Sharded query serving: one shared compiled engine, many worker processes.

A compiled :class:`~repro.engine.flat.FlatPSD` is a read-only bundle of
arrays — exactly the shape of thing :mod:`repro.parallel.shm` shares for
free.  :class:`ShardedQueryServer` exports the engine into shared memory
once, starts a process pool whose workers attach the same pages, and serves
every query batch by fanning fixed-size **chunks** across the pool (the
``chunk_queries=`` path of :func:`repro.engine.batch.batch_query`, which
also caps each worker's peak frontier memory).  Results come back in input
order; per-query outputs are identical to the single-process evaluator
because chunking never changes any query's own accumulation order.

A precompiled :class:`~repro.engine.batch.QueryMatrix` can be shared the
same way: :meth:`ShardedQueryServer.matrix_dot` ships the CSR buffers once
and splits the release axis across the pool — the serving analogue of the
sweep pipeline's ``S @ counts`` product.

A *memory-mapped* engine (format v2, :mod:`repro.engine.store`) needs no
shared-memory export at all: its arrays pickle as
:class:`~repro.parallel.shm.MappedArrayHandle` file references, so every
worker re-maps the same engine file and the OS page cache holds the single
physical copy.  Serving a mapped engine to N workers therefore costs N tiny
mmap calls, not N (or even 1) array copies — check
``stats()["engine_mapped_bytes"]`` to confirm the zero-copy path is active.

The server composes with the LRU answer cache: pass
``CachedEngine(server.engine, evaluator=server.batch_query)`` so hits are
answered from the (thread-safe) cache and only misses fan out.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, Optional, Tuple, Union

import numpy as np

from ..engine.batch import BatchQueryResult, QueryInput, batch_query, queries_to_arrays
from ..engine.flat import FlatPSD
from ..obs import (
    counter_add,
    gauge_max,
    merge_obs_snapshot,
    metrics_enabled,
    obs_snapshot,
    tracing_enabled,
)
from .shm import SharedArena, SharedArrayHandle, attach_array, dumps_shared, loads_shared

__all__ = ["ShardedQueryServer"]

#: Default number of queries per fanned-out chunk — large enough that worker
#: dispatch overhead is noise, small enough to spread a batch across cores
#: and bound each worker's (q_idx, n_idx) frontier.
DEFAULT_CHUNK_QUERIES = 1024

_SERVE: Dict = {}


def _init_serve_worker(payload: bytes) -> None:
    from .sweep import _init_worker_obs

    state = loads_shared(payload)
    _SERVE.update(state)
    _init_worker_obs(state.get("obs") or {})


def _serve_chunk(
    rows: np.ndarray, use_uniformity: bool
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, object]:
    result = batch_query(_SERVE["engine"], rows, use_uniformity=use_uniformity)
    return result.estimates, result.nodes_touched, result.variances, obs_snapshot()


def _serve_matrix_rows(
    key: int, start: int, stop: int, counts: "np.ndarray | SharedArrayHandle"
) -> np.ndarray:
    if isinstance(counts, SharedArrayHandle):
        counts = attach_array(counts)
    return _matrix_row_slice(_SERVE["matrices"][key], start, stop, counts)


def _matrix_row_slice(matrix, start: int, stop: int, counts: np.ndarray) -> np.ndarray:
    """``(S @ counts)[start:stop]`` without materialising the other rows."""
    from ..engine.batch import QueryMatrix

    lo, hi = int(matrix.indptr[start]), int(matrix.indptr[stop])
    sliced = QueryMatrix(
        indptr=matrix.indptr[start : stop + 1] - matrix.indptr[start],
        indices=matrix.indices[lo:hi],
        weights=matrix.weights[lo:hi],
        partial=matrix.partial[lo:hi],
        n_nodes=matrix.n_nodes,
    )
    return sliced.dot(counts)


class ShardedQueryServer:
    """Serve batched range queries from a pool of processes over one engine.

    Parameters
    ----------
    engine:
        The compiled engine to serve.  Its arrays are exported to shared
        memory once; workers attach views instead of receiving copies.
    workers:
        Pool size; ``None``/negative means all cores.
    chunk_queries:
        Queries per fanned-out chunk (also the ``chunk_queries=`` passed to
        each worker's evaluator, capping its frontier memory).

    Use as a context manager (or call :meth:`close`) so the pool and the
    shared segments are reclaimed deterministically.
    """

    def __init__(
        self,
        engine: FlatPSD,
        workers: Optional[int] = None,
        chunk_queries: int = DEFAULT_CHUNK_QUERIES,
    ) -> None:
        from .sweep import resolve_workers

        if chunk_queries < 1:
            raise ValueError("chunk_queries must be at least 1")
        self.engine = engine
        self.chunk_queries = int(chunk_queries)
        self.workers = resolve_workers(workers if workers is not None else -1)
        self._matrices: Dict[int, object] = {}
        self._next_matrix_key = 0
        self._arena = SharedArena()
        self._pool: Optional[ProcessPoolExecutor] = None
        # Plain-int serving stats, kept unconditionally (like QueryCache's
        # counters) so `repro query --workers N --stats` reports them without
        # the metrics registry being enabled.
        self._stats: Dict[str, int] = {
            "batches": 0,
            "sharded_batches": 0,
            "queries": 0,
            "chunks": 0,
            "matrix_dots": 0,
        }

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """Start the worker pool on first need.

        Lazy so that a server whose batches never exceed one chunk (or whose
        ``workers`` is 1) pays neither process startup nor the engine's
        shared-memory export — small workloads are served in-process at zero
        overhead.
        """
        if self._pool is None:
            payload = dumps_shared(
                {
                    "engine": self.engine,
                    "matrices": dict(self._matrices),
                    "obs": {"metrics": metrics_enabled(), "trace": tracing_enabled()},
                },
                self._arena,
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_serve_worker,
                initargs=(payload,),
            )
        return self._pool

    # ------------------------------------------------------------------
    def batch_query(
        self,
        queries: Union[Iterable[QueryInput], np.ndarray],
        use_uniformity: bool = True,
    ) -> BatchQueryResult:
        """Evaluate a batch, fanning chunks across the pool; input order kept."""
        qlo, qhi = queries_to_arrays(queries, self.engine.dims)
        n_queries = qlo.shape[0]
        rows = np.hstack([qlo, qhi])
        self._stats["batches"] += 1
        self._stats["queries"] += n_queries
        counter_add("serve.queries", n_queries)
        if self.workers <= 1 or n_queries <= self.chunk_queries:
            return batch_query(self.engine, rows, use_uniformity=use_uniformity,
                               chunk_queries=self.chunk_queries)
        pool = self._ensure_pool()
        futures = [
            pool.submit(_serve_chunk, rows[start : start + self.chunk_queries],
                        use_uniformity)
            for start in range(0, n_queries, self.chunk_queries)
        ]
        self._stats["sharded_batches"] += 1
        self._stats["chunks"] += len(futures)
        counter_add("serve.chunks", len(futures))
        gauge_max("serve.queue_depth", len(futures))
        parts = []
        for future in futures:
            estimates, touched, variances, worker_obs = future.result()
            merge_obs_snapshot(worker_obs)
            parts.append((estimates, touched, variances))
        return BatchQueryResult(
            estimates=np.concatenate([p[0] for p in parts]),
            nodes_touched=np.concatenate([p[1] for p in parts]),
            variances=np.concatenate([p[2] for p in parts]),
        )

    def batch_range_query(
        self,
        queries: Union[Iterable[QueryInput], np.ndarray],
        use_uniformity: bool = True,
    ) -> np.ndarray:
        """The ``(Q,)`` estimates for a batch (sharded)."""
        return self.batch_query(queries, use_uniformity=use_uniformity).estimates

    # ------------------------------------------------------------------
    def share_matrix(self, matrix) -> int:
        """Ship a precompiled query matrix's CSR buffers to every worker.

        Returns a key accepted by :meth:`matrix_dot`.  The buffers go through
        shared memory, so the per-worker cost is a few mmaps regardless of
        workload size.  Sharing restarts the pool with the enlarged matrix
        set (worker state is installed by the initializer), so register
        matrices up front rather than between latency-sensitive batches; in
        the ``workers == 1`` degenerate case the matrix is simply kept
        in-process.
        """
        key = self._next_matrix_key
        self._next_matrix_key += 1
        self._matrices[key] = matrix
        if self._pool is not None:
            # Workers received their matrices at initializer time; recycle
            # the pool so the next fanned-out call re-installs the full set.
            self._pool.shutdown(wait=True)
            self._pool = None
        return key

    def matrix_dot(self, key: int, counts: np.ndarray) -> np.ndarray:
        """``S @ counts`` with the query rows sharded across the pool.

        The counts matrix is exported to shared memory once per distinct
        array object (workers attach and cache the view), so repeated dots
        against the same release matrix ship only a tiny handle per chunk —
        a large ``(n_nodes, R)`` matrix is never re-pickled per task.
        Segments live until :meth:`close`, so a server fed a *fresh* counts
        array on every call should be closed periodically (or sized for it).
        """
        matrix = self._matrices[key]
        counts = np.asarray(counts, dtype=np.float64)
        n_queries = matrix.n_queries
        self._stats["matrix_dots"] += 1
        if self.workers <= 1 or n_queries <= self.chunk_queries:
            return matrix.dot(counts)
        pool = self._ensure_pool()
        shipped = (
            self._arena.export(counts)
            if counts.nbytes >= self._arena.threshold
            else counts
        )
        futures = [
            pool.submit(
                _serve_matrix_rows, key, start, min(start + self.chunk_queries, n_queries),
                shipped,
            )
            for start in range(0, n_queries, self.chunk_queries)
        ]
        parts = [future.result() for future in futures]
        return np.concatenate(parts, axis=0)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Serving counters: batches, queries, chunks fanned out, shm traffic.

        Always available (plain ints, no registry needed) so the CLI's
        ``--stats`` can report the sharded path next to the cache counters.
        """
        out = dict(self._stats)
        out["workers"] = self.workers
        out["shm_bytes_exported"] = int(self._arena.nbytes())
        out["shm_segments"] = int(self._arena.n_segments)
        out["engine_mapped_bytes"] = int(self.engine.mapped_nbytes())
        return out

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and unlink the shared segments."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._arena.close()

    def __enter__(self) -> "ShardedQueryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
