"""Multicore execution layer: process-parallel sweeps and sharded serving.

The rest of the library is single-core by design — every hot loop is a NumPy
kernel, so one release builds and one workload evaluates as fast as one core
allows.  This package scales *across* cores without touching those kernels:

* :mod:`repro.parallel.shm` — zero-copy plumbing: large immutable arrays
  (points, structure geometry, compiled query-matrix CSR buffers) are placed
  in ``multiprocessing.shared_memory`` segments once and every worker maps
  the same pages, instead of re-pickling megabytes per task;
* :mod:`repro.parallel.sweep` — the process-parallel sweep executor behind
  ``run_sweep(..., workers=N)``: each case runs on its own spawned child RNG
  stream, so ``workers=N`` is bitwise identical to ``workers=1`` for every N —
  including across worker crashes (pool rebuilds with bounded backoff), case
  timeouts (retry once, then in-process) and graceful degradation;
* :mod:`repro.parallel.checkpoint` — the crash-safe sweep journal: completed
  cases are fsynced to an append-only JSONL file (floats hex-encoded,
  fingerprint-guarded) so an interrupted ``run_sweep(..., checkpoint=path)``
  resumes bitwise identical to an uninterrupted run;
* :mod:`repro.parallel.serve` — a sharded query server that fans chunks of a
  query batch across a worker pool over one shared compiled engine;
* :mod:`repro.parallel.matching` — seeker-chunk fan-out for the record
  matching scorer: exact integer partials summed in the parent, so
  ``workers=N`` reproduces ``workers=1`` bitwise.

Everything here keeps a hard determinism contract: parallelism changes
*where* work runs, never *what* it computes.
"""

from .checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointHeaderError,
    CheckpointMismatchError,
    CheckpointSequenceGapError,
    SweepCheckpoint,
)
from .matching import score_seeker_chunks
from .serve import ShardedQueryServer
from .shm import SharedArena, attach_array, dumps_shared, loads_shared
from .sweep import engine_from_structure, resolve_workers, run_cases_parallel

__all__ = [
    "SharedArena",
    "ShardedQueryServer",
    "attach_array",
    "dumps_shared",
    "loads_shared",
    "engine_from_structure",
    "resolve_workers",
    "run_cases_parallel",
    "score_seeker_chunks",
    "SweepCheckpoint",
    "CheckpointError",
    "CheckpointHeaderError",
    "CheckpointCorruptError",
    "CheckpointSequenceGapError",
    "CheckpointMismatchError",
]
