"""Process-parallel candidate scoring for the record-matching pipeline.

:func:`repro.applications.record_matching.blocking_from_engine` decomposes
its work over **seeker chunks**: for a contiguous slice of party B's points,
a chunk task counts how many of them fall in each expanded surviving leaf
(a fresh :class:`~repro.engine.points.PointGrid` over just the slice) and
joins the slice against the prebuilt holder-side
:class:`~repro.engine.points.CellJoinIndex`.  Every partial result is an
exact int64 count, and integer addition is associative and commutative — so
summing the partials gives **bitwise identical** results for any chunk size,
any worker count, and any completion order.  That is the same determinism
contract as :mod:`repro.parallel.sweep`: parallelism changes where work
runs, never what it computes.

The pool follows the sweep executor's shape: worker state (the seeker
array, the expanded leaf rects, the holder join index and surviving mask)
ships once through a pool ``initializer`` with large arrays riding
:mod:`repro.parallel.shm` shared-memory segments, so a task is just a
``(start, stop)`` slice.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Optional, Tuple

import numpy as np

from ..engine.points import CellJoinIndex, PointGrid
from ..obs import (
    counter_add,
    merge_obs_snapshot,
    metrics_enabled,
    obs_snapshot,
    trace_span,
    tracing_enabled,
)
from .shm import SharedArena, dumps_shared, loads_shared
from .sweep import _init_worker_obs, resolve_workers

__all__ = ["DEFAULT_SEEKER_CHUNK", "score_seeker_chunks"]

#: Seekers per chunk task: large enough to amortise the per-chunk grid
#: build, small enough that candidate-pair buffers stay modest.
DEFAULT_SEEKER_CHUNK = 65_536


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
_WORKER: Dict = {}


def _init_matching_worker(payload: bytes) -> None:
    state = loads_shared(payload)
    _WORKER.clear()
    _WORKER.update(state)
    _init_worker_obs(state.get("obs") or {})


def _score_chunk(state: Dict, start: int, stop: int) -> Tuple[np.ndarray, int, int]:
    """Score seekers ``[start, stop)``: per-leaf membership counts plus the
    neighbor-join match totals.  Pure integer outputs — the unit of parity."""
    seekers = state["seekers"][start:stop]
    grid = PointGrid.build(seekers)
    b_in = grid.count_in_rects(state["exp_lo"], state["exp_hi"])
    join_index: CellJoinIndex = state["join_index"]
    matched_total, matched_retained = join_index.join_count(
        seekers, state["distance"], state["surviving_mask"]
    )
    counter_add("matching.seeker_chunks")
    return b_in, matched_total, matched_retained


def _run_chunk(start: int, stop: int):
    result = _score_chunk(_WORKER, start, stop)
    return result, obs_snapshot()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def score_seeker_chunks(
    exp_lo: np.ndarray,
    exp_hi: np.ndarray,
    join_index: CellJoinIndex,
    seekers: np.ndarray,
    distance: float,
    surviving_mask: Optional[np.ndarray],
    workers: Optional[int] = None,
    chunk: Optional[int] = None,
) -> Tuple[np.ndarray, int, int]:
    """Fan seeker chunks across a process pool; exact integer reassembly.

    Returns ``(b_in, matched_total, matched_retained)`` where ``b_in[i]`` is
    the number of seekers inside expanded leaf rect ``i`` and the match
    totals come from the holder-side join index.  ``workers`` follows
    :func:`repro.parallel.sweep.resolve_workers` (``None``/``0`` one
    in-process worker, negative all cores); results are identical for every
    setting.
    """
    n = int(seekers.shape[0])
    n_workers = resolve_workers(workers)
    chunk_size = DEFAULT_SEEKER_CHUNK if chunk is None else max(1, int(chunk))
    bounds = [(s, min(n, s + chunk_size)) for s in range(0, n, chunk_size)] or [(0, 0)]
    state = {
        "seekers": seekers,
        "exp_lo": exp_lo,
        "exp_hi": exp_hi,
        "join_index": join_index,
        "distance": float(distance),
        "surviving_mask": surviving_mask,
    }
    b_in = np.zeros(exp_lo.shape[0], dtype=np.int64)
    matched_total = 0
    matched_retained = 0
    if n_workers <= 1 or len(bounds) <= 1:
        for start, stop in bounds:
            part, total, kept = _score_chunk(state, start, stop)
            b_in += part
            matched_total += total
            matched_retained += kept
        return b_in, matched_total, matched_retained

    counter_add("matching.parallel_runs")
    with trace_span("matching.score_parallel", workers=n_workers, chunks=len(bounds)):
        with SharedArena() as arena:
            payload = dumps_shared(
                dict(state, obs={"metrics": metrics_enabled(), "trace": tracing_enabled()}),
                arena,
            )
            with ProcessPoolExecutor(
                max_workers=min(n_workers, len(bounds)),
                initializer=_init_matching_worker,
                initargs=(payload,),
            ) as pool:
                futures = [pool.submit(_run_chunk, start, stop) for start, stop in bounds]
                for future in futures:
                    (part, total, kept), worker_obs = future.result()
                    merge_obs_snapshot(worker_obs)
                    b_in += part
                    matched_total += total
                    matched_retained += kept
    return b_in, matched_total, matched_retained
