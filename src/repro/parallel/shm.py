"""Shared-memory views of immutable arrays for cross-process execution.

A sweep case or a compiled engine is mostly a handful of large, immutable
NumPy arrays (the point dataset, BFS geometry arrays, CSR query-matrix
buffers) plus a thin shell of scalars.  Pickling those arrays into every
worker task would copy megabytes per task; instead the parent exports each
large array into a ``multiprocessing.shared_memory`` segment **once** and the
pickle stream carries only a tiny :class:`SharedArrayHandle`.  Every worker
attaches the same physical pages and reconstructs a *read-only* view.

The mechanics are a custom pickler pair:

* :func:`dumps_shared` pickles an arbitrary object graph, diverting every
  large ndarray (``nbytes >= arena.threshold``) through the
  :class:`SharedArena` via the pickler's ``persistent_id`` hook.  Repeated
  references to the same array object are exported once (identity dedupe),
  so e.g. twelve sweep cases sharing one points array cost one segment;
* :func:`loads_shared` restores the graph, resolving handles through
  ``persistent_load`` into shared views cached per segment name.

The parent owns the segments through the :class:`SharedArena` and unlinks
them once the worker pool has shut down; attached views are marked
non-writeable because everything shared this way is released, immutable
data — a worker must never be able to mutate another worker's inputs.

Arrays that are already file-backed need no segment at all.  A read-only
``np.memmap`` (a format-v2 engine attached by :mod:`repro.engine.store`)
pickles as a :class:`MappedArrayHandle` — just the file path, offset, dtype
and shape — and every worker re-maps the same file region.  The OS page
cache is then the sharing mechanism: one physical copy of the engine's pages
serves the parent and all workers, with zero export copies and zero shared
segments.  File-backed diversion is checked *before* the size threshold, so
even small mapped arrays travel as handles (re-mapping is cheaper than
copying, and it keeps every worker on the same pages).
"""

from __future__ import annotations

import atexit
import io
import os
import pickle
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Tuple

import numpy as np

from ..obs import counter_add

__all__ = [
    "SHARE_THRESHOLD_BYTES",
    "SharedArrayHandle",
    "MappedArrayHandle",
    "SharedArena",
    "attach_array",
    "attach_mapped",
    "mapped_handle",
    "detach_all",
    "dumps_shared",
    "loads_shared",
]

#: Arrays at least this large are diverted into shared memory; smaller ones
#: ride the ordinary pickle stream (a segment + mmap per tiny array would
#: cost more than it saves).
SHARE_THRESHOLD_BYTES = 1 << 16


@dataclass(frozen=True)
class SharedArrayHandle:
    """A picklable pointer to one exported array: segment name, shape, dtype."""

    shm_name: str
    shape: Tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class MappedArrayHandle:
    """A picklable pointer to one file-backed array region.

    Carries everything ``np.memmap`` needs to re-attach the same bytes of the
    same file: path, byte offset, dtype and shape.  No shared-memory segment
    is involved — the receiving process maps the file read-only and the OS
    page cache deduplicates the physical pages across all attachers.
    """

    path: str
    offset: int
    shape: Tuple[int, ...]
    dtype: str


def mapped_handle(array: np.ndarray) -> "MappedArrayHandle | None":
    """The :class:`MappedArrayHandle` for ``array``, or None when ineligible.

    Eligible arrays are C-contiguous read-only ``np.memmap`` instances
    created directly by the ``np.memmap`` constructor.  Views *derived* from
    a memmap (slices, reshapes) are rejected: they inherit the ``offset``
    attribute of their parent without adjustment, so a handle built from one
    would map the wrong bytes.  Constructor-created memmaps are recognised by
    their ``base`` being the underlying ``mmap.mmap`` object rather than
    another ndarray.
    """
    if not isinstance(array, np.memmap):
        return None
    if isinstance(array.base, np.ndarray):
        return None  # a sliced/reshaped view; its .offset is the parent's
    filename = getattr(array, "filename", None)
    if not filename:
        return None
    if not array.flags["C_CONTIGUOUS"] or array.flags.writeable:
        return None
    return MappedArrayHandle(
        path=str(filename),
        offset=int(array.offset),
        shape=tuple(array.shape),
        dtype=array.dtype.str,
    )


class SharedArena:
    """Parent-side owner of the shared-memory segments of one parallel run.

    ``export`` copies an array into a fresh segment and returns its handle;
    exporting the *same object* again returns the existing handle.  The arena
    keeps both the segments and a reference to every exported array (so an
    ``id()`` can never be recycled onto a different array mid-run) until
    :meth:`close` releases everything.  Use as a context manager::

        with SharedArena() as arena:
            payload = dumps_shared(obj, arena)
            ...  # run the pool to completion
        # segments are closed and unlinked here
    """

    def __init__(self, threshold: int = SHARE_THRESHOLD_BYTES) -> None:
        self.threshold = int(threshold)
        self._segments: list = []
        self._handles: Dict[int, SharedArrayHandle] = {}
        self._keepalive: list = []
        # Segments are system-global names: if this process dies between
        # export and close (KeyboardInterrupt escaping the context manager,
        # an exception in a caller that never entered one), the /dev/shm
        # entries outlive it.  Every live arena therefore registers with a
        # process-wide atexit sweep that unlinks whatever is left.  The
        # owner pid makes the sweep fork-safe: a pool worker inherits the
        # parent's arena object but must never unlink the parent's live
        # segments on its own exit.
        self._owner_pid = os.getpid()
        _LIVE_ARENAS.add(self)

    # ------------------------------------------------------------------
    @property
    def n_segments(self) -> int:
        return len(self._segments)

    def nbytes(self) -> int:
        """Total bytes held in shared segments."""
        return sum(segment.size for segment in self._segments)

    def export(self, array: np.ndarray) -> SharedArrayHandle:
        """Copy ``array`` into shared memory (once per object) and return its handle."""
        handle = self._handles.get(id(array))
        if handle is not None:
            return handle
        contiguous = np.ascontiguousarray(array)
        segment = shared_memory.SharedMemory(create=True, size=max(1, contiguous.nbytes))
        view = None
        try:
            view = np.ndarray(contiguous.shape, dtype=contiguous.dtype, buffer=segment.buf)
            view[...] = contiguous
        except BaseException:
            # The segment exists in the system namespace the moment it is
            # created; if the copy into it fails the arena never learns the
            # name, so unlink here or the segment leaks until reboot.  The
            # view's buffer reference must be dropped before close().
            view = None  # noqa: F841
            segment.close()
            segment.unlink()
            raise
        handle = SharedArrayHandle(segment.name, tuple(contiguous.shape), contiguous.dtype.str)
        self._segments.append(segment)
        self._handles[id(array)] = handle
        self._keepalive.append(array)
        counter_add("shm.segments_exported")
        counter_add("shm.bytes_exported", segment.size)
        return handle

    def close(self, unlink: bool = True) -> None:
        """Release every segment (and by default unlink it from the system).

        Idempotent, and safe to call mid-failure: a still-referenced buffer
        (``BufferError``) does not stop the *name* from being unlinked, so the
        system-wide ``/dev/shm`` entry disappears even when a view leaked.

        In a forked child (``os.getpid()`` differs from the creating pid) the
        segments belong to the parent: local references are dropped but
        nothing is unlinked.
        """
        owns = os.getpid() == self._owner_pid
        for segment in self._segments:
            try:
                segment.close()
            except BufferError:  # a view is still alive; unlink the name anyway
                pass
            if unlink and owns:
                try:
                    segment.unlink()
                except FileNotFoundError:  # already unlinked (e.g. by a crashed twin)
                    pass
        self._segments.clear()
        self._handles.clear()
        self._keepalive.clear()

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Every arena not yet closed, swept by :func:`_close_live_arenas` at process
#: exit so an interrupt mid-sweep cannot leave /dev/shm segments behind.
_LIVE_ARENAS: "weakref.WeakSet[SharedArena]" = weakref.WeakSet()


def _close_live_arenas() -> None:  # pragma: no cover - exercised via subprocess
    for arena in list(_LIVE_ARENAS):
        try:
            arena.close()
        except Exception:
            pass  # exit-time best effort; the resource tracker is the backstop


atexit.register(_close_live_arenas)


# ----------------------------------------------------------------------
# Attach side (workers, or the parent round-tripping its own payload)
# ----------------------------------------------------------------------
#: Per-process cache of attached segments: name -> (SharedMemory, view).
#: The SharedMemory object must stay referenced for as long as any view of
#: its buffer is alive, so the cache holds both together.
_ATTACHED: Dict[str, Tuple[shared_memory.SharedMemory, np.ndarray]] = {}


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Open a segment by name without registering it with the resource tracker.

    The parent arena owns segment lifetime.  An attaching process must stay
    out of the tracker entirely: with forked workers the tracker is shared
    with the parent, so a worker-side register/unregister pair would erase
    (or double) the parent's own registration and the tracker complains at
    unlink time.  Suppressing the register during attach (the Python 3.13
    ``track=False`` behaviour) sidesteps the whole dance.
    """
    try:  # pragma: no cover - tracker internals differ across platforms
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def quiet_register(name, rtype):
            if rtype != "shared_memory":
                original(name, rtype)

        resource_tracker.register = quiet_register
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    except ImportError:
        return shared_memory.SharedMemory(name=name)


def attach_array(handle: SharedArrayHandle) -> np.ndarray:
    """A read-only view of an exported array, attached (and cached) by name."""
    cached = _ATTACHED.get(handle.shm_name)
    if cached is not None:
        return cached[1]
    segment = _attach_untracked(handle.shm_name)
    view = np.ndarray(handle.shape, dtype=np.dtype(handle.dtype), buffer=segment.buf)
    view.setflags(write=False)
    _ATTACHED[handle.shm_name] = (segment, view)
    counter_add("shm.segments_attached")
    counter_add("shm.bytes_attached", view.nbytes)
    return view


#: Per-process cache of re-attached file mappings, keyed by the full handle.
#: Caching keeps repeated unpickles of the same engine (one per task batch)
#: from opening a fresh file descriptor and mapping each time.
_MAPPED: Dict[Tuple[str, int, Tuple[int, ...], str], np.ndarray] = {}


def attach_mapped(handle: MappedArrayHandle) -> np.ndarray:
    """A read-only ``np.memmap`` view of a file-backed array, cached per process."""
    key = (handle.path, handle.offset, handle.shape, handle.dtype)
    cached = _MAPPED.get(key)
    if cached is not None:
        return cached
    view = np.memmap(
        handle.path,
        dtype=np.dtype(handle.dtype),
        mode="r",
        offset=handle.offset,
        shape=handle.shape,
    )
    _MAPPED[key] = view
    counter_add("shm.segments_mapped")
    counter_add("shm.bytes_mapped", view.nbytes)
    return view


def detach_all() -> None:
    """Drop this process's attached views and close their mappings.

    Only safe once no views handed out by :func:`attach_array` are in use;
    workers normally skip this (their mappings die with the process) — it
    exists for the parent and for tests that round-trip payloads in-process.
    """
    for segment, _ in _ATTACHED.values():
        try:
            segment.close()
        except BufferError:  # a view is still alive; leave the mapping open
            pass
    _ATTACHED.clear()
    _MAPPED.clear()


# ----------------------------------------------------------------------
# The sharing pickler pair
# ----------------------------------------------------------------------
class _SharingPickler(pickle.Pickler):
    """Pickler that diverts large ndarrays into a :class:`SharedArena`."""

    def __init__(self, file, arena: SharedArena) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._arena = arena

    def persistent_id(self, obj):
        if isinstance(obj, np.ndarray) and not obj.dtype.hasobject:
            # File-backed arrays ship as path references regardless of size:
            # re-mapping the file is strictly cheaper than copying it into a
            # segment, and keeps every process on the same physical pages.
            mapped = mapped_handle(obj)
            if mapped is not None:
                return mapped
            if obj.nbytes >= self._arena.threshold:
                return self._arena.export(obj)
        return None


class _AttachingUnpickler(pickle.Unpickler):
    """Unpickler resolving :class:`SharedArrayHandle` ids into shared views."""

    def persistent_load(self, pid):
        if isinstance(pid, SharedArrayHandle):
            return attach_array(pid)
        if isinstance(pid, MappedArrayHandle):
            return attach_mapped(pid)
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def dumps_shared(obj, arena: SharedArena) -> bytes:
    """Pickle ``obj``, exporting its large arrays into ``arena``."""
    buffer = io.BytesIO()
    _SharingPickler(buffer, arena).dump(obj)
    return buffer.getvalue()


def loads_shared(data: bytes):
    """Unpickle a :func:`dumps_shared` payload, attaching its shared arrays."""
    return _AttachingUnpickler(io.BytesIO(data)).load()
