"""Process-parallel execution of sweep cases with a hard determinism contract.

:func:`repro.experiments.common.run_sweep` gives every case its own child RNG
stream (one ``SeedSequence.spawn`` per case, in case order) regardless of the
``workers`` setting — which makes case execution order irrelevant to the
released bits.  This module is the ``workers > 1`` backend: it ships the
cases and workloads to a ``ProcessPoolExecutor`` **once** per worker (large
arrays ride :mod:`repro.parallel.shm` shared-memory views, not per-task
pickles), runs each case under its spawned generator, and reassembles the
per-case rows in case order — bitwise identical to the in-process path.

Three pieces keep the fan-out cheap:

* the whole worker state (cases, workloads, pre-seeded matrix cache) is one
  ``initializer`` payload, so a task is just ``(case index, generator)``;
* cases that share one immutable points array or structure export it to
  shared memory once (identity dedupe in the arena);
* cases exposing a ``shared_engine()`` probe (data-independent structures,
  e.g. the Figure-3 quadtree grid) get their workload query matrices
  compiled **in the parent** and shipped as shared CSR buffers, pre-seeding
  every worker's matrix cache so no worker recompiles a decomposition the
  sweep already knows.

Cases whose build closure cannot be pickled fall back to running in the
parent process with their same spawned generator — slower, never wrong.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..obs import (
    disable_metrics,
    disable_tracing,
    enable_metrics,
    enable_tracing,
    merge_obs_snapshot,
    metrics_enabled,
    obs_snapshot,
    tracing_enabled,
)
from .shm import SharedArena, dumps_shared, loads_shared

__all__ = ["engine_from_structure", "resolve_workers", "run_cases_parallel"]


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers=`` argument: ``None``/``0`` mean one in-process
    worker, negative values mean "all cores"."""
    if workers is None or workers == 0:
        return 1
    if workers < 0:
        return max(1, os.cpu_count() or 1)
    return int(workers)


def engine_from_structure(structure, domain, name: str = "structure"):
    """A count-free engine view of a data-independent structure.

    Query decompositions (and therefore compiled
    :class:`~repro.engine.batch.QueryMatrix` objects) depend only on the
    geometry, the child layout and the released-count *pattern* — never on
    the count values.  For a structure whose releases fund every level, this
    builds the exact engine the release batch will expose (released counts
    zeroed), so matrices compiled against it are interchangeable with the
    batch's own — that is what lets the parent precompile one matrix per
    workload and hand the CSR buffers to every worker.
    """
    from ..engine.flat import FlatPSD, level_variances

    lo = structure.lo.astype(np.float64, copy=True)
    hi = structure.hi.astype(np.float64, copy=True)
    n = structure.n_nodes
    eps = np.ones(structure.height + 1, dtype=np.float64)
    return FlatPSD(
        lo=lo,
        hi=hi,
        level=structure.level.astype(np.int32, copy=True),
        released=np.zeros(n, dtype=np.float64),
        has_count=np.ones(n, dtype=bool),
        is_leaf=structure.is_leaf.copy(),
        child_start=structure.child_start.astype(np.int64, copy=True),
        child_end=structure.child_end.astype(np.int64, copy=True),
        area=np.prod(hi - lo, axis=1),
        count_epsilons=eps,
        level_variance=level_variances(eps),
        height=structure.height,
        fanout=structure.fanout,
        name=name,
        domain_lo=np.asarray(domain.rect.lo, dtype=np.float64),
        domain_hi=np.asarray(domain.rect.hi, dtype=np.float64),
        domain_name=domain.name,
    )


def _seed_matrix_cache(cases: Sequence, workloads: Dict) -> Dict:
    """Precompile query matrices for cases that advertise a shared structure.

    Keys match :func:`repro.experiments.common.release_workload_errors`'s
    content fingerprints, so a worker evaluating such a case hits the cache
    instead of recompiling; a fingerprint mismatch only costs a recompile.
    """
    from ..engine.batch import compile_query_matrix
    from ..experiments.common import _structure_fingerprint, _workload_fingerprint

    cache: Dict = {}
    seen_structures = set()
    for case in cases:
        probe = getattr(case.build, "shared_engine", None)
        if probe is None:
            continue
        engine = probe()
        if engine is None:
            continue
        fingerprint = _structure_fingerprint(engine)
        if fingerprint in seen_structures:
            continue
        seen_structures.add(fingerprint)
        for workload in workloads.values():
            key = (fingerprint, _workload_fingerprint(workload))
            if key not in cache:
                cache[key] = compile_query_matrix(engine, workload.queries)
    return cache


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-worker state installed by the pool initializer: the picklable cases
#: (by index), the workloads, and a matrix cache pre-seeded by the parent
#: and grown by whatever this worker compiles afterwards.
_WORKER: Dict = {}


def _init_sweep_worker(payload: bytes) -> None:
    state = loads_shared(payload)
    state["matrix_cache"] = dict(state.get("matrix_cache") or {})
    _WORKER.clear()
    _WORKER.update(state)
    _init_worker_obs(state.get("obs") or {})


def _init_worker_obs(flags: Dict[str, bool]) -> None:
    """Give the worker fresh observability state matching the parent's flags.

    Forked workers inherit the parent's active registry/tracer *object* —
    including whatever the parent recorded before the fork — so a fresh
    registry per worker is mandatory: each worker then reports only its own
    increments and the parent's merge never double counts.
    """
    if flags.get("metrics"):
        enable_metrics()
    else:
        disable_metrics()
    if flags.get("trace"):
        enable_tracing()  # no path: events ship back with task results
    else:
        disable_tracing(flush=False)


def _run_case(index: int, gen: np.random.Generator):
    from ..experiments.common import case_rows

    case = _WORKER["cases"][index]
    rows = case_rows(case, gen, _WORKER["workloads"], _WORKER["matrix_cache"])
    return rows, obs_snapshot()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def run_cases_parallel(
    cases: Sequence,
    case_gens: Sequence[np.random.Generator],
    workloads: Dict,
    workers: int,
) -> List[List[Dict[str, object]]]:
    """Execute every case on a process pool; per-case rows in case order.

    Each case runs under its pre-spawned generator ``case_gens[i]``, so the
    result is bitwise identical to running the cases sequentially with the
    same generators.  Unpicklable cases execute in the parent (while the
    pool works on the rest) under exactly the same contract.
    """
    from ..experiments.common import case_rows

    if len(cases) != len(case_gens):
        raise ValueError("one spawned generator per case is required")
    if not cases:
        return []

    with SharedArena() as arena:
        shipped: Dict[int, object] = {}
        local_indices: List[int] = []
        for i, case in enumerate(cases):
            if _probe_picklable(case):
                shipped[i] = case
            else:
                local_indices.append(i)
        rows_by_case: Dict[int, List[Dict[str, object]]] = {}
        if shipped:
            payload = dumps_shared(
                {
                    "cases": shipped,
                    "workloads": workloads,
                    "matrix_cache": _seed_matrix_cache(list(shipped.values()), workloads),
                    "obs": {"metrics": metrics_enabled(), "trace": tracing_enabled()},
                },
                arena,
            )
            max_workers = min(int(workers), len(shipped))
            with ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=_init_sweep_worker,
                initargs=(payload,),
            ) as pool:
                futures = {
                    i: pool.submit(_run_case, i, case_gens[i]) for i in sorted(shipped)
                }
                # The parent evaluates its unpicklable leftovers while the
                # pool is busy, then collects.
                local_cache: Dict = {}
                for i in local_indices:
                    rows_by_case[i] = case_rows(cases[i], case_gens[i], workloads, local_cache)
                for i, future in futures.items():
                    rows, worker_obs = future.result()
                    merge_obs_snapshot(worker_obs)
                    rows_by_case[i] = rows
        else:
            local_cache = {}
            for i in local_indices:
                rows_by_case[i] = case_rows(cases[i], case_gens[i], workloads, local_cache)
    return [rows_by_case[i] for i in range(len(cases))]


class _StubArrayPickler(pickle.Pickler):
    """A picklability probe that skips ndarray payloads entirely.

    Arrays always pickle (and the real payload diverts the large ones into
    shared memory anyway), so the only question a probe needs answered is
    whether the case's *object shell* — typically its build callable — can
    cross a process boundary.  Stubbing every array keeps the probe O(shell)
    and, crucially, allocates no shared-memory segments for cases that turn
    out to be closure-built and must run in the parent.
    """

    def persistent_id(self, obj):
        return ("stub-array",) if isinstance(obj, np.ndarray) else None


def _probe_picklable(case) -> bool:
    """Whether a case can ship to workers (True) or must run in the parent."""
    import io

    try:
        _StubArrayPickler(io.BytesIO(), protocol=pickle.HIGHEST_PROTOCOL).dump(case)
        return True
    except Exception:
        return False
