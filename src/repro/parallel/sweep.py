"""Process-parallel execution of sweep cases with a hard determinism contract.

:func:`repro.experiments.common.run_sweep` gives every case its own child RNG
stream (one ``SeedSequence.spawn`` per case, in case order) regardless of the
``workers`` setting — which makes case execution order irrelevant to the
released bits.  This module is the ``workers > 1`` backend: it ships the
cases and workloads to a ``ProcessPoolExecutor`` **once** per worker (large
arrays ride :mod:`repro.parallel.shm` shared-memory views, not per-task
pickles), runs each case under its spawned generator, and reassembles the
per-case rows in case order — bitwise identical to the in-process path.

Three pieces keep the fan-out cheap:

* the whole worker state (cases, workloads, pre-seeded matrix cache) is one
  ``initializer`` payload, so a task is just ``(case index, generator)``;
* cases that share one immutable points array or structure export it to
  shared memory once (identity dedupe in the arena);
* cases exposing a ``shared_engine()`` probe (data-independent structures,
  e.g. the Figure-3 quadtree grid) get their workload query matrices
  compiled **in the parent** and shipped as shared CSR buffers, pre-seeding
  every worker's matrix cache so no worker recompiles a decomposition the
  sweep already knows.

Cases whose build closure cannot be pickled fall back to running in the
parent process with their same spawned generator — slower, never wrong.

Fault tolerance
---------------
The per-case spawn contract also makes the executor *recoverable*: since a
case's rows depend only on its own generator, any case can be re-run — on a
rebuilt pool, or in the parent — and produce the same bits.
:func:`run_cases_parallel` exploits that three ways:

* a broken pool (a worker hard-exited: OOM killer, segfault, injected
  ``kill-worker`` fault) is torn down and rebuilt with bounded exponential
  backoff (the supervisor's ``min(max, base·2^(k-1))`` shape), resubmitting
  **only the lost cases**; after ``max_rebuilds`` rebuilds the remaining
  cases degrade gracefully to in-process execution;
* a case exceeding the soft ``case_timeout`` is resubmitted once, then falls
  back to in-process execution — a hung worker never hangs the sweep;
* any other task exception routes that one case to the in-process path.

Every recovery path re-runs cases under their original spawned generators,
so a fault-ridden ``workers=N`` sweep stays bitwise identical to a healthy
``workers=1`` run.  Deterministic fault schedules (``--fault
kill-worker:N``, see :mod:`repro.serve.faults`) are keyed on the monotone
*submission* counter — resubmissions keep counting, so a recurring fault
cannot pin one case into an infinite crash loop.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait as futures_wait,
)
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..obs import (
    counter_add,
    disable_metrics,
    disable_tracing,
    enable_metrics,
    enable_tracing,
    merge_obs_snapshot,
    metrics_enabled,
    obs_snapshot,
    trace_span,
    tracing_enabled,
)
from .shm import SharedArena, dumps_shared, loads_shared

__all__ = ["engine_from_structure", "resolve_workers", "run_cases_parallel"]


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers=`` argument: ``None``/``0`` mean one in-process
    worker, negative values mean "all cores"."""
    if workers is None or workers == 0:
        return 1
    if workers < 0:
        return max(1, os.cpu_count() or 1)
    return int(workers)


def engine_from_structure(structure, domain, name: str = "structure"):
    """A count-free engine view of a data-independent structure.

    Query decompositions (and therefore compiled
    :class:`~repro.engine.batch.QueryMatrix` objects) depend only on the
    geometry, the child layout and the released-count *pattern* — never on
    the count values.  For a structure whose releases fund every level, this
    builds the exact engine the release batch will expose (released counts
    zeroed), so matrices compiled against it are interchangeable with the
    batch's own — that is what lets the parent precompile one matrix per
    workload and hand the CSR buffers to every worker.
    """
    from ..engine.flat import FlatPSD, level_variances

    lo = structure.lo.astype(np.float64, copy=True)
    hi = structure.hi.astype(np.float64, copy=True)
    n = structure.n_nodes
    eps = np.ones(structure.height + 1, dtype=np.float64)
    return FlatPSD(
        lo=lo,
        hi=hi,
        level=structure.level.astype(np.int32, copy=True),
        released=np.zeros(n, dtype=np.float64),
        has_count=np.ones(n, dtype=bool),
        is_leaf=structure.is_leaf.copy(),
        child_start=structure.child_start.astype(np.int64, copy=True),
        child_end=structure.child_end.astype(np.int64, copy=True),
        area=np.prod(hi - lo, axis=1),
        count_epsilons=eps,
        level_variance=level_variances(eps),
        height=structure.height,
        fanout=structure.fanout,
        name=name,
        domain_lo=np.asarray(domain.rect.lo, dtype=np.float64),
        domain_hi=np.asarray(domain.rect.hi, dtype=np.float64),
        domain_name=domain.name,
    )


def _seed_matrix_cache(cases: Sequence, workloads: Dict) -> Dict:
    """Precompile query matrices for cases that advertise a shared structure.

    Keys match :func:`repro.experiments.common.release_workload_errors`'s
    content fingerprints, so a worker evaluating such a case hits the cache
    instead of recompiling; a fingerprint mismatch only costs a recompile.
    """
    from ..engine.batch import compile_query_matrix
    from ..experiments.common import _structure_fingerprint, _workload_fingerprint

    cache: Dict = {}
    seen_structures = set()
    for case in cases:
        probe = getattr(case.build, "shared_engine", None)
        if probe is None:
            continue
        engine = probe()
        if engine is None:
            continue
        fingerprint = _structure_fingerprint(engine)
        if fingerprint in seen_structures:
            continue
        seen_structures.add(fingerprint)
        for workload in workloads.values():
            key = (fingerprint, _workload_fingerprint(workload))
            if key not in cache:
                cache[key] = compile_query_matrix(engine, workload.queries)
    return cache


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-worker state installed by the pool initializer: the picklable cases
#: (by index), the workloads, and a matrix cache pre-seeded by the parent
#: and grown by whatever this worker compiles afterwards.
_WORKER: Dict = {}


def _init_sweep_worker(payload: bytes) -> None:
    state = loads_shared(payload)
    state["matrix_cache"] = dict(state.get("matrix_cache") or {})
    _WORKER.clear()
    _WORKER.update(state)
    _init_worker_obs(state.get("obs") or {})


def _init_worker_obs(flags: Dict[str, bool]) -> None:
    """Give the worker fresh observability state matching the parent's flags.

    Forked workers inherit the parent's active registry/tracer *object* —
    including whatever the parent recorded before the fork — so a fresh
    registry per worker is mandatory: each worker then reports only its own
    increments and the parent's merge never double counts.
    """
    if flags.get("metrics"):
        enable_metrics()
    else:
        disable_metrics()
    if flags.get("trace"):
        enable_tracing()  # no path: events ship back with task results
    else:
        disable_tracing(flush=False)


def _run_case(index: int, gen: np.random.Generator, actions: Sequence = ()):
    from ..experiments.common import case_rows

    # Injected fault actions are decided in the *parent* at submission time
    # (count-keyed, RNG-free) and arrive as plain task arguments, so workers
    # stay stateless and the schedule replays exactly across runs.
    for action in actions:
        if action[0] == "kill":
            os._exit(1)
        elif action[0] == "oom":
            raise MemoryError(f"injected oom-worker fault on case {index}")
        elif action[0] == "slow":
            time.sleep(float(action[1]))
    case = _WORKER["cases"][index]
    rows = case_rows(case, gen, _WORKER["workloads"], _WORKER["matrix_cache"])
    return rows, obs_snapshot()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def run_cases_parallel(
    cases: Sequence,
    case_gens: Sequence[np.random.Generator],
    workloads: Dict,
    workers: int,
    *,
    skip: Sequence[int] = (),
    on_case_done: Optional[Callable[[int, List[Dict[str, object]]], None]] = None,
    faults=None,
    case_timeout: Optional[float] = None,
    max_rebuilds: int = 3,
    backoff_base: float = 0.05,
    backoff_max: float = 1.0,
    sleep: Callable[[float], None] = time.sleep,
) -> List[Optional[List[Dict[str, object]]]]:
    """Execute every case on a fault-tolerant process pool; rows in case order.

    Each case runs under its pre-spawned generator ``case_gens[i]``, so the
    result is bitwise identical to running the cases sequentially with the
    same generators — including every recovery path below, which only ever
    *re-runs* a case under its original generator.  Unpicklable cases execute
    in the parent (while the pool works on the rest) under the same contract.

    Parameters beyond the original four:

    ``skip``
        Case indices already satisfied elsewhere (checkpoint replay); they
        are neither submitted nor recomputed and come back as ``None`` in the
        returned list.
    ``on_case_done``
        Called as ``on_case_done(index, rows)`` the moment a case completes
        (pool result, in-process fallback, or parent-local) — the checkpoint
        journaling hook.
    ``faults``
        A :class:`~repro.serve.faults.FaultInjector` or a sequence of
        :class:`~repro.serve.faults.FaultSpec`; schedules are keyed on the
        monotone submission counter (resubmissions keep counting).
    ``case_timeout``
        Soft per-case seconds: an overdue case is resubmitted once, then
        falls back to in-process execution.
    ``max_rebuilds`` / ``backoff_base`` / ``backoff_max`` / ``sleep``
        Broken-pool recovery: each rebuild sleeps
        ``min(backoff_max, backoff_base · 2^(k-1))`` (the supervisor's
        shape, ``sleep`` injectable for tests); past ``max_rebuilds`` the
        remaining cases degrade to in-process execution.
    """
    from ..experiments.common import case_rows
    from ..serve.faults import FaultInjector

    if len(cases) != len(case_gens):
        raise ValueError("one spawned generator per case is required")
    if not cases:
        return []
    skipped = set(int(i) for i in skip)
    if isinstance(faults, FaultInjector):
        injector: Optional[FaultInjector] = faults
    elif faults:
        injector = FaultInjector(list(faults))
    else:
        injector = None

    rows_by_case: Dict[int, List[Dict[str, object]]] = {}
    local_cache: Dict = {}

    def finish(i: int, rows: List[Dict[str, object]]) -> None:
        rows_by_case[i] = rows
        if on_case_done is not None:
            on_case_done(i, rows)

    def run_inproc(i: int) -> None:
        finish(i, case_rows(cases[i], case_gens[i], workloads, local_cache))

    with SharedArena() as arena:
        shipped: Dict[int, object] = {}
        local_indices: List[int] = []
        for i, case in enumerate(cases):
            if i in skipped:
                continue
            if _probe_picklable(case):
                shipped[i] = case
            else:
                local_indices.append(i)
        if shipped:
            payload = dumps_shared(
                {
                    "cases": shipped,
                    "workloads": workloads,
                    "matrix_cache": _seed_matrix_cache(list(shipped.values()), workloads),
                    "obs": {"metrics": metrics_enabled(), "trace": tracing_enabled()},
                },
                arena,
            )
            pool: Optional[ProcessPoolExecutor] = None
            futures: Dict[int, object] = {}
            deadlines: Dict[int, Optional[float]] = {}
            retried: set = set()
            submissions = 0
            rebuilds = 0

            def next_actions() -> tuple:
                nonlocal submissions
                submissions += 1
                if injector is None:
                    return ()
                actions = []
                for spec in injector.for_request(submissions):
                    if spec.kind == "kill-worker":
                        actions.append(("kill",))
                    elif spec.kind == "oom-worker":
                        actions.append(("oom",))
                    elif spec.kind == "slow-case":
                        actions.append(("slow", spec.param))
                return tuple(actions)

            def submit(i: int) -> None:
                futures[i] = pool.submit(_run_case, i, case_gens[i], next_actions())
                deadlines[i] = (
                    None if case_timeout is None else time.monotonic() + case_timeout
                )

            def teardown() -> None:
                nonlocal pool
                if pool is not None:
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = None

            def drain_broken() -> List[int]:
                """Salvage results that finished before the pool broke.

                A broken executor resolves every unfinished future with
                ``BrokenProcessPool`` almost immediately; futures that
                completed first keep their results, so only the genuinely
                lost cases come back for resubmission.
                """
                lost: List[int] = []
                for j in sorted(futures):
                    future = futures.pop(j)
                    deadlines.pop(j, None)
                    try:
                        rows, worker_obs = future.result(timeout=30.0)
                    except Exception:
                        lost.append(j)
                    else:
                        merge_obs_snapshot(worker_obs)
                        finish(j, rows)
                return lost

            def launch(indices: Sequence[int]) -> None:
                nonlocal pool
                try:
                    pool = ProcessPoolExecutor(
                        max_workers=max(1, min(int(workers), len(indices))),
                        initializer=_init_sweep_worker,
                        initargs=(payload,),
                    )
                    for j in sorted(indices):
                        submit(j)
                except (BrokenExecutor, OSError):
                    drain_broken()
                    recover([j for j in indices if j not in rows_by_case])

            def recover(lost: Sequence[int]) -> None:
                """Rebuild with bounded backoff, or degrade to in-process."""
                nonlocal rebuilds
                teardown()
                lost = sorted(set(lost))
                if not lost:
                    return
                rebuilds += 1
                counter_add("sweep.pool_rebuilds")
                if rebuilds > max_rebuilds:
                    counter_add("sweep.degraded_cases", len(lost))
                    with trace_span("sweep.degraded", cases=len(lost)):
                        for j in lost:
                            run_inproc(j)
                    return
                delay = min(backoff_max, backoff_base * (2 ** max(0, rebuilds - 1)))
                counter_add("sweep.backoff_sleeps")
                sleep(delay)
                with trace_span("sweep.pool_rebuild", attempt=rebuilds, cases=len(lost)):
                    launch(lost)

            launch(sorted(shipped))
            # The parent evaluates its unpicklable leftovers while the pool
            # is busy, then collects.
            for i in local_indices:
                run_inproc(i)
            while futures:
                timeout = None
                if case_timeout is not None:
                    now = time.monotonic()
                    timeout = max(
                        0.0,
                        min(deadlines[j] for j in futures if deadlines[j] is not None)
                        - now,
                    )
                done, _ = futures_wait(
                    set(futures.values()), timeout=timeout, return_when=FIRST_COMPLETED
                )
                if done:
                    broken = False
                    for j in [i for i, f in list(futures.items()) if f in done]:
                        future = futures.pop(j)
                        deadlines.pop(j, None)
                        try:
                            rows, worker_obs = future.result()
                        except (BrokenExecutor, OSError):
                            broken = True
                            recover([j] + drain_broken())
                            break
                        except Exception:
                            # The task failed but the pool survived (e.g. an
                            # injected MemoryError): this one case falls back
                            # to the parent, everything else keeps flowing.
                            counter_add("sweep.case_inproc_fallbacks")
                            run_inproc(j)
                        else:
                            merge_obs_snapshot(worker_obs)
                            finish(j, rows)
                    if broken:
                        continue
                if case_timeout is not None:
                    now = time.monotonic()
                    overdue = [
                        j
                        for j in list(futures)
                        if deadlines[j] is not None and now >= deadlines[j]
                    ]
                    for j in overdue:
                        stale = futures.pop(j)
                        deadlines.pop(j, None)
                        stale.cancel()  # a no-op if already running; its late
                        # result is simply discarded
                        counter_add("sweep.case_timeouts")
                        if j not in retried:
                            retried.add(j)
                            counter_add("sweep.case_retries")
                            try:
                                submit(j)
                            except (BrokenExecutor, OSError):
                                recover([j] + drain_broken())
                        else:
                            counter_add("sweep.case_inproc_fallbacks")
                            run_inproc(j)
            teardown()
        else:
            for i in local_indices:
                run_inproc(i)
    return [rows_by_case.get(i) for i in range(len(cases))]


class _StubArrayPickler(pickle.Pickler):
    """A picklability probe that skips ndarray payloads entirely.

    Arrays always pickle (and the real payload diverts the large ones into
    shared memory anyway), so the only question a probe needs answered is
    whether the case's *object shell* — typically its build callable — can
    cross a process boundary.  Stubbing every array keeps the probe O(shell)
    and, crucially, allocates no shared-memory segments for cases that turn
    out to be closure-built and must run in the parent.
    """

    def persistent_id(self, obj):
        return ("stub-array",) if isinstance(obj, np.ndarray) else None


def _probe_picklable(case) -> bool:
    """Whether a case can ship to workers (True) or must run in the parent."""
    import io

    try:
        _StubArrayPickler(io.BytesIO(), protocol=pickle.HIGHEST_PROTOCOL).dump(case)
        return True
    except Exception:
        return False
