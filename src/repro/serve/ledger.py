"""Crash-safe multi-tenant budget ledger: a WAL in front of analyst accounts.

For a differentially private query service the budget is a *correctness*
invariant, not bookkeeping: an analyst must never spend more than their ε cap
— not across threads, not across crashes, not across restarts.  The in-memory
half of that guarantee is :class:`repro.privacy.accountant.AnalystAccount`
(lock-protected charge-or-refuse); this module adds the durable half, an
append-only JSON-lines **write-ahead log**:

* **charge-before-answer** — a charge is appended to the WAL and ``fsync``\\ ed
  *before* the in-memory account moves and long before any query is answered.
  A crash between the fsync and the answer therefore *wastes* budget (the
  analyst paid for an answer they never received) but can never *under-count*
  it: on restart the replayed spend includes the charge.  Wasting is safe —
  the privacy guarantee only bounds spend from above;
* **fail-closed writes** — if the WAL cannot be written (disk error, injected
  ``wal-io-error`` fault) the charge is rolled back byte-for-byte (the file is
  truncated to its pre-write length) and the in-memory account is untouched:
  no durable record, no spend, no answer;
* **replay on startup** — accounts are rebuilt by summing the WAL's charges
  in file order.  Every ε travels as ``float.hex()`` alongside its decimal
  rendering, so a replayed spend is **bitwise identical** to the pre-crash
  in-memory total (same values, same summation order, IEEE-754 float64);
* **torn-tail tolerance** — a crash *mid-append* leaves a partial last line.
  Replay discards it and truncates the file back to the last complete record,
  so the next append starts on a clean line.  A malformed record anywhere
  *before* the tail is real corruption and raises :class:`LedgerError` — a
  budget ledger must refuse to guess.

The WAL is human-auditable: one JSON object per line, ``kind`` of ``"cap"``
(sets an analyst's cap) or ``"charge"`` (spends ε), each stamped with a
monotonically increasing ``seq``.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..obs import counter_add, trace_span
from ..privacy.accountant import BUDGET_TOLERANCE, AnalystAccount

__all__ = ["BudgetExceeded", "LedgerError", "BudgetLedger"]


class BudgetExceeded(Exception):
    """A charge was refused: it would push the analyst past their ε cap."""

    def __init__(self, analyst: str, requested: float, remaining: float) -> None:
        self.analyst = analyst
        self.requested = float(requested)
        self.remaining = float(remaining)
        super().__init__(
            f"analyst {analyst!r} requested epsilon {requested:.6g} with only "
            f"{remaining:.6g} remaining"
        )


class LedgerError(ValueError):
    """The WAL is corrupt in a way replay must not paper over."""


def _hex(value: float) -> str:
    return float(value).hex()


class BudgetLedger:
    """Per-analyst ε accounts backed by an append-only, fsync-on-charge WAL.

    Parameters
    ----------
    path:
        The WAL file.  Created (with a ``cap`` record per later analyst) if
        missing; replayed if present.
    default_cap:
        The ε cap given to an analyst on their first charge (explicit
        :meth:`set_cap` records override it, and are themselves WAL-logged so
        they survive restarts).
    io_hook:
        Optional ``callable(record: dict)`` invoked *before* each append;
        raising :class:`OSError` from it simulates a WAL write failure (the
        deterministic ``wal-io-error`` fault).  The charge then fails closed.

    All public methods are thread-safe: one ledger lock orders the
    check / append / fsync / commit sequence, so no interleaving of concurrent
    charges can exceed a cap or interleave bytes within the WAL.
    """

    def __init__(
        self,
        path: Union[str, Path],
        default_cap: float = 1.0,
        io_hook: Optional[Callable[[Dict[str, object]], None]] = None,
    ) -> None:
        if default_cap <= 0:
            raise ValueError("default_cap must be positive")
        self.path = str(path)
        self.default_cap = float(default_cap)
        self.io_hook = io_hook
        self._lock = threading.RLock()
        self._accounts: Dict[str, AnalystAccount] = {}
        self._seq = 0
        self._replayed_records = 0
        self._replay()
        # Line-buffered append handle; every record is explicitly flushed and
        # fsynced anyway, buffering only batches the in-process copy.
        self._handle = open(self.path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _replay(self) -> None:
        """Rebuild accounts from the WAL; truncate a torn tail in place."""
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return
        valid_bytes = 0
        records: List[Dict[str, object]] = []
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                # No terminating newline: the append was cut mid-line by a
                # crash.  Everything before this line replays; the tail is
                # dropped below.
                break
            line = raw[offset : newline + 1]
            try:
                record = json.loads(line.decode("utf-8"))
                if not isinstance(record, dict) or "kind" not in record:
                    raise ValueError("not a ledger record")
            except ValueError as exc:
                raise LedgerError(
                    f"ledger {self.path}: corrupt record at byte {offset}: {exc}"
                ) from exc
            records.append(record)
            offset = newline + 1
            valid_bytes = offset
        if valid_bytes < len(raw):
            counter_add("ledger.torn_tail_truncated")
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_bytes)
        for record in records:
            self._apply(record)
        self._replayed_records = len(records)
        counter_add("ledger.records_replayed", len(records))

    def _apply(self, record: Dict[str, object]) -> None:
        """Fold one replayed record into the in-memory accounts.

        Charges are applied unconditionally — they were admitted under the
        cap rules when written, and replay must reproduce the exact durable
        history, not re-litigate it.  ε values come from the hex field so the
        rebuilt totals are bit-for-bit the pre-crash ones.
        """
        kind = record.get("kind")
        seq = int(record.get("seq", self._seq + 1))
        if seq != self._seq + 1:
            raise LedgerError(
                f"ledger {self.path}: sequence gap (expected {self._seq + 1}, "
                f"found {seq}) — records missing or reordered"
            )
        analyst = str(record.get("analyst"))
        if kind == "cap":
            cap = float.fromhex(str(record["cap_hex"]))
            account = self._accounts.get(analyst)
            if account is None:
                self._accounts[analyst] = AnalystAccount(analyst, cap=cap)
            else:
                account.cap = cap
        elif kind == "charge":
            epsilon = float.fromhex(str(record["epsilon_hex"]))
            account = self._account(analyst)
            # Direct state restore (not try_charge): same float additions in
            # the same order as the original grants.
            account.spent += epsilon
            account.charges += 1
        else:
            raise LedgerError(f"ledger {self.path}: unknown record kind {kind!r}")
        self._seq = seq

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------
    def _append(self, record: Dict[str, object]) -> None:
        """Durably append one record, or leave the WAL byte-identical.

        The pre-write offset is captured so a partial write (exception after
        some bytes landed) can be truncated away — otherwise the *next*
        append would glue onto the torn line and corrupt the log for every
        future replay.
        """
        if self.io_hook is not None:
            self.io_hook(record)
        start = self._handle.tell()
        try:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except BaseException:
            try:
                self._handle.truncate(start)
                self._handle.seek(start)
            except OSError:  # pragma: no cover - disk gone entirely
                pass
            raise
        counter_add("ledger.records_appended")

    def _account(self, analyst: str) -> AnalystAccount:
        account = self._accounts.get(analyst)
        if account is None:
            account = AnalystAccount(analyst, cap=self.default_cap)
            self._accounts[analyst] = account
        return account

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    def charge(self, analyst: str, epsilon: float, request_id: Optional[int] = None) -> float:
        """Charge ``epsilon`` against ``analyst``; returns the remaining budget.

        Ordering is the crash-safety contract: refusal check → WAL append →
        fsync → in-memory commit.  Raises :class:`BudgetExceeded` on refusal
        (nothing written, nothing spent) and propagates :class:`OSError` on a
        WAL write failure (rolled back, nothing spent).  Only a charge that
        is durable on disk is ever granted.
        """
        epsilon = float(epsilon)
        if epsilon <= 0:
            raise ValueError("charge epsilon must be positive")
        with self._lock, trace_span("ledger.charge", analyst=analyst):
            account = self._account(analyst)
            if account.spent + epsilon > account.cap + BUDGET_TOLERANCE:
                counter_add("ledger.refusals")
                raise BudgetExceeded(analyst, epsilon, account.cap - account.spent)
            record: Dict[str, object] = {
                "kind": "charge",
                "seq": self._seq + 1,
                "analyst": analyst,
                "epsilon": epsilon,
                "epsilon_hex": _hex(epsilon),
            }
            if request_id is not None:
                record["request"] = int(request_id)
            self._append(record)  # may raise OSError: fail closed, spend nothing
            granted = account.try_charge(epsilon)
            assert granted, "pre-checked charge must be granted under the ledger lock"
            self._seq += 1
            counter_add("ledger.charges")
            return account.cap - account.spent

    def try_charge(self, analyst: str, epsilon: float,
                   request_id: Optional[int] = None) -> bool:
        """:meth:`charge`, with refusal as ``False`` instead of an exception."""
        try:
            self.charge(analyst, epsilon, request_id=request_id)
            return True
        except BudgetExceeded:
            return False

    def set_cap(self, analyst: str, cap: float) -> None:
        """Set (and WAL-log) an analyst's ε cap; existing spend is kept."""
        cap = float(cap)
        if cap <= 0:
            raise ValueError("cap must be positive")
        with self._lock:
            record = {
                "kind": "cap",
                "seq": self._seq + 1,
                "analyst": str(analyst),
                "cap": cap,
                "cap_hex": _hex(cap),
            }
            self._append(record)
            account = self._accounts.get(str(analyst))
            if account is None:
                self._accounts[str(analyst)] = AnalystAccount(str(analyst), cap=cap)
            else:
                account.cap = cap
            self._seq += 1

    # ------------------------------------------------------------------
    def spend(self, analyst: str) -> float:
        """Total ε charged to ``analyst`` so far (0.0 for unknown analysts)."""
        with self._lock:
            account = self._accounts.get(analyst)
            return account.spent if account is not None else 0.0

    def spend_hex(self, analyst: str) -> str:
        """The spend as ``float.hex()`` — the bitwise-comparable form."""
        return _hex(self.spend(analyst))

    def remaining(self, analyst: str) -> float:
        """Budget left for ``analyst`` (the full default cap if unknown)."""
        with self._lock:
            account = self._accounts.get(analyst)
            if account is None:
                return self.default_cap
            return account.cap - account.spent

    def accounts(self) -> Dict[str, Dict[str, object]]:
        """Per-analyst ``{spent, spent_hex, cap, remaining, charges}`` report."""
        with self._lock:
            out: Dict[str, Dict[str, object]] = {}
            for analyst, account in sorted(self._accounts.items()):
                snap: Dict[str, object] = dict(account.snapshot())
                snap["spent_hex"] = _hex(float(snap["spent"]))
                out[analyst] = snap
            return out

    @property
    def seq(self) -> int:
        """Sequence number of the last durable record."""
        with self._lock:
            return self._seq

    @property
    def replayed_records(self) -> int:
        """How many records the constructor replayed from an existing WAL."""
        return self._replayed_records

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the append handle (idempotent); the WAL stays on disk."""
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "BudgetLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
