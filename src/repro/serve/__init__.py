"""Fault-tolerant serving layer: HTTP front-end, budget WAL, supervision.

The production face of the engine stack: :class:`QueryService` is an asyncio
HTTP/1.1 endpoint that charges a crash-safe per-analyst ε ledger before every
answer, serves batches through a supervised worker pool that survives worker
death, sheds load when saturated, and hot-swaps engines with zero downtime.
A deterministic fault-injection harness (:mod:`repro.serve.faults`) drives
all of it from tests and benchmarks without a single random draw.
"""

from .faults import FAULT_KINDS, FaultInjector, FaultSpec, parse_fault, parse_faults
from .http import DEFAULT_CHARGE_EPSILON, QueryService, ServiceThread
from .ledger import BudgetExceeded, BudgetLedger, LedgerError
from .supervisor import EngineState, EngineSupervisor

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSpec",
    "parse_fault",
    "parse_faults",
    "DEFAULT_CHARGE_EPSILON",
    "QueryService",
    "ServiceThread",
    "BudgetExceeded",
    "BudgetLedger",
    "LedgerError",
    "EngineState",
    "EngineSupervisor",
]
