"""Deterministic fault injection for the serving and sweep layers — no RNG, ever.

Faults fire on *counts*: a spec like ``kill-worker:7`` crashes one pool
worker on every 7th admitted query request (requests 7, 14, 21, ...).
Because the schedule is a pure function of a monotone counter, a test or
benchmark that replays the same request sequence replays the same faults —
the harness is as reproducible as the engine it torments.

Two consumers key the same schedule machinery on different counters: the
HTTP serving layer counts *admitted requests*, the crash-safe sweep executor
(:mod:`repro.parallel.sweep`) counts *case submissions* to its process pool
(resubmissions after a crash keep incrementing the counter, so a recurring
fault cannot pin one case into an infinite crash loop).

Five fault kinds, each aimed at a different failure surface:

=================  ==========================================================
``kill-worker``    hard-exits one pool worker (``os._exit`` in the worker);
                   the supervised pool must rebuild and replay the work
``slow-chunk``     sleeps inside request handling (param = seconds,
                   default 0.05); drives timeout and load-shedding paths
``slow-case``      sleeps inside a sweep worker before computing the case
                   (param = seconds, default 0.05); drives the sweep's
                   per-case soft-timeout retry and in-process fallback paths
``wal-io-error``   the budget ledger's append raises ``OSError`` for that
                   request; the charge must fail closed (no spend, no answer)
``oom-worker``     a pool task raises ``MemoryError`` in a worker; the pool
                   must survive and the work must still complete
=================  ==========================================================

Specs are ``kind:every`` or ``kind:every:param`` and compose by comma:
``kill-worker:50,slow-chunk:13:0.02``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Union

__all__ = [
    "FAULT_KINDS",
    "SWEEP_FAULT_KINDS",
    "FaultSpec",
    "FaultInjector",
    "parse_fault",
    "parse_faults",
]

FAULT_KINDS = ("kill-worker", "slow-chunk", "slow-case", "wal-io-error", "oom-worker")

#: The fault kinds the crash-safe sweep executor understands (``repro
#: experiment --fault``); the serving layer accepts the full set.
SWEEP_FAULT_KINDS = ("kill-worker", "slow-case", "oom-worker")

#: Default sleep for ``slow-chunk`` when the spec names no param.
DEFAULT_SLOW_SECONDS = 0.05


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault schedule: fire on every ``every``-th request."""

    kind: str
    every: int
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (choose from {FAULT_KINDS})")
        if self.every < 1:
            raise ValueError("fault period must be at least 1")
        if self.param < 0:
            raise ValueError("fault param must be non-negative")

    def fires_on(self, request_count: int) -> bool:
        """Whether this fault fires for the ``request_count``-th request (1-based)."""
        return request_count >= 1 and request_count % self.every == 0


def parse_fault(spec: str) -> FaultSpec:
    """Parse one ``kind:every[:param]`` spec string."""
    parts = str(spec).strip().split(":")
    if len(parts) not in (2, 3):
        raise ValueError(
            f"malformed fault spec {spec!r}: expected kind:every or kind:every:param"
        )
    kind = parts[0].strip()
    try:
        every = int(parts[1])
    except ValueError:
        raise ValueError(f"malformed fault spec {spec!r}: period must be an integer")
    param = 0.0
    if len(parts) == 3:
        try:
            param = float(parts[2])
        except ValueError:
            raise ValueError(f"malformed fault spec {spec!r}: param must be a number")
    if kind in ("slow-chunk", "slow-case") and param == 0.0:
        param = DEFAULT_SLOW_SECONDS
    return FaultSpec(kind=kind, every=every, param=param)


def parse_faults(specs: Union[str, Iterable[str], None]) -> List[FaultSpec]:
    """Parse a comma-joined string or an iterable of spec strings."""
    if not specs:
        return []
    if isinstance(specs, str):
        specs = [part for part in specs.split(",") if part.strip()]
    return [parse_fault(spec) for spec in specs]


class FaultInjector:
    """Evaluates fault schedules against the request counter and keeps tallies.

    Stateless with respect to *which* faults fire (a pure function of the
    request count), stateful only for the fired-count report — so concurrent
    requests can consult it without coordination beyond the tally lock the
    caller already holds for its own counters.
    """

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self.specs = list(specs)
        self.fired: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    def __bool__(self) -> bool:
        return bool(self.specs)

    def for_request(self, request_count: int) -> List[FaultSpec]:
        """The faults scheduled for the ``request_count``-th request (1-based)."""
        due = [spec for spec in self.specs if spec.fires_on(request_count)]
        for spec in due:
            self.fired[spec.kind] += 1
        return due

    def wal_error_scheduled(self, request_count: int) -> bool:
        """Whether a ``wal-io-error`` is scheduled for this request.

        A pure predicate (no tally) so the ledger's io hook can consult the
        schedule from any thread using only the request id in the record.
        """
        return any(
            spec.kind == "wal-io-error" and spec.fires_on(request_count)
            for spec in self.specs
        )

    def stats(self) -> Dict[str, int]:
        """Fired-count per fault kind (zero entries elided)."""
        return {kind: count for kind, count in self.fired.items() if count}
