"""Engine supervision: worker-pool babysitting and zero-downtime hot swap.

The :class:`EngineSupervisor` owns everything between the HTTP layer and the
evaluator: the current :class:`~repro.parallel.serve.ShardedQueryServer`, the
optional answer cache in front of it, the bounded-exponential backoff the
server runs between pool rebuilds, and the **generation** machinery that lets
an admin endpoint swap in a new engine while in-flight queries finish on the
old one.

Swap protocol (the zero-downtime invariant):

1. every evaluation pins the current :class:`EngineState` and bumps its
   ``inflight`` count under the supervisor lock before touching the engine;
2. ``swap()`` builds the *new* state first (a failed load leaves the old
   engine serving untouched), then atomically redirects the current-state
   pointer and marks the old state retired;
3. a retired state is closed — pool shut down, shared segments unlinked —
   only when its ``inflight`` drains to zero, by whichever request releases
   the last pin.  Queries racing the swap therefore complete on whichever
   engine they pinned; none observe a half-closed pool.

Pool use is serialized per state: the sharded server's rebuild/replay
machinery mutates pool state and is not re-entrant, so concurrent requests
take the state's evaluation lock around the fan-out.  Parallelism still
comes from the pool itself (chunks of one batch fan across all workers) and
from the thread-safe answer cache, which serves hits without the lock.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from ..engine.batch import BatchQueryResult, QueryInput
from ..engine.cache import CachedEngine
from ..engine.flat import FlatPSD
from ..obs import counter_add, trace_span
from ..parallel.serve import DEFAULT_CHUNK_QUERIES, ShardedQueryServer

__all__ = ["EngineState", "EngineSupervisor"]


def _raise_oom() -> None:  # pragma: no cover - runs in a pool worker
    """A pool task that fails the way a memory-starved worker does."""
    raise MemoryError("injected oom-worker fault")


class EngineState:
    """One engine generation: the engine, its server, and its pin count."""

    def __init__(self, engine: FlatPSD, server: ShardedQueryServer,
                 cached: Optional[CachedEngine], generation: int) -> None:
        self.engine = engine
        self.server = server
        self.cached = cached
        self.generation = generation
        self.inflight = 0
        self.retired = False
        #: Serializes pool fan-out (rebuild/replay is not re-entrant).
        self.eval_lock = threading.Lock()

    def close(self) -> None:
        self.server.close()


class EngineSupervisor:
    """Owns the serving engine across worker crashes and hot swaps.

    Parameters
    ----------
    engine:
        The initial compiled engine.
    workers:
        Pool size per engine state (``None``/negative: all cores; 1 serves
        in-process with no pool at all).
    chunk_queries:
        Queries per fanned-out chunk.
    max_rebuilds:
        Pool rebuilds allowed per batch before in-process fallback.
    backoff_base / backoff_max:
        Bounded exponential backoff between pool rebuilds: attempt ``k``
        sleeps ``min(backoff_max, backoff_base * 2**(k-1))`` seconds.
    cache_size:
        LRU answer-cache capacity in front of the pool (0 disables it).
    sleep:
        Injection point for the backoff sleep (tests pass a recorder).
    """

    def __init__(
        self,
        engine: FlatPSD,
        workers: Optional[int] = None,
        chunk_queries: int = DEFAULT_CHUNK_QUERIES,
        max_rebuilds: int = 3,
        backoff_base: float = 0.05,
        backoff_max: float = 1.0,
        cache_size: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if backoff_base < 0 or backoff_max < 0:
            raise ValueError("backoff bounds must be non-negative")
        self.workers = workers
        self.chunk_queries = int(chunk_queries)
        self.max_rebuilds = int(max_rebuilds)
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        self.cache_size = int(cache_size)
        self._sleep = sleep
        self._lock = threading.Lock()
        self._retired: List[EngineState] = []
        self.backoffs: List[float] = []
        self._state = self._make_state(engine, generation=1)

    # ------------------------------------------------------------------
    def _backoff(self, attempt: int) -> None:
        """The bounded exponential backoff installed into each server."""
        delay = min(self.backoff_max, self.backoff_base * (2 ** max(0, attempt - 1)))
        self.backoffs.append(delay)
        counter_add("serve.backoff_sleeps")
        if delay > 0:
            self._sleep(delay)

    def _make_state(self, engine: FlatPSD, generation: int) -> EngineState:
        server = ShardedQueryServer(
            engine,
            workers=self.workers,
            chunk_queries=self.chunk_queries,
            max_rebuilds=self.max_rebuilds,
            rebuild_backoff=self._backoff,
        )
        cached: Optional[CachedEngine] = None
        state = EngineState(engine, server, cached, generation)

        if self.cache_size > 0:
            def locked_eval(rows: np.ndarray) -> BatchQueryResult:
                with state.eval_lock:
                    return server.batch_query(rows)

            state.cached = CachedEngine(engine, maxsize=self.cache_size,
                                        evaluator=locked_eval)
        return state

    # ------------------------------------------------------------------
    # Pin / release (the zero-downtime refcount)
    # ------------------------------------------------------------------
    def _acquire(self) -> EngineState:
        with self._lock:
            state = self._state
            state.inflight += 1
            return state

    def _release(self, state: EngineState) -> None:
        close_now = False
        with self._lock:
            state.inflight -= 1
            if state.retired and state.inflight == 0:
                close_now = True
                if state in self._retired:
                    self._retired.remove(state)
        if close_now:
            # Outside the lock: closing a pool blocks on worker shutdown.
            state.close()

    # ------------------------------------------------------------------
    def evaluate(
        self,
        queries: Union[np.ndarray, "list[QueryInput]"],
        use_uniformity: bool = True,
    ) -> BatchQueryResult:
        """Evaluate a batch on whichever engine generation is current.

        The generation is pinned for the whole evaluation, so a concurrent
        :meth:`swap` never closes the pool under a running query.
        """
        state = self._acquire()
        try:
            with trace_span("serve.evaluate", generation=state.generation):
                if state.cached is not None and use_uniformity:
                    return state.cached.batch_query(queries)
                with state.eval_lock:
                    return state.server.batch_query(queries, use_uniformity=use_uniformity)
        finally:
            self._release(state)

    # ------------------------------------------------------------------
    def swap(self, engine: FlatPSD) -> int:
        """Atomically switch serving to ``engine``; returns the new generation.

        The new state is built *before* the pointer moves, so a failure here
        leaves the old engine serving.  The old state drains: in-flight
        queries finish on it, and the last one out closes its pool and
        unlinks its segments.
        """
        with self._lock:
            generation = self._state.generation + 1
        new_state = self._make_state(engine, generation)
        with self._lock:
            old, self._state = self._state, new_state
            old.retired = True
            drain = old.inflight == 0
            if not drain:
                self._retired.append(old)
        if drain:
            old.close()
        counter_add("serve.hot_swaps")
        return generation

    # ------------------------------------------------------------------
    # Deterministic fault entry points
    # ------------------------------------------------------------------
    def kill_worker(self) -> None:
        """Crash one pool worker of the current generation (fault injection)."""
        state = self._acquire()
        try:
            if state.server.workers > 1:
                with state.eval_lock:
                    state.server._ensure_pool()
                    state.server.kill_worker()
        finally:
            self._release(state)

    def inject_oom(self) -> None:
        """Run a MemoryError-raising task through the pool; the pool survives.

        Deterministically exercises the worker-task-exception path: the task
        fails in a worker, the parent absorbs the ``MemoryError``, and the
        pool keeps serving.  A no-op for in-process serving (no pool).
        """
        state = self._acquire()
        try:
            if state.server.workers <= 1:
                return
            counter_add("serve.fault_ooms")
            with state.eval_lock:
                try:
                    pool = state.server._ensure_pool()
                    pool.submit(_raise_oom).result()
                except MemoryError:
                    pass
                except BrokenProcessPool:
                    # A kill-worker drill scheduled on the same request can
                    # land first; the next real batch rebuilds the pool.
                    pass
        finally:
            self._release(state)

    # ------------------------------------------------------------------
    @property
    def engine(self) -> FlatPSD:
        with self._lock:
            return self._state.engine

    @property
    def generation(self) -> int:
        with self._lock:
            return self._state.generation

    def stats(self) -> Dict[str, object]:
        """Supervision counters plus the current server's own stats."""
        with self._lock:
            state = self._state
            retired_open = len(self._retired)
        out: Dict[str, object] = {
            "generation": state.generation,
            "inflight": state.inflight,
            "retired_draining": retired_open,
            "backoff_sleeps": len(self.backoffs),
            "server": state.server.stats(),
        }
        if state.cached is not None:
            out["cache"] = state.cached.stats()
        return out

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the current state and any retired states still draining."""
        with self._lock:
            states = [self._state] + list(self._retired)
            self._retired.clear()
        for state in states:
            state.close()

    def __enter__(self) -> "EngineSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
