"""Asyncio HTTP front-end for the fault-tolerant PSD query service.

Stdlib only: :mod:`asyncio` plus a deliberately minimal HTTP/1.1 handler
(one request per connection, ``Connection: close``, JSON bodies).  The event
loop does admission control and bookkeeping; the blocking work — WAL charge,
engine evaluation, pool supervision — runs on executor threads so one slow
query never stalls the accept loop.

Endpoints
---------
``POST /query``
    ``{"analyst": str, "queries": [[lo..., hi...], ...], "epsilon"?: float}``
    → ``{"estimates": [...], "nodes_touched": [...], "remaining": ε, ...}``.
    ``epsilon`` is the *total* charge for the request (default:
    ``charge_epsilon × n_queries``).
``GET /healthz``     liveness + current engine generation.
``GET /stats``       service, supervisor, ledger and fault counters.
``GET /accounts``    per-analyst spend/cap/remaining (with hex spend).
``POST /admin/swap`` ``{"path": str}`` — zero-downtime engine hot swap.
``POST /admin/kill-worker``  crash one pool worker (fault drill).

Failure matrix (every failure is an HTTP status, never a hang or a reset):

=====================  ====  =================================================
budget exhausted        429  refusal *before* anything is written or spent
queue full              503  shed at admission, ``Retry-After: 1``
request timeout         503  the charge may already be durable: budget is
                             *wasted*, never over-spent (charge-before-answer)
WAL write failure       503  fail closed — charge rolled back, nothing spent,
                             no answer released
worker crash            200  supervised pool rebuilds and replays; the caller
                             sees latency, not an error
malformed request       400  parse/validation errors
unknown path            404
handler bug             500  JSON error body; the connection still closes
                             cleanly
=====================  ====  =================================================
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..engine.io import load_engine
from ..obs import counter_add, gauge_max
from .faults import FaultInjector, FaultSpec
from .ledger import BudgetExceeded, BudgetLedger
from .supervisor import EngineSupervisor

__all__ = ["QueryService", "ServiceThread", "DEFAULT_CHARGE_EPSILON"]

#: Per-query ε charged when a request names no explicit ``epsilon``.
DEFAULT_CHARGE_EPSILON = 0.01

#: Largest accepted request body; a query batch at this size is ~100k rows.
MAX_BODY_BYTES = 8 << 20

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    429: "Too Many Requests", 500: "Internal Server Error", 503: "Service Unavailable",
}


class _HttpError(Exception):
    """Internal: carries a status + JSON body up to the response writer."""

    def __init__(self, status: int, body: Dict[str, object],
                 headers: Optional[Dict[str, str]] = None) -> None:
        self.status = status
        self.body = body
        self.headers = headers or {}
        super().__init__(str(body))


class QueryService:
    """The serving front-end: supervisor + ledger + faults behind HTTP.

    Parameters
    ----------
    supervisor:
        The :class:`~repro.serve.supervisor.EngineSupervisor` to evaluate on.
    ledger:
        The :class:`~repro.serve.ledger.BudgetLedger` charged before every
        answer.  The service installs its WAL fault hook onto the ledger so
        ``wal-io-error`` schedules bite the right request.
    charge_epsilon:
        Per-query ε when the request body names no total ``epsilon``.
    max_inflight:
        Admission bound: requests beyond this many concurrently admitted
        queries are shed with 503 + ``Retry-After``.
    request_timeout:
        Seconds before an admitted query answers 503 (budget possibly
        wasted, never over-spent).
    faults:
        Deterministic :class:`~repro.serve.faults.FaultSpec` schedules keyed
        on the admitted-request counter.
    """

    def __init__(
        self,
        supervisor: EngineSupervisor,
        ledger: BudgetLedger,
        host: str = "127.0.0.1",
        port: int = 0,
        charge_epsilon: float = DEFAULT_CHARGE_EPSILON,
        max_inflight: int = 64,
        request_timeout: float = 30.0,
        faults: Optional[List[FaultSpec]] = None,
    ) -> None:
        if charge_epsilon <= 0:
            raise ValueError("charge_epsilon must be positive")
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        self.supervisor = supervisor
        self.ledger = ledger
        self.host = host
        self.port = int(port)  # updated to the bound port after start()
        self.charge_epsilon = float(charge_epsilon)
        self.max_inflight = int(max_inflight)
        self.request_timeout = float(request_timeout)
        self.faults = FaultInjector(faults or [])
        # The WAL fault hook consults the deterministic schedule using the
        # request id stamped into each charge record.
        ledger.io_hook = self._wal_hook
        self._server: Optional[asyncio.AbstractServer] = None
        self._requests = 0   # admitted /query requests (the fault clock)
        self._inflight = 0
        self._counters: Dict[str, int] = {
            "requests": 0, "served": 0, "refused": 0, "shed": 0,
            "timeouts": 0, "wal_errors": 0, "bad_requests": 0, "errors": 0,
        }

    # ------------------------------------------------------------------
    def _wal_hook(self, record: Dict[str, object]) -> None:
        request = record.get("request")
        if isinstance(request, int) and self.faults.wal_error_scheduled(request):
            raise OSError(f"injected wal-io-error for request {request}")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            status, body, headers = await self._dispatch(reader)
        except _HttpError as exc:
            status, body, headers = exc.status, exc.body, exc.headers
        except Exception as exc:  # a handler bug must still answer cleanly
            self._counters["errors"] += 1
            counter_add("http.errors")
            status, body, headers = 500, {"error": "internal", "detail": str(exc)}, {}
        try:
            payload = json.dumps(body).encode("utf-8")
            lines = [
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                "Content-Type: application/json",
                f"Content-Length: {len(payload)}",
                "Connection: close",
            ]
            lines.extend(f"{name}: {value}" for name, value in headers.items())
            writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + payload)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):  # client went away mid-write
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _dispatch(self, reader: asyncio.StreamReader) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise _HttpError(400, {"error": "empty request"})
        parts = request_line.split()
        if len(parts) < 2:
            raise _HttpError(400, {"error": "malformed request line"})
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            if ":" in line:
                name, _, value = line.partition(":")
                if name.strip().lower() == "content-length":
                    try:
                        content_length = int(value.strip())
                    except ValueError:
                        raise _HttpError(400, {"error": "bad content-length"})
        if content_length > MAX_BODY_BYTES:
            raise _HttpError(400, {"error": "body too large"})
        raw = await reader.readexactly(content_length) if content_length else b""
        body: Dict[str, object] = {}
        if raw:
            try:
                body = json.loads(raw.decode("utf-8"))
                if not isinstance(body, dict):
                    raise ValueError("body must be a JSON object")
            except ValueError as exc:
                raise _HttpError(400, {"error": f"bad json: {exc}"})
        counter_add("http.requests")

        if path == "/query" and method == "POST":
            return await self._handle_query(body)
        if path == "/healthz" and method == "GET":
            return 200, {"status": "ok", "generation": self.supervisor.generation}, {}
        if path == "/stats" and method == "GET":
            return 200, self._stats(), {}
        if path == "/accounts" and method == "GET":
            return 200, {"accounts": self.ledger.accounts(),
                         "default_cap": self.ledger.default_cap}, {}
        if path == "/admin/swap" and method == "POST":
            return await self._handle_swap(body)
        if path == "/admin/kill-worker" and method == "POST":
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self.supervisor.kill_worker)
            return 200, {"status": "worker killed"}, {}
        if path in ("/query", "/admin/swap", "/admin/kill-worker"):
            raise _HttpError(405, {"error": f"{path} requires POST"})
        raise _HttpError(404, {"error": f"no route for {path}"})

    # ------------------------------------------------------------------
    # /query
    # ------------------------------------------------------------------
    async def _handle_query(self, body: Dict[str, object]) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        self._counters["requests"] += 1
        if self._inflight >= self.max_inflight:
            # Shed *before* admitting: no fault clock tick, no charge.
            self._counters["shed"] += 1
            counter_add("http.shed")
            raise _HttpError(503, {"error": "overloaded",
                                   "inflight": self._inflight},
                             headers={"Retry-After": "1"})

        analyst = body.get("analyst")
        if not isinstance(analyst, str) or not analyst:
            raise _HttpError(400, {"error": "missing analyst"})
        rows = self._parse_queries(body)
        epsilon = body.get("epsilon", self.charge_epsilon * rows.shape[0])
        try:
            epsilon = float(epsilon)
        except (TypeError, ValueError):
            raise _HttpError(400, {"error": "epsilon must be a number"})
        if epsilon <= 0:
            raise _HttpError(400, {"error": "epsilon must be positive"})

        self._requests += 1
        request_id = self._requests
        due = self.faults.for_request(request_id)
        self._inflight += 1
        gauge_max("http.inflight", self._inflight)
        loop = asyncio.get_running_loop()
        try:
            work = loop.run_in_executor(
                None, self._query_work, analyst, rows, epsilon, request_id, due)
            result = await asyncio.wait_for(work, timeout=self.request_timeout)
        except asyncio.TimeoutError:
            # The executor thread keeps running; the charge it (probably)
            # already fsynced stands.  Wasted budget, never over-spent.
            self._counters["timeouts"] += 1
            counter_add("http.timeouts")
            raise _HttpError(503, {"error": "timeout",
                                   "timeout_seconds": self.request_timeout,
                                   "note": "budget may be charged; it is never over-spent"})
        except BudgetExceeded as exc:
            self._counters["refused"] += 1
            counter_add("http.refusals")
            raise _HttpError(429, {"error": "budget_exhausted", "analyst": exc.analyst,
                                   "requested": exc.requested, "remaining": exc.remaining})
        except OSError as exc:
            # WAL write failed: the charge rolled back, nothing was spent,
            # and no answer may be released (fail closed).
            self._counters["wal_errors"] += 1
            counter_add("http.wal_errors")
            raise _HttpError(503, {"error": "ledger_unavailable", "detail": str(exc)})
        finally:
            self._inflight -= 1
        self._counters["served"] += 1
        counter_add("http.served")
        return 200, result, {}

    def _parse_queries(self, body: Dict[str, object]) -> np.ndarray:
        queries = body.get("queries")
        if not isinstance(queries, list) or not queries:
            raise _HttpError(400, {"error": "queries must be a non-empty list"})
        try:
            rows = np.asarray(queries, dtype=np.float64)
        except (TypeError, ValueError):
            raise _HttpError(400, {"error": "queries must be numeric rows"})
        dims = self.supervisor.engine.dims
        if rows.ndim != 2 or rows.shape[1] != 2 * dims:
            raise _HttpError(400, {"error": f"each query row must have {2 * dims} "
                                            f"values (lo..., hi...) for a {dims}-d engine"})
        return rows

    def _query_work(self, analyst: str, rows: np.ndarray, epsilon: float,
                    request_id: int, due: List[FaultSpec]) -> Dict[str, object]:
        """The blocking core of one query request (runs on an executor thread).

        Order is the contract: injected faults first (they model a sick
        backend, not a sick request), then the durable charge, then the
        evaluation.  A crash after the charge wastes ε; reordering would risk
        answering without a durable charge, which is the one forbidden state.
        """
        for spec in due:
            if spec.kind == "kill-worker":
                self.supervisor.kill_worker()
            elif spec.kind == "oom-worker":
                self.supervisor.inject_oom()
        remaining = self.ledger.charge(analyst, epsilon, request_id=request_id)
        for spec in due:
            if spec.kind == "slow-chunk":
                time.sleep(spec.param)
        result = self.supervisor.evaluate(rows)
        return {
            "estimates": [float(value) for value in result.estimates],
            "nodes_touched": [int(value) for value in result.nodes_touched],
            "variances": [float(value) for value in result.variances],
            "analyst": analyst,
            "epsilon_charged": epsilon,
            "remaining": remaining,
            "generation": self.supervisor.generation,
            "request": request_id,
        }

    # ------------------------------------------------------------------
    # /admin/swap
    # ------------------------------------------------------------------
    async def _handle_swap(self, body: Dict[str, object]) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        path = body.get("path")
        if not isinstance(path, str) or not path:
            raise _HttpError(400, {"error": "missing engine path"})
        loop = asyncio.get_running_loop()
        try:
            engine = await loop.run_in_executor(None, load_engine, path)
        except FileNotFoundError:
            raise _HttpError(400, {"error": f"engine file not found: {path}"})
        except Exception as exc:
            raise _HttpError(400, {"error": f"engine load failed: {exc}"})
        generation = await loop.run_in_executor(None, self.supervisor.swap, engine)
        counter_add("http.swaps")
        return 200, {"status": "swapped", "generation": generation, "path": path}, {}

    # ------------------------------------------------------------------
    def _stats(self) -> Dict[str, object]:
        return {
            "service": dict(self._counters,
                            inflight=self._inflight,
                            max_inflight=self.max_inflight,
                            admitted=self._requests),
            "supervisor": self.supervisor.stats(),
            "ledger": {"seq": self.ledger.seq,
                       "replayed_records": self.ledger.replayed_records,
                       "analysts": len(self.ledger.accounts())},
            "faults": self.faults.stats(),
        }


class ServiceThread:
    """Run a :class:`QueryService` on a background event-loop thread.

    For tests, benchmarks and examples that need a live HTTP endpoint inside
    one process: ``start()`` blocks until the port is bound (``service.port``
    is then real, even for port 0), ``stop()`` tears the loop down cleanly.
    The supervisor and ledger stay owned by the caller.
    """

    def __init__(self, service: QueryService) -> None:
        self.service = service
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._error: Optional[BaseException] = None

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.service.start()
        except BaseException as exc:
            self._error = exc
            self._started.set()
            raise
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            await self.service.stop()

    def start(self) -> "ServiceThread":
        self._thread = threading.Thread(target=lambda: asyncio.run(self._main()),
                                        name="repro-serve", daemon=True)
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._error is not None:
            raise RuntimeError("service failed to start") from self._error
        if not self._started.is_set():
            raise RuntimeError("service did not bind within 30s")
        return self

    @property
    def address(self) -> Tuple[str, int]:
        return (self.service.host, self.service.port)

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
        self._thread = None

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
