"""repro — a full reproduction of "Differentially Private Spatial Decompositions".

Cormode, Procopiuc, Srivastava, Shen, Yu — ICDE 2012.

The package is organised as:

* :mod:`repro.geometry` — rectangles, domains, the Hilbert curve;
* :mod:`repro.privacy` — Laplace/exponential mechanisms, private medians,
  sampling amplification, privacy accounting;
* :mod:`repro.index` — exact (non-private) spatial indexes used as baselines;
* :mod:`repro.data` — synthetic datasets, including the TIGER-like generator;
* :mod:`repro.queries` — range-query workloads and accuracy metrics;
* :mod:`repro.core` — the paper's contribution: private spatial
  decompositions, budget strategies, OLS post-processing, pruning;
* :mod:`repro.engine` — the compiled flat-array query engine for serving
  released PSDs (vectorised batch queries, LRU caching, ``.npz`` shipping);
* :mod:`repro.analysis` — the analytical error bounds of Section 4;
* :mod:`repro.applications` — the private record-matching application;
* :mod:`repro.experiments` — runners reproducing every figure of Section 8.

Quick start::

    import numpy as np
    from repro import TIGER_DOMAIN, build_private_quadtree, road_intersections

    points = road_intersections(n=100_000, rng=0)
    psd = build_private_quadtree(points, TIGER_DOMAIN, height=8, epsilon=0.5, rng=1)
    query = TIGER_DOMAIN.query_rect(center=(-120.0, 47.5), extents=(1.0, 1.0))
    print(psd.range_query(query))
"""

from .core import (
    KDTREE_VARIANTS,
    QUADTREE_VARIANTS,
    PrivateHilbertRTree,
    PrivateSpatialDecomposition,
    build_private_hilbert_rtree,
    build_private_kdtree,
    build_private_quadtree,
    build_psd,
)
from .data import TIGER_DOMAIN, road_intersections
from .engine import CachedEngine, FlatPSD, batch_range_query, compile_psd
from .geometry import Domain, Rect
from .queries import PAPER_QUERY_SHAPES, QueryShape, generate_workload

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "PrivateSpatialDecomposition",
    "PrivateHilbertRTree",
    "build_psd",
    "build_private_quadtree",
    "build_private_kdtree",
    "build_private_hilbert_rtree",
    "QUADTREE_VARIANTS",
    "KDTREE_VARIANTS",
    "Domain",
    "Rect",
    "TIGER_DOMAIN",
    "road_intersections",
    "QueryShape",
    "generate_workload",
    "PAPER_QUERY_SHAPES",
    "FlatPSD",
    "compile_psd",
    "batch_range_query",
    "CachedEngine",
]
