"""Exact (non-private) quadtree.

The classical data-independent spatial decomposition the paper starts from:
nodes are recursively divided into ``2^d`` equal orthants through the midpoint
of each axis.  The exact tree serves three purposes in the reproduction:

* ground truth for range counts in tests (cross-checked against brute force);
* the structural skeleton the *private* quadtree shares (the private variant
  only changes how node counts are released);
* a reference implementation of the canonical range-query decomposition of
  Section 4.1, whose node-visit counts are validated against Lemma 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from ..geometry.domain import Domain
from ..geometry.rect import Rect, domain_aware_mask

__all__ = ["ExactQuadtreeNode", "ExactQuadtree"]


@dataclass
class ExactQuadtreeNode:
    """One node of the exact quadtree."""

    rect: Rect
    level: int
    count: int = 0
    children: List["ExactQuadtreeNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def iter_subtree(self) -> Iterator["ExactQuadtreeNode"]:
        """Pre-order traversal of the subtree rooted at this node."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))


@dataclass
class ExactQuadtree:
    """A complete quadtree of a given height over a domain.

    Parameters
    ----------
    domain:
        Public data domain (the root rectangle).
    height:
        Number of split levels; the root is at level ``height`` and leaves at
        level 0, matching the paper's convention.
    """

    domain: Domain
    height: int
    root: Optional[ExactQuadtreeNode] = None

    def __post_init__(self) -> None:
        if self.height < 0:
            raise ValueError("height must be non-negative")

    # ------------------------------------------------------------------
    def fit(self, points: np.ndarray) -> "ExactQuadtree":
        """Build the complete tree and populate exact counts."""
        pts = self.domain.validate_points(points)
        self.root = ExactQuadtreeNode(rect=self.domain.rect, level=self.height, count=pts.shape[0])
        self._build(self.root, pts)
        return self

    def _build(self, node: ExactQuadtreeNode, pts: np.ndarray) -> None:
        if node.level == 0:
            return
        for child_rect in node.rect.quad_children():
            mask = domain_aware_mask(child_rect, pts, self.domain.rect) if pts.size else np.zeros(0, dtype=bool)
            child_pts = pts[mask]
            child = ExactQuadtreeNode(rect=child_rect, level=node.level - 1, count=child_pts.shape[0])
            node.children.append(child)
            self._build(child, child_pts)

    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[ExactQuadtreeNode]:
        """Iterate over all nodes (pre-order)."""
        if self.root is None:
            return iter(())
        return self.root.iter_subtree()

    def node_count(self) -> int:
        """Total number of nodes in the complete tree."""
        return sum(1 for _ in self.nodes())

    def leaves(self) -> List[ExactQuadtreeNode]:
        """All leaf nodes."""
        return [n for n in self.nodes() if n.is_leaf]

    # ------------------------------------------------------------------
    def range_count(self, query: Rect, use_uniformity: bool = True) -> float:
        """Exact-count answer to a range query via canonical decomposition.

        Nodes fully contained in the query contribute their exact count;
        partially intersected leaves contribute proportionally to overlap area
        when ``use_uniformity`` is set (the same estimator the private trees
        use), or are descended-into-and-ignored otherwise.
        """
        if self.root is None:
            raise RuntimeError("call fit() before querying")
        total = 0.0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.rect.intersects(query):
                continue
            if query.contains_rect(node.rect):
                total += node.count
                continue
            if node.is_leaf:
                if use_uniformity and node.rect.area > 0:
                    total += node.count * node.rect.intersection_area(query) / node.rect.area
                continue
            stack.extend(node.children)
        return total

    def nodes_touched(self, query: Rect) -> int:
        """Number of nodes whose counts the canonical decomposition adds up.

        This is the quantity ``n(Q)`` bounded by Lemma 2.
        """
        if self.root is None:
            raise RuntimeError("call fit() before querying")
        touched = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.rect.intersects(query):
                continue
            if query.contains_rect(node.rect):
                touched += 1
                continue
            if node.is_leaf:
                touched += 1
                continue
            stack.extend(node.children)
        return touched
