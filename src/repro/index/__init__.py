"""Non-private spatial index substrate: exact quadtree, kd-tree, grid, Hilbert R-tree."""

from .grid import NoisyGrid, UniformGrid
from .kdtree import ExactKDNode, ExactKDTree
from .quadtree import ExactQuadtree, ExactQuadtreeNode
from .rtree import ExactHilbertNode, ExactHilbertRTree

__all__ = [
    "UniformGrid",
    "NoisyGrid",
    "ExactQuadtree",
    "ExactQuadtreeNode",
    "ExactKDTree",
    "ExactKDNode",
    "ExactHilbertRTree",
    "ExactHilbertNode",
]
