"""Exact (non-private) kd-tree with median splits.

Nodes are recursively split by a line through the median data value along one
coordinate axis, cycling through the axes level by level — the classical
data-dependent decomposition of Section 3.2.  The exact tree is the paper's
``kd-pure`` baseline (no noise anywhere), provides ground truth for tests, and
is reused by the private builders, which differ only in how split positions
and counts are released.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from ..geometry.domain import Domain
from ..geometry.rect import Rect, domain_aware_mask

__all__ = ["ExactKDNode", "ExactKDTree"]


@dataclass
class ExactKDNode:
    """One node of the exact kd-tree."""

    rect: Rect
    level: int
    count: int = 0
    split_axis: Optional[int] = None
    split_value: Optional[float] = None
    children: List["ExactKDNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def iter_subtree(self) -> Iterator["ExactKDNode"]:
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))


@dataclass
class ExactKDTree:
    """A complete binary kd-tree of a given height over a domain.

    Parameters
    ----------
    domain:
        Public data domain (root rectangle).
    height:
        Number of binary split levels; leaves are at level 0.
    first_axis:
        Axis used at the root; the splitting axis cycles from there.
    """

    domain: Domain
    height: int
    first_axis: int = 0
    root: Optional[ExactKDNode] = None

    def __post_init__(self) -> None:
        if self.height < 0:
            raise ValueError("height must be non-negative")
        if not 0 <= self.first_axis < self.domain.dims:
            raise ValueError("first_axis out of range for the domain")

    # ------------------------------------------------------------------
    def fit(self, points: np.ndarray) -> "ExactKDTree":
        """Build the complete tree using exact medians and exact counts."""
        pts = self.domain.validate_points(points)
        self.root = ExactKDNode(rect=self.domain.rect, level=self.height, count=pts.shape[0])
        self._build(self.root, pts, axis=self.first_axis)
        return self

    def _build(self, node: ExactKDNode, pts: np.ndarray, axis: int) -> None:
        if node.level == 0:
            return
        if pts.shape[0] > 0:
            split = float(np.median(pts[:, axis]))
        else:
            split = node.rect.center[axis]
        node.split_axis = axis
        node.split_value = split
        left_rect, right_rect = node.rect.split_at(axis, split)
        next_axis = (axis + 1) % self.domain.dims
        for child_rect in (left_rect, right_rect):
            mask = domain_aware_mask(child_rect, pts, self.domain.rect) if pts.size else np.zeros(0, dtype=bool)
            child_pts = pts[mask]
            child = ExactKDNode(rect=child_rect, level=node.level - 1, count=child_pts.shape[0])
            node.children.append(child)
            self._build(child, child_pts, axis=next_axis)

    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[ExactKDNode]:
        if self.root is None:
            return iter(())
        return self.root.iter_subtree()

    def node_count(self) -> int:
        return sum(1 for _ in self.nodes())

    def leaves(self) -> List[ExactKDNode]:
        return [n for n in self.nodes() if n.is_leaf]

    # ------------------------------------------------------------------
    def range_count(self, query: Rect, use_uniformity: bool = True) -> float:
        """Answer a range query via the canonical decomposition (Section 4.1)."""
        if self.root is None:
            raise RuntimeError("call fit() before querying")
        total = 0.0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.rect.intersects(query):
                continue
            if query.contains_rect(node.rect):
                total += node.count
                continue
            if node.is_leaf:
                if use_uniformity and node.rect.area > 0:
                    total += node.count * node.rect.intersection_area(query) / node.rect.area
                continue
            stack.extend(node.children)
        return total

    def nodes_touched(self, query: Rect) -> int:
        """The number of node counts the canonical decomposition sums (``n(Q)``)."""
        if self.root is None:
            raise RuntimeError("call fit() before querying")
        touched = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.rect.intersects(query):
                continue
            if query.contains_rect(node.rect) or node.is_leaf:
                touched += 1
                continue
            stack.extend(node.children)
        return touched
