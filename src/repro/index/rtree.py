"""Exact (non-private) Hilbert R-tree.

The Hilbert R-tree of Kamel & Faloutsos (used as a baseline in Section 3.2):
data points are mapped to a Hilbert space-filling curve, a balanced binary
tree is built over the sorted Hilbert values, and each node's planar region is
the bounding box of the curve cells its value range spans.  The private
version in :mod:`repro.core.hilbert_rtree` shares this skeleton but chooses
split values privately and releases noisy counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from ..geometry.domain import Domain
from ..geometry.hilbert import HilbertCurve
from ..geometry.rect import Rect

__all__ = ["ExactHilbertNode", "ExactHilbertRTree"]


@dataclass
class ExactHilbertNode:
    """A node spanning an inclusive interval of Hilbert indices."""

    lo_index: int
    hi_index: int
    level: int
    count: int = 0
    bbox: Optional[Rect] = None
    children: List["ExactHilbertNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def iter_subtree(self) -> Iterator["ExactHilbertNode"]:
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))


@dataclass
class ExactHilbertRTree:
    """A complete binary tree over Hilbert values of the data points.

    Parameters
    ----------
    domain:
        Public 2-D data domain.
    height:
        Number of binary split levels; leaves at level 0.
    order:
        Hilbert curve order (the paper uses 18 by default).
    """

    domain: Domain
    height: int
    order: int = 18
    curve: HilbertCurve = field(init=False)
    root: Optional[ExactHilbertNode] = None

    def __post_init__(self) -> None:
        if self.height < 0:
            raise ValueError("height must be non-negative")
        self.curve = HilbertCurve(order=self.order, domain=self.domain.rect)

    # ------------------------------------------------------------------
    def fit(self, points: np.ndarray) -> "ExactHilbertRTree":
        """Map points to Hilbert values, build the tree with exact median splits."""
        pts = self.domain.validate_points(points)
        values = np.sort(self.curve.encode(pts)) if pts.size else np.array([], dtype=np.int64)
        self.root = ExactHilbertNode(
            lo_index=0, hi_index=self.curve.max_index, level=self.height, count=int(values.size)
        )
        self._build(self.root, values)
        self._assign_bboxes()
        return self

    def _build(self, node: ExactHilbertNode, values: np.ndarray) -> None:
        if node.level == 0:
            return
        if values.size > 0:
            split = int(np.median(values))
        else:
            split = (node.lo_index + node.hi_index) // 2
        split = int(min(max(split, node.lo_index), node.hi_index - 1)) if node.hi_index > node.lo_index else node.lo_index
        left_values = values[values <= split]
        right_values = values[values > split]
        left = ExactHilbertNode(node.lo_index, split, node.level - 1, count=int(left_values.size))
        right = ExactHilbertNode(split + 1, node.hi_index, node.level - 1, count=int(right_values.size))
        node.children = [left, right]
        self._build(left, left_values)
        self._build(right, right_values)

    def _assign_bboxes(self) -> None:
        for node in self.nodes():
            node.bbox = self.curve.range_bbox(node.lo_index, node.hi_index)

    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[ExactHilbertNode]:
        if self.root is None:
            return iter(())
        return self.root.iter_subtree()

    def leaves(self) -> List[ExactHilbertNode]:
        return [n for n in self.nodes() if n.is_leaf]

    # ------------------------------------------------------------------
    def range_count(self, query: Rect) -> float:
        """Answer a planar range query via R-tree style traversal of node boxes.

        A node whose bounding box lies inside the query contributes its whole
        count; boxes that merely intersect are descended into; partially
        covered leaves contribute proportionally to the overlapped fraction of
        their box (uniformity assumption).
        """
        if self.root is None:
            raise RuntimeError("call fit() before querying")
        total = 0.0
        stack = [self.root]
        while stack:
            node = stack.pop()
            bbox = node.bbox
            if bbox is None or not bbox.intersects(query):
                continue
            if query.contains_rect(bbox):
                total += node.count
                continue
            if node.is_leaf:
                if bbox.area > 0:
                    total += node.count * bbox.intersection_area(query) / bbox.area
                continue
            stack.extend(node.children)
        return total
