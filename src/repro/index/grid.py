"""Uniform (fixed-resolution) grids over a spatial domain.

Two roles in the reproduction:

* the paper's strawman from the introduction — "lay down a fine grid over the
  data and add noise to the count of individuals within each cell" — which the
  PSD framework is designed to beat;
* the substrate of the **cell-based** kd-tree of [26] (``kd-cell`` in the
  experiments), which first materialises noisy counts over a fixed grid and
  then builds its tree, and of the cell-based private median.

The grid itself is non-private; :meth:`UniformGrid.noisy_counts` applies the
Laplace mechanism to produce its private counterpart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..geometry.domain import Domain
from ..geometry.rect import Rect
from ..privacy.mechanisms import laplace_noise
from ..privacy.rng import RngLike, ensure_rng

__all__ = ["UniformGrid", "NoisyGrid"]


@dataclass
class UniformGrid:
    """A ``shape[0] x shape[1] x ...`` grid of equal cells over a domain.

    Parameters
    ----------
    domain:
        The public data domain the grid covers.
    shape:
        Number of cells along each axis.
    """

    domain: Domain
    shape: Tuple[int, ...]
    counts: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.shape) != self.domain.dims:
            raise ValueError("grid shape must have one entry per domain dimension")
        if any(int(s) < 1 for s in self.shape):
            raise ValueError("every grid dimension must have at least one cell")
        self.shape = tuple(int(s) for s in self.shape)
        self.counts = np.zeros(self.shape, dtype=float)

    # ------------------------------------------------------------------
    @property
    def cell_widths(self) -> np.ndarray:
        """Per-axis width of a single cell."""
        return self.domain.widths / np.asarray(self.shape, dtype=float)

    @property
    def n_cells(self) -> int:
        return int(np.prod(self.shape))

    def cell_rect(self, index: Tuple[int, ...]) -> Rect:
        """The rectangle of the cell at a multi-index."""
        if len(index) != len(self.shape):
            raise ValueError("index arity must match the grid dimensionality")
        lo = np.asarray(self.domain.rect.lo) + np.asarray(index, dtype=float) * self.cell_widths
        return Rect.from_arrays(lo, lo + self.cell_widths)

    def edges(self, axis: int) -> np.ndarray:
        """Cell edge coordinates along one axis (``shape[axis] + 1`` values)."""
        lo = self.domain.rect.lo[axis]
        hi = self.domain.rect.hi[axis]
        return np.linspace(lo, hi, self.shape[axis] + 1)

    # ------------------------------------------------------------------
    def fit(self, points: np.ndarray) -> "UniformGrid":
        """Populate the cell counts from an ``(n, d)`` point array."""
        pts = self.domain.validate_points(points)
        if pts.size == 0:
            self.counts = np.zeros(self.shape, dtype=float)
            return self
        edges = [self.edges(axis) for axis in range(self.domain.dims)]
        hist, _ = np.histogramdd(pts, bins=edges)
        self.counts = hist.astype(float)
        return self

    def point_cells(self, points: np.ndarray) -> np.ndarray:
        """Multi-index of the cell containing each point, shape ``(n, d)``."""
        pts = self.domain.validate_points(points)
        unit = self.domain.normalize(pts)
        idx = np.floor(unit * np.asarray(self.shape)).astype(int)
        return np.clip(idx, 0, np.asarray(self.shape) - 1)

    # ------------------------------------------------------------------
    def range_count(self, query: Rect, counts: np.ndarray | None = None) -> float:
        """Estimated number of points in ``query``.

        Cells fully inside the query contribute their whole count; cells
        partially covered contribute proportionally to the covered area
        (the uniformity assumption).  Pass ``counts`` to evaluate the same
        query over noisy counts.
        """
        counts = self.counts if counts is None else np.asarray(counts, dtype=float)
        if counts.shape != self.shape:
            raise ValueError("counts array does not match the grid shape")
        overlap = self.domain.rect.intersection(query)
        if overlap is None:
            return 0.0

        # Per-axis coverage fractions of each cell by the query.
        fractions = []
        for axis in range(self.domain.dims):
            edges = self.edges(axis)
            left = np.maximum(edges[:-1], overlap.lo[axis])
            right = np.minimum(edges[1:], overlap.hi[axis])
            width = edges[1:] - edges[:-1]
            frac = np.clip(right - left, 0.0, None) / np.where(width > 0, width, 1.0)
            fractions.append(frac)
        weight = fractions[0]
        for frac in fractions[1:]:
            weight = np.multiply.outer(weight, frac)
        return float(np.sum(counts * weight))

    # ------------------------------------------------------------------
    def noisy_counts(self, epsilon: float, rng: RngLike = None) -> "NoisyGrid":
        """Release Laplace-noised cell counts (the fine-grid strawman).

        Cell counts have sensitivity 1 and the cells are disjoint, so one pass
        of per-cell Laplace noise with parameter ``epsilon`` is ε-DP overall.
        """
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        gen = ensure_rng(rng)
        noisy = self.counts + laplace_noise(1.0 / epsilon, size=self.counts.shape, rng=gen)
        return NoisyGrid(grid=self, counts=noisy, epsilon=epsilon)


@dataclass
class NoisyGrid:
    """Laplace-noised counts over a :class:`UniformGrid` (the released object)."""

    grid: UniformGrid
    counts: np.ndarray
    epsilon: float

    def range_count(self, query: Rect) -> float:
        """Answer a range query over the noisy counts."""
        return self.grid.range_count(query, counts=self.counts)

    def non_negative(self) -> "NoisyGrid":
        """Post-process the counts to be non-negative (no privacy cost)."""
        return NoisyGrid(grid=self.grid, counts=np.clip(self.counts, 0.0, None), epsilon=self.epsilon)
