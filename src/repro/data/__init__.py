"""Dataset generators: synthetic distributions and the TIGER-like stand-in."""

from .synthetic import (
    MEDIAN_STUDY_DOMAIN,
    gaussian_cluster_points,
    median_study_dataset,
    mixture_1d,
    skewed_points,
    uniform_1d,
    uniform_points,
)
from .tiger import TIGER_DOMAIN, RoadNetworkConfig, road_intersections

__all__ = [
    "uniform_points",
    "gaussian_cluster_points",
    "skewed_points",
    "uniform_1d",
    "mixture_1d",
    "median_study_dataset",
    "MEDIAN_STUDY_DOMAIN",
    "road_intersections",
    "RoadNetworkConfig",
    "TIGER_DOMAIN",
]
