"""A synthetic stand-in for the paper's TIGER/Line road-intersection data.

The paper's main real dataset is the 2006 TIGER/Line GPS coordinates of road
intersections in Washington and New Mexico: 1.63 million points over the
longitude/latitude box [-124.82, -103.00] x [31.33, 49.00], described as "a
rather skewed distribution corresponding roughly to human activity".

The real files are not available offline, so this module generates a point
process with the same qualitative structure over the *same* coordinate box:

* a handful of dense urban clusters (cities) containing most of the mass,
  with power-law-ish cluster sizes;
* sparse "road corridors" — points scattered along random polylines joining
  cluster centres, mimicking intersections along highways;
* a thin uniform background of rural intersections;
* large empty regions (the box spans two states that are far apart, so much
  of it contains almost nothing).

The skew (dense small regions + large empty areas) is exactly what drives the
relative behaviour of data-independent vs data-dependent PSDs in the paper's
experiments, which is the property the substitution needs to preserve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.domain import TIGER_DOMAIN, Domain
from ..privacy.rng import RngLike, ensure_rng

__all__ = ["RoadNetworkConfig", "road_intersections", "TIGER_DOMAIN"]


@dataclass(frozen=True)
class RoadNetworkConfig:
    """Tunable knobs of the synthetic road-intersection generator.

    The defaults are chosen so the marginal distributions (fraction of points
    in the densest 1 % of a 2^10 x 2^10 grid, fraction of empty cells) are in
    the same regime as real road-intersection data.
    """

    n_cities: int = 25
    city_fraction: float = 0.55
    corridor_fraction: float = 0.35
    background_fraction: float = 0.10
    city_spread: float = 0.012
    corridor_jitter: float = 0.004
    corridor_segments: int = 40

    def __post_init__(self) -> None:
        total = self.city_fraction + self.corridor_fraction + self.background_fraction
        if not np.isclose(total, 1.0):
            raise ValueError("the three fractions must sum to 1")
        if self.n_cities < 1:
            raise ValueError("need at least one city")


def road_intersections(
    n: int = 200_000,
    domain: Domain = TIGER_DOMAIN,
    config: RoadNetworkConfig | None = None,
    rng: RngLike = None,
) -> np.ndarray:
    """Generate ``n`` synthetic road-intersection coordinates in ``domain``.

    The default ``n`` of 200 000 keeps the benchmark suite fast; pass
    ``n=1_630_000`` to match the paper's dataset size exactly.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if domain.dims != 2:
        raise ValueError("road_intersections generates two-dimensional data")
    cfg = config or RoadNetworkConfig()
    gen = ensure_rng(rng)
    if n == 0:
        return np.empty((0, 2))

    n_city = int(round(n * cfg.city_fraction))
    n_corridor = int(round(n * cfg.corridor_fraction))
    n_background = n - n_city - n_corridor

    # City centres in unit coordinates, biased towards two "states" (left and
    # right thirds of the box) with the middle mostly empty, like WA + NM.
    side = gen.random(cfg.n_cities) < 0.5
    cx = np.where(side, gen.uniform(0.02, 0.35, cfg.n_cities), gen.uniform(0.60, 0.98, cfg.n_cities))
    cy = gen.uniform(0.05, 0.95, cfg.n_cities)
    centers = np.stack([cx, cy], axis=1)

    # Zipf-like city sizes: a few big metros, many small towns.
    ranks = np.arange(1, cfg.n_cities + 1, dtype=float)
    weights = 1.0 / ranks
    weights /= weights.sum()

    parts = []
    if n_city > 0:
        assignment = gen.choice(cfg.n_cities, size=n_city, p=weights)
        pts = centers[assignment] + gen.normal(scale=cfg.city_spread, size=(n_city, 2))
        parts.append(pts)

    if n_corridor > 0:
        # Random corridors between pairs of city centres; points are spread
        # along each segment with small perpendicular jitter.
        seg_a = centers[gen.integers(0, cfg.n_cities, cfg.corridor_segments)]
        seg_b = centers[gen.integers(0, cfg.n_cities, cfg.corridor_segments)]
        seg_idx = gen.integers(0, cfg.corridor_segments, n_corridor)
        t = gen.random(n_corridor)[:, None]
        pts = seg_a[seg_idx] * (1 - t) + seg_b[seg_idx] * t
        pts = pts + gen.normal(scale=cfg.corridor_jitter, size=(n_corridor, 2))
        parts.append(pts)

    if n_background > 0:
        # Rural background intersections: confined to the two "state" bands so
        # the stretch between them stays essentially empty, as it does between
        # Washington and New Mexico in the real data.
        side_bg = gen.random(n_background) < 0.5
        bx = np.where(side_bg, gen.uniform(0.02, 0.37, n_background), gen.uniform(0.58, 0.98, n_background))
        by = gen.random(n_background)
        parts.append(np.stack([bx, by], axis=1))

    unit = np.clip(np.concatenate(parts, axis=0), 0.0, 1.0)
    gen.shuffle(unit, axis=0)
    return domain.denormalize(unit)
