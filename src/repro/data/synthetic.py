"""Synthetic spatial datasets.

The paper's experiments use real TIGER/Line road-intersection coordinates plus
"synthetic 2D data with various distributions" (Section 8.1) and a synthetic
one-dimensional uniform dataset for the private-median study (Section 8.2,
Figure 4: 2^20 points uniform in [0, 2^26]).  This module provides those
synthetic distributions; the TIGER-like stand-in lives in
:mod:`repro.data.tiger`.

Every generator takes a seedable ``rng`` and returns plain numpy arrays so the
datasets slot directly into the PSD builders and workload generators.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..geometry.domain import Domain
from ..privacy.rng import RngLike, ensure_rng

__all__ = [
    "uniform_points",
    "gaussian_cluster_points",
    "skewed_points",
    "uniform_1d",
    "mixture_1d",
    "MEDIAN_STUDY_DOMAIN",
    "median_study_dataset",
]

#: Domain of the paper's one-dimensional median study: values in [0, 2^26].
MEDIAN_STUDY_DOMAIN = (0.0, float(2**26))


def uniform_points(n: int, domain: Domain, rng: RngLike = None) -> np.ndarray:
    """``n`` points uniformly distributed over the domain."""
    if n < 0:
        raise ValueError("n must be non-negative")
    gen = ensure_rng(rng)
    unit = gen.random((n, domain.dims))
    return domain.denormalize(unit)


def gaussian_cluster_points(
    n: int,
    domain: Domain,
    n_clusters: int = 5,
    spread: float = 0.05,
    rng: RngLike = None,
    weights: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """A mixture of Gaussian clusters clipped to the domain.

    ``spread`` is the cluster standard deviation as a fraction of the domain
    width.  ``weights`` optionally skews how many points each cluster gets.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if n_clusters < 1:
        raise ValueError("n_clusters must be at least 1")
    gen = ensure_rng(rng)
    centers = gen.random((n_clusters, domain.dims))
    if weights is None:
        w = gen.random(n_clusters) + 0.2
    else:
        w = np.asarray(weights, dtype=float)
        if w.shape[0] != n_clusters or np.any(w < 0):
            raise ValueError("weights must be non-negative with one entry per cluster")
    w = w / w.sum()
    assignment = gen.choice(n_clusters, size=n, p=w)
    unit = centers[assignment] + gen.normal(scale=spread, size=(n, domain.dims))
    unit = np.clip(unit, 0.0, 1.0)
    return domain.denormalize(unit)


def skewed_points(
    n: int,
    domain: Domain,
    exponent: float = 3.0,
    rng: RngLike = None,
) -> np.ndarray:
    """Points concentrated towards one corner of the domain.

    Each coordinate is drawn as ``u**exponent`` with ``u`` uniform, producing
    the heavy corner-skew typical of population-like data.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    gen = ensure_rng(rng)
    unit = gen.random((n, domain.dims)) ** exponent
    return domain.denormalize(unit)


def uniform_1d(n: int, lo: float = 0.0, hi: float = 1.0, rng: RngLike = None) -> np.ndarray:
    """``n`` scalar values uniform in ``[lo, hi]`` (the Figure 4 distribution)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if hi < lo:
        raise ValueError("hi must be at least lo")
    gen = ensure_rng(rng)
    return gen.uniform(lo, hi, size=n)


def mixture_1d(
    n: int,
    lo: float = 0.0,
    hi: float = 1.0,
    modes: int = 3,
    spread: float = 0.03,
    rng: RngLike = None,
) -> np.ndarray:
    """A clustered 1-D distribution used to stress the private-median methods."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if modes < 1:
        raise ValueError("modes must be at least 1")
    gen = ensure_rng(rng)
    centers = gen.uniform(lo, hi, size=modes)
    assignment = gen.integers(0, modes, size=n)
    values = centers[assignment] + gen.normal(scale=spread * (hi - lo), size=n)
    return np.clip(values, lo, hi)


def median_study_dataset(n: int = 2**20, rng: RngLike = None) -> np.ndarray:
    """The exact setup of Figure 4: ``n`` points uniform in ``[0, 2^26]``."""
    lo, hi = MEDIAN_STUDY_DOMAIN
    return uniform_1d(n, lo=lo, hi=hi, rng=rng)
