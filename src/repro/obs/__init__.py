"""Observability: process-local metrics, span tracing, host metadata.

Off by default, zero RNG draws, bitwise-identical releases with or without
instrumentation — see :mod:`repro.obs.registry` and :mod:`repro.obs.trace`
for the contracts, and ``benchmarks/bench_obs_overhead.py`` for the ≤ 5%
overhead gate.

Snapshot/merge plumbing for the process pool lives in :func:`obs_snapshot`
and :func:`merge_obs_snapshot`: a worker drains its registry and tracer into
one picklable dict that rides back with each task result; the parent merges
every such dict into its own registry/tracer so a ``--workers N`` run reports
one unified view.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .hostmeta import host_metadata, write_bench_json
from .registry import (
    DEFAULT_TIME_BUCKETS,
    Histogram,
    MetricsRegistry,
    active_registry,
    counter_add,
    disable_metrics,
    enable_metrics,
    format_metrics,
    gauge_max,
    gauge_set,
    metrics_enabled,
    metrics_payload,
    observe,
)
from .trace import (
    Tracer,
    active_tracer,
    disable_tracing,
    enable_tracing,
    trace_span,
    tracing_enabled,
)

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "active_registry",
    "active_tracer",
    "counter_add",
    "disable_metrics",
    "disable_tracing",
    "enable_metrics",
    "enable_tracing",
    "format_metrics",
    "gauge_max",
    "gauge_set",
    "host_metadata",
    "merge_obs_snapshot",
    "metrics_enabled",
    "metrics_payload",
    "obs_enabled",
    "obs_snapshot",
    "observe",
    "trace_span",
    "tracing_enabled",
    "write_bench_json",
]


def obs_enabled() -> bool:
    """Whether any observability surface (metrics or tracing) is active."""
    return metrics_enabled() or tracing_enabled()


def obs_snapshot() -> Optional[Dict[str, Any]]:
    """Drain this process's registry and tracer into one picklable dict.

    Returns ``None`` when observability is off, so the common case adds
    nothing to task results.  Draining (rather than snapshotting) means a
    worker that serves several tasks reports each task's increments exactly
    once.
    """
    registry = active_registry()
    tracer = active_tracer()
    if registry is None and tracer is None:
        return None
    payload: Dict[str, Any] = {}
    if registry is not None:
        payload["metrics"] = registry.drain()
    if tracer is not None:
        payload["trace"] = tracer.drain_events()
    return payload


def merge_obs_snapshot(payload: Optional[Dict[str, Any]]) -> None:
    """Fold a worker's :func:`obs_snapshot` into this process's registry/tracer."""
    if not payload:
        return
    registry = active_registry()
    if registry is not None:
        registry.merge(payload.get("metrics"))
    tracer = active_tracer()
    if tracer is not None:
        tracer.absorb(payload.get("trace"))
