"""Process-local metrics: counters, gauges and fixed-bucket histograms.

The registry is the numeric half of the observability layer (the other half,
span tracing, lives in :mod:`repro.obs.trace`).  Three instrument types with
hard merge semantics, chosen so that per-process registries can be combined
into one coherent view of a multi-process run:

* **counters** accumulate (``+=``) and merge by **sum** — events, bytes,
  queries, cache hits.  Per-worker quantities carry a label (e.g.
  ``worker=<pid>``) so the merged registry still shows the per-worker split;
* **gauges** hold a point-in-time value and merge by **max** — suitable for
  peaks (frontier size, queue depth) and for idempotent readings that every
  process reports identically (privacy spend per level).  A quantity that
  should *add* across workers belongs in a counter, not a gauge;
* **histograms** count observations into fixed buckets (numpy ``int64``
  arrays) and merge by elementwise bucket sum.  Span durations land here via
  :func:`repro.obs.trace.trace_span`.

Every operation holds one internal lock — the same discipline as
:class:`repro.engine.cache.QueryCache` — so a registry can be shared by the
serving threads of one process.  :meth:`MetricsRegistry.snapshot` returns a
plain picklable dict; :meth:`MetricsRegistry.merge` folds such a snapshot in.
The :meth:`MetricsRegistry.drain` variant snapshots **and resets**, which is
how pool workers report per-task increments without double counting.

Observability is **off by default**: the module-level helpers
(:func:`counter_add` and friends) are no-ops — a single global read plus a
``None`` check — until :func:`enable_metrics` installs an active registry.
Nothing in this module touches any random number generator, so enabling
metrics can never change released bits (the tests assert exactly that).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "active_registry",
    "counter_add",
    "disable_metrics",
    "enable_metrics",
    "format_metrics",
    "gauge_max",
    "gauge_set",
    "metrics_enabled",
    "metrics_payload",
    "observe",
]

#: Labels in canonical form: a sorted tuple of (key, value) string pairs.
LabelKey = Tuple[Tuple[str, str], ...]
#: One metric series: its name plus its canonical labels.
MetricKey = Tuple[str, LabelKey]

#: Default histogram bucket upper bounds, sized for wall-clock seconds (an
#: implicit +inf bucket catches everything above the last edge).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)


def _key(name: str, labels: Mapping[str, object]) -> MetricKey:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


class Histogram:
    """Fixed-bucket observation counts plus sum / count / min / max.

    ``edges`` are the bucket upper bounds; bucket ``i`` counts observations
    ``<= edges[i]`` (and above ``edges[i - 1]``), with one extra overflow
    bucket beyond the last edge.  Counts live in one numpy ``int64`` array so
    a merge is a single vector add.
    """

    __slots__ = ("edges", "counts", "total", "count", "vmin", "vmax")

    def __init__(self, edges: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        self.edges = np.asarray(edges, dtype=np.float64)
        if self.edges.ndim != 1 or self.edges.size == 0:
            raise ValueError("histogram edges must be a non-empty 1-d sequence")
        if np.any(np.diff(self.edges) <= 0):
            raise ValueError("histogram edges must be strictly increasing")
        self.counts = np.zeros(self.edges.size + 1, dtype=np.int64)
        self.total = 0.0
        self.count = 0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[int(np.searchsorted(self.edges, value, side="left"))] += 1
        self.total += value
        self.count += 1
        self.vmin = value if self.vmin is None else min(self.vmin, value)
        self.vmax = value if self.vmax is None else max(self.vmax, value)

    # ------------------------------------------------------------------
    def state(self) -> Dict[str, object]:
        """A plain picklable dict (the snapshot form)."""
        return {
            "edges": tuple(float(e) for e in self.edges),
            "counts": tuple(int(c) for c in self.counts),
            "total": self.total,
            "count": self.count,
            "min": self.vmin,
            "max": self.vmax,
        }

    def merge_state(self, state: Mapping[str, object]) -> None:
        edges = np.asarray(state["edges"], dtype=np.float64)
        if edges.shape != self.edges.shape or not np.array_equal(edges, self.edges):
            raise ValueError("cannot merge histograms with different bucket edges")
        self.counts += np.asarray(state["counts"], dtype=np.int64)
        self.total += float(state["total"])
        self.count += int(state["count"])
        for incoming, pick in ((state["min"], min), (state["max"], max)):
            if incoming is None:
                continue
            attr = "vmin" if pick is min else "vmax"
            current = getattr(self, attr)
            setattr(self, attr, float(incoming) if current is None
                    else pick(current, float(incoming)))

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "Histogram":
        hist = cls(edges=state["edges"])
        hist.merge_state(state)
        return hist


class MetricsRegistry:
    """A lock-protected store of counters, gauges and histograms.

    All mutation goes through the instrument methods; reads return copies so
    callers can never observe (or corrupt) in-flight state.  Snapshots are
    plain dicts keyed by ``(name, ((label, value), ...))`` tuples — fully
    picklable, so a worker process can return its registry with a task result
    and the parent can :meth:`merge` it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[MetricKey, float] = {}
        self._gauges: Dict[MetricKey, float] = {}
        self._hists: Dict[MetricKey, Histogram] = {}

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def counter_add(self, name: str, value: float = 1.0, **labels: object) -> None:
        """Add ``value`` to a counter (created at zero on first use)."""
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + float(value)

    def gauge_set(self, name: str, value: float, **labels: object) -> None:
        """Set a gauge to ``value`` (last write wins within this process)."""
        with self._lock:
            self._gauges[_key(name, labels)] = float(value)

    def gauge_max(self, name: str, value: float, **labels: object) -> None:
        """Raise a gauge to ``value`` if it is the largest seen so far."""
        key = _key(name, labels)
        with self._lock:
            current = self._gauges.get(key)
            if current is None or value > current:
                self._gauges[key] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        **labels: object,
    ) -> None:
        """Record one observation into a fixed-bucket histogram."""
        key = _key(name, labels)
        with self._lock:
            hist = self._hists.get(key)
            if hist is None:
                hist = Histogram(edges=buckets)
                self._hists[key] = hist
            hist.observe(value)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels: object) -> float:
        with self._lock:
            return self._counters.get(_key(name, labels), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all of its label sets."""
        with self._lock:
            return sum(v for (n, _), v in self._counters.items() if n == name)

    def gauge_value(self, name: str, **labels: object) -> Optional[float]:
        with self._lock:
            return self._gauges.get(_key(name, labels))

    def histogram(self, name: str, **labels: object) -> Optional[Dict[str, object]]:
        with self._lock:
            hist = self._hists.get(_key(name, labels))
            return None if hist is None else hist.state()

    # ------------------------------------------------------------------
    # Snapshot / merge / drain
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[MetricKey, object]]:
        """A plain picklable copy of every series."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {k: h.state() for k, h in self._hists.items()},
            }

    def drain(self) -> Dict[str, Dict[MetricKey, object]]:
        """Snapshot **and reset** — the per-task reporting unit of pool workers.

        Each task's drain holds only that task's increments, so the parent can
        merge every drain without ever double counting a worker that served
        several tasks.
        """
        with self._lock:
            snap = {
                "counters": self._counters,
                "gauges": self._gauges,
                "histograms": {k: h.state() for k, h in self._hists.items()},
            }
            self._counters = {}
            self._gauges = {}
            self._hists = {}
            return snap

    def merge(self, snap: Optional[Mapping[str, Mapping]]) -> None:
        """Fold a snapshot in: counters sum, gauges max, histogram buckets sum."""
        if not snap:
            return
        with self._lock:
            for key, value in snap.get("counters", {}).items():
                self._counters[key] = self._counters.get(key, 0.0) + float(value)
            for key, value in snap.get("gauges", {}).items():
                current = self._gauges.get(key)
                if current is None or value > current:
                    self._gauges[key] = float(value)
            for key, state in snap.get("histograms", {}).items():
                hist = self._hists.get(key)
                if hist is None:
                    self._hists[key] = Histogram.from_state(state)
                else:
                    hist.merge_state(state)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()


# ----------------------------------------------------------------------
# The module-level active registry (off by default)
# ----------------------------------------------------------------------
_ACTIVE: Optional[MetricsRegistry] = None


def enable_metrics(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (and return) the process's active registry.

    Until this is called every instrumentation helper is a no-op, which is the
    hard off-by-default contract: uninstrumented runs pay one global read per
    call site and nothing else.
    """
    global _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    return _ACTIVE


def disable_metrics() -> Optional[MetricsRegistry]:
    """Remove and return the active registry (helpers become no-ops again)."""
    global _ACTIVE
    registry, _ACTIVE = _ACTIVE, None
    return registry


def active_registry() -> Optional[MetricsRegistry]:
    return _ACTIVE


def metrics_enabled() -> bool:
    return _ACTIVE is not None


def counter_add(name: str, value: float = 1.0, **labels: object) -> None:
    registry = _ACTIVE
    if registry is not None:
        registry.counter_add(name, value, **labels)


def gauge_set(name: str, value: float, **labels: object) -> None:
    registry = _ACTIVE
    if registry is not None:
        registry.gauge_set(name, value, **labels)


def gauge_max(name: str, value: float, **labels: object) -> None:
    registry = _ACTIVE
    if registry is not None:
        registry.gauge_max(name, value, **labels)


def observe(name: str, value: float,
            buckets: Sequence[float] = DEFAULT_TIME_BUCKETS, **labels: object) -> None:
    registry = _ACTIVE
    if registry is not None:
        registry.observe(name, value, buckets=buckets, **labels)


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def _format_key(key: MetricKey) -> str:
    name, labels = key
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


def metrics_payload(registry: MetricsRegistry) -> Dict[str, List[Dict[str, object]]]:
    """The registry as a JSON-serialisable structure (stable sort by series)."""
    snap = registry.snapshot()
    payload: Dict[str, List[Dict[str, object]]] = {"counters": [], "gauges": [], "histograms": []}
    for key in sorted(snap["counters"]):
        payload["counters"].append(
            {"name": key[0], "labels": dict(key[1]), "value": snap["counters"][key]}
        )
    for key in sorted(snap["gauges"]):
        payload["gauges"].append(
            {"name": key[0], "labels": dict(key[1]), "value": snap["gauges"][key]}
        )
    for key in sorted(snap["histograms"]):
        state = snap["histograms"][key]
        payload["histograms"].append({"name": key[0], "labels": dict(key[1]), **state})
    return payload


def format_metrics(registry: MetricsRegistry, title: str = "metrics") -> str:
    """A fixed-width text summary (the ``--metrics`` CLI output)."""
    snap = registry.snapshot()
    lines: List[str] = [title]
    if snap["counters"]:
        lines.append("  counters:")
        for key in sorted(snap["counters"]):
            value = snap["counters"][key]
            rendered = f"{value:g}" if value != int(value) else f"{int(value)}"
            lines.append(f"    {_format_key(key):<56} {rendered}")
    if snap["gauges"]:
        lines.append("  gauges:")
        for key in sorted(snap["gauges"]):
            lines.append(f"    {_format_key(key):<56} {snap['gauges'][key]:g}")
    if snap["histograms"]:
        lines.append("  histograms:")
        for key in sorted(snap["histograms"]):
            state = snap["histograms"][key]
            count = state["count"]
            mean = state["total"] / count if count else 0.0
            lines.append(
                f"    {_format_key(key):<56} count={count} total={state['total']:.6g} "
                f"mean={mean:.6g} max={state['max'] if state['max'] is not None else '-'}"
            )
    if len(lines) == 1:
        lines.append("  (no metrics recorded)")
    return "\n".join(lines)
