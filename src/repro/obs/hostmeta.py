"""Host metadata stamps for metrics payloads and benchmark JSON files.

Numbers tracked across machines or PRs are only comparable if the payload
records what they were measured *on*.  :func:`host_metadata` captures the CPU
count, platform, interpreter and numpy versions, and the repo's git commit;
benchmark writers and the ``--metrics-json`` / ``repro experiment --json``
outputs all stamp it under a ``"host"`` key.  ``benchmarks/hostmeta.py``
re-exports this module so scripts outside the installed package share the
exact same stamp.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from typing import Dict, Optional

import numpy as np

__all__ = ["host_metadata", "write_bench_json"]


def _git_commit(repo_root: Optional[str] = None) -> Optional[str]:
    if repo_root is None:
        repo_root = os.getcwd()
    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5, cwd=repo_root,
        )
    except Exception:
        return None
    commit = result.stdout.strip()
    return commit or None


def host_metadata(repo_root: Optional[str] = None) -> Dict[str, object]:
    """CPU count, platform, interpreter/numpy versions and the repo commit.

    ``repo_root`` anchors the ``git rev-parse`` lookup; it defaults to the
    current working directory (callers running from a checkout).
    """
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "commit": _git_commit(repo_root),
    }


def write_bench_json(path: str, payload: Dict[str, object],
                     repo_root: Optional[str] = None) -> Dict[str, object]:
    """Stamp ``payload`` with host metadata and write it to ``path`` as JSON.

    The single emit helper every benchmark routes through: guarantees the
    ``"host"`` key (including the git commit) is present and identically
    shaped in every ``BENCH_*.json``.  Returns the stamped payload.

    The write is atomic (temp file + fsync + ``os.replace``): a benchmark
    crashing mid-emit leaves either the previous complete file or none at
    all, never a torn JSON that downstream tooling would choke on.
    """
    payload = dict(payload)
    payload["host"] = host_metadata(repo_root)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return payload
