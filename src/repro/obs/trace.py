"""Span-based tracing with JSON-lines event output.

A span wraps one phase of work (``with trace_span("build.split_level",
level=k):``) and records its wall-clock and CPU duration plus a span tree
(parent/child ids from a per-thread stack).  Spans serve two consumers:

* an active :class:`Tracer` collects one JSON-serialisable event dict per
  span, optionally flushed to a ``.jsonl`` file (the ``--trace out.jsonl``
  CLI flag) — one event per line, children appear before their parent
  because events are emitted at span *exit*;
* an active metrics registry (see :mod:`repro.obs.registry`) receives every
  span's wall duration as an observation into the ``phase_seconds`` histogram
  labelled ``phase=<span name>`` — so ``--metrics`` alone still yields
  per-phase timing without any event stream.

Like the registry, tracing is **off by default**: when neither a tracer nor
a registry is active, :func:`trace_span` returns a shared no-op context
manager and the instrumented code pays a couple of global reads per phase.
Span ids are sequential integers — tracing consumes zero RNG draws, which is
what keeps released bits bitwise identical with tracing on or off.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

from . import registry as _registry

__all__ = [
    "Tracer",
    "active_tracer",
    "disable_tracing",
    "enable_tracing",
    "trace_span",
    "tracing_enabled",
]


class Tracer:
    """Collects span events; optionally writes them to a JSONL file.

    Events accumulate in memory (plain dicts, picklable — worker processes
    return theirs with task results).  When constructed with a ``path``, the
    whole buffer is flushed there by :meth:`flush` / :func:`disable_tracing`,
    one JSON object per line.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []
        self._next_id = 1
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def allocate_span(self) -> int:
        """The next sequential span id (no RNG, ever)."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    def record(self, event: Dict[str, Any]) -> None:
        with self._lock:
            self._events.append(event)

    # ------------------------------------------------------------------
    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._events)

    def drain_events(self) -> List[Dict[str, Any]]:
        """Return and clear the buffered events (per-task worker reporting)."""
        with self._lock:
            events, self._events = self._events, []
            return events

    def absorb(self, events: Optional[List[Dict[str, Any]]]) -> None:
        """Append events drained from another process's tracer."""
        if not events:
            return
        with self._lock:
            self._events.extend(events)

    def flush(self) -> None:
        """Write all buffered events to ``self.path`` (no-op without a path)."""
        if not self.path:
            return
        with self._lock:
            events = list(self._events)
        with open(self.path, "w", encoding="utf-8") as fh:
            for event in events:
                fh.write(json.dumps(event, sort_keys=True))
                fh.write("\n")


# ----------------------------------------------------------------------
# The module-level active tracer (off by default)
# ----------------------------------------------------------------------
_TRACER: Optional[Tracer] = None


def enable_tracing(path: Optional[str] = None, tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the process's active tracer."""
    global _TRACER
    _TRACER = tracer if tracer is not None else Tracer(path=path)
    return _TRACER


def disable_tracing(flush: bool = True) -> Optional[Tracer]:
    """Remove and return the active tracer, flushing its file if it has one."""
    global _TRACER
    tracer, _TRACER = _TRACER, None
    if tracer is not None and flush:
        tracer.flush()
    return tracer


def active_tracer() -> Optional[Tracer]:
    return _TRACER


def tracing_enabled() -> bool:
    return _TRACER is not None


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class _NullSpan:
    """The shared do-nothing span used while observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: times itself and reports to the tracer and/or registry."""

    __slots__ = ("name", "attrs", "tracer", "span_id", "parent_id", "_wall0", "_cpu0")

    def __init__(self, name: str, attrs: Dict[str, Any], tracer: Optional[Tracer]) -> None:
        self.name = name
        self.attrs = attrs
        self.tracer = tracer
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def __enter__(self) -> "_Span":
        tracer = self.tracer
        if tracer is not None:
            stack = tracer._stack()
            self.parent_id = stack[-1] if stack else None
            self.span_id = tracer.allocate_span()
            stack.append(self.span_id)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc_info) -> None:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        tracer = self.tracer
        if tracer is not None:
            stack = tracer._stack()
            if stack and stack[-1] == self.span_id:
                stack.pop()
            event: Dict[str, Any] = {
                "span": self.name,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "pid": os.getpid(),
                "wall_s": wall,
                "cpu_s": cpu,
            }
            if self.attrs:
                event["attrs"] = {k: v for k, v in self.attrs.items()}
            tracer.record(event)
        reg = _registry.active_registry()
        if reg is not None:
            reg.observe("phase_seconds", wall, phase=self.name)


def trace_span(name: str, **attrs: Any):
    """A context manager timing one named phase of work.

    Returns the shared null span when both the tracer and the metrics
    registry are off, so dormant instrumentation costs two global reads and
    nothing else.
    """
    tracer = _TRACER
    if tracer is None and _registry.active_registry() is None:
        return _NULL_SPAN
    return _Span(name, attrs, tracer)
