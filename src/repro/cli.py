"""Command-line interface for building, querying and benchmarking PSDs.

Four sub-commands cover the life-cycle of a private release:

* ``build``  — read a point dataset (``.npy`` or CSV with one point per row,
  or the built-in synthetic road data), build a chosen PSD variant under a
  privacy budget, and write the released structure to a JSON file;
* ``compile`` — compile a released JSON structure into a flat array engine
  optimised for high-throughput query serving: compressed ``.npz``
  (``--format npz``, the default) or the zero-copy memory-mapped format v2
  (``--format mmap``, optionally with ``--precision float32`` storage);
* ``query``  — load a released structure (JSON, or a compiled engine in
  either format — detected from the file's magic bytes, not its suffix) and
  answer rectangular range queries from it — one-off via ``--rect`` or in
  bulk via ``--queries-file``; ``--engine flat`` serves from the compiled
  backend (no access to the original data needed either way);
* ``experiment`` — run one of the paper-figure experiments through the
  multi-release sweep pipeline at a named scale (``smoke`` / ``default`` /
  ``paper``) and print its series (optionally writing them as JSON), the same
  code path the benchmark suite uses;
* ``serve`` — stand up the fault-tolerant HTTP query service on an engine
  (JSON release or compiled engine, either format): per-analyst ε budgets
  enforced through a crash-safe write-ahead ledger, a supervised worker pool
  that survives worker death, bounded admission with load shedding, and
  zero-downtime engine hot swap via ``POST /admin/swap``.  ``--fault``
  schedules deterministic faults (``kill-worker:N``, ``slow-chunk:N[:sec]``,
  ``wal-io-error:N``, ``oom-worker:N``) for drills and tests.

Examples
--------
::

    python -m repro.cli build --synthetic 100000 --variant quad-opt \
        --epsilon 0.5 --height 8 --output release.json
    python -m repro.cli compile release.json --output engine.npz
    python -m repro.cli compile release.json --format mmap --output engine.psdm
    python -m repro.cli query release.json --rect=-123,46,-121,48
    python -m repro.cli query engine.psdm --queries-file workload.txt --workers 4
    python -m repro.cli experiment --figure 3 --scale smoke --json fig3.json
    python -m repro.cli experiment fig3 --epsilons 0.5 --n-points 20000
    python -m repro.cli serve engine.psdm --ledger budget.jsonl --port 8080 \
        --budget-cap 1.0 --workers 4
"""

from __future__ import annotations

import argparse
import csv
import dataclasses
import json
import sys
import time
from typing import List, Optional, Sequence

import numpy as np

from .core import (
    BUILD_LAYOUTS,
    build_private_hilbert_rtree,
    build_private_kdtree,
    build_private_quadtree,
    load_psd,
    save_psd,
)
from .core.kdtree import KDTREE_VARIANTS
from .core.quadtree import QUADTREE_VARIANTS
from .core.query import QUERY_BACKENDS
from .data import road_intersections
from .engine import (
    CachedEngine,
    ENGINE_FORMATS,
    PRECISIONS,
    batch_range_query,
    compile_psd,
    detect_engine_format,
    load_engine,
    save_engine,
)
from .experiments import (
    ExperimentScale,
    format_table,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7a,
    run_fig7b,
)
from .geometry import Domain, Rect, TIGER_DOMAIN, bounding_rect
from .obs import (
    disable_metrics,
    disable_tracing,
    enable_metrics,
    enable_tracing,
    format_metrics,
    host_metadata,
    metrics_payload,
)

__all__ = ["main", "build_parser"]


# ----------------------------------------------------------------------
# Observability flags (shared by `query` and `experiment`)
# ----------------------------------------------------------------------
def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--metrics", action="store_true",
                        help="collect runtime metrics (counters/gauges/histograms) "
                             "and print a summary on stderr; released bits are "
                             "unaffected (zero RNG draws)")
    parser.add_argument("--metrics-json", default=None,
                        help="write the collected metrics (with a host-metadata "
                             "stamp) to this JSON file; implies metrics collection")
    parser.add_argument("--trace", default=None,
                        help="record span events (wall/CPU time, span tree) to this "
                             "JSON-lines file; released bits are unaffected")


def _obs_begin(args) -> None:
    """Enable the registry/tracer requested by the command's obs flags."""
    if getattr(args, "metrics", False) or getattr(args, "metrics_json", None):
        enable_metrics()
    if getattr(args, "trace", None):
        enable_tracing(path=args.trace)


def _obs_finish(args) -> None:
    """Report and tear down whatever :func:`_obs_begin` enabled."""
    registry = disable_metrics()
    tracer = disable_tracing()  # flushes the JSONL file if one was requested
    if registry is not None:
        if getattr(args, "metrics", False):
            print(format_metrics(registry), file=sys.stderr)
        path = getattr(args, "metrics_json", None)
        if path:
            payload = {"host": host_metadata(), "metrics": metrics_payload(registry)}
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            print(f"wrote metrics to {path}", file=sys.stderr)
    if tracer is not None and tracer.path:
        print(f"wrote {len(tracer.events())} trace events to {tracer.path}",
              file=sys.stderr)


# ----------------------------------------------------------------------
# Input / output helpers
# ----------------------------------------------------------------------
def _load_points(args) -> np.ndarray:
    if args.synthetic is not None:
        return road_intersections(n=args.synthetic, rng=args.seed)
    if args.input is None:
        raise SystemExit("either --input or --synthetic must be given")
    path = args.input
    if path.endswith(".npy"):
        return np.load(path)
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        rows = [[float(v) for v in row] for row in reader if row and not row[0].startswith("#")]
    if not rows:
        raise SystemExit(f"no points found in {path}")
    return np.asarray(rows, dtype=float)


def _resolve_domain(args, points: np.ndarray) -> Domain:
    if args.domain == "tiger":
        return TIGER_DOMAIN
    if args.domain == "auto":
        pad = 1e-9 + 1e-6 * float(np.max(np.abs(points), initial=1.0))
        return Domain(bounding_rect(points, pad=pad), name="auto")
    parts = [float(v) for v in args.domain.split(",")]
    if len(parts) % 2 != 0:
        raise SystemExit("--domain must be 'tiger', 'auto' or lo1,lo2,...,hi1,hi2,...")
    half = len(parts) // 2
    return Domain.from_bounds(parts[:half], parts[half:], name="cli")


def _parse_rect(spec: str, dims: int) -> Rect:
    try:
        values = [float(v) for v in spec.split(",")]
    except ValueError:
        raise SystemExit(f"malformed query rectangle {spec!r}: values must be numbers")
    if len(values) != 2 * dims:
        raise SystemExit(f"query rectangle {spec!r} needs {2 * dims} "
                         "comma-separated numbers (lo..., hi...)")
    try:
        return Rect(tuple(values[:dims]), tuple(values[dims:]))
    except ValueError as exc:
        raise SystemExit(f"malformed query rectangle {spec!r}: {exc}")


# ----------------------------------------------------------------------
# Sub-commands
# ----------------------------------------------------------------------
def _cmd_build(args) -> int:
    points = _load_points(args)
    domain = _resolve_domain(args, points)
    variant = args.variant
    start = time.perf_counter()
    if variant in QUADTREE_VARIANTS:
        psd = build_private_quadtree(points, domain, args.height, args.epsilon,
                                     variant=variant, prune_threshold=args.prune,
                                     rng=args.seed, layout=args.layout)
    elif variant in KDTREE_VARIANTS:
        psd = build_private_kdtree(points, domain, args.height, args.epsilon,
                                   variant=variant, prune_threshold=args.prune,
                                   rng=args.seed, layout=args.layout)
    elif variant == "hilbert-r":
        tree = build_private_hilbert_rtree(points, domain, 2 * args.height, args.epsilon,
                                           prune_threshold=args.prune, rng=args.seed,
                                           layout=args.layout)
        psd = tree.psd
    else:
        raise SystemExit(f"unknown variant {variant!r}")
    build_time = time.perf_counter() - start
    psd.strip_private_fields()
    save_psd(psd, args.output)
    print(f"released {psd.name}: {psd.node_count()} nodes, height {psd.height}, "
          f"epsilon {args.epsilon}, built in {build_time:.3f}s ({args.layout} layout), "
          f"written to {args.output}")
    return 0


def _read_queries_file(path: str) -> List[str]:
    """One rect spec per line (``lo1,lo2,...,hi1,hi2,...``); '#' comments and
    blank lines are skipped."""
    specs: List[str] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line and not line.startswith("#"):
                    specs.append(line)
    except OSError as exc:
        raise SystemExit(f"cannot read --queries-file: {exc}")
    return specs


def _cmd_compile(args) -> int:
    psd = load_psd(args.release)
    engine = compile_psd(psd)
    output = args.output
    if args.format == "npz" and not output.endswith(".npz"):
        # np.load's magic-based readers expect the suffix on npz archives, and
        # it keeps the artifact self-describing for humans; mmap files are
        # detected purely by magic, so any name (we suggest .psdm) works.
        output += ".npz"
    save_engine(engine, output, format=args.format, precision=args.precision)
    print(f"compiled {engine.name}: {engine.n_nodes} nodes, "
          f"{engine.nbytes() / 1024:.1f} KiB of arrays, written to {output} "
          f"(format {args.format}, {args.precision} storage)")
    return 0


def _serve_flat(engine, rects, args):
    """Answer ``rects`` from a flat engine, optionally sharding across workers.

    With ``--workers N > 1`` the compiled arrays are shared with a process
    pool and the batch fans out in ``--chunk-queries`` chunks; the LRU answer
    cache sits in front either way (hits never reach the pool).
    """
    from .parallel import ShardedQueryServer

    if args.workers is not None and args.workers != 1:
        with ShardedQueryServer(engine, workers=args.workers,
                                chunk_queries=args.chunk_queries) as server:
            cached = CachedEngine(engine, evaluator=server.batch_query)
            answers = cached.batch_range_query(rects)
            return cached, answers, server.stats()
    cached = CachedEngine(engine)
    return cached, cached.batch_range_query(rects), None


def _cmd_query(args) -> int:
    specs = list(args.rect or [])
    if args.queries_file:
        specs.extend(_read_queries_file(args.queries_file))
    if not specs:
        raise SystemExit("provide at least one query via --rect or --queries-file")

    cached = None
    server_stats = None
    engine = None
    # Compiled engines are recognised by magic bytes, so either format serves
    # under any file name; everything else goes through the JSON loader.
    fmt = detect_engine_format(args.release)
    if fmt is None and args.release.endswith(".npz"):
        fmt = "npz"  # force the engine error path for a broken .npz
    if fmt is not None:
        try:
            engine = load_engine(args.release, verify=args.verify)
        except Exception as exc:
            raise SystemExit(f"cannot load compiled engine {args.release!r}: {exc}")
    if engine is not None:
        rects = [_parse_rect(spec, engine.dims) for spec in specs]
        cached, answers, server_stats = _serve_flat(engine, rects, args)
    else:
        psd = load_psd(args.release)
        rects = [_parse_rect(spec, psd.domain.dims) for spec in specs]
        if args.engine == "flat":
            cached, answers, server_stats = _serve_flat(psd.compile(), rects, args)
        else:
            answers = [psd.range_query(rect) for rect in rects]
    for spec, answer in zip(specs, answers):
        print(f"{spec}\t{answer:.2f}")
    if args.stats:
        if cached is None:
            print("cache stats: n/a (recursive backend serves without the answer cache)",
                  file=sys.stderr)
        else:
            stats = cached.stats()
            print(f"cache stats: {stats['hits']} hits, {stats['misses']} misses, "
                  f"{stats['size']}/{stats['maxsize']} entries, "
                  f"{stats['evictions']} evictions", file=sys.stderr)
        if server_stats is not None:
            print(f"serve stats: {server_stats['workers']} workers, "
                  f"{server_stats['queries']} queries in {server_stats['batches']} batches "
                  f"({server_stats['sharded_batches']} sharded, "
                  f"{server_stats['chunks']} chunks), "
                  f"{server_stats['shm_bytes_exported']} shm bytes in "
                  f"{server_stats['shm_segments']} segments, "
                  f"{server_stats['engine_mapped_bytes']} engine bytes memory-mapped",
                  file=sys.stderr)
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from .serve import BudgetLedger, EngineSupervisor, QueryService, parse_faults

    fmt = detect_engine_format(args.release)
    if fmt is not None:
        try:
            engine = load_engine(args.release, verify=not args.no_verify)
        except Exception as exc:
            raise SystemExit(f"cannot load compiled engine {args.release!r}: {exc}")
    else:
        engine = load_psd(args.release).compile()
    try:
        faults = parse_faults(args.fault)
    except ValueError as exc:
        raise SystemExit(str(exc))

    supervisor = EngineSupervisor(engine, workers=args.workers,
                                  chunk_queries=args.chunk_queries,
                                  cache_size=args.cache_size)
    ledger = BudgetLedger(args.ledger, default_cap=args.budget_cap)
    if ledger.replayed_records:
        print(f"replayed {ledger.replayed_records} ledger records from {args.ledger}",
              file=sys.stderr)
    service = QueryService(supervisor, ledger, host=args.host, port=args.port,
                           charge_epsilon=args.charge_epsilon,
                           max_inflight=args.max_inflight,
                           request_timeout=args.timeout, faults=faults)

    async def _run() -> None:
        await service.start()
        # The bound port line is machine-read by the smoke harness: keep the
        # format stable and flush it before blocking.
        print(f"serving {engine.name} on http://{service.host}:{service.port} "
              f"(ledger {args.ledger}, cap {args.budget_cap})", flush=True)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                pass
        try:
            await stop.wait()
        finally:
            await service.stop()

    try:
        asyncio.run(_run())
    finally:
        supervisor.close()
        ledger.close()
    print("server stopped; ledger is durable and will replay on restart",
          file=sys.stderr)
    return 0


#: Figures whose runner is a crash-safe sweep (accepts --checkpoint / --fault /
#: --case-timeout); everything else rejects those flags loudly.
_SWEEP_FIGURES = ("fig3", "fig5", "fig6")


def _sweep_kwargs(args) -> dict:
    return {
        "checkpoint": args.checkpoint,
        "faults": args.fault,
        "case_timeout": args.case_timeout,
    }


_EXPERIMENTS = {
    "fig2": lambda args, scale: (run_fig2(), ["height", "err_uniform", "err_geometric", "ratio"]),
    "fig3": lambda args, scale: (
        run_fig3(scale=scale, epsilons=args.epsilons, rng=args.seed, workers=args.workers,
                 **_sweep_kwargs(args)),
        ["epsilon", "variant", "shape", "median_rel_error_pct"],
    ),
    "fig4": lambda args, scale: (
        run_fig4(n_points=scale.n_points, rng=args.seed),
        ["method", "depth", "rank_error_pct", "time_sec"],
    ),
    "fig5": lambda args, scale: (
        run_fig5(scale=scale, epsilons=args.epsilons, rng=args.seed, workers=args.workers,
                 **_sweep_kwargs(args)),
        ["epsilon", "variant", "shape", "median_rel_error_pct"],
    ),
    "fig6": lambda args, scale: (
        run_fig6(scale=scale, rng=args.seed, workers=args.workers,
                 **_sweep_kwargs(args)),
        ["method", "height", "shape", "median_rel_error_pct"],
    ),
    "fig7a": lambda args, scale: (
        run_fig7a(scale=scale, rng=args.seed),
        ["method", "build_time_sec", "n_points"],
    ),
    "fig7b": lambda args, scale: (
        run_fig7b(scale=scale, rng=args.seed, workers=args.workers),
        ["method", "epsilon", "reduction_ratio", "pairs_completeness"],
    ),
}


#: Named scale presets of ``repro experiment --scale`` — ``paper`` restores the
#: full-scale setup of Section 8 (1.63 M points, 600 queries per shape).
_SCALES = {
    "smoke": ExperimentScale.smoke,
    "default": ExperimentScale,
    "paper": ExperimentScale.paper,
}

#: ``--figure`` accepts the paper's figure numbers; 7 runs both panels.
_FIGURE_NUMBERS = {
    "2": ("fig2",), "3": ("fig3",), "4": ("fig4",), "5": ("fig5",),
    "6": ("fig6",), "7": ("fig7a", "fig7b"), "7a": ("fig7a",), "7b": ("fig7b",),
}


def _resolve_scale(args) -> ExperimentScale:
    scale = _SCALES[args.scale]()
    overrides = {
        field: getattr(args, field)
        for field in ("n_points", "n_queries", "repetitions", "quad_height", "kd_height")
        if getattr(args, field) is not None
    }
    return dataclasses.replace(scale, **overrides) if overrides else scale


def _cmd_experiment(args) -> int:
    if args.figure_number is not None and args.figure is not None:
        raise SystemExit("give either a positional figure name or --figure, not both")
    if args.figure_number is not None:
        figures = _FIGURE_NUMBERS[args.figure_number]
    elif args.figure is not None:
        figures = (args.figure,)
    else:
        raise SystemExit("choose an experiment: positional name (e.g. fig3) or --figure 3")
    scale = _resolve_scale(args)

    if args.checkpoint or args.fault or args.case_timeout is not None:
        outside = [f for f in figures if f not in _SWEEP_FIGURES]
        if outside:
            raise SystemExit(
                f"--checkpoint/--fault/--case-timeout apply to the sweep figures "
                f"{'/'.join(_SWEEP_FIGURES)} only, not {'/'.join(outside)}"
            )

    results = []
    for figure in figures:
        rows, columns = _EXPERIMENTS[figure](args, scale)
        print(format_table(rows, columns, title=f"Experiment {figure} ({args.scale} scale)"))
        results.append({"figure": figure, "columns": list(columns), "rows": rows})
    if args.json_out:
        payload = {
            "scale": {"name": args.scale, **dataclasses.asdict(scale)},
            "seed": args.seed,
            "host": host_metadata(),
            "figures": results,
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {sum(len(r['rows']) for r in results)} rows to {args.json_out}",
              file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="build a PSD and write the released JSON")
    build.add_argument("--input", help="input points (.npy or CSV, one point per row)")
    build.add_argument("--synthetic", type=int, default=None,
                       help="generate this many synthetic road-intersection points instead of reading --input")
    build.add_argument("--domain", default="tiger",
                       help="'tiger', 'auto', or explicit bounds lo1,lo2,hi1,hi2 (default: tiger)")
    build.add_argument("--variant", default="quad-opt",
                       help=f"one of {sorted(QUADTREE_VARIANTS) + sorted(KDTREE_VARIANTS) + ['hilbert-r']}")
    build.add_argument("--epsilon", type=float, default=0.5, help="total privacy budget")
    build.add_argument("--height", type=int, default=8, help="tree height")
    build.add_argument("--prune", type=float, default=None, help="optional pruning threshold")
    build.add_argument("--layout", choices=BUILD_LAYOUTS, default="flat",
                       help="build pipeline: 'flat' (level-vectorized, default) or "
                            "'pointer' (per-node reference); identical output per seed")
    build.add_argument("--seed", type=int, default=0, help="random seed")
    build.add_argument("--output", required=True, help="path of the released JSON file")
    build.set_defaults(func=_cmd_build)

    compile_ = sub.add_parser("compile",
                              help="compile a released JSON structure into a flat engine "
                                   "(.npz or zero-copy mmap format)")
    compile_.add_argument("release", help="path of the released JSON file")
    compile_.add_argument("--output", required=True, help="path of the compiled engine")
    compile_.add_argument("--format", choices=ENGINE_FORMATS, default="npz",
                          help="'npz': compressed archive, smallest on disk; 'mmap': "
                               "page-aligned format v2 attached zero-copy via np.memmap "
                               "(suggested suffix .psdm; default npz)")
    compile_.add_argument("--precision", choices=PRECISIONS, default="float64",
                          help="storage precision: float32 halves count/offset storage "
                               "(geometry stays float64; rounding error sits below the "
                               "Laplace noise floor at realistic epsilons; default float64)")
    compile_.set_defaults(func=_cmd_compile)

    query = sub.add_parser("query",
                           help="answer range queries from a released JSON structure or compiled engine")
    query.add_argument("release", help="path of the released JSON file (or a compiled engine "
                                       "in either format; detected by magic bytes)")
    query.add_argument("--rect", action="append", default=None,
                       help="query rectangle as lo1,lo2,...,hi1,hi2,... (repeatable)")
    query.add_argument("--queries-file", default=None,
                       help="batch mode: file with one rect spec per line ('#' comments allowed)")
    query.add_argument("--engine", choices=QUERY_BACKENDS, default="recursive",
                       help="query backend for JSON releases (.npz input always uses flat)")
    query.add_argument("--verify", action="store_true",
                       help="check every engine array against its stored checksums "
                            "(v2 header CRC32 / .npz adler32 sidecar) before answering")
    query.add_argument("--stats", action="store_true",
                       help="report LRU answer-cache effectiveness (hits/misses) on stderr; "
                            "flat engines only")
    query.add_argument("--workers", type=int, default=None,
                       help="shard batch evaluation across this many processes over a "
                            "shared-memory engine (flat backend only; -1 = all cores)")
    query.add_argument("--chunk-queries", type=int, default=1024,
                       help="queries per fanned-out chunk (also caps the evaluator's "
                            "peak frontier memory; default 1024)")
    _add_obs_args(query)
    query.set_defaults(func=_cmd_query)

    experiment = sub.add_parser(
        "experiment",
        help="run paper-figure experiments through the sweep pipeline",
        description="Run one of the paper-figure experiments at a chosen scale. "
                    "Select the experiment by name (e.g. 'fig3') or paper figure "
                    "number (--figure 3; --figure 7 runs both panels). "
                    "--scale smoke|default|paper trades fidelity for runtime; "
                    "explicit size flags override individual scale fields.",
    )
    experiment.add_argument("figure", nargs="?", choices=sorted(_EXPERIMENTS), default=None,
                            help="experiment name (alternative to --figure)")
    experiment.add_argument("--figure", dest="figure_number",
                            choices=sorted(_FIGURE_NUMBERS), default=None,
                            help="paper figure number (2..7, 7a, 7b); 7 runs both panels")
    experiment.add_argument("--scale", choices=sorted(_SCALES), default="default",
                            help="size preset: smoke (CI-sized), default, or the "
                                 "paper's full-scale setup")
    experiment.add_argument("--json", dest="json_out", default=None,
                            help="also write the result rows (plus scale metadata) as JSON")
    experiment.add_argument("--n-points", type=int, default=None,
                            help="override the scale's dataset size")
    experiment.add_argument("--n-queries", type=int, default=None,
                            help="override the scale's queries per shape")
    experiment.add_argument("--repetitions", type=int, default=None,
                            help="override the scale's noisy releases per grid point")
    experiment.add_argument("--quad-height", type=int, default=None,
                            help="override the scale's quadtree height")
    experiment.add_argument("--kd-height", type=int, default=None,
                            help="override the scale's kd-tree height")
    experiment.add_argument("--epsilons", type=float, nargs="+", default=(0.5,))
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--workers", type=int, default=None,
                            help="fan work across this many processes (fig3/fig5/fig6 "
                                 "sweep cases, fig7b seeker chunks; -1 = all cores; rows "
                                 "are bitwise identical for any worker count)")
    experiment.add_argument("--checkpoint", default=None, metavar="PATH",
                            help="journal each completed sweep case to this JSONL file and "
                                 "resume from it on re-run; a resumed sweep is bitwise "
                                 "identical to an uninterrupted one (fig3/fig5/fig6)")
    experiment.add_argument("--fault", action="append", default=None,
                            help="deterministic sweep fault schedule kind:every[:param] — "
                                 "kinds: kill-worker, slow-case, oom-worker (repeatable; "
                                 "requires --workers > 1)")
    experiment.add_argument("--case-timeout", type=float, default=None,
                            help="soft per-case timeout in seconds: an overdue case is "
                                 "resubmitted once, then runs in-process")
    _add_obs_args(experiment)
    experiment.set_defaults(func=_cmd_experiment)

    serve = sub.add_parser(
        "serve",
        help="serve range queries over HTTP with per-analyst budgets and "
             "fault-tolerant workers",
        description="Stand up the asyncio HTTP query service on an engine "
                    "(JSON release or compiled engine, either format). Every "
                    "answer is preceded by a durable charge against the "
                    "analyst's epsilon account in the write-ahead ledger; an "
                    "exhausted account gets 429, an overloaded server sheds "
                    "with 503 + Retry-After, and a crashed worker costs "
                    "latency, not errors. POST /admin/swap hot-swaps the "
                    "engine with zero downtime.",
    )
    serve.add_argument("release", help="engine to serve: released JSON (compiled "
                                       "on startup) or a compiled engine file")
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port (default 0 = ephemeral; the bound port is printed)")
    serve.add_argument("--ledger", required=True,
                       help="path of the append-only budget WAL (JSON lines); replayed "
                            "on startup, so restarts never forget spend")
    serve.add_argument("--budget-cap", type=float, default=1.0,
                       help="default epsilon cap per analyst (default 1.0)")
    serve.add_argument("--charge-epsilon", type=float, default=0.01,
                       help="epsilon charged per query when a request names no "
                            "explicit total (default 0.01)")
    serve.add_argument("--workers", type=int, default=None,
                       help="worker pool size per engine generation "
                            "(-1 = all cores; 1 serves in-process)")
    serve.add_argument("--chunk-queries", type=int, default=1024,
                       help="queries per fanned-out chunk (default 1024)")
    serve.add_argument("--cache-size", type=int, default=0,
                       help="LRU answer-cache capacity in front of the pool "
                            "(0 disables caching; default 0)")
    serve.add_argument("--max-inflight", type=int, default=64,
                       help="admitted-request bound before load shedding (default 64)")
    serve.add_argument("--timeout", type=float, default=30.0,
                       help="per-request timeout in seconds (default 30)")
    serve.add_argument("--no-verify", action="store_true",
                       help="skip the checksum verification of compiled engine files "
                            "(verification is the serve default; saves one O(bytes) "
                            "scan at startup)")
    serve.add_argument("--fault", action="append", default=None,
                       help="deterministic fault schedule kind:every[:param] — kinds: "
                            "kill-worker, slow-chunk, wal-io-error, oom-worker "
                            "(repeatable; for drills, tests and benchmarks)")
    serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used both by ``python -m repro.cli`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _obs_begin(args)
    try:
        return args.func(args)
    finally:
        _obs_finish(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
